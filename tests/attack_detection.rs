//! Integration: the §3.2 attack taxonomy against the functional secure
//! bus, checked through the public crate APIs only.

use senss::auth::AuthOutcome;
use senss::fabric::{BusMessage, GroupFabric};
use senss::group::{GroupId, MessageTag, ProcessorId};
use senss_attacks::scenarios;
use senss_crypto::Block;

#[test]
fn all_scripted_attacks_are_detected_by_senss() {
    let reports = scenarios::all();
    assert_eq!(reports.len(), 7);
    for r in &reports {
        assert!(r.detected_by_senss, "{} missed: {}", r.name, r.detail);
    }
}

#[test]
fn baseline_blindspots_match_the_paper() {
    // The paper's §8 critique of Shi et al.: non-chained MACs miss Type 1
    // and Type 3 (drop/spoof/replay) attacks.
    let by_name: std::collections::HashMap<_, _> = scenarios::all()
        .into_iter()
        .map(|r| (r.name, r))
        .collect();
    for name in [
        "type1-split-drop",
        "type1-receiver-blackout",
        "type3-own-pid-spoof",
        "type3-subset-spoof",
        "type3-replay",
    ] {
        assert!(
            !by_name[name].detected_by_baseline,
            "{name}: baseline unexpectedly detected it"
        );
    }
}

fn fabric(n: u8, interval: u64) -> GroupFabric {
    GroupFabric::new(
        GroupId::new(9),
        (0..n).map(ProcessorId::new).collect(),
        &[0x88; 16],
        Block::from([3; 16]),
        Block::from([4; 16]),
        4,
        interval,
        128,
    )
}

#[test]
fn tampered_payload_diverges_at_next_auth_round() {
    let mut f = fabric(2, 1_000_000);
    let a = ProcessorId::new(0);
    let b = ProcessorId::new(1);
    let data = vec![Block::from([0x42; 16]); 4];
    let mut msg = f.send(a, &data);
    // Flip one ciphertext bit in flight.
    msg.payload[2] ^= Block::from_words(1, 0);
    let got = f.deliver(&msg, b).expect("delivered");
    assert_ne!(got, data, "tampered ciphertext decrypts wrong");
    match f.run_auth_round(a) {
        AuthOutcome::AlarmRaised { dissenting, .. } => {
            assert_eq!(dissenting, vec![b]);
        }
        other => panic!("tamper not detected: {other:?}"),
    }
}

#[test]
fn detection_survives_arbitrary_clean_traffic_after_the_attack() {
    // Chained MACs never re-converge: an attack followed by thousands of
    // clean transfers is still caught at the next round.
    let mut f = fabric(3, 1_000_000);
    let (a, b, c) = (
        ProcessorId::new(0),
        ProcessorId::new(1),
        ProcessorId::new(2),
    );
    // Drop one message from c.
    let msg = f.send(a, &[Block::from([1; 16])]);
    f.deliver(&msg, b);
    // 500 clean broadcasts afterwards... but c is desynced, so its
    // decrypted plaintexts differ silently. Drive deliveries manually.
    for i in 0..500u16 {
        let d = [Block::from([(i % 251) as u8; 16])];
        let m = f.send(a, &d);
        f.deliver(&m, b);
        f.deliver(&m, c);
    }
    match f.run_auth_round(a) {
        AuthOutcome::AlarmRaised { dissenting, .. } => {
            assert!(dissenting.contains(&c));
        }
        other => panic!("drop healed over: {other:?}"),
    }
}

#[test]
fn cross_group_messages_are_ignored_by_tag() {
    // Message tagging: a message of group 9 must not be picked up by a
    // processor using its group-5 state. We model this at the API level:
    // the SHU's bit matrix decides pickup.
    use senss::shu::BitMatrix;
    let mut matrix = BitMatrix::new();
    let g5 = GroupId::new(5);
    let g9 = GroupId::new(9);
    let p = ProcessorId::new(2);
    matrix.set(g5, p);
    let msg = BusMessage {
        tag: MessageTag { gid: g9, pid: ProcessorId::new(0) },
        payload: vec![Block::ZERO],
    };
    // The snoop-path check the SHU performs in O(1):
    assert!(!matrix.contains(msg.tag.gid, p), "message must be discarded");
    assert!(matrix.contains(g5, p));
}

#[test]
fn spoof_with_foreign_gid_is_filtered_before_crypto() {
    // An adversary spoofing an unknown GID never reaches the mask chain:
    // the bit matrix row is empty on every processor.
    use senss::shu::BitMatrix;
    let matrix = BitMatrix::new();
    for pid in 0..4u8 {
        assert!(!matrix.contains(GroupId::new(1000), ProcessorId::new(pid)));
    }
}
