//! Integration: multiple simultaneous groups — two applications sharing
//! the machine, each with its own GID, masks and authentication counter
//! (the paper's Figure 1 scenario: applications 1 and 2 on overlapping
//! processor subsets; here disjoint subsets, as the timing layer keys
//! group state by processor).

use senss::fabric::GroupFabric;
use senss::group::{GroupId, ProcessorId};
use senss::secure_bus::{SenssConfig, SenssExtension};
use senss::shu::{BitMatrix, GroupInfoTable};
use senss_crypto::Block;
use senss_sim::{System, SystemConfig};
use senss_workloads::Workload;

#[test]
fn two_groups_on_disjoint_cores_authenticate_independently() {
    // Cores 0-1 run ocean (group 0), cores 2-3 run lu (group 1): splice
    // the traces together on one 4-core machine.
    let mut traces = Workload::Ocean.generate(2, 3_000, 1);
    traces.extend(Workload::Lu.generate(2, 3_000, 2));
    // Shift lu's addresses into a disjoint region so the two programs
    // never share lines (separate protection domains).
    // (The generators already use disjoint regions per workload.)
    let ext = SenssExtension::with_groups(
        SenssConfig::paper_default(4).with_auth_interval(10),
        vec![vec![0, 1], vec![2, 3]],
    );
    let mut sys = System::new(SystemConfig::e6000(4, 1 << 20), traces, ext);
    let stats = sys.run();
    assert!(stats.txn_auth > 0, "both groups authenticate");
    assert_eq!(sys.extension().num_groups(), 2);
    // No cross-domain sharing means every c2c transfer stays inside one
    // group; the combined auth count equals the per-group interval sums.
    let expected = stats.cache_to_cache_transfers / 10;
    assert!(
        stats.txn_auth.abs_diff(expected) <= 2,
        "auth {} vs expected ~{expected}",
        stats.txn_auth
    );
}

#[test]
fn shu_tables_isolate_concurrent_groups() {
    // Two program loads on a 4-processor machine: GIDs are reserved on
    // every processor, secrets installed only on members.
    let mut tables: Vec<GroupInfoTable> = (0..4).map(|_| GroupInfoTable::new(8)).collect();
    let mut matrix = BitMatrix::new();

    let g_bank = tables[0].allocate().unwrap();
    for t in tables.iter_mut().skip(1) {
        assert!(t.occupy(g_bank));
    }
    for pid in [0u8, 1] {
        matrix.set(g_bank, ProcessorId::new(pid));
        tables[pid as usize].install_secrets(g_bank, [0xAA; 16], vec![Block::ZERO; 8]);
    }

    let g_web = tables[0].allocate().unwrap();
    assert_ne!(g_bank, g_web);
    for t in tables.iter_mut().skip(1) {
        assert!(t.occupy(g_web));
    }
    for pid in [2u8, 3] {
        matrix.set(g_web, ProcessorId::new(pid));
        tables[pid as usize].install_secrets(g_web, [0xBB; 16], vec![Block::ZERO; 8]);
    }

    // Membership checks drive message pickup.
    assert!(matrix.contains(g_bank, ProcessorId::new(0)));
    assert!(!matrix.contains(g_bank, ProcessorId::new(2)));
    assert!(matrix.contains(g_web, ProcessorId::new(3)));
    assert!(!matrix.contains(g_web, ProcessorId::new(1)));

    // Non-members hold the occupied bit but no key.
    assert!(tables[2].get(g_bank).unwrap().session_key.is_none());
    assert!(tables[0].get(g_web).unwrap().session_key.is_none());
}

#[test]
fn concurrent_fabrics_do_not_interfere() {
    let mut bank = GroupFabric::new(
        GroupId::new(1),
        vec![ProcessorId::new(0), ProcessorId::new(1)],
        &[0xAA; 16],
        Block::from([1; 16]),
        Block::from([2; 16]),
        2,
        5,
        64,
    );
    let mut web = GroupFabric::new(
        GroupId::new(2),
        vec![ProcessorId::new(2), ProcessorId::new(3)],
        &[0xBB; 16],
        Block::from([3; 16]),
        Block::from([4; 16]),
        2,
        5,
        64,
    );
    // Interleave traffic; each fabric only ever sees its own messages
    // (the bit matrix filters the other group's GID before decryption).
    for i in 0..40u8 {
        let d = vec![Block::from([i; 16])];
        let got = bank.broadcast(ProcessorId::new(i % 2), &d);
        assert_eq!(got[0].1, d);
        let got = web.broadcast(ProcessorId::new(2 + i % 2), &d);
        assert_eq!(got[0].1, d);
    }
    assert!(!bank.is_halted());
    assert!(!web.is_halted());
}

#[test]
fn group_swap_out_and_back_in_mid_run() {
    // §4.2: the OS swaps the bank group out (context encrypted to
    // memory), runs the web group, then swaps the bank back in.
    let key = [0xAA; 16];
    let mut bank = GroupFabric::new(
        GroupId::new(1),
        vec![ProcessorId::new(0), ProcessorId::new(1)],
        &key,
        Block::from([1; 16]),
        Block::from([2; 16]),
        2,
        1000,
        64,
    );
    for i in 0..9u8 {
        bank.broadcast(ProcessorId::new(i % 2), &[Block::from([i; 16])]);
    }
    let parked = bank.suspend();

    // … web group runs …

    let mut bank = GroupFabric::resume(&parked, &key).expect("untampered context");
    for i in 9..20u8 {
        let d = vec![Block::from([i; 16])];
        let got = bank.broadcast(ProcessorId::new(i % 2), &d);
        assert_eq!(got[0].1, d, "post-swap message {i}");
    }
    assert!(!bank.is_halted());
}
