//! Smoke tests for the figure harness: every paper figure's generating
//! path runs at reduced scale and its qualitative *shape* holds.

use senss::mask::PERFECT_MASKS;
use senss::secure_bus::{SenssConfig, SenssExtension};
use senss::shu::{BitMatrix, GroupInfoTable};
use senss_bench::{overhead, Point};
use senss_workloads::Workload;

const OPS: usize = 4_000;
const SEED: u64 = 42;

#[test]
fn hw_overhead_numbers_match_the_paper() {
    // §7.1 exact values.
    assert_eq!(BitMatrix::storage_bits() / 8, 640);
    assert_eq!(GroupInfoTable::new(8).storage_bits() / 1024, 1161);
    let (_, extra, pct) = SenssExtension::extra_bus_lines();
    assert_eq!(extra, 12);
    assert!((pct - 3.17).abs() < 0.2);
}

#[test]
fn fig06_shape_slowdowns_are_small() {
    for &l2 in &[1usize << 20, 4 << 20] {
        for &cores in &[2usize, 4] {
            for w in [Workload::Fft, Workload::Ocean] {
                let p = Point::new(w, cores, l2);
                let base = p.run_baseline(OPS, SEED);
                let sec = p.run_senss(OPS, SEED, SenssConfig::paper_default(cores));
                let o = overhead(&sec, &base);
                assert!(
                    o.slowdown_pct < 3.0,
                    "{w} {cores}P {l2}B: slowdown {:.3}%",
                    o.slowdown_pct
                );
            }
        }
    }
}

#[test]
fn fig07_shape_four_masks_close_to_perfect_one_mask_worse() {
    let p = Point::new(Workload::Fft, 4, 4 << 20);
    let base = p.run_baseline(OPS, SEED);
    let run = |masks: usize| {
        let s = p.run_senss(OPS, SEED, SenssConfig::paper_default(4).with_masks(masks));
        (overhead(&s, &base).slowdown_pct, s.mask_stall_cycles)
    };
    let (_, stall_perfect) = run(PERFECT_MASKS);
    let (_, stall4) = run(4);
    let (_, stall1) = run(1);
    assert_eq!(stall_perfect, 0);
    assert!(stall1 > stall4, "1 mask must stall more: {stall1} vs {stall4}");
}

#[test]
fn fig08_shape_interval_100_traffic_below_one_percent() {
    for w in Workload::all() {
        let p = Point::new(w, 4, 1 << 20);
        let base = p.run_baseline(OPS, SEED);
        let sec = p.run_senss(OPS, SEED, SenssConfig::paper_default(4));
        let o = overhead(&sec, &base);
        assert!(
            o.traffic_pct < 1.5,
            "{w}: interval-100 traffic {:.2}% too high",
            o.traffic_pct
        );
    }
}

#[test]
fn fig09_shape_traffic_scales_inversely_with_interval() {
    let p = Point::new(Workload::Ocean, 4, 4 << 20);
    let base = p.run_baseline(OPS, SEED);
    let traffic = |interval: u64| {
        let s = p.run_senss(
            OPS,
            SEED,
            SenssConfig::paper_default(4).with_auth_interval(interval),
        );
        overhead(&s, &base).traffic_pct
    };
    let t100 = traffic(100);
    let t10 = traffic(10);
    let t1 = traffic(1);
    assert!(t1 > t10 && t10 > t100, "{t1} > {t10} > {t100} expected");
    // Interval 1: one auth per c2c transfer, so the increase approaches
    // the c2c share of total transactions (tens of percent on sharing
    // workloads, bounded by ~50%).
    assert!(t1 > 3.0 && t1 < 60.0, "interval-1 traffic {t1:.1}%");
}

#[test]
fn fig10_shape_integrated_dominates() {
    let p = Point::new(Workload::Lu, 4, 1 << 20);
    let base = p.run_baseline(OPS, SEED);
    let senss_only = p.run_senss(OPS, SEED, SenssConfig::paper_default(4));
    let integrated = p.run_integrated(OPS, SEED, SenssConfig::paper_default(4));
    let o_s = overhead(&senss_only, &base);
    let o_i = overhead(&integrated, &base);
    assert!(o_i.slowdown_pct > o_s.slowdown_pct);
    assert!(o_i.traffic_pct > o_s.traffic_pct * 3.0);
    assert!(integrated.txn_hash_fetch > 0);
}

#[test]
fn fig11_shape_senss_changes_interleaving() {
    // The §7.8 variability mechanism: SENSS timing shifts hit/miss
    // patterns on false sharing.
    use senss_sim::{NullExtension, System, SystemConfig};
    use senss_workloads::micro;
    let cfg = SystemConfig::e6000(2, 1 << 20);
    let base = System::new(cfg.clone(), micro::false_sharing(1_500), NullExtension).run();
    let sec = System::new(
        cfg,
        micro::false_sharing(1_500),
        SenssExtension::new(SenssConfig::paper_default(2).with_auth_interval(1)),
    )
    .run();
    assert!(
        base.l1_hits != sec.l1_hits
            || base.cache_to_cache_transfers != sec.cache_to_cache_transfers
            || base.txn_upgrade != sec.txn_upgrade,
        "timing perturbation should shift the access interleaving"
    );
}
