//! End-to-end integration: all workloads through all three system
//! flavours (baseline, SENSS, SENSS + memory protection) on the
//! cycle-level simulator, checking the cross-crate invariants the paper's
//! evaluation relies on.

use senss::secure_bus::{SenssConfig, SenssExtension};
use senss_memprot::{MemProtConfig, MemProtPolicy};
use senss_sim::{NullExtension, Stats, System, SystemConfig};
use senss_workloads::Workload;

const OPS: usize = 3_000;
const SEED: u64 = 77;

fn baseline(w: Workload, cores: usize, l2: usize) -> Stats {
    System::new(
        SystemConfig::e6000(cores, l2),
        w.generate(cores, OPS, SEED),
        NullExtension,
    )
    .run()
}

fn senss(w: Workload, cores: usize, l2: usize, cfg: SenssConfig) -> Stats {
    System::new(
        SystemConfig::e6000(cores, l2),
        w.generate(cores, OPS, SEED),
        SenssExtension::new(cfg),
    )
    .run()
}

fn integrated(w: Workload, cores: usize, l2: usize) -> Stats {
    let ext = SenssExtension::new(SenssConfig::paper_default(cores))
        .with_memory_protection(MemProtPolicy::new(MemProtConfig::paper_default(cores)));
    System::new(
        SystemConfig::e6000(cores, l2),
        w.generate(cores, OPS, SEED),
        ext,
    )
    .run()
}

#[test]
fn every_workload_completes_on_every_flavour() {
    for w in Workload::all() {
        let b = baseline(w, 2, 1 << 20);
        let s = senss(w, 2, 1 << 20, SenssConfig::paper_default(2));
        let i = integrated(w, 2, 1 << 20);
        for (name, stats) in [("base", &b), ("senss", &s), ("integrated", &i)] {
            assert!(
                stats.ops_executed >= 2 * (OPS as u64 - 100),
                "{w}/{name}: ops lost"
            );
            assert!(stats.total_cycles > 0, "{w}/{name}");
        }
    }
}

#[test]
fn accounting_identities_hold() {
    for w in Workload::all() {
        let s = senss(w, 4, 1 << 20, SenssConfig::paper_default(4).with_auth_interval(10));
        // Hits + misses = executed references.
        assert_eq!(s.l1_hits + s.l1_misses, s.ops_executed, "{w}");
        // Every L1 miss is an L2 hit, an L2 miss, or an upgrade path.
        assert!(s.l2_hits + s.l2_misses <= s.l1_misses, "{w}");
        // Every fill has exactly one supplier.
        assert_eq!(
            s.cache_to_cache_transfers + s.memory_transfers,
            s.txn_read + s.txn_read_exclusive + s.txn_hash_fetch,
            "{w}"
        );
        // Auth transactions fire once per interval of c2c transfers.
        let expected_auth = s.cache_to_cache_transfers / 10;
        let diff = expected_auth.abs_diff(s.txn_auth);
        assert!(diff <= 1, "{w}: auth {} vs expected {expected_auth}", s.txn_auth);
    }
}

#[test]
fn senss_only_overhead_is_small() {
    // The Figure 6 headline at integration-test scale: bus security alone
    // costs well under 5% on every workload (paper: < 0.2% at full scale).
    for w in Workload::all() {
        let b = baseline(w, 4, 1 << 20);
        let s = senss(w, 4, 1 << 20, SenssConfig::paper_default(4));
        let slowdown = s.slowdown_vs(&b);
        assert!(
            slowdown < 5.0,
            "{w}: SENSS-only slowdown {slowdown:.3}% too large"
        );
    }
}

#[test]
fn integrated_costs_dominate_senss_costs() {
    // Figure 10's shape: memory protection is the expensive part.
    let mut senss_total = 0.0;
    let mut integ_total = 0.0;
    for w in Workload::all() {
        let b = baseline(w, 4, 1 << 20);
        let s = senss(w, 4, 1 << 20, SenssConfig::paper_default(4));
        let i = integrated(w, 4, 1 << 20);
        senss_total += s.bus_increase_vs(&b);
        integ_total += i.bus_increase_vs(&b);
        assert!(i.txn_hash_fetch > 0, "{w}: no integrity traffic");
        assert!(
            i.total_cycles >= s.total_cycles,
            "{w}: integrated faster than SENSS-only"
        );
    }
    assert!(
        integ_total > senss_total * 5.0,
        "integrated traffic ({integ_total:.1}%) should dwarf SENSS-only ({senss_total:.1}%)"
    );
}

#[test]
fn interval_one_costs_more_than_interval_hundred() {
    let w = Workload::Ocean;
    let b = baseline(w, 4, 4 << 20);
    let i1 = senss(w, 4, 4 << 20, SenssConfig::paper_default(4).with_auth_interval(1));
    let i100 = senss(w, 4, 4 << 20, SenssConfig::paper_default(4).with_auth_interval(100));
    assert!(i1.txn_auth > i100.txn_auth * 50);
    assert!(i1.bus_increase_vs(&b) > i100.bus_increase_vs(&b));
}

#[test]
fn runs_are_deterministic_end_to_end() {
    let a = integrated(Workload::Fft, 2, 1 << 20);
    let b = integrated(Workload::Fft, 2, 1 << 20);
    assert_eq!(a, b);
}

#[test]
fn mask_starvation_shows_up_with_one_mask() {
    let w = Workload::Fft; // bursty transposes: back-to-back transfers
    let one = senss(w, 4, 4 << 20, SenssConfig::paper_default(4).with_masks(1));
    let eight = senss(w, 4, 4 << 20, SenssConfig::paper_default(4).with_masks(8));
    assert!(one.mask_stall_cycles > eight.mask_stall_cycles);
    assert_eq!(eight.mask_stall_cycles, 0, "8 masks never stall (§7.4)");
}
