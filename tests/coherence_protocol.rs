//! Integration + property tests of the MESI snooping protocol under the
//! simulator, including randomized traces (proptest).

use proptest::prelude::*;
use senss_sim::trace::{Op, VecTrace};
use senss_sim::{NullExtension, System, SystemConfig};

fn cfg(n: usize) -> SystemConfig {
    SystemConfig::e6000(n, 1 << 20)
}

#[test]
fn producer_consumer_chain_across_four_cores() {
    // P0 writes, P1..P3 read in a staggered chain: each read after the
    // write must be a dirty c2c transfer (first reader) or memory/shared
    // fill, and no data is lost.
    let line = 0xA000u64;
    let traces = vec![
        VecTrace::new(vec![Op::write(0, line)]),
        VecTrace::new(vec![Op::read(500, line)]),
        VecTrace::new(vec![Op::read(1000, line)]),
        VecTrace::new(vec![Op::read(1500, line)]),
    ];
    let stats = System::new(cfg(4), traces, NullExtension).run();
    assert_eq!(stats.cache_to_cache_transfers, 1, "only the first read hits dirty data");
    assert_eq!(stats.txn_read, 3);
    assert_eq!(stats.txn_read_exclusive, 1);
}

#[test]
fn migratory_sharing_ping_pong() {
    // A line migrating between two writers: every handoff invalidates and
    // re-fetches dirty data.
    let line = 0xB000u64;
    let a: VecTrace = (0..10).map(|i| Op::write(i * 2000, line)).collect();
    let b: VecTrace = (0..10).map(|i| Op::write(1000 + i * 2000, line)).collect();
    let stats = System::new(cfg(2), vec![a, b], NullExtension).run();
    // After both caches hold it once, every write misses (the other
    // invalidated it) and is supplied c2c from the dirty owner.
    assert!(stats.cache_to_cache_transfers >= 15, "{stats:?}");
}

#[test]
fn read_only_sharing_needs_one_memory_fill_per_cache() {
    let line = 0xC000u64;
    let a: VecTrace = (0..50).map(|i| Op::read(i * 10, line)).collect();
    let b: VecTrace = (0..50).map(|i| Op::read(5 + i * 10, line)).collect();
    let stats = System::new(cfg(2), vec![a, b], NullExtension).run();
    assert_eq!(stats.txn_read, 2, "one fill per cache, then hits");
    assert_eq!(stats.cache_to_cache_transfers, 0);
    assert_eq!(stats.txn_upgrade, 0);
}

#[test]
fn upgrade_then_silent_writes() {
    // After one BusUpgr, subsequent writes by the same core hit locally.
    let line = 0xD000u64;
    let a = VecTrace::new(vec![Op::read(0, line), Op::write(100, line), Op::write(10, line)]);
    let b = VecTrace::new(vec![Op::read(20, line)]);
    let stats = System::new(cfg(2), vec![a, b], NullExtension).run();
    assert_eq!(stats.txn_upgrade, 1, "exactly one upgrade, then M-state hits");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random small traces over a tiny shared footprint: the simulator
    /// must terminate, execute every reference, and satisfy its
    /// accounting identities regardless of interleaving.
    #[test]
    fn random_traces_satisfy_invariants(
        ops_a in proptest::collection::vec((0u64..60, 0u8..2, 0u64..24), 1..120),
        ops_b in proptest::collection::vec((0u64..60, 0u8..2, 0u64..24), 1..120),
    ) {
        let to_trace = |v: &Vec<(u64, u8, u64)>| {
            VecTrace::new(
                v.iter()
                    .map(|&(gap, w, line)| {
                        let addr = 0xE000 + line * 64;
                        if w == 1 { Op::write(gap, addr) } else { Op::read(gap, addr) }
                    })
                    .collect(),
            )
        };
        let total = (ops_a.len() + ops_b.len()) as u64;
        let stats = System::new(
            cfg(2),
            vec![to_trace(&ops_a), to_trace(&ops_b)],
            NullExtension,
        )
        .run();
        prop_assert_eq!(stats.ops_executed, total);
        prop_assert_eq!(stats.l1_hits + stats.l1_misses, total);
        prop_assert_eq!(
            stats.cache_to_cache_transfers + stats.memory_transfers,
            stats.txn_read + stats.txn_read_exclusive
        );
        // The bus can't be busy longer than the run.
        prop_assert!(stats.bus_busy_cycles <= stats.total_cycles);
    }

    /// Determinism over random traces.
    #[test]
    fn random_traces_are_deterministic(
        ops in proptest::collection::vec((0u64..40, 0u8..2, 0u64..16), 1..80),
    ) {
        let mk = || {
            let t = VecTrace::new(
                ops.iter()
                    .map(|&(gap, w, line)| {
                        let addr = 0xF000 + line * 64;
                        if w == 1 { Op::write(gap, addr) } else { Op::read(gap, addr) }
                    })
                    .collect(),
            );
            System::new(cfg(2), vec![t.clone(), t], NullExtension).run()
        };
        prop_assert_eq!(mk(), mk());
    }
}
