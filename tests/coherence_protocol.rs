//! Integration + property tests of the MESI snooping protocol under the
//! simulator, including randomized traces (deterministic SplitMix64
//! generation).

use senss_crypto::rng::SplitMix64;
use senss_sim::trace::{Op, VecTrace};
use senss_sim::{NullExtension, System, SystemConfig};

fn cfg(n: usize) -> SystemConfig {
    SystemConfig::e6000(n, 1 << 20)
}

#[test]
fn producer_consumer_chain_across_four_cores() {
    // P0 writes, P1..P3 read in a staggered chain: each read after the
    // write must be a dirty c2c transfer (first reader) or memory/shared
    // fill, and no data is lost.
    let line = 0xA000u64;
    let traces = vec![
        VecTrace::new(vec![Op::write(0, line)]),
        VecTrace::new(vec![Op::read(500, line)]),
        VecTrace::new(vec![Op::read(1000, line)]),
        VecTrace::new(vec![Op::read(1500, line)]),
    ];
    let stats = System::new(cfg(4), traces, NullExtension).run();
    assert_eq!(stats.cache_to_cache_transfers, 1, "only the first read hits dirty data");
    assert_eq!(stats.txn_read, 3);
    assert_eq!(stats.txn_read_exclusive, 1);
}

#[test]
fn migratory_sharing_ping_pong() {
    // A line migrating between two writers: every handoff invalidates and
    // re-fetches dirty data.
    let line = 0xB000u64;
    let a: VecTrace = (0..10).map(|i| Op::write(i * 2000, line)).collect();
    let b: VecTrace = (0..10).map(|i| Op::write(1000 + i * 2000, line)).collect();
    let stats = System::new(cfg(2), vec![a, b], NullExtension).run();
    // After both caches hold it once, every write misses (the other
    // invalidated it) and is supplied c2c from the dirty owner.
    assert!(stats.cache_to_cache_transfers >= 15, "{stats:?}");
}

#[test]
fn read_only_sharing_needs_one_memory_fill_per_cache() {
    let line = 0xC000u64;
    let a: VecTrace = (0..50).map(|i| Op::read(i * 10, line)).collect();
    let b: VecTrace = (0..50).map(|i| Op::read(5 + i * 10, line)).collect();
    let stats = System::new(cfg(2), vec![a, b], NullExtension).run();
    assert_eq!(stats.txn_read, 2, "one fill per cache, then hits");
    assert_eq!(stats.cache_to_cache_transfers, 0);
    assert_eq!(stats.txn_upgrade, 0);
}

#[test]
fn upgrade_then_silent_writes() {
    // After one BusUpgr, subsequent writes by the same core hit locally.
    let line = 0xD000u64;
    let a = VecTrace::new(vec![Op::read(0, line), Op::write(100, line), Op::write(10, line)]);
    let b = VecTrace::new(vec![Op::read(20, line)]);
    let stats = System::new(cfg(2), vec![a, b], NullExtension).run();
    assert_eq!(stats.txn_upgrade, 1, "exactly one upgrade, then M-state hits");
}

/// Draws a random small trace over a tiny shared footprint: tuples of
/// `(inter-access gap, read/write, line index)` like the old proptest
/// strategy, but from a seeded SplitMix64 stream.
fn random_trace(
    rng: &mut SplitMix64,
    max_ops: usize,
    max_gap: u64,
    lines: u64,
    addr_base: u64,
) -> VecTrace {
    let n = 1 + rng.next_below(max_ops as u64 - 1) as usize;
    VecTrace::new(
        (0..n)
            .map(|_| {
                let gap = rng.next_below(max_gap);
                let addr = addr_base + rng.next_below(lines) * 64;
                if rng.next_below(2) == 1 {
                    Op::write(gap, addr)
                } else {
                    Op::read(gap, addr)
                }
            })
            .collect(),
    )
}

/// Random small traces over a tiny shared footprint: the simulator
/// must terminate, execute every reference, and satisfy its
/// accounting identities regardless of interleaving.
#[test]
fn random_traces_satisfy_invariants() {
    let mut rng = SplitMix64::new(0xD1);
    for _ in 0..24 {
        let a = random_trace(&mut rng, 120, 60, 24, 0xE000);
        let b = random_trace(&mut rng, 120, 60, 24, 0xE000);
        let total = (a.remaining() + b.remaining()) as u64;
        let stats = System::new(cfg(2), vec![a, b], NullExtension).run();
        assert_eq!(stats.ops_executed, total);
        assert_eq!(stats.l1_hits + stats.l1_misses, total);
        assert_eq!(
            stats.cache_to_cache_transfers + stats.memory_transfers,
            stats.txn_read + stats.txn_read_exclusive
        );
        // The bus can't be busy longer than the run.
        assert!(stats.bus_busy_cycles <= stats.total_cycles);
    }
}

/// Determinism over random traces.
#[test]
fn random_traces_are_deterministic() {
    let mut rng = SplitMix64::new(0xD2);
    for _ in 0..24 {
        let t = random_trace(&mut rng, 80, 40, 16, 0xF000);
        let mk = || System::new(cfg(2), vec![t.clone(), t.clone()], NullExtension).run();
        assert_eq!(mk(), mk());
    }
}
