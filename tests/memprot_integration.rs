//! Integration: the §6 cache-to-memory protection stack — functional
//! Merkle integrity, pad coherence, and their timing effects on the
//! simulator.

use senss::secure_bus::{SenssConfig, SenssExtension};
use senss_memprot::merkle::HASH_REGION_BASE;
use senss_memprot::{MemProtConfig, MemProtPolicy, MerkleTree, PadProtocol};
use senss_sim::trace::{Op, VecTrace};
use senss_sim::{NullExtension, System, SystemConfig};
use senss_workloads::Workload;

#[test]
fn functional_tree_detects_memory_tampering_end_to_end() {
    // Simulate the attack the integrity tree exists for: the adversary
    // rewrites DRAM between a write-back and the next fetch.
    let mut tree = MerkleTree::new(1 << 20);
    let line = vec![0x5A; 64];
    tree.update(0x1_0000, &line);

    // Honest refetch verifies.
    assert!(tree.verify(0x1_0000, &tree.read(0x1_0000)));

    // Tampered refetch fails.
    let mut tampered = line.clone();
    tampered[7] = 0xFF;
    assert!(!tree.verify(0x1_0000, &tampered));

    // Replay of the pre-update value fails too.
    let newer = vec![0xA5; 64];
    tree.update(0x1_0000, &newer);
    assert!(!tree.verify(0x1_0000, &line));
}

#[test]
fn integrity_chains_touch_the_simulated_bus() {
    // A single cold miss must generate hash fetches up the tree, and the
    // hash lines must live in the disjoint hash region.
    let ext = SenssExtension::new(SenssConfig::paper_default(1))
        .with_memory_protection(MemProtPolicy::new(MemProtConfig::paper_default(1)));
    let mut sys = System::new(
        SystemConfig::e6000(1, 1 << 20),
        vec![VecTrace::new(vec![Op::read(0, 0x4000)])],
        ext,
    );
    let stats = sys.run();
    assert!(stats.txn_hash_fetch > 0);
    assert!(stats.integrity_check_cycles > 0);
    // The policy's geometry agrees about where hash lines live.
    let mp = sys.extension().memory_protection().unwrap();
    for a in mp.geometry().ancestors(0x4000) {
        assert!(a >= HASH_REGION_BASE);
    }
}

#[test]
fn warm_ancestors_stop_the_walk() {
    // Two adjacent lines share their whole ancestor chain: the second
    // fill finds the parent in L2 and fetches nothing new.
    let mk = |ops: Vec<Op>| {
        let ext = SenssExtension::new(SenssConfig::paper_default(1))
            .with_memory_protection(MemProtPolicy::new(MemProtConfig::paper_default(1)));
        System::new(
            SystemConfig::e6000(1, 1 << 20),
            vec![VecTrace::new(ops)],
            ext,
        )
        .run()
    };
    let one = mk(vec![Op::read(0, 0x4000)]);
    let two = mk(vec![Op::read(0, 0x4000), Op::read(0, 0x4040)]);
    assert_eq!(
        one.txn_hash_fetch, two.txn_hash_fetch,
        "sibling line fill must reuse the cached ancestors"
    );
}

#[test]
fn pad_coherence_generates_invalidates_and_requests() {
    // P0 writes a line back (capacity eviction); P1 later fills it from
    // memory: expect one pad invalidate and one pad request.
    let l2_sets = (1 << 20) / (4 * 64);
    let stride = (l2_sets * 64) as u64;
    // P0 dirties 5 lines of one set -> evicts one dirty line.
    let p0: Vec<Op> = (0..5).map(|i| Op::write(10, i * stride)).collect();
    // P1 touches the evicted line (LRU victim = line 0) much later.
    let p1 = vec![Op::read(30_000, 0)];
    let ext = SenssExtension::new(SenssConfig::paper_default(2)).with_memory_protection(
        MemProtPolicy::new(MemProtConfig {
            otp: true,
            integrity: senss_memprot::IntegrityMode::None,
            pad_protocol: PadProtocol::WriteInvalidate,
            data_span: 1 << 32,
            num_processors: 2,
        }),
    );
    let mut sys = System::new(
        SystemConfig::e6000(2, 1 << 20),
        vec![VecTrace::new(p0), VecTrace::new(p1)],
        ext,
    );
    let stats = sys.run();
    assert!(stats.txn_pad_request >= 1, "P1 must fetch the fresh pad");
    let mp = sys.extension().memory_protection().unwrap();
    assert!(mp.pad_directory().requests() >= 1);
}

#[test]
fn write_update_protocol_trades_requests_for_broadcasts() {
    let run = |protocol: PadProtocol| {
        let ext = SenssExtension::new(SenssConfig::paper_default(4)).with_memory_protection(
            MemProtPolicy::new(MemProtConfig {
                otp: true,
                integrity: senss_memprot::IntegrityMode::None,
                pad_protocol: protocol,
                data_span: 1 << 32,
                num_processors: 4,
            }),
        );
        System::new(
            SystemConfig::e6000(4, 1 << 20),
            Workload::Radix.generate(4, 3_000, 5),
            ext,
        )
        .run()
    };
    let inval = run(PadProtocol::WriteInvalidate);
    let update = run(PadProtocol::WriteUpdate);
    assert!(
        update.txn_pad_request <= inval.txn_pad_request,
        "write-update should need no (or fewer) pad requests: {} vs {}",
        update.txn_pad_request,
        inval.txn_pad_request
    );
}

#[test]
fn integrity_off_means_no_hash_traffic() {
    let ext = SenssExtension::new(SenssConfig::paper_default(2)).with_memory_protection(
        MemProtPolicy::new(MemProtConfig {
            otp: true,
            integrity: senss_memprot::IntegrityMode::None,
            pad_protocol: PadProtocol::WriteInvalidate,
            data_span: 1 << 32,
            num_processors: 2,
        }),
    );
    let stats = System::new(
        SystemConfig::e6000(2, 1 << 20),
        Workload::Lu.generate(2, 2_000, 3),
        ext,
    )
    .run();
    assert_eq!(stats.txn_hash_fetch, 0);
    assert_eq!(stats.integrity_check_cycles, 0);
}

#[test]
fn memory_protection_is_the_dominant_cost() {
    // Figure 10's qualitative claim at test scale.
    let w = Workload::Ocean;
    let base = System::new(
        SystemConfig::e6000(2, 1 << 20),
        w.generate(2, 3_000, 9),
        NullExtension,
    )
    .run();
    let integrated = {
        let ext = SenssExtension::new(SenssConfig::paper_default(2))
            .with_memory_protection(MemProtPolicy::new(MemProtConfig::paper_default(2)));
        System::new(
            SystemConfig::e6000(2, 1 << 20),
            w.generate(2, 3_000, 9),
            ext,
        )
        .run()
    };
    assert!(integrated.slowdown_vs(&base) > 1.0);
    assert!(integrated.bus_increase_vs(&base) > 5.0);
}
