//! Integration: the §3.1 confidentiality break, end to end.
//!
//! Reproduces the paper's argument that cache-to-cache traffic cannot
//! reuse the fast-memory-encryption pads: a passive bus observer XORs two
//! ciphertexts of the same (unwritten-back) line and recovers the
//! plaintext difference. The SENSS chained-mask scheme closes the leak.

use senss_attacks::pad_reuse;
use senss_crypto::aes::Aes;
use senss_crypto::otp::PadGenerator;
use senss_crypto::Block;

#[test]
fn naive_reuse_leaks_exactly_d_xor_d_prime() {
    let d = Block::from([0xDE; 16]);
    let d2 = Block::from([0xAD; 16]);
    let r = pad_reuse::run(d, d2);
    assert!(r.naive_scheme_broken());
    assert_eq!(r.naive_leak, d ^ d2);
}

#[test]
fn senss_observation_is_not_the_plaintext_difference() {
    let d = Block::from([0xDE; 16]);
    let d2 = Block::from([0xAD; 16]);
    let r = pad_reuse::run(d, d2);
    assert!(r.senss_resists());
}

#[test]
fn advancing_the_sequence_number_also_closes_the_memory_path() {
    // On the cache-to-memory path the fix is different: the pad's
    // sequence number advances on every write-back.
    let pads = PadGenerator::new(Aes::new_128(&[9; 16]));
    let d = Block::from([0x11; 16]);
    let d2 = Block::from([0x77; 16]);
    let w1 = d ^ pads.pad(0x4000, 1);
    let w2 = d2 ^ pads.pad(0x4000, 2); // seq advanced
    assert_ne!(w1 ^ w2, d ^ d2);
}

#[test]
fn leak_reproduces_for_structured_plaintexts() {
    // Even partially-known plaintexts leak: if the observer knows D (a
    // public constant, say), D' is recovered outright.
    let known = Block::from([0u8; 16]);
    let secret = Block::from_words(0x1234_5678_9abc_def0, 0x0fed_cba9_8765_4321);
    let r = pad_reuse::run(known, secret);
    assert!(r.naive_scheme_broken());
    // Observer computes: leak ^ known == secret.
    assert_eq!(r.naive_leak ^ known, secret);
}
