//! A secure "banking server" end to end: dispatch, groups, encrypted bus.
//!
//! Walks the full SENSS lifecycle the paper describes in §4.1:
//!
//! 1. the machine is manufactured with per-processor RSA key pairs,
//! 2. a bank dispatches its (encrypted) transaction-processing program to
//!    a trusted *group* of 3 of the 4 processors — the 4th handles the
//!    network stack and is deliberately excluded,
//! 3. the group members recover the session key, reserve a GID and
//!    initialize their mask chains,
//! 4. encrypted cache-to-cache traffic flows with chained authentication,
//! 5. the same program is also timed on the cycle-level simulator.
//!
//! ```sh
//! cargo run -p senss-bench --example secure_server
//! ```

use senss::dispatch::{Distributor, ProcessorIdentity};
use senss::prelude::*;
use senss_crypto::Block;
use senss_sim::{NullExtension, System, SystemConfig};
use senss_workloads::Workload;

fn main() {
    // --- 1. the machine ---
    let all_pids: Vec<ProcessorId> = (0..4).map(ProcessorId::new).collect();
    let identities: Vec<ProcessorIdentity> = all_pids
        .iter()
        .map(|&pid| ProcessorIdentity::manufacture(pid, 0xBA2C))
        .collect();
    println!("machine: 4 processors with sealed key pairs");

    // --- 2. dispatch to a trusted subset ---
    let group_members = &identities[..3]; // P3 (network stack) excluded
    let members: Vec<_> = group_members
        .iter()
        .map(|i| (i.pid, i.public_key()))
        .collect();
    let session_key = [0xB4; 16];
    let program = b"balance-transfer-service v1.0 (encrypted image)".to_vec();
    let pkg = Distributor::new(session_key)
        .dispatch(&program, &members, Block::from([0x11; 16]))
        .expect("dispatch");
    println!(
        "dispatch: program ({} bytes) encrypted; session key wrapped for {} members",
        program.len(),
        pkg.wrapped_keys.len()
    );

    // --- 3. group setup ---
    let gid = GroupId::new(7);
    for id in group_members {
        let k = id.recover_session_key(&pkg).expect("member unwraps key");
        assert_eq!(k, session_key);
        let image = id.decrypt_program(&pkg, &k).expect("decrypt image");
        assert_eq!(image, program);
    }
    match identities[3].recover_session_key(&pkg) {
        Err(e) => println!("excluded P3 cannot join: {e}"),
        Ok(_) => unreachable!("non-member must not recover the key"),
    }

    // --- 4. encrypted, authenticated bus traffic ---
    let mut fabric = GroupFabric::new(
        gid,
        group_members.iter().map(|i| i.pid).collect(),
        &session_key,
        Block::from([0xC0; 16]), // encryption IV (fresh per run)
        Block::from([0xA7; 16]), // authentication IV (distinct!)
        2,
        10,
        64,
    );
    for txn in 0..100u8 {
        let sender = ProcessorId::new(txn % 3);
        let account_line: Vec<Block> =
            (0..4u8).map(|i| Block::from([txn.wrapping_add(i); 16])).collect();
        let received = fabric.broadcast(sender, &account_line);
        for (_, data) in received {
            assert_eq!(data, account_line);
        }
    }
    assert!(!fabric.is_halted());
    println!("bus: 100 encrypted transfers, 10 authentication rounds, no alarms");

    // --- 5. performance on the cycle-level simulator ---
    let cfg = SystemConfig::e6000(3, 1 << 20);
    let base = System::new(cfg.clone(), Workload::Lu.generate(3, 8_000, 9), NullExtension).run();
    let sec = System::new(
        cfg,
        Workload::Lu.generate(3, 8_000, 9),
        SenssExtension::new(SenssConfig::paper_default(3)),
    )
    .run();
    println!(
        "performance: lu on the 3-member group — {:+.3}% slowdown, {:+.2}% extra bus traffic",
        sec.slowdown_vs(&base),
        sec.bus_increase_vs(&base)
    );
}
