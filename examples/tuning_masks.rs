//! Tuning guide: how many masks and how often to authenticate?
//!
//! A downstream integrator's view of the paper's Figures 7 and 9: sweep
//! the two SENSS knobs on one bursty workload (`fft`) and print the cost
//! matrix, then apply the paper's own sizing rule
//! (`masks = ceil(AES latency / bus cycle)`).
//!
//! ```sh
//! cargo run -p senss-bench --example tuning_masks
//! ```

use senss::mask::PERFECT_MASKS;
use senss::prelude::*;
use senss_crypto::engine::AesUnit;
use senss_sim::{NullExtension, System, SystemConfig};
use senss_workloads::Workload;

fn main() {
    let cores = 4;
    let ops = 8_000;
    let cfg = SystemConfig::e6000(cores, 4 << 20);
    let base = System::new(
        cfg.clone(),
        Workload::Fft.generate(cores, ops, 7),
        NullExtension,
    )
    .run();

    println!("fft, 4P, 4MB L2 — slowdown % by (masks x auth interval)\n");
    print!("{:<10}", "masks");
    for interval in [100u64, 32, 10, 1] {
        print!("{:>10}", format!("auth {interval}"));
    }
    println!();
    for (label, masks) in [
        ("perfect", PERFECT_MASKS),
        ("8", 8),
        ("4", 4),
        ("2", 2),
        ("1", 1),
    ] {
        print!("{label:<10}");
        for interval in [100u64, 32, 10, 1] {
            let sec_cfg = SenssConfig::paper_default(cores)
                .with_masks(masks)
                .with_auth_interval(interval);
            let sec = System::new(
                cfg.clone(),
                Workload::Fft.generate(cores, ops, 7),
                SenssExtension::new(sec_cfg),
            )
            .run();
            print!("{:>10.3}", sec.slowdown_vs(&base));
        }
        println!();
    }

    let needed = AesUnit::masks_needed(cfg.aes_latency, cfg.bus_cycle);
    println!(
        "\npaper sizing rule: ceil(AES {} / bus cycle {}) = {} masks to never stall",
        cfg.aes_latency, cfg.bus_cycle, needed
    );
    println!("recommendation: 2–4 masks with interval 10 keeps both overheads negligible");
    println!("while authenticating every 10th transfer; interval 1 for maximum security.");
}
