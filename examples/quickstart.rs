//! Quickstart: measure what SENSS costs on a small SMP.
//!
//! Builds the paper's 4-processor, 1 MB-L2 machine, runs the `ocean`
//! workload on an insecure baseline and on SENSS at the highest security
//! level (authentication every cache-to-cache transfer), and prints the
//! headline numbers.
//!
//! ```sh
//! cargo run -p senss-bench --example quickstart
//! ```

use senss::prelude::*;
use senss_sim::{NullExtension, System, SystemConfig};
use senss_workloads::Workload;

fn main() {
    let cores = 4;
    let ops = 10_000;
    let cfg = SystemConfig::e6000(cores, 1 << 20);
    println!("{}", cfg.figure5_table());

    // Insecure baseline.
    let traces = Workload::Ocean.generate(cores, ops, 42);
    let base = System::new(cfg.clone(), traces, NullExtension).run();

    // SENSS at maximum security: authenticate every transfer, 8 masks.
    let security = SenssConfig::paper_default(cores).with_auth_interval(1);
    let traces = Workload::Ocean.generate(cores, ops, 42);
    let mut system = System::new(cfg, traces, SenssExtension::new(security));
    let secured = system.run();

    println!("ocean on 4 processors, {ops} references/core\n");
    println!(
        "  baseline : {:>10} cycles, {:>6} bus transactions ({} c2c)",
        base.total_cycles,
        base.total_transactions(),
        base.cache_to_cache_transfers
    );
    println!(
        "  SENSS    : {:>10} cycles, {:>6} bus transactions ({} auth)",
        secured.total_cycles,
        secured.total_transactions(),
        secured.txn_auth
    );
    println!(
        "\n  slowdown          : {:+.3}%",
        secured.slowdown_vs(&base)
    );
    println!(
        "  bus traffic extra : {:+.2}%",
        secured.bus_increase_vs(&base)
    );
    println!(
        "  mask stalls       : {} cycles over {} secured transfers",
        secured.mask_stall_cycles,
        system.extension().stats().secured_transfers
    );

    let (lines, extra, pct) = SenssExtension::extra_bus_lines();
    println!("\nhardware: +{extra} bus lines over {lines} ({pct:.1}%), SHU tables ≈149 KB");
}
