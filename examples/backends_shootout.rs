//! Backend shootout: the paper's SENSS design vs the three competing
//! security backends from `senss-backends`, head to head on one
//! workload.
//!
//! Each backend is an ordinary [`senss_sim::Extension`], so swapping
//! security architectures is one constructor call — the simulator,
//! workload and statistics are shared. The same comparison at full
//! scale (all workloads × 4/8/16P) is the `figure_backends` binary;
//! this example is the two-minute version.
//!
//! ```sh
//! cargo run -p senss-bench --example backends_shootout
//! ```

use senss::secure_bus::{SenssConfig, SenssExtension};
use senss_backends::{
    ScatteredConfig, ScatteredExtension, SealerConfig, SealerExtension, ServasConfig,
    ServasExtension,
};
use senss_sim::{Extension, NullExtension, Stats, System, SystemConfig};
use senss_workloads::Workload;

fn run(ext: impl Extension, cores: usize, ops: usize) -> Stats {
    System::new(
        SystemConfig::e6000(cores, 1 << 20),
        Workload::Fft.generate(cores, ops, 7),
        ext,
    )
    .run()
}

fn main() {
    let cores = 4;
    let ops = 8_000;
    let base = run(NullExtension, cores, ops);

    println!("fft, {cores}P, 1MB L2, {ops} ops/core — security backends vs insecure baseline\n");
    println!(
        "{:<12}{:>12}{:>12}  what it models",
        "backend", "slowdown %", "traffic %"
    );

    let rows: Vec<(&str, Stats, &str)> = vec![
        (
            "senss",
            run(
                SenssExtension::new(SenssConfig::paper_default(cores)),
                cores,
                ops,
            ),
            "the paper: chained masks + periodic chained-MAC auth",
        ),
        (
            "servas",
            run(
                ServasExtension::new(ServasConfig::paper_default(cores)),
                cores,
                ops,
            ),
            "fused authenticryption: one pass, no auth traffic",
        ),
        (
            "sealer",
            run(
                SealerExtension::new(SealerConfig::paper_default(cores)),
                cores,
                ops,
            ),
            "in-SRAM AES: SENSS datapath, near-zero mask latency",
        ),
        (
            "scattered",
            run(
                ScatteredExtension::new(ScatteredConfig::paper_default(cores)),
                cores,
                ops,
            ),
            "secret sharing: share fetches instead of MAC checks",
        ),
    ];

    for (name, stats, note) in rows {
        println!(
            "{name:<12}{:>12.3}{:>12.2}  {note}",
            stats.slowdown_vs(&base),
            stats.bus_increase_vs(&base),
        );
    }

    println!(
        "\nReading: servas ≈ senss minus auth traffic; sealer ≈ senss minus \
         mask stalls;\nscattered trades crypto stalls for share-fetch traffic. \
         Threat models differ —\nsee docs/security-backends.md before picking \
         a column."
    );
}
