//! Attack forensics: run every adversary from §3 against the secure bus.
//!
//! For each attack the report shows whether SENSS's chained
//! authentication caught it and whether a per-message MAC baseline (Shi
//! et al.-style) would have — reproducing the paper's §4.3 security
//! arguments as executable scenarios. Also demonstrates the §3.1
//! pad-reuse confidentiality break.
//!
//! ```sh
//! cargo run -p senss-bench --example attack_forensics
//! ```

use senss_attacks::{pad_reuse, scenarios};
use senss_crypto::Block;

fn main() {
    println!("=== §3.1 pad-reuse break (why memory pads can't secure the bus) ===\n");
    let d = Block::from([0x13; 16]);
    let d_prime = Block::from([0x37; 16]);
    let r = pad_reuse::run(d, d_prime);
    println!("observer XOR of naive ciphertexts : {}", r.naive_leak);
    println!("true D xor D'                     : {}", r.true_xor);
    println!(
        "naive scheme broken               : {}",
        r.naive_scheme_broken()
    );
    println!(
        "SENSS chained masks resist        : {} (observer sees {})",
        r.senss_resists(),
        r.senss_observation
    );

    println!("\n=== §3.2 / §4.3 bus attacks ===\n");
    println!(
        "{:<26} {:>8} {:>10}   detail",
        "attack", "SENSS", "baseline"
    );
    println!("{}", "-".repeat(100));
    for report in scenarios::all() {
        println!(
            "{:<26} {:>8} {:>10}   {}",
            report.name,
            if report.detected_by_senss {
                "DETECTED"
            } else {
                "missed"
            },
            if report.detected_by_baseline {
                "detected"
            } else {
                "MISSED"
            },
            truncate(&report.detail, 60),
        );
    }
    println!(
        "\nSENSS detects all six; the non-chained baseline misses drops, subset spoofs and replays."
    );
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n).collect();
        format!("{cut}…")
    }
}
