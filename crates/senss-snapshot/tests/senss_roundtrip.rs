//! End-to-end round-trip with the full SENSS stack: secured bus
//! (SHU masks, auth intervals) plus memory protection (sequence-number
//! cache, pad directory). Checkpoints taken mid-run must encode,
//! decode, and restore to a system whose finished `Stats` are
//! bit-identical to the uninterrupted run — including the extension's
//! own state, which rides in the `x <key> <value>` section.

use senss::{SenssConfig, SenssExtension};
use senss_memprot::{MemProtConfig, MemProtPolicy};
use senss_sim::config::SystemConfig;
use senss_sim::system::System;
use senss_sim::trace::{Op, VecTrace};
use senss_snapshot::Snapshot;

fn traces(n: usize) -> Vec<VecTrace> {
    (0..4)
        .map(|pid| {
            VecTrace::new(
                (0..n as u64)
                    .map(|i| {
                        // Overlapping working sets so cache-to-cache
                        // transfers (the secured path) actually happen.
                        let addr = ((i * 7 + pid as u64 * 13) % 96) * 64;
                        if (i + pid as u64).is_multiple_of(3) {
                            Op::write(i % 5, addr)
                        } else {
                            Op::read(i % 4, addr)
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

fn make_ext() -> SenssExtension {
    let cfg = SenssConfig::paper_default(4).with_masks(2).with_auth_interval(20);
    let policy = MemProtPolicy::new(MemProtConfig::paper_default(4));
    SenssExtension::new(cfg).with_memory_protection(policy)
}

#[test]
fn senss_extension_round_trips_through_text_codec() {
    let cfg = SystemConfig::e6000(4, 1 << 20);
    let cold = System::new(cfg.clone(), traces(500), make_ext()).run();
    assert!(cold.txn_auth > 0, "auth path not exercised");
    assert!(cold.txn_pad_request + cold.txn_pad_invalidate > 0, "pad path not exercised");

    for divisor in [5, 3, 2] {
        let cycle = cold.total_cycles / divisor;
        let mut sys = System::new(cfg.clone(), traces(500), make_ext());
        sys.run_until(cycle);
        let snap = Snapshot::capture(&sys, cycle);

        let text = snap.encode();
        let back = Snapshot::decode(&text).expect("snapshot decodes");
        assert_eq!(back, snap);
        assert_eq!(back.encode(), text, "re-encode must be canonical");

        // A fresh (reset-state) extension gets the captured state
        // re-imposed during restore.
        let warm = back.restore(make_ext()).finish();
        assert_eq!(warm, cold, "restored run diverged at cycle {cycle}");

        // The interrupted original must also finish identically.
        assert_eq!(sys.finish(), cold);
    }
}

#[test]
fn extension_state_is_present_in_encoding() {
    let cfg = SystemConfig::e6000(4, 1 << 20);
    let mut sys = System::new(cfg, traces(500), make_ext());
    let total = 40_000;
    sys.run_until(total);
    let text = Snapshot::capture(&sys, total).encode();
    for key in ["shu.secured", "g0.auth", "mp.snc.clock", "mp.pad.bcasts"] {
        assert!(
            text.lines().any(|l| l.starts_with(&format!("x {key} "))),
            "extension key {key} missing from encoding"
        );
    }
}
