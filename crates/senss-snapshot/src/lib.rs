//! Deterministic checkpoint/restore of simulator state.
//!
//! A [`Snapshot`] is a [`senss_sim::state::SystemState`] captured at a
//! cycle boundary plus the cycle it was taken at, with a versioned
//! text codec: line-oriented, whitespace-separated, integers only (the
//! simulator holds no floats). The format is strict both ways —
//! [`Snapshot::encode`] emits a canonical byte string (equal states
//! encode identically), and [`Snapshot::decode`] rejects anything it
//! did not write: unknown tags, wrong field counts, non-digit tokens,
//! truncation, or a version it does not speak, each with a line number.
//!
//! Three workflows build on this:
//!
//! * **round-trip replay** — capture mid-run, restore later (or
//!   elsewhere), [`senss_sim::system::System::finish`], and get
//!   bit-identical [`senss_sim::Stats`] and trace events versus the
//!   uninterrupted run;
//! * **warm-start forking** — sweep points that differ only in
//!   operations-per-core share their simulated prefix: fork one
//!   checkpoint via [`Snapshot::replace_traces`] instead of
//!   re-simulating it (the harness does this automatically);
//! * **retry/trace from checkpoint** — `senss-serve` re-runs traces
//!   and retries failed jobs from the nearest retained checkpoint
//!   rather than cycle 0.
//!
//! See `docs/snapshot.md` for the format specification and the
//! versioning policy.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;

use senss_sim::bus::{BusRequest, Supplier, Transaction, TxnKind};
use senss_sim::config::{CoherenceProtocol, SchedulerKind, SystemConfig};
use senss_sim::extension::Extension;
use senss_sim::state::{
    ArbiterSnap, CacheSnap, ChainSnap, CoreSnap, CoreStateSnap, EventKindSnap, EventSnap,
    ForkError, LineSnap, PurposeSnap, StepSnap, SystemState, TxnSlotSnap,
};
use senss_sim::system::System;
use senss_sim::trace::{AccessKind, Op, VecTrace};
use senss_sim::Stats;
use senss_trace::{NullSink, TraceSink};

/// Version of the snapshot text format. Bump on ANY change to the
/// encoding — field order, a new line tag, a widened enum — so stale
/// snapshots are rejected at decode and stale cached results keyed on
/// the format (the harness folds this into its cache keys) are never
/// served.
pub const FORMAT_VERSION: u32 = 1;

/// The header magic on the first line of every snapshot.
const MAGIC: &str = "senss-snapshot";

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The first line is not `senss-snapshot <version>`.
    BadHeader(String),
    /// The header names a format version this build does not speak.
    UnsupportedVersion(u64),
    /// A line failed to parse.
    Line {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The input ended before the `end` marker.
    Truncated,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadHeader(h) => write!(f, "bad snapshot header: {h:?}"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "snapshot format v{v} not supported (this build speaks v{FORMAT_VERSION})")
            }
            SnapshotError::Line { line, message } => write!(f, "snapshot line {line}: {message}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated before `end` marker"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A captured simulator state plus the cycle it was captured at.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    cycle: u64,
    state: SystemState,
}

impl Snapshot {
    /// Captures the full state of `sys` at the current cycle boundary
    /// (`cycle` is recorded as metadata — pass the bound handed to
    /// [`System::run_until`]).
    pub fn capture<E: Extension, S: TraceSink>(sys: &System<E, S>, cycle: u64) -> Snapshot {
        Snapshot {
            cycle,
            state: sys.capture_state(),
        }
    }

    /// Wraps an already-captured state (e.g. from
    /// [`System::take_checkpoints`]).
    pub fn from_state(cycle: u64, state: SystemState) -> Snapshot {
        Snapshot { cycle, state }
    }

    /// The cycle boundary this snapshot was captured at.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The captured state.
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// Restores an untraced [`System`] that continues exactly where the
    /// captured run left off. `ext` must be configured identically to
    /// the captured run's extension; its mutable state is re-imposed.
    pub fn restore<E: Extension>(&self, ext: E) -> System<E> {
        System::from_state(&self.state, ext, NullSink)
    }

    /// [`Snapshot::restore`] with a live trace sink for the
    /// continuation's events.
    pub fn restore_with_sink<E: Extension, S: TraceSink>(&self, ext: E, sink: S) -> System<E, S> {
        System::from_state(&self.state, ext, sink)
    }

    /// Swaps in longer traces for a warm-start fork; see
    /// [`SystemState::replace_traces`].
    pub fn replace_traces(&mut self, traces: Vec<VecTrace>) -> Result<(), ForkError> {
        self.state.replace_traces(traces)
    }

    /// Encodes the snapshot into the versioned text format. Canonical:
    /// equal snapshots encode to identical bytes.
    pub fn encode(&self) -> String {
        let mut w = String::with_capacity(4096);
        let st = &self.state;
        wln(&mut w, format_args!("{MAGIC} {FORMAT_VERSION}"));
        encode_cfg(&mut w, &st.cfg);
        wln(
            &mut w,
            format_args!(
                "meta {} {} {} {} {}",
                self.cycle,
                st.seq,
                st.bus_next_free,
                st.grant_scheduled as u64,
                st.events_processed
            ),
        );
        encode_stats(&mut w, &st.stats);
        w.push_str("events ");
        push_u64(&mut w, st.events.len() as u64);
        for e in &st.events {
            let (kind, arg) = match e.ev {
                EventKindSnap::CoreStep(pid) => (0, pid as u64),
                EventKindSnap::BusGrant => (1, 0),
                EventKindSnap::TxnDone(token) => (2, token),
            };
            for v in [e.time, e.seq, kind, arg] {
                w.push(' ');
                push_u64(&mut w, v);
            }
        }
        w.push('\n');
        for (pid, c) in st.cores.iter().enumerate() {
            let (pf, pgap, pkind, paddr) = match c.pending {
                Some(op) => (1, op.gap, kind_to_u64(op.kind), op.addr),
                None => (0, 0, 0, 0),
            };
            let (ff, fat) = match c.finished_at {
                Some(t) => (1, t),
                None => (0, 0),
            };
            wln(
                &mut w,
                format_args!(
                    "core {pid} {} {} {} {ff} {fat} {pf} {pgap} {pkind} {paddr}",
                    c.pos,
                    c.ops_done,
                    core_state_to_u64(c.state),
                ),
            );
            w.push_str("ops ");
            push_u64(&mut w, c.ops.len() as u64);
            for op in &c.ops {
                for v in [op.gap, kind_to_u64(op.kind), op.addr] {
                    w.push(' ');
                    push_u64(&mut w, v);
                }
            }
            w.push('\n');
        }
        for (level, caches) in [("l1", &st.l1), ("l2", &st.l2)] {
            for (idx, c) in caches.iter().enumerate() {
                wln(
                    &mut w,
                    format_args!("cache {level} {idx} {} {}", c.use_clock, c.sets.len()),
                );
                for set in &c.sets {
                    w.push_str("set ");
                    push_u64(&mut w, set.len() as u64);
                    for l in set {
                        for v in [l.tag, l.meta, l.last_use, l.valid as u64] {
                            w.push(' ');
                            push_u64(&mut w, v);
                        }
                    }
                    w.push('\n');
                }
            }
        }
        wln(&mut w, format_args!("arb {}", st.arbiter.last_granted));
        for (pid, q) in st.arbiter.queues.iter().enumerate() {
            w.push_str("q ");
            push_u64(&mut w, pid as u64);
            w.push(' ');
            push_u64(&mut w, q.len() as u64);
            for r in q {
                encode_request(&mut w, r);
            }
            w.push('\n');
        }
        w.push_str("inj ");
        push_u64(&mut w, st.arbiter.injected.len() as u64);
        for r in &st.arbiter.injected {
            encode_request(&mut w, r);
        }
        w.push('\n');
        let live = st.slots.iter().filter(|s| s.is_some()).count();
        wln(&mut w, format_args!("slots {} {live}", st.slots.len()));
        for (idx, slot) in st.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            w.push_str("slot ");
            push_u64(&mut w, idx as u64);
            let (p, a, b, c, d) = match slot.purpose {
                PurposeSnap::CoreFill {
                    pid,
                    addr,
                    supplier,
                } => {
                    let (sk, sa) = supplier_to_u64(supplier);
                    (0, pid as u64, addr, sk, sa)
                }
                PurposeSnap::CoreUpgrade { pid } => (1, pid as u64, 0, 0, 0),
                PurposeSnap::CoreWriteUpdate { pid } => (2, pid as u64, 0, 0, 0),
                PurposeSnap::ChainStep { chain_id } => (3, chain_id, 0, 0, 0),
                PurposeSnap::FireAndForget => (4, 0, 0, 0, 0),
            };
            for v in [p, a, b, c, d] {
                w.push(' ');
                push_u64(&mut w, v);
            }
            match &slot.txn {
                None => w.push_str(" 0"),
                Some(t) => {
                    w.push_str(" 1");
                    encode_request(&mut w, &t.request);
                    let (sk, sa) = supplier_to_u64(t.supplier);
                    for v in [sk, sa, t.granted_at] {
                        w.push(' ');
                        push_u64(&mut w, v);
                    }
                }
            }
            w.push('\n');
        }
        encode_u64_list(&mut w, "free_tokens", &st.free_tokens);
        w.push_str("inflight ");
        push_u64(&mut w, st.inflight_lines.len() as u64);
        for &(addr, done) in &st.inflight_lines {
            for v in [addr, done] {
                w.push(' ');
                push_u64(&mut w, v);
            }
        }
        w.push('\n');
        let live = st.chains.iter().filter(|c| c.is_some()).count();
        wln(&mut w, format_args!("chains {} {live}", st.chains.len()));
        for (idx, chain) in st.chains.iter().enumerate() {
            let Some(chain) = chain else { continue };
            wln(
                &mut w,
                format_args!(
                    "chain {idx} {} {} {}",
                    chain.pid,
                    chain.blocking as u64,
                    chain.steps.len()
                ),
            );
            w.push_str("steps");
            for s in &chain.steps {
                let (k, a) = match *s {
                    StepSnap::PadRequest(a) => (0, a),
                    StepSnap::HashCheck(a) => (1, a),
                    StepSnap::MarkHashDirty(a) => (2, a),
                };
                for v in [k, a] {
                    w.push(' ');
                    push_u64(&mut w, v);
                }
            }
            w.push('\n');
        }
        encode_u64_list(&mut w, "free_chains", &st.free_chains);
        wln(&mut w, format_args!("ext {}", st.ext.len()));
        for (k, v) in &st.ext {
            debug_assert!(
                !k.is_empty() && !k.contains(char::is_whitespace),
                "extension snapshot keys must be non-empty and whitespace-free: {k:?}"
            );
            wln(&mut w, format_args!("x {k} {v}"));
        }
        w.push_str("end\n");
        w
    }

    /// Decodes a snapshot from the text format, rejecting anything
    /// malformed with a line-numbered [`SnapshotError`].
    pub fn decode(text: &str) -> Result<Snapshot, SnapshotError> {
        let mut p = Parser::new(text);
        {
            let mut f = p.line()?;
            let magic = f.word()?;
            if magic != MAGIC {
                return Err(SnapshotError::BadHeader(magic.to_string()));
            }
            let version = f.u64()?;
            if version != FORMAT_VERSION as u64 {
                return Err(SnapshotError::UnsupportedVersion(version));
            }
            f.done()?;
        }
        let cfg = decode_cfg(&mut p)?;
        let (cycle, seq, bus_next_free, grant_scheduled, events_processed) = {
            let mut f = p.tagged("meta")?;
            let v = (f.u64()?, f.u64()?, f.u64()?, f.bool()?, f.u64()?);
            f.done()?;
            v
        };
        let stats = decode_stats(&mut p)?;
        let events = {
            let mut f = p.tagged("events")?;
            let n = f.usize()?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let (time, seq, kind, arg) = (f.u64()?, f.u64()?, f.u64()?, f.u64()?);
                let ev = match kind {
                    0 => EventKindSnap::CoreStep(f.cast_usize(arg)?),
                    1 => EventKindSnap::BusGrant,
                    2 => EventKindSnap::TxnDone(arg),
                    k => return Err(f.err(format!("unknown event kind {k}"))),
                };
                events.push(EventSnap { time, seq, ev });
            }
            f.done()?;
            events
        };
        let mut cores = Vec::with_capacity(cfg.num_processors);
        for pid in 0..cfg.num_processors {
            let mut f = p.tagged("core")?;
            let got = f.usize()?;
            if got != pid {
                return Err(f.err(format!("expected core {pid}, found {got}")));
            }
            let pos = f.usize()?;
            let ops_done = f.u64()?;
            let state = match f.u64()? {
                0 => CoreStateSnap::Ready,
                1 => CoreStateSnap::WaitingBus,
                2 => CoreStateSnap::Finished,
                s => return Err(f.err(format!("unknown core state {s}"))),
            };
            let finished = f.bool()?;
            let fat = f.u64()?;
            let has_pending = f.bool()?;
            let (pgap, pkind, paddr) = (f.u64()?, f.u64()?, f.u64()?);
            let pending = if has_pending {
                Some(Op {
                    gap: pgap,
                    kind: kind_from_u64(pkind).map_err(|m| f.err(m))?,
                    addr: paddr,
                })
            } else {
                None
            };
            f.done()?;
            let mut f = p.tagged("ops")?;
            let n = f.usize()?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                let (gap, kind, addr) = (f.u64()?, f.u64()?, f.u64()?);
                ops.push(Op {
                    gap,
                    kind: kind_from_u64(kind).map_err(|m| f.err(m))?,
                    addr,
                });
            }
            f.done()?;
            cores.push(CoreSnap {
                ops,
                pos,
                pending,
                state,
                ops_done,
                finished_at: if finished { Some(fat) } else { None },
            });
        }
        let mut caches = |level: &str| -> Result<Vec<CacheSnap>, SnapshotError> {
            let mut out = Vec::with_capacity(cfg.num_processors);
            for idx in 0..cfg.num_processors {
                let mut f = p.tagged("cache")?;
                let got_level = f.word()?;
                if got_level != level {
                    return Err(f.err(format!("expected cache {level}, found {got_level}")));
                }
                let got = f.usize()?;
                if got != idx {
                    return Err(f.err(format!("expected cache {level} {idx}, found {got}")));
                }
                let use_clock = f.u64()?;
                let nsets = f.usize()?;
                f.done()?;
                let mut sets = Vec::with_capacity(nsets);
                for _ in 0..nsets {
                    let mut f = p.tagged("set")?;
                    let n = f.usize()?;
                    let mut set = Vec::with_capacity(n);
                    for _ in 0..n {
                        set.push(LineSnap {
                            tag: f.u64()?,
                            meta: f.u64()?,
                            last_use: f.u64()?,
                            valid: f.bool()?,
                        });
                    }
                    f.done()?;
                    sets.push(set);
                }
                out.push(CacheSnap { use_clock, sets });
            }
            Ok(out)
        };
        let l1 = caches("l1")?;
        let l2 = caches("l2")?;
        let last_granted = {
            let mut f = p.tagged("arb")?;
            let v = f.usize()?;
            f.done()?;
            v
        };
        let mut queues = Vec::with_capacity(cfg.num_processors);
        for pid in 0..cfg.num_processors {
            let mut f = p.tagged("q")?;
            let got = f.usize()?;
            if got != pid {
                return Err(f.err(format!("expected queue {pid}, found {got}")));
            }
            let n = f.usize()?;
            let mut q = Vec::with_capacity(n);
            for _ in 0..n {
                q.push(decode_request(&mut f)?);
            }
            f.done()?;
            queues.push(q);
        }
        let injected = {
            let mut f = p.tagged("inj")?;
            let n = f.usize()?;
            let mut inj = Vec::with_capacity(n);
            for _ in 0..n {
                inj.push(decode_request(&mut f)?);
            }
            f.done()?;
            inj
        };
        let (slots_len, slots_live) = {
            let mut f = p.tagged("slots")?;
            let v = (f.usize()?, f.usize()?);
            f.done()?;
            v
        };
        let mut slots: Vec<Option<TxnSlotSnap>> = vec![None; slots_len];
        for _ in 0..slots_live {
            let mut f = p.tagged("slot")?;
            let idx = f.usize()?;
            if idx >= slots_len {
                return Err(f.err(format!("slot index {idx} out of range {slots_len}")));
            }
            let (pkind, a, b, c, d) = (f.u64()?, f.u64()?, f.u64()?, f.u64()?, f.u64()?);
            let purpose = match pkind {
                0 => PurposeSnap::CoreFill {
                    pid: f.cast_usize(a)?,
                    addr: b,
                    supplier: supplier_from_u64(c, d).map_err(|m| f.err(m))?,
                },
                1 => PurposeSnap::CoreUpgrade {
                    pid: f.cast_usize(a)?,
                },
                2 => PurposeSnap::CoreWriteUpdate {
                    pid: f.cast_usize(a)?,
                },
                3 => PurposeSnap::ChainStep { chain_id: a },
                4 => PurposeSnap::FireAndForget,
                k => return Err(f.err(format!("unknown purpose kind {k}"))),
            };
            let txn = if f.bool()? {
                let request = decode_request(&mut f)?;
                let (sk, sa, granted_at) = (f.u64()?, f.u64()?, f.u64()?);
                Some(Transaction {
                    request,
                    supplier: supplier_from_u64(sk, sa).map_err(|m| f.err(m))?,
                    granted_at,
                })
            } else {
                None
            };
            f.done()?;
            if slots[idx].is_some() {
                return Err(p.err_last(format!("duplicate slot {idx}")));
            }
            slots[idx] = Some(TxnSlotSnap { purpose, txn });
        }
        let free_tokens = decode_u64_list(&mut p, "free_tokens")?;
        let inflight_lines = {
            let mut f = p.tagged("inflight")?;
            let n = f.usize()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push((f.u64()?, f.u64()?));
            }
            f.done()?;
            v
        };
        let (chains_len, chains_live) = {
            let mut f = p.tagged("chains")?;
            let v = (f.usize()?, f.usize()?);
            f.done()?;
            v
        };
        let mut chains: Vec<Option<ChainSnap>> = vec![None; chains_len];
        for _ in 0..chains_live {
            let mut f = p.tagged("chain")?;
            let idx = f.usize()?;
            if idx >= chains_len {
                return Err(f.err(format!("chain index {idx} out of range {chains_len}")));
            }
            let pid = f.usize()?;
            let blocking = f.bool()?;
            let nsteps = f.usize()?;
            f.done()?;
            let mut f = p.tagged("steps")?;
            let mut steps = Vec::with_capacity(nsteps);
            for _ in 0..nsteps {
                let (k, a) = (f.u64()?, f.u64()?);
                steps.push(match k {
                    0 => StepSnap::PadRequest(a),
                    1 => StepSnap::HashCheck(a),
                    2 => StepSnap::MarkHashDirty(a),
                    k => return Err(f.err(format!("unknown step kind {k}"))),
                });
            }
            f.done()?;
            if chains[idx].is_some() {
                return Err(p.err_last(format!("duplicate chain {idx}")));
            }
            chains[idx] = Some(ChainSnap {
                pid,
                blocking,
                steps,
            });
        }
        let free_chains = decode_u64_list(&mut p, "free_chains")?;
        let n_ext = {
            let mut f = p.tagged("ext")?;
            let n = f.usize()?;
            f.done()?;
            n
        };
        let mut ext = Vec::with_capacity(n_ext);
        for _ in 0..n_ext {
            let mut f = p.tagged("x")?;
            let key = f.word()?.to_string();
            let value = f.u64()?;
            f.done()?;
            ext.push((key, value));
        }
        {
            let mut f = p.tagged("end")?;
            f.done()?;
        }
        if let Some(extra) = p.next_nonempty() {
            return Err(SnapshotError::Line {
                line: extra,
                message: "trailing data after `end`".into(),
            });
        }
        Ok(Snapshot {
            cycle,
            state: SystemState {
                cfg,
                cores,
                l1,
                l2,
                arbiter: ArbiterSnap {
                    queues,
                    injected,
                    last_granted,
                },
                events,
                seq,
                bus_next_free,
                grant_scheduled,
                events_processed,
                slots,
                free_tokens,
                inflight_lines,
                chains,
                free_chains,
                stats,
                ext,
            },
        })
    }
}

// ---------------------------------------------------------------------
// Encoding helpers
// ---------------------------------------------------------------------

fn wln(w: &mut String, args: std::fmt::Arguments<'_>) {
    w.write_fmt(args).expect("String write is infallible");
    w.push('\n');
}

fn push_u64(w: &mut String, v: u64) {
    write!(w, "{v}").expect("String write is infallible");
}

fn encode_u64_list(w: &mut String, tag: &str, list: &[u64]) {
    w.push_str(tag);
    w.push(' ');
    push_u64(w, list.len() as u64);
    for &v in list {
        w.push(' ');
        push_u64(w, v);
    }
    w.push('\n');
}

fn encode_request(w: &mut String, r: &BusRequest) {
    for v in [
        r.pid as u64,
        txn_kind_to_u64(r.kind),
        r.addr,
        r.blocking as u64,
        r.token,
    ] {
        w.push(' ');
        push_u64(w, v);
    }
}

/// Exhaustive destructuring: adding a `SystemConfig` field without
/// teaching the codec about it fails to compile here.
fn encode_cfg(w: &mut String, cfg: &SystemConfig) {
    let SystemConfig {
        num_processors,
        l1_size,
        l1_ways,
        l1_line,
        l1_hit_latency,
        l2_size,
        l2_ways,
        l2_line,
        l2_hit_latency,
        cache_to_cache_latency,
        cache_to_memory_latency,
        bus_cycle,
        bus_width,
        aes_latency,
        hash_latency,
        coherence,
        // Deliberately not encoded: the scheduler is a simulator-
        // performance knob that cannot affect simulated behaviour (every
        // implementation pops events in identical order), so recording it
        // would only pin a restore to the capturing machine's choice.
        scheduler: _,
    } = cfg;
    let coh = match coherence {
        CoherenceProtocol::WriteInvalidate => 0,
        CoherenceProtocol::WriteUpdate => 1,
    };
    wln(
        w,
        format_args!(
            "cfg {num_processors} {l1_size} {l1_ways} {l1_line} {l1_hit_latency} \
             {l2_size} {l2_ways} {l2_line} {l2_hit_latency} {cache_to_cache_latency} \
             {cache_to_memory_latency} {bus_cycle} {bus_width} {aes_latency} \
             {hash_latency} {coh}"
        ),
    );
}

fn decode_cfg(p: &mut Parser<'_>) -> Result<SystemConfig, SnapshotError> {
    let mut f = p.tagged("cfg")?;
    let cfg = SystemConfig {
        num_processors: f.usize()?,
        l1_size: f.usize()?,
        l1_ways: f.usize()?,
        l1_line: f.usize()?,
        l1_hit_latency: f.u64()?,
        l2_size: f.usize()?,
        l2_ways: f.usize()?,
        l2_line: f.usize()?,
        l2_hit_latency: f.u64()?,
        cache_to_cache_latency: f.u64()?,
        cache_to_memory_latency: f.u64()?,
        bus_cycle: f.u64()?,
        bus_width: f.usize()?,
        aes_latency: f.u64()?,
        hash_latency: f.u64()?,
        coherence: match f.u64()? {
            0 => CoherenceProtocol::WriteInvalidate,
            1 => CoherenceProtocol::WriteUpdate,
            c => return Err(f.err(format!("unknown coherence protocol {c}"))),
        },
        // Not in the wire format (see `encode_cfg`): restores run under
        // the default scheduler.
        scheduler: SchedulerKind::default(),
    };
    f.done()?;
    Ok(cfg)
}

/// Exhaustive destructuring: a new `Stats` field breaks the build here
/// until the codec carries it.
fn encode_stats(w: &mut String, stats: &Stats) {
    let Stats {
        total_cycles,
        ops_executed,
        l1_hits,
        l1_misses,
        l2_hits,
        l2_misses,
        upgrades,
        txn_read,
        txn_read_exclusive,
        txn_upgrade,
        txn_update,
        txn_writeback,
        txn_hash_fetch,
        txn_hash_writeback,
        txn_auth,
        txn_pad_invalidate,
        txn_pad_request,
        cache_to_cache_transfers,
        memory_transfers,
        bus_busy_cycles,
        bus_bytes,
        mask_stall_cycles,
        integrity_check_cycles,
        mask_stalled_transfers,
        core_finish_times,
        core_ops,
    } = stats;
    wln(
        w,
        format_args!(
            "stats {total_cycles} {ops_executed} {l1_hits} {l1_misses} {l2_hits} \
             {l2_misses} {upgrades} {txn_read} {txn_read_exclusive} {txn_upgrade} \
             {txn_update} {txn_writeback} {txn_hash_fetch} {txn_hash_writeback} \
             {txn_auth} {txn_pad_invalidate} {txn_pad_request} \
             {cache_to_cache_transfers} {memory_transfers} {bus_busy_cycles} \
             {bus_bytes} {mask_stall_cycles} {integrity_check_cycles} \
             {mask_stalled_transfers}"
        ),
    );
    encode_u64_list(w, "finish_times", core_finish_times);
    encode_u64_list(w, "core_ops", core_ops);
}

fn decode_stats(p: &mut Parser<'_>) -> Result<Stats, SnapshotError> {
    let mut f = p.tagged("stats")?;
    let mut stats = Stats {
        total_cycles: f.u64()?,
        ops_executed: f.u64()?,
        l1_hits: f.u64()?,
        l1_misses: f.u64()?,
        l2_hits: f.u64()?,
        l2_misses: f.u64()?,
        upgrades: f.u64()?,
        txn_read: f.u64()?,
        txn_read_exclusive: f.u64()?,
        txn_upgrade: f.u64()?,
        txn_update: f.u64()?,
        txn_writeback: f.u64()?,
        txn_hash_fetch: f.u64()?,
        txn_hash_writeback: f.u64()?,
        txn_auth: f.u64()?,
        txn_pad_invalidate: f.u64()?,
        txn_pad_request: f.u64()?,
        cache_to_cache_transfers: f.u64()?,
        memory_transfers: f.u64()?,
        bus_busy_cycles: f.u64()?,
        bus_bytes: f.u64()?,
        mask_stall_cycles: f.u64()?,
        integrity_check_cycles: f.u64()?,
        mask_stalled_transfers: f.u64()?,
        core_finish_times: Vec::new(),
        core_ops: Vec::new(),
    };
    f.done()?;
    stats.core_finish_times = decode_u64_list(p, "finish_times")?;
    stats.core_ops = decode_u64_list(p, "core_ops")?;
    Ok(stats)
}

fn decode_u64_list(p: &mut Parser<'_>, tag: &str) -> Result<Vec<u64>, SnapshotError> {
    let mut f = p.tagged(tag)?;
    let n = f.usize()?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(f.u64()?);
    }
    f.done()?;
    Ok(v)
}

fn decode_request(f: &mut Fields<'_, '_>) -> Result<BusRequest, SnapshotError> {
    Ok(BusRequest {
        pid: f.usize()?,
        kind: {
            let k = f.u64()?;
            txn_kind_from_u64(k).map_err(|m| f.err(m))?
        },
        addr: f.u64()?,
        blocking: f.bool()?,
        token: f.u64()?,
    })
}

// ---------------------------------------------------------------------
// Enum numberings — part of the format, never renumber.
// ---------------------------------------------------------------------

fn kind_to_u64(k: AccessKind) -> u64 {
    match k {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    }
}

fn kind_from_u64(v: u64) -> Result<AccessKind, String> {
    match v {
        0 => Ok(AccessKind::Read),
        1 => Ok(AccessKind::Write),
        _ => Err(format!("unknown access kind {v}")),
    }
}

fn core_state_to_u64(s: CoreStateSnap) -> u64 {
    match s {
        CoreStateSnap::Ready => 0,
        CoreStateSnap::WaitingBus => 1,
        CoreStateSnap::Finished => 2,
    }
}

fn txn_kind_to_u64(k: TxnKind) -> u64 {
    match k {
        TxnKind::Read => 0,
        TxnKind::ReadExclusive => 1,
        TxnKind::Upgrade => 2,
        TxnKind::Update => 3,
        TxnKind::Writeback => 4,
        TxnKind::HashFetch => 5,
        TxnKind::HashWriteback => 6,
        TxnKind::Auth => 7,
        TxnKind::PadInvalidate => 8,
        TxnKind::PadRequest => 9,
    }
}

fn txn_kind_from_u64(v: u64) -> Result<TxnKind, String> {
    Ok(match v {
        0 => TxnKind::Read,
        1 => TxnKind::ReadExclusive,
        2 => TxnKind::Upgrade,
        3 => TxnKind::Update,
        4 => TxnKind::Writeback,
        5 => TxnKind::HashFetch,
        6 => TxnKind::HashWriteback,
        7 => TxnKind::Auth,
        8 => TxnKind::PadInvalidate,
        9 => TxnKind::PadRequest,
        _ => return Err(format!("unknown transaction kind {v}")),
    })
}

fn supplier_to_u64(s: Supplier) -> (u64, u64) {
    match s {
        Supplier::None => (0, 0),
        Supplier::Memory => (1, 0),
        Supplier::Cache(pid) => (2, pid as u64),
    }
}

fn supplier_from_u64(kind: u64, arg: u64) -> Result<Supplier, String> {
    Ok(match kind {
        0 => Supplier::None,
        1 => Supplier::Memory,
        2 => Supplier::Cache(arg as usize),
        _ => return Err(format!("unknown supplier kind {kind}")),
    })
}

// ---------------------------------------------------------------------
// Strict line parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    lines: std::str::Lines<'a>,
    lineno: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            lines: text.lines(),
            lineno: 0,
        }
    }

    fn line<'p>(&'p mut self) -> Result<Fields<'a, 'p>, SnapshotError> {
        let line = self.lines.next().ok_or(SnapshotError::Truncated)?;
        self.lineno += 1;
        Ok(Fields {
            line: self.lineno,
            toks: line.split_whitespace(),
            _parser: std::marker::PhantomData,
        })
    }

    /// The next line, whose first token must equal `tag`.
    fn tagged<'p>(&'p mut self, tag: &str) -> Result<Fields<'a, 'p>, SnapshotError> {
        let mut f = self.line()?;
        let got = f.word()?;
        if got != tag {
            let line = f.line;
            return Err(SnapshotError::Line {
                line,
                message: format!("expected `{tag}`, found `{got}`"),
            });
        }
        Ok(f)
    }

    fn err_last(&self, message: String) -> SnapshotError {
        SnapshotError::Line {
            line: self.lineno,
            message,
        }
    }

    /// The 1-based line number of the next non-empty line, if any.
    fn next_nonempty(&mut self) -> Option<usize> {
        for line in self.lines.by_ref() {
            self.lineno += 1;
            if !line.trim().is_empty() {
                return Some(self.lineno);
            }
        }
        None
    }
}

struct Fields<'a, 'p> {
    line: usize,
    toks: std::str::SplitWhitespace<'a>,
    _parser: std::marker::PhantomData<&'p ()>,
}

impl<'a> Fields<'a, '_> {
    fn err(&self, message: String) -> SnapshotError {
        SnapshotError::Line {
            line: self.line,
            message,
        }
    }

    fn word(&mut self) -> Result<&'a str, SnapshotError> {
        self.toks
            .next()
            .ok_or_else(|| self.err("missing field".into()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let tok = self.word()?;
        // Stricter than `u64::from_str` (which accepts a leading `+`):
        // canonical encodings are bare ASCII digits only.
        if tok.is_empty() || !tok.bytes().all(|b| b.is_ascii_digit()) {
            return Err(self.err(format!("not an unsigned integer: {tok:?}")));
        }
        tok.parse::<u64>()
            .map_err(|e| self.err(format!("bad integer {tok:?}: {e}")))
    }

    fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        self.cast_usize(v)
    }

    fn cast_usize(&self, v: u64) -> Result<usize, SnapshotError> {
        usize::try_from(v).map_err(|_| self.err(format!("{v} exceeds usize")))
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(self.err(format!("expected 0/1 flag, found {v}"))),
        }
    }

    /// Ensures the line has no trailing tokens.
    fn done(&mut self) -> Result<(), SnapshotError> {
        match self.toks.next() {
            None => Ok(()),
            Some(extra) => Err(self.err(format!("trailing field {extra:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senss_sim::extension::NullExtension;
    use senss_sim::trace::Op;

    fn traces() -> Vec<VecTrace> {
        let a = VecTrace::new(
            (0..400)
                .map(|i| {
                    if i % 3 == 0 {
                        Op::write(i % 7, (i % 40) * 64)
                    } else {
                        Op::read(i % 5, (i % 23) * 64)
                    }
                })
                .collect(),
        );
        let b = VecTrace::new(
            (0..400)
                .map(|i| {
                    if i % 4 == 0 {
                        Op::write(i % 6, (i % 23) * 64)
                    } else {
                        Op::read(i % 3, (i % 40) * 64)
                    }
                })
                .collect(),
        );
        vec![a, b]
    }

    fn mid_run_snapshot(cycle: u64) -> Snapshot {
        let cfg = SystemConfig::e6000(2, 1 << 20);
        let mut sys = System::new(cfg, traces(), NullExtension);
        sys.run_until(cycle);
        Snapshot::capture(&sys, cycle)
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let snap = mid_run_snapshot(2_000);
        let text = snap.encode();
        let back = Snapshot::decode(&text).expect("decodes");
        assert_eq!(back, snap);
        // Canonical: re-encoding is byte-identical.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn decoded_snapshot_finishes_identically() {
        let cfg = SystemConfig::e6000(2, 1 << 20);
        let cold = System::new(cfg, traces(), NullExtension).run();
        let snap = mid_run_snapshot(cold.total_cycles / 2);
        let text = snap.encode();
        let back = Snapshot::decode(&text).unwrap();
        let warm = back.restore(NullExtension).finish();
        assert_eq!(warm, cold);
    }

    #[test]
    fn header_and_version_are_enforced() {
        assert!(matches!(
            Snapshot::decode("nonsense 1\n"),
            Err(SnapshotError::BadHeader(_))
        ));
        assert!(matches!(
            Snapshot::decode(&format!("{MAGIC} 999\n")),
            Err(SnapshotError::UnsupportedVersion(999))
        ));
        assert!(matches!(
            Snapshot::decode(""),
            Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn truncation_is_rejected() {
        let text = mid_run_snapshot(2_000).encode();
        // Chop off the `end` marker and a bit more.
        let cut = &text[..text.len() - 10];
        assert!(Snapshot::decode(cut).is_err());
    }

    #[test]
    fn corrupt_tokens_are_rejected_loudly() {
        let text = mid_run_snapshot(2_000).encode();
        for bad in ["-1", "1.5", "1e9", "+7", "NaN", "inf", "0x10"] {
            let corrupted = text.replacen("meta ", &format!("meta {bad} "), 1);
            let err = Snapshot::decode(&corrupted).expect_err(bad);
            assert!(
                matches!(err, SnapshotError::Line { .. }),
                "{bad} must fail as a line error, got {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut text = mid_run_snapshot(500).encode();
        text.push_str("extra stuff\n");
        assert!(matches!(
            Snapshot::decode(&text),
            Err(SnapshotError::Line { .. })
        ));
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let text = mid_run_snapshot(500).encode();
        let corrupted = text.replacen("arb ", "arb x", 1);
        match Snapshot::decode(&corrupted) {
            Err(SnapshotError::Line { line, .. }) => assert!(line > 1),
            other => panic!("expected a line error, got {other:?}"),
        }
    }
}
