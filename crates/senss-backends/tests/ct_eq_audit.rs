//! Pins the constant-time discipline of `senss-backends`: no source
//! line that touches secret material (tags, shares, fingerprints,
//! attestation chains, pads) may compare it with the short-circuiting
//! `==` operator — every such comparison must route through
//! `Block::ct_eq` (via `ct_verify`). A timing-dependent compare would
//! leak how much of a forged value was correct, byte by byte.

/// Identifiers that name secret material in this crate. A line
/// mentioning one of these and using `==` is a finding unless the
/// comparison is the constant-time one.
const SECRET_MARKERS: &[&str] = &[
    "tag",
    "share",
    "fingerprint",
    "chain",
    "pad",
    "reconstruct",
    "mask",
];

const SOURCES: &[(&str, &str)] = &[
    ("src/lib.rs", include_str!("../src/lib.rs")),
    ("src/servas.rs", include_str!("../src/servas.rs")),
    ("src/sealer.rs", include_str!("../src/sealer.rs")),
    ("src/scattered.rs", include_str!("../src/scattered.rs")),
];

/// Strips `//` comments (no raw-string-aware parsing needed: the crate
/// sources keep `//` out of string literals, asserted below).
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

#[test]
fn no_equality_operator_on_secret_material() {
    let mut findings = Vec::new();
    for (path, text) in SOURCES {
        for (ln, line) in text.lines().enumerate() {
            let code = code_part(line);
            if !code.contains("==") {
                continue;
            }
            let lower = code.to_ascii_lowercase();
            let touches_secret = SECRET_MARKERS.iter().any(|m| lower.contains(m));
            let constant_time = code.contains("ct_eq") || code.contains("ct_verify");
            if touches_secret && !constant_time {
                findings.push(format!("{path}:{}: {}", ln + 1, line.trim()));
            }
        }
    }
    assert!(
        findings.is_empty(),
        "secret material compared with `==` instead of ct_eq:\n{}",
        findings.join("\n")
    );
}

#[test]
fn every_backend_with_a_functional_slice_uses_ct_verify() {
    for (path, text) in SOURCES {
        if *path == "src/servas.rs" || *path == "src/scattered.rs" {
            assert!(
                text.contains("ct_verify("),
                "{path} must verify its secrets through ct_verify"
            );
        }
    }
}

#[test]
fn comment_stripping_assumption_holds() {
    // `code_part` assumes `//` never appears inside a string literal in
    // these sources; a URL or glob in a string would silently disable
    // auditing of the rest of that line.
    for (path, text) in SOURCES {
        for (ln, line) in text.lines().enumerate() {
            if let Some(i) = line.find("//") {
                let before = &line[..i];
                assert_eq!(
                    before.matches('"').count() % 2,
                    0,
                    "{path}:{}: `//` inside a string literal defeats the audit",
                    ln + 1
                );
            }
        }
    }
}
