//! Competing security backends for the SENSS simulator.
//!
//! SENSS's chained-MAC + CBC split (HPCA 2005) is one point in a design
//! space the paper could never survey. This crate implements three
//! alternatives from later work, each as a [`senss_sim::Extension`] so
//! they compete with the paper's design on exactly equal footing — same
//! simulator, same workloads, same harness, one cross-backend figure
//! (`figure_backends` in `senss-bench`):
//!
//! * [`ServasExtension`] — SERVAS-style **authenticryption**
//!   (arXiv:2105.03395): encryption and authentication fused into one
//!   cipher pass per bus transfer. One AES-pipeline issue per transfer
//!   (vs SENSS-CBC's two) and a per-transfer fused tag, so there is *no*
//!   separate chained-MAC authentication traffic at all.
//! * [`SealerExtension`] — Sealer **in-SRAM AES** (arXiv:2207.01298):
//!   the SENSS datapath unchanged (chained MAC, auth intervals, CBC
//!   masks) but with mask generation computed inside the SRAM array, so
//!   the 80-cycle AES unit becomes a ~2-cycle one and mask stalls all
//!   but vanish.
//! * [`ScatteredExtension`] — **secret-sharing scattered memory**
//!   (arXiv:2402.15824 flavor): memory lines are split into XOR shares
//!   stored at scattered addresses; MAC verification is replaced by
//!   share reconstruction checks. Bus transfers need no AES masks
//!   (information-theoretic shares), but memory fills fetch sibling
//!   shares through the ordinary cache + bus machinery.
//!
//! Every backend checkpoint/restores its mutable state through the
//! [`Extension::snapshot`]/[`Extension::restore`] hooks under its own
//! key prefix (`servas.`, `sealer.`, `scat.`) — a snapshot captured
//! under one backend can never be silently restored into another — and
//! emits `ShuEncrypt`/`ShuVerify` events into `senss-trace` sinks.
//!
//! # Constant-time discipline
//!
//! Every comparison of secret material (fused tags, reconstructed
//! shares) goes through [`senss_crypto::Block::ct_eq`] — never the
//! short-circuiting `PartialEq`. The `ct_eq_audit` integration test
//! pins this by grepping the crate's sources.
//!
//! # Adding a fourth backend
//!
//! See `docs/security-backends.md` at the repository root for the
//! checklist (Extension impl, `SecurityMode` variant, tag codec,
//! snapshot namespace, golden fixtures, figure wiring).
//!
//! [`Extension::snapshot`]: senss_sim::Extension::snapshot
//! [`Extension::restore`]: senss_sim::Extension::restore

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod scattered;
mod sealer;
mod servas;

pub use scattered::{ScatteredConfig, ScatteredExtension, ScatteredStats, SHARE_REGION_BASE};
pub use sealer::{SealerConfig, SealerExtension};
pub use servas::{ServasConfig, ServasExtension, ServasStats};

use senss_crypto::Block;

/// Constant-time verification of a computed secret value against its
/// expected value. All tag/share comparison paths in this crate go
/// through here (pinned by the `ct_eq_audit` test): a timing-dependent
/// comparison would leak how much of a forged value was correct.
#[inline]
pub fn ct_verify(got: Block, want: Block) -> bool {
    got.ct_eq(&want)
}

/// Restores the `u64` value stored under `key`, panicking with a
/// backend-identifying message when the key is absent — a missing key
/// means the snapshot was captured under a different backend (or
/// format), and silently continuing would corrupt the simulation.
pub(crate) fn must_get(map: &std::collections::BTreeMap<&str, u64>, key: &str) -> u64 {
    *map.get(key)
        .unwrap_or_else(|| panic!("snapshot missing key {key}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_verify_matches_equality_semantics() {
        let a = Block::from([0x5A; 16]);
        assert!(ct_verify(a, Block::from([0x5A; 16])));
        assert!(!ct_verify(a, Block::ZERO));
    }
}
