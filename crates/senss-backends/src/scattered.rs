//! Secret-sharing scattered memory backend (arXiv:2402.15824 flavor).
//!
//! Instead of encrypting memory lines and authenticating them with a
//! hash tree, this design splits every line into `n` XOR shares stored
//! at scattered, address-keyed locations. An adversary who captures
//! fewer than all shares learns nothing (information-theoretic
//! secrecy), and tampering with any share is caught when the
//! reconstruction check fails — so there is no AES mask pipeline and no
//! Merkle walk at all. What it costs instead is *memory traffic*: a
//! fill from memory must also fetch the line's sibling shares, and a
//! writeback must update them.
//!
//! The mapping onto the simulator's hooks:
//!
//! * [`Extension::integrity_chain`] returns the `n−1` sibling-share
//!   addresses for a fill from memory. The simulator fetches them
//!   through the ordinary L2 + bus machinery and stops at the first one
//!   already resident in the local L2 — which models share caching:
//!   hot lines keep their shares on chip and fill at native speed.
//! * [`Extension::hash_latency`] is the per-share *reconstruction*
//!   latency — a few XOR/compare cycles, not a 160-cycle hash.
//! * [`Extension::writeback_chain`] returns the same sibling addresses
//!   for the lazy share update on a writeback.
//! * Cache-to-cache transfers carry reconstructed plaintext guarded by
//!   snooping, so [`Extension::transfer_start_delay`] never stalls (no
//!   masks to wait for) and the per-transfer overhead is 1 cycle of
//!   share-tag bookkeeping.
//!
//! Sibling shares live in a reserved region at [`SHARE_REGION_BASE`]
//! (disjoint from workload addresses *and* from `senss-memprot`'s hash
//! region at `1 << 47`), scattered by an address mix so consecutive
//! lines do not contend for the same share frames.
//!
//! The functional slice is real: each verified fill reconstructs a
//! line fingerprint by XOR-combining AES-derived shares and checks it
//! in constant time against the directly-derived fingerprint
//! ([`crate::ct_verify`]).
//!
//! [`Extension::integrity_chain`]: senss_sim::Extension::integrity_chain
//! [`Extension::writeback_chain`]: senss_sim::Extension::writeback_chain
//! [`Extension::hash_latency`]: senss_sim::Extension::hash_latency
//! [`Extension::transfer_start_delay`]: senss_sim::Extension::transfer_start_delay

use crate::{ct_verify, must_get};
use senss_crypto::aes::Aes;
use senss_crypto::Block;
use senss_sim::bus::{Supplier, Transaction};
use senss_sim::extension::{Extension, FollowUp};
use senss_trace::{TraceEvent, Tracer};

/// Base address of the reserved share region. Shares are synthetic
/// lines flowing through the normal cache + bus machinery, so they get
/// an address range no workload (and no hash region — that is `1 << 47`
/// in `senss-memprot`) can touch.
pub const SHARE_REGION_BASE: u64 = 1 << 48;

/// Fixed 128-bit key deriving the functional share pads. Timing is
/// key-independent; a fixed key keeps runs and snapshots deterministic.
const SCATTER_KEY: [u8; 16] = *b"scattered-mem-ks";

/// Configuration of the secret-sharing scattered memory backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScatteredConfig {
    /// Shares per memory line (`n ≥ 2`; secrecy holds unless all `n`
    /// are captured).
    pub shares: u32,
    /// Cycles to XOR-combine one fetched share into the reconstruction
    /// and compare (replaces the 160-cycle hash step).
    pub reconstruct_latency: u64,
    /// Fixed per-transfer critical-path cycles (share-tag bookkeeping).
    pub per_transfer_overhead: u64,
    /// Size of the share region in 64-byte lines. Smaller spans give
    /// sibling shares more L2 reuse; larger spans scatter harder.
    pub span_lines: u64,
    /// Number of processors.
    pub num_processors: usize,
}

impl ScatteredConfig {
    /// The reference configuration: 3 shares, 12-cycle reconstruction,
    /// +1 cycle per transfer, a 4096-line share region.
    pub fn paper_default(num_processors: usize) -> ScatteredConfig {
        ScatteredConfig {
            shares: 3,
            reconstruct_latency: 12,
            per_transfer_overhead: 1,
            span_lines: 4096,
            num_processors,
        }
    }

    /// Sets the share count (the secrecy-vs-traffic knob).
    pub fn with_shares(mut self, shares: u32) -> ScatteredConfig {
        assert!(shares >= 2, "secret sharing needs at least two shares");
        self.shares = shares;
        self
    }
}

/// Scattered-memory statistics accumulated during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScatteredStats {
    /// Cache-to-cache transfers carried (no crypto stall, +1 cycle).
    pub secured_transfers: u64,
    /// Memory fills whose sibling shares were scheduled for fetch.
    pub fills_checked: u64,
    /// Reconstruction checks that verified (constant-time compare).
    pub reconstructions: u64,
    /// Writebacks that scheduled lazy sibling-share updates.
    pub writeback_updates: u64,
}

/// The secret-sharing scattered memory extension.
#[derive(Debug)]
pub struct ScatteredExtension {
    cfg: ScatteredConfig,
    aes: Aes,
    /// Rolling XOR of every reconstructed fingerprint (attestation of
    /// the verified-fill history).
    chain: Block,
    stats: ScatteredStats,
}

/// `splitmix64` finalizer: a cheap bijective mix scattering the share
/// index space.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

impl ScatteredExtension {
    /// Creates the extension.
    pub fn new(cfg: ScatteredConfig) -> ScatteredExtension {
        assert!(cfg.shares >= 2, "secret sharing needs at least two shares");
        assert!(cfg.span_lines > 0, "share region cannot be empty");
        ScatteredExtension {
            aes: Aes::new_128(&SCATTER_KEY),
            chain: Block::ZERO,
            stats: ScatteredStats::default(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ScatteredConfig {
        &self.cfg
    }

    /// Backend statistics.
    pub fn stats(&self) -> &ScatteredStats {
        &self.stats
    }

    /// The rolling attestation chain over all reconstructed
    /// fingerprints.
    pub fn attestation_chain(&self) -> Block {
        self.chain
    }

    /// The scattered address of sibling share `i` (1-based; share 0 is
    /// the line's home location) for line `addr`: line-aligned inside
    /// the reserved region.
    pub fn share_addr(&self, addr: u64, i: u32) -> u64 {
        let line = addr >> 6;
        let slot = mix(line ^ (u64::from(i) << 56)) % self.cfg.span_lines;
        SHARE_REGION_BASE + slot * 64
    }

    /// The sibling-share addresses fetched on a fill (and updated on a
    /// writeback) of `addr`.
    fn sibling_shares(&self, addr: u64) -> Vec<u64> {
        (1..self.cfg.shares).map(|i| self.share_addr(addr, i)).collect()
    }

    /// Functional reconstruction check for a fill of `addr`: derive the
    /// fingerprint, split it into `n` XOR shares, recombine, verify in
    /// constant time. Returns the reconstructed fingerprint.
    fn reconstruct_and_verify(&mut self, addr: u64) -> Block {
        let line = addr >> 6;
        let fingerprint = self.aes.encrypt_block(Block::from_words(line, 0));
        // Shares 1..n are AES-derived pads; share 0 makes the XOR work out.
        let mut pads = Block::ZERO;
        let mut reconstructed = Block::ZERO;
        for i in 1..self.cfg.shares {
            let pad = self
                .aes
                .encrypt_block(Block::from_words(line, u64::from(i) << 32));
            pads ^= pad;
            reconstructed ^= pad;
        }
        let home_share = fingerprint ^ pads;
        reconstructed ^= home_share;
        assert!(
            ct_verify(reconstructed, fingerprint),
            "share reconstruction mismatch: a share was tampered with"
        );
        self.stats.reconstructions += 1;
        self.chain ^= reconstructed;
        reconstructed
    }
}

impl Extension for ScatteredExtension {
    fn transfer_start_delay(
        &mut self,
        txn: &Transaction,
        now: u64,
        tracer: &mut Tracer<'_>,
    ) -> u64 {
        // No mask pipeline: shares are information-theoretic, nothing
        // must be precomputed before a transfer may start.
        tracer.emit(|| TraceEvent::ShuEncrypt {
            time: now,
            pid: txn.request.pid as u32,
            token: txn.request.token,
            stall: 0,
        });
        0
    }

    fn transfer_extra_latency(&mut self, _txn: &Transaction) -> u64 {
        self.cfg.per_transfer_overhead
    }

    fn transaction_complete(
        &mut self,
        txn: &Transaction,
        now: u64,
        tracer: &mut Tracer<'_>,
    ) -> Vec<FollowUp> {
        if txn.is_cache_to_cache() {
            self.stats.secured_transfers += 1;
        } else if matches!(txn.supplier, Supplier::Memory)
            && txn.request.addr < SHARE_REGION_BASE
        {
            // A workload line arrived from memory: its sibling shares
            // were chained for fetch; run the reconstruction check.
            self.reconstruct_and_verify(txn.request.addr);
            let round = self.stats.reconstructions;
            tracer.emit(|| TraceEvent::ShuVerify {
                time: now,
                pid: txn.request.pid as u32,
                token: txn.request.token,
                auth_round: round,
            });
        }
        // Reconstruction needs no extra bus messages beyond the share
        // fetches already scheduled through `integrity_chain`.
        Vec::new()
    }

    fn integrity_chain(&mut self, _pid: usize, addr: u64) -> Vec<u64> {
        if addr >= SHARE_REGION_BASE {
            // Share fetches themselves are not further split.
            return Vec::new();
        }
        self.stats.fills_checked += 1;
        self.sibling_shares(addr)
    }

    fn writeback_chain(&mut self, _pid: usize, addr: u64) -> Vec<u64> {
        if addr >= SHARE_REGION_BASE {
            return Vec::new();
        }
        self.stats.writeback_updates += 1;
        self.sibling_shares(addr)
    }

    fn hash_latency(&self) -> u64 {
        self.cfg.reconstruct_latency
    }

    fn snapshot(&self, out: &mut Vec<(String, u64)>) {
        out.push(("scat.secured".into(), self.stats.secured_transfers));
        out.push(("scat.fills".into(), self.stats.fills_checked));
        out.push(("scat.recon".into(), self.stats.reconstructions));
        out.push(("scat.wb".into(), self.stats.writeback_updates));
        let (lo, hi) = self.chain.to_words();
        out.push(("scat.chain.lo".into(), lo));
        out.push(("scat.chain.hi".into(), hi));
    }

    fn restore(&mut self, state: &[(String, u64)]) {
        let map: std::collections::BTreeMap<&str, u64> =
            state.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        self.stats.secured_transfers = must_get(&map, "scat.secured");
        self.stats.fills_checked = must_get(&map, "scat.fills");
        self.stats.reconstructions = must_get(&map, "scat.recon");
        self.stats.writeback_updates = must_get(&map, "scat.wb");
        self.chain = Block::from_words(
            must_get(&map, "scat.chain.lo"),
            must_get(&map, "scat.chain.hi"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senss_sim::bus::{BusRequest, TxnKind};

    fn mem_txn(addr: u64) -> Transaction {
        Transaction {
            request: BusRequest {
                pid: 0,
                kind: TxnKind::Read,
                addr,
                blocking: true,
                token: 7,
            },
            supplier: Supplier::Memory,
            granted_at: 0,
        }
    }

    fn c2c_txn(pid: usize, addr: u64) -> Transaction {
        Transaction {
            request: BusRequest {
                pid,
                kind: TxnKind::Read,
                addr,
                blocking: true,
                token: 0,
            },
            supplier: Supplier::Cache(pid ^ 1),
            granted_at: 0,
        }
    }

    fn tr() -> Tracer<'static> {
        Tracer::disabled()
    }

    #[test]
    fn fill_chains_n_minus_one_sibling_shares_in_the_region() {
        let mut e = ScatteredExtension::new(ScatteredConfig::paper_default(4));
        let chain = e.integrity_chain(0, 0x1_0040);
        assert_eq!(chain.len(), 2);
        for a in &chain {
            assert!(*a >= SHARE_REGION_BASE);
            assert!(*a < SHARE_REGION_BASE + 4096 * 64);
            assert_eq!(*a % 64, 0, "share addresses are line-aligned");
        }
        let mut e5 = ScatteredExtension::new(ScatteredConfig::paper_default(4).with_shares(5));
        assert_eq!(e5.integrity_chain(0, 0x1_0040).len(), 4);
    }

    #[test]
    fn share_fetches_are_not_recursively_split() {
        let mut e = ScatteredExtension::new(ScatteredConfig::paper_default(4));
        let sibling = e.share_addr(0x40, 1);
        assert!(e.integrity_chain(0, sibling).is_empty());
        assert!(e.writeback_chain(0, sibling).is_empty());
    }

    #[test]
    fn share_addresses_are_deterministic_and_scattered() {
        let e = ScatteredExtension::new(ScatteredConfig::paper_default(4));
        assert_eq!(e.share_addr(0x40, 1), e.share_addr(0x40, 1));
        // Consecutive lines must not map to consecutive share frames.
        let deltas: Vec<i64> = (0..16u64)
            .map(|l| e.share_addr(l * 64, 1) as i64 - SHARE_REGION_BASE as i64)
            .collect();
        let monotone = deltas.windows(2).all(|w| w[1] - w[0] == 64);
        assert!(!monotone, "shares should scatter, not stride");
    }

    #[test]
    fn reconstruction_replaces_hash_latency() {
        let e = ScatteredExtension::new(ScatteredConfig::paper_default(4));
        assert_eq!(e.hash_latency(), 12, "XOR reconstruction, not a 160-cycle hash");
    }

    #[test]
    fn transfers_never_stall_and_cost_one_cycle() {
        let mut e = ScatteredExtension::new(ScatteredConfig::paper_default(2));
        for now in 0..50u64 {
            assert_eq!(e.transfer_start_delay(&c2c_txn(0, 0x40), now, &mut tr()), 0);
        }
        assert_eq!(e.transfer_extra_latency(&c2c_txn(0, 0x40)), 1);
    }

    #[test]
    fn memory_fill_runs_a_reconstruction_check() {
        let mut e = ScatteredExtension::new(ScatteredConfig::paper_default(2));
        e.integrity_chain(0, 0x2_0080);
        assert!(e.transaction_complete(&mem_txn(0x2_0080), 10, &mut tr()).is_empty());
        assert_eq!(e.stats().reconstructions, 1);
        assert_eq!(e.stats().fills_checked, 1);
        // Share-region fills must not themselves be checked.
        let sibling = e.share_addr(0x2_0080, 1);
        e.transaction_complete(&mem_txn(sibling), 11, &mut tr());
        assert_eq!(e.stats().reconstructions, 1);
    }

    #[test]
    fn attestation_chain_depends_on_fill_history() {
        let mut a = ScatteredExtension::new(ScatteredConfig::paper_default(2));
        let mut b = ScatteredExtension::new(ScatteredConfig::paper_default(2));
        a.transaction_complete(&mem_txn(0x40), 0, &mut tr());
        a.transaction_complete(&mem_txn(0x80), 0, &mut tr());
        b.transaction_complete(&mem_txn(0x40), 0, &mut tr());
        assert!(!ct_verify(a.attestation_chain(), b.attestation_chain()));
        b.transaction_complete(&mem_txn(0x80), 0, &mut tr());
        assert!(ct_verify(a.attestation_chain(), b.attestation_chain()));
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let mut e = ScatteredExtension::new(ScatteredConfig::paper_default(4).with_shares(4));
        for i in 0..30u64 {
            e.integrity_chain(0, i * 64);
            e.transaction_complete(&mem_txn(i * 64), i, &mut tr());
            e.writeback_chain(1, i * 128);
            e.transaction_complete(&c2c_txn((i % 4) as usize, i * 64), i, &mut tr());
        }
        let mut state = Vec::new();
        e.snapshot(&mut state);
        let mut fresh = ScatteredExtension::new(ScatteredConfig::paper_default(4).with_shares(4));
        fresh.restore(&state);
        let mut again = Vec::new();
        fresh.snapshot(&mut again);
        assert_eq!(state, again, "snapshot → restore → snapshot must be identity");
        assert_eq!(fresh.stats(), e.stats());
    }

    #[test]
    #[should_panic(expected = "snapshot missing key scat.secured")]
    fn foreign_snapshot_is_rejected() {
        let mut e = ScatteredExtension::new(ScatteredConfig::paper_default(2));
        e.restore(&[("servas.transfers".to_string(), 3)]);
    }
}
