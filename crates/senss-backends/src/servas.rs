//! SERVAS-style authenticryption backend (arXiv:2105.03395).
//!
//! SERVAS fuses encryption and authentication into a single
//! *authenticryption* pass of a tweakable block cipher: the same cipher
//! invocation that produces the ciphertext also produces the
//! authentication tag, and the tag rides the transfer itself. Two
//! consequences the timing model captures:
//!
//! * **One pipeline issue per transfer.** SENSS-CBC issues twice per
//!   transfer (mask chain + MAC chain); the fused pass issues once, so
//!   the shared crypto pipeline congests half as fast at peak bus rate.
//! * **No authentication traffic.** Each transfer carries its own fused
//!   tag and is verified inline by the receiver, so the periodic
//!   chained-MAC `Auth` bus transactions of SENSS disappear entirely —
//!   [`Extension::transaction_complete`] never injects a follow-up.
//!
//! The per-transfer critical-path cost is 2 cycles (sender tweak+XOR,
//! receiver XOR with the tag check overlapped) versus SENSS's 3: the
//! receiver needs no separate GID-table MAC-state lookup because the
//! tag is self-contained.
//!
//! The functional slice is real: each transfer's fused tag is computed
//! with the in-tree AES over a `(address, pid ‖ transfer-counter)`
//! tweak, the receiver recomputes it, and the two are compared in
//! constant time ([`crate::ct_verify`]). A rolling XOR of verified tags
//! (the *attestation chain*) is part of the checkpointed state.

use crate::{ct_verify, must_get};
use senss::mask::MaskArray;
use senss_crypto::aes::Aes;
use senss_crypto::Block;
use senss_sim::bus::Transaction;
use senss_sim::extension::{Extension, FollowUp};
use senss_trace::{TraceEvent, Tracer};

/// Fixed 128-bit key of the functional authenticryption slice. The
/// timing model is key-independent; a fixed key keeps runs and
/// snapshots deterministic.
const SERVAS_KEY: [u8; 16] = *b"SERVAS-authenc-k";

/// Configuration of the SERVAS authenticryption backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServasConfig {
    /// Counter-stream buffers (the analogue of SENSS masks): fused
    /// passes precomputed by the crypto pipeline.
    pub num_masks: usize,
    /// Crypto-unit latency in cycles (same 80-cycle AES core as SENSS —
    /// SERVAS changes the *construction*, not the primitive).
    pub aes_latency: u64,
    /// Pipeline initiation interval in cycles.
    pub aes_initiation_interval: u64,
    /// Fixed per-transfer critical-path cycles (sender tweak+XOR,
    /// receiver XOR; the fused tag check overlaps the data XOR).
    pub per_transfer_overhead: u64,
    /// Number of processors.
    pub num_processors: usize,
}

impl ServasConfig {
    /// The reference configuration: 8 fused-pass buffers on the paper's
    /// 80-cycle, bus-matched AES pipeline, +2 cycles per transfer.
    pub fn paper_default(num_processors: usize) -> ServasConfig {
        ServasConfig {
            num_masks: 8,
            aes_latency: 80,
            aes_initiation_interval: 10,
            per_transfer_overhead: 2,
            num_processors,
        }
    }

    /// Sets the fused-pass buffer count (the Figure-7 analogue sweep).
    pub fn with_masks(mut self, masks: usize) -> ServasConfig {
        self.num_masks = masks;
        self
    }
}

/// SERVAS-layer statistics accumulated during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServasStats {
    /// Cache-to-cache transfers secured by a fused pass.
    pub secured_transfers: u64,
    /// Inline fused-tag verifications performed (one per transfer).
    pub tag_checks: u64,
}

/// The SERVAS authenticryption extension.
#[derive(Debug)]
pub struct ServasExtension {
    cfg: ServasConfig,
    masks: MaskArray,
    aes: Aes,
    /// Monotone per-transfer tweak counter.
    transfers: u64,
    /// Rolling XOR of every verified fused tag (attestation chain).
    chain: Block,
    stats: ServasStats,
}

impl ServasExtension {
    /// Creates the extension.
    pub fn new(cfg: ServasConfig) -> ServasExtension {
        ServasExtension {
            masks: MaskArray::new(
                cfg.num_masks,
                cfg.aes_latency,
                cfg.aes_initiation_interval,
            )
            .with_issues_per_use(1),
            aes: Aes::new_128(&SERVAS_KEY),
            transfers: 0,
            chain: Block::ZERO,
            stats: ServasStats::default(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ServasConfig {
        &self.cfg
    }

    /// Backend statistics.
    pub fn stats(&self) -> &ServasStats {
        &self.stats
    }

    /// The fused-pass buffer array (stall statistics).
    pub fn masks(&self) -> &MaskArray {
        &self.masks
    }

    /// The rolling attestation chain over all verified tags.
    pub fn attestation_chain(&self) -> Block {
        self.chain
    }

    /// The fused tag of transfer number `counter` for line `addr` sent
    /// by `pid`: one cipher invocation over the transfer tweak.
    fn fused_tag(&self, addr: u64, pid: usize, counter: u64) -> Block {
        let tweak = Block::from_words(addr, ((pid as u64) << 48) ^ counter);
        self.aes.encrypt_block(tweak)
    }
}

impl Extension for ServasExtension {
    fn transfer_start_delay(
        &mut self,
        txn: &Transaction,
        now: u64,
        tracer: &mut Tracer<'_>,
    ) -> u64 {
        let stall = self.masks.acquire(now);
        tracer.emit(|| TraceEvent::ShuEncrypt {
            time: now,
            pid: txn.request.pid as u32,
            token: txn.request.token,
            stall,
        });
        stall
    }

    fn transfer_extra_latency(&mut self, _txn: &Transaction) -> u64 {
        self.cfg.per_transfer_overhead
    }

    fn transaction_complete(
        &mut self,
        txn: &Transaction,
        now: u64,
        tracer: &mut Tracer<'_>,
    ) -> Vec<FollowUp> {
        if txn.is_cache_to_cache() {
            self.stats.secured_transfers += 1;
            let counter = self.transfers;
            self.transfers += 1;
            // Sender side: the fused pass produced ciphertext + tag.
            let sent = self.fused_tag(txn.request.addr, txn.request.pid, counter);
            // Receiver side: recompute and verify inline, constant-time.
            let expected = self.fused_tag(txn.request.addr, txn.request.pid, counter);
            assert!(
                ct_verify(sent, expected),
                "fused tag mismatch: authenticryption state diverged"
            );
            self.stats.tag_checks += 1;
            self.chain ^= sent;
            let checks = self.stats.tag_checks;
            tracer.emit(|| TraceEvent::ShuVerify {
                time: now,
                pid: txn.request.pid as u32,
                token: txn.request.token,
                auth_round: checks,
            });
        }
        // Authenticryption needs no separate authentication rounds:
        // every transfer was already verified inline.
        Vec::new()
    }

    fn snapshot(&self, out: &mut Vec<(String, u64)>) {
        out.push(("servas.transfers".into(), self.transfers));
        out.push(("servas.secured".into(), self.stats.secured_transfers));
        out.push(("servas.checks".into(), self.stats.tag_checks));
        let (lo, hi) = self.chain.to_words();
        out.push(("servas.chain.lo".into(), lo));
        out.push(("servas.chain.hi".into(), hi));
        let (slots, aes_next, aes_issued, acquisitions, total_stall) = self.masks.export_state();
        out.push(("servas.aes.next".into(), aes_next));
        out.push(("servas.aes.issued".into(), aes_issued));
        out.push(("servas.acq".into(), acquisitions));
        out.push(("servas.stall".into(), total_stall));
        out.push(("servas.mask.len".into(), slots.len() as u64));
        for (j, &at) in slots.iter().enumerate() {
            out.push((format!("servas.mask.{j}"), at));
        }
    }

    fn restore(&mut self, state: &[(String, u64)]) {
        let map: std::collections::BTreeMap<&str, u64> =
            state.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        self.transfers = must_get(&map, "servas.transfers");
        self.stats.secured_transfers = must_get(&map, "servas.secured");
        self.stats.tag_checks = must_get(&map, "servas.checks");
        self.chain = Block::from_words(
            must_get(&map, "servas.chain.lo"),
            must_get(&map, "servas.chain.hi"),
        );
        let len = must_get(&map, "servas.mask.len") as usize;
        let slots: Vec<u64> = (0..len)
            .map(|j| must_get(&map, &format!("servas.mask.{j}")))
            .collect();
        self.masks.restore_state(
            &slots,
            must_get(&map, "servas.aes.next"),
            must_get(&map, "servas.aes.issued"),
            must_get(&map, "servas.acq"),
            must_get(&map, "servas.stall"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senss_sim::bus::{BusRequest, Supplier, TxnKind};

    fn c2c_txn(pid: usize, addr: u64) -> Transaction {
        Transaction {
            request: BusRequest {
                pid,
                kind: TxnKind::Read,
                addr,
                blocking: true,
                token: 0,
            },
            supplier: Supplier::Cache(pid ^ 1),
            granted_at: 0,
        }
    }

    fn mem_txn() -> Transaction {
        Transaction {
            request: BusRequest {
                pid: 0,
                kind: TxnKind::Read,
                addr: 0x40,
                blocking: true,
                token: 0,
            },
            supplier: Supplier::Memory,
            granted_at: 0,
        }
    }

    fn tr() -> Tracer<'static> {
        Tracer::disabled()
    }

    #[test]
    fn never_injects_auth_traffic() {
        let mut e = ServasExtension::new(ServasConfig::paper_default(2));
        for i in 0..500 {
            assert!(e
                .transaction_complete(&c2c_txn(i % 2, (i as u64) * 64), 0, &mut tr())
                .is_empty());
        }
        assert_eq!(e.stats().secured_transfers, 500);
        assert_eq!(e.stats().tag_checks, 500);
    }

    #[test]
    fn overhead_is_two_cycles() {
        let mut e = ServasExtension::new(ServasConfig::paper_default(2));
        assert_eq!(e.transfer_extra_latency(&c2c_txn(0, 0x40)), 2);
    }

    #[test]
    fn single_issue_never_stalls_at_peak_bus_rate() {
        // SENSS-CBC's double issue congests 8 masks at one transfer per
        // bus cycle; the fused single pass does not.
        let mut e = ServasExtension::new(ServasConfig::paper_default(2));
        for i in 0..200u64 {
            assert_eq!(e.transfer_start_delay(&c2c_txn(0, 0x40), i * 10, &mut tr()), 0);
        }
    }

    #[test]
    fn memory_fills_are_not_secured_transfers() {
        let mut e = ServasExtension::new(ServasConfig::paper_default(2));
        assert!(e.transaction_complete(&mem_txn(), 0, &mut tr()).is_empty());
        assert_eq!(e.stats().secured_transfers, 0);
    }

    #[test]
    fn attestation_chain_depends_on_history() {
        let mut a = ServasExtension::new(ServasConfig::paper_default(2));
        let mut b = ServasExtension::new(ServasConfig::paper_default(2));
        a.transaction_complete(&c2c_txn(0, 0x40), 0, &mut tr());
        a.transaction_complete(&c2c_txn(1, 0x80), 0, &mut tr());
        b.transaction_complete(&c2c_txn(0, 0x40), 0, &mut tr());
        assert!(!ct_verify(a.attestation_chain(), b.attestation_chain()));
        b.transaction_complete(&c2c_txn(1, 0x80), 0, &mut tr());
        assert!(ct_verify(a.attestation_chain(), b.attestation_chain()));
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let mut e = ServasExtension::new(ServasConfig::paper_default(4).with_masks(2));
        for i in 0..57u64 {
            e.transfer_start_delay(&c2c_txn((i % 4) as usize, i * 64), i * 7, &mut tr());
            e.transaction_complete(&c2c_txn((i % 4) as usize, i * 64), i * 7 + 3, &mut tr());
        }
        let mut state = Vec::new();
        e.snapshot(&mut state);
        let mut fresh = ServasExtension::new(ServasConfig::paper_default(4).with_masks(2));
        fresh.restore(&state);
        let mut again = Vec::new();
        fresh.snapshot(&mut again);
        assert_eq!(state, again, "snapshot → restore → snapshot must be identity");
        // The restored extension continues identically.
        let a = e.transfer_start_delay(&c2c_txn(0, 0x1000), 400, &mut tr());
        let b = fresh.transfer_start_delay(&c2c_txn(0, 0x1000), 400, &mut tr());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "snapshot missing key servas.transfers")]
    fn foreign_snapshot_is_rejected() {
        let mut e = ServasExtension::new(ServasConfig::paper_default(2));
        e.restore(&[("shu.secured".to_string(), 3)]);
    }

    #[test]
    fn shu_events_reach_a_live_tracer() {
        use senss_trace::RingSink;
        let mut e = ServasExtension::new(ServasConfig::paper_default(2));
        let mut sink = RingSink::new();
        let mut tracer = Tracer::of(&mut sink);
        e.transfer_start_delay(&c2c_txn(0, 0x40), 5, &mut tracer);
        e.transaction_complete(&c2c_txn(0, 0x40), 9, &mut tracer);
        let events: Vec<_> = sink.events().copied().collect();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], TraceEvent::ShuEncrypt { time: 5, .. }));
        assert!(matches!(
            events[1],
            TraceEvent::ShuVerify {
                time: 9,
                auth_round: 1,
                ..
            }
        ));
    }
}
