//! Sealer-style in-SRAM AES backend (arXiv:2207.01298).
//!
//! Sealer keeps the SENSS *protocol* intact — CBC pad encryption, the
//! periodic chained-MAC authentication transactions, the GID table —
//! but moves mask generation into the SRAM array itself (compute-in-
//! memory AES). The architectural effect is purely a timing one: the
//! 80-cycle standalone AES unit becomes a ~2-cycle in-array operation
//! with single-cycle initiation, so mask-availability stalls all but
//! vanish and far fewer mask buffers are needed.
//!
//! This backend is therefore implemented as a thin wrapper around
//! [`SenssExtension`] with a re-timed [`SenssConfig`]: same datapath,
//! same authentication traffic, same functional guarantees — only the
//! crypto-pipeline constants change. What it isolates in the
//! cross-backend figure is exactly *how much of SENSS's overhead is
//! mask latency* versus protocol cost: the residual overhead under
//! Sealer is the irreducible per-transfer critical path plus
//! authentication traffic.
//!
//! Snapshot state is the inner SENSS state re-namespaced under
//! `sealer.` so a Sealer checkpoint can never be restored into a plain
//! SENSS run (or vice versa) even though the state shapes coincide.

use senss::secure_bus::{CipherMode, SenssConfig, SenssExtension, SenssStats};
use senss_sim::bus::Transaction;
use senss_sim::extension::{Extension, FollowUp};
use senss_trace::Tracer;

/// Configuration of the Sealer in-SRAM AES backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealerConfig {
    /// Cache-to-cache transfers between authentication transactions
    /// (the SENSS §4.3 knob, unchanged by Sealer).
    pub auth_interval: u64,
    /// Mask buffers. In-SRAM regeneration is so fast that two suffice
    /// (double buffering).
    pub num_masks: usize,
    /// In-array AES latency in cycles (~2 vs the standalone unit's 80).
    pub aes_latency: u64,
    /// In-array initiation interval (a fresh mask every cycle).
    pub aes_initiation_interval: u64,
    /// Per-transfer critical-path cycles. The receiver-side GID lookup
    /// overlaps the in-array pad fetch, so 1 cycle instead of SENSS's 3.
    pub per_transfer_overhead: u64,
    /// Number of processors.
    pub num_processors: usize,
}

impl SealerConfig {
    /// The reference configuration: interval-100 authentication with
    /// 2-cycle in-SRAM AES, double-buffered masks, +1 cycle/transfer.
    pub fn paper_default(num_processors: usize) -> SealerConfig {
        SealerConfig {
            auth_interval: 100,
            num_masks: 2,
            aes_latency: 2,
            aes_initiation_interval: 1,
            per_transfer_overhead: 1,
            num_processors,
        }
    }

    /// Sets the authentication interval (shared Figure-9 analogue).
    pub fn with_auth_interval(mut self, interval: u64) -> SealerConfig {
        self.auth_interval = interval;
        self
    }
}

/// The Sealer in-SRAM AES extension: the SENSS datapath on a re-timed
/// crypto pipeline.
#[derive(Debug)]
pub struct SealerExtension {
    cfg: SealerConfig,
    inner: SenssExtension,
}

impl SealerExtension {
    /// Creates the extension.
    pub fn new(cfg: SealerConfig) -> SealerExtension {
        let inner = SenssExtension::new(SenssConfig {
            num_masks: cfg.num_masks,
            auth_interval: cfg.auth_interval,
            per_transfer_overhead: cfg.per_transfer_overhead,
            aes_latency: cfg.aes_latency,
            aes_initiation_interval: cfg.aes_initiation_interval,
            num_processors: cfg.num_processors,
            cipher: CipherMode::CbcTwoPass,
        });
        SealerExtension { cfg, inner }
    }

    /// The configuration.
    pub fn config(&self) -> &SealerConfig {
        &self.cfg
    }

    /// SENSS-layer statistics of the wrapped datapath.
    pub fn stats(&self) -> &SenssStats {
        self.inner.stats()
    }

    /// The wrapped SENSS extension (mask stall statistics etc.).
    pub fn inner(&self) -> &SenssExtension {
        &self.inner
    }
}

const PREFIX: &str = "sealer.";

impl Extension for SealerExtension {
    fn transfer_start_delay(
        &mut self,
        txn: &Transaction,
        now: u64,
        tracer: &mut Tracer<'_>,
    ) -> u64 {
        self.inner.transfer_start_delay(txn, now, tracer)
    }

    fn transfer_extra_latency(&mut self, txn: &Transaction) -> u64 {
        self.inner.transfer_extra_latency(txn)
    }

    fn transaction_complete(
        &mut self,
        txn: &Transaction,
        now: u64,
        tracer: &mut Tracer<'_>,
    ) -> Vec<FollowUp> {
        self.inner.transaction_complete(txn, now, tracer)
    }

    fn pad_request_needed(&mut self, pid: usize, addr: u64) -> bool {
        self.inner.pad_request_needed(pid, addr)
    }

    fn integrity_chain(&mut self, pid: usize, addr: u64) -> Vec<u64> {
        self.inner.integrity_chain(pid, addr)
    }

    fn writeback_chain(&mut self, pid: usize, addr: u64) -> Vec<u64> {
        self.inner.writeback_chain(pid, addr)
    }

    fn hash_latency(&self) -> u64 {
        self.inner.hash_latency()
    }

    fn snapshot(&self, out: &mut Vec<(String, u64)>) {
        let mut inner_state = Vec::new();
        self.inner.snapshot(&mut inner_state);
        out.extend(
            inner_state
                .into_iter()
                .map(|(k, v)| (format!("{PREFIX}{k}"), v)),
        );
    }

    fn restore(&mut self, state: &[(String, u64)]) {
        let inner_state: Vec<(String, u64)> = state
            .iter()
            .filter_map(|(k, v)| k.strip_prefix(PREFIX).map(|k| (k.to_string(), *v)))
            .collect();
        assert!(
            !inner_state.is_empty(),
            "snapshot missing key {PREFIX}shu.secured"
        );
        self.inner.restore(&inner_state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senss_sim::bus::{BusRequest, Supplier, TxnKind};

    fn c2c_txn(pid: usize, addr: u64) -> Transaction {
        Transaction {
            request: BusRequest {
                pid,
                kind: TxnKind::Read,
                addr,
                blocking: true,
                token: 0,
            },
            supplier: Supplier::Cache(pid ^ 1),
            granted_at: 0,
        }
    }

    fn tr() -> Tracer<'static> {
        Tracer::disabled()
    }

    #[test]
    fn keeps_senss_authentication_traffic() {
        let mut e = SealerExtension::new(SealerConfig::paper_default(2).with_auth_interval(10));
        let mut auths = 0;
        for i in 0..100 {
            auths += e
                .transaction_complete(&c2c_txn(i % 2, (i as u64) * 64), 0, &mut tr())
                .len();
        }
        assert_eq!(auths, 10, "Sealer keeps the chained-MAC protocol");
    }

    #[test]
    fn in_sram_masks_do_not_stall_bus_rate_transfers() {
        // A data transfer occupies the bus for ~10 cycles; the 2-cycle
        // in-array pipeline refills a mask long before the next grant,
        // so a sustained bus-rate burst never stalls. The same burst on
        // the paper's 80-cycle unit with 2 masks stalls on most grants.
        let mut sealer = SealerExtension::new(SealerConfig::paper_default(2));
        let mut paper = SenssExtension::new(
            SenssConfig::paper_default(2).with_masks(2),
        );
        let mut sealer_stall = 0;
        let mut paper_stall = 0;
        for i in 0..100u64 {
            let now = i * 10;
            sealer_stall += sealer.transfer_start_delay(&c2c_txn(0, 0x40), now, &mut tr());
            paper_stall += paper.transfer_start_delay(&c2c_txn(0, 0x40), now, &mut tr());
        }
        assert_eq!(sealer_stall, 0, "in-SRAM AES eliminates mask stalls");
        assert!(
            paper_stall > 100,
            "premise check: the 80-cycle unit should stall this burst, got {paper_stall}"
        );
    }

    #[test]
    fn overhead_is_one_cycle() {
        let mut e = SealerExtension::new(SealerConfig::paper_default(2));
        assert_eq!(e.transfer_extra_latency(&c2c_txn(0, 0x40)), 1);
    }

    #[test]
    fn snapshot_round_trips_under_sealer_namespace() {
        let mut e = SealerExtension::new(SealerConfig::paper_default(4).with_auth_interval(7));
        for i in 0..40u64 {
            e.transfer_start_delay(&c2c_txn((i % 4) as usize, i * 64), i * 3, &mut tr());
            e.transaction_complete(&c2c_txn((i % 4) as usize, i * 64), i * 3 + 1, &mut tr());
        }
        let mut state = Vec::new();
        e.snapshot(&mut state);
        assert!(state.iter().all(|(k, _)| k.starts_with("sealer.")));
        let mut fresh = SealerExtension::new(SealerConfig::paper_default(4).with_auth_interval(7));
        fresh.restore(&state);
        let mut again = Vec::new();
        fresh.snapshot(&mut again);
        assert_eq!(state, again);
        assert_eq!(fresh.stats(), e.stats());
    }

    #[test]
    #[should_panic(expected = "snapshot missing key sealer.shu.secured")]
    fn plain_senss_snapshot_is_rejected() {
        // An unprefixed SENSS snapshot must not restore into Sealer.
        let mut e = SealerExtension::new(SealerConfig::paper_default(2));
        e.restore(&[("shu.secured".to_string(), 3)]);
    }
}
