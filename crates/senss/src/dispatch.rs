//! Program dispatch and key distribution (§4.1, Figure 1).
//!
//! The program distributor encrypts the program with a symmetric session
//! key `K`, then encrypts `K` under the public key of **each** processor
//! in the chosen *group* (a trusted subset of the machine's processors),
//! and ships the bundle. Each member decrypts its copy of `K` with its
//! sealed private key and installs it in the SHU's group information
//! table; non-members cannot recover `K`.
//!
//! The distributor may exclude processors it distrusts (the paper's
//! example: processors dedicated to the network stack).

use crate::group::{GroupId, ProcessorId};
use senss_crypto::aes::Aes;
use senss_crypto::cbc::{CbcDecryptor, CbcEncryptor};
use senss_crypto::rsa::{KeyPair, PublicKey};
use senss_crypto::{Block, CryptoError};

/// A processor's sealed identity: the key pair plus its PID.
#[derive(Debug, Clone)]
pub struct ProcessorIdentity {
    /// This processor's id.
    pub pid: ProcessorId,
    keys: KeyPair,
}

impl ProcessorIdentity {
    /// Manufactures a processor identity (deterministic from the PID and a
    /// platform seed — each processor gets a distinct pair, preventing the
    /// cascading breakdown of a shared key).
    pub fn manufacture(pid: ProcessorId, platform_seed: u64) -> ProcessorIdentity {
        ProcessorIdentity {
            pid,
            keys: KeyPair::generate(platform_seed ^ (0xC0FFEE << 8) ^ pid.value() as u64),
        }
    }

    /// The shareable public key.
    pub fn public_key(&self) -> PublicKey {
        self.keys.public
    }
}

/// The dispatched bundle: encrypted program + per-member wrapped keys.
#[derive(Debug, Clone)]
pub struct ProgramPackage {
    /// Ciphertext of the program image (CBC under the session key).
    pub encrypted_program: Vec<u8>,
    /// The CBC initial vector for the program image.
    pub program_iv: Block,
    /// `(pid, K wrapped under pid's public key)` for every group member.
    pub wrapped_keys: Vec<(ProcessorId, Vec<u8>)>,
}

/// The program distributor.
#[derive(Debug, Clone)]
pub struct Distributor {
    session_key: [u8; 16],
}

impl Distributor {
    /// Creates a distributor holding a session key.
    pub fn new(session_key: [u8; 16]) -> Distributor {
        Distributor { session_key }
    }

    /// Encrypts `program` (padded to a block multiple internally) and
    /// wraps the session key for each `(pid, public key)` group member.
    ///
    /// # Errors
    ///
    /// Propagates RSA wrapping errors.
    pub fn dispatch(
        &self,
        program: &[u8],
        members: &[(ProcessorId, PublicKey)],
        iv: Block,
    ) -> Result<ProgramPackage, CryptoError> {
        let mut padded = program.to_vec();
        // Length-prefixed zero padding to a 16-byte boundary.
        let orig_len = padded.len() as u64;
        padded.splice(0..0, orig_len.to_le_bytes());
        while !padded.len().is_multiple_of(16) {
            padded.push(0);
        }
        let mut enc = CbcEncryptor::new(Aes::new_128(&self.session_key), iv);
        let encrypted_program = enc.encrypt(&padded)?;
        let mut wrapped_keys = Vec::with_capacity(members.len());
        for (pid, pubkey) in members {
            wrapped_keys.push((*pid, pubkey.encrypt(&self.session_key)?));
        }
        Ok(ProgramPackage {
            encrypted_program,
            program_iv: iv,
            wrapped_keys,
        })
    }
}

/// Errors a processor can hit unpacking a program package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnpackError {
    /// This processor is not among the package's group members.
    NotAMember,
    /// Cryptographic failure (wrong key, malformed package).
    Crypto(CryptoError),
    /// The decrypted image is malformed (bad length header).
    Malformed,
}

impl std::fmt::Display for UnpackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnpackError::NotAMember => write!(f, "processor is not a member of the group"),
            UnpackError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
            UnpackError::Malformed => write!(f, "decrypted program image is malformed"),
        }
    }
}

impl std::error::Error for UnpackError {}

impl From<CryptoError> for UnpackError {
    fn from(e: CryptoError) -> UnpackError {
        UnpackError::Crypto(e)
    }
}

impl ProcessorIdentity {
    /// Recovers the session key from a package (members only).
    ///
    /// # Errors
    ///
    /// [`UnpackError::NotAMember`] if the package has no wrapped key for
    /// this PID; [`UnpackError::Crypto`] on malformed ciphertext.
    pub fn recover_session_key(&self, pkg: &ProgramPackage) -> Result<[u8; 16], UnpackError> {
        let wrapped = pkg
            .wrapped_keys
            .iter()
            .find(|(pid, _)| *pid == self.pid)
            .map(|(_, w)| w)
            .ok_or(UnpackError::NotAMember)?;
        let key = self.keys.private.decrypt(wrapped)?;
        key.as_slice()
            .try_into()
            .map_err(|_| UnpackError::Malformed)
    }

    /// Decrypts the program image using a recovered session key.
    ///
    /// # Errors
    ///
    /// Propagates crypto errors; [`UnpackError::Malformed`] if the length
    /// header is inconsistent.
    pub fn decrypt_program(
        &self,
        pkg: &ProgramPackage,
        session_key: &[u8; 16],
    ) -> Result<Vec<u8>, UnpackError> {
        let mut dec = CbcDecryptor::new(Aes::new_128(session_key), pkg.program_iv);
        let padded = dec.decrypt(&pkg.encrypted_program)?;
        if padded.len() < 8 {
            return Err(UnpackError::Malformed);
        }
        let len = u64::from_le_bytes(padded[..8].try_into().expect("8 bytes")) as usize;
        if len > padded.len() - 8 {
            return Err(UnpackError::Malformed);
        }
        Ok(padded[8..8 + len].to_vec())
    }
}

/// Convenience: the GID assignment + key install flow for a whole group.
/// Returns the session key each member recovered.
///
/// # Errors
///
/// Fails if any member cannot unwrap its key.
pub fn install_group(
    gid: GroupId,
    pkg: &ProgramPackage,
    identities: &[ProcessorIdentity],
    tables: &mut [crate::shu::GroupInfoTable],
) -> Result<Vec<[u8; 16]>, UnpackError> {
    let mut keys = Vec::new();
    for (id, table) in identities.iter().zip(tables.iter_mut()) {
        // Every processor reserves the GID (occupied bit), members install
        // the secrets.
        table.occupy(gid);
        match id.recover_session_key(pkg) {
            Ok(k) => {
                table.install_secrets(gid, k, Vec::new());
                keys.push(k);
            }
            Err(UnpackError::NotAMember) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shu::GroupInfoTable;

    fn identities(n: u8) -> Vec<ProcessorIdentity> {
        (0..n)
            .map(|i| ProcessorIdentity::manufacture(ProcessorId::new(i), 0xFEED))
            .collect()
    }

    #[test]
    fn members_recover_the_key_and_program() {
        let ids = identities(3);
        let members: Vec<_> = ids.iter().map(|i| (i.pid, i.public_key())).collect();
        let dist = Distributor::new([0xAB; 16]);
        let program = b"secure workload image, arbitrary length".to_vec();
        let pkg = dist
            .dispatch(&program, &members, Block::from([1; 16]))
            .unwrap();
        assert_ne!(pkg.encrypted_program, program);
        for id in &ids {
            let k = id.recover_session_key(&pkg).unwrap();
            assert_eq!(k, [0xAB; 16]);
            assert_eq!(id.decrypt_program(&pkg, &k).unwrap(), program);
        }
    }

    #[test]
    fn non_members_are_locked_out() {
        let ids = identities(4);
        // Only processors 0 and 1 are in the group.
        let members: Vec<_> = ids[..2].iter().map(|i| (i.pid, i.public_key())).collect();
        let pkg = Distributor::new([7; 16])
            .dispatch(b"image", &members, Block::ZERO)
            .unwrap();
        assert_eq!(
            ids[2].recover_session_key(&pkg),
            Err(UnpackError::NotAMember)
        );
        assert_eq!(
            ids[3].recover_session_key(&pkg),
            Err(UnpackError::NotAMember)
        );
    }

    #[test]
    fn wrong_session_key_garbles_program() {
        let ids = identities(1);
        let members = vec![(ids[0].pid, ids[0].public_key())];
        let pkg = Distributor::new([1; 16])
            .dispatch(b"the-real-image!!", &members, Block::ZERO)
            .unwrap();
        let out = ids[0].decrypt_program(&pkg, &[2; 16]);
        match out {
            Ok(bytes) => assert_ne!(bytes, b"the-real-image!!".to_vec()),
            Err(UnpackError::Malformed) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn distinct_processors_have_distinct_keys() {
        let ids = identities(2);
        assert_ne!(ids[0].public_key(), ids[1].public_key());
    }

    #[test]
    fn install_group_reserves_everywhere_installs_members_only() {
        let ids = identities(3);
        let members: Vec<_> = ids[..2].iter().map(|i| (i.pid, i.public_key())).collect();
        let pkg = Distributor::new([5; 16])
            .dispatch(b"img", &members, Block::ZERO)
            .unwrap();
        let mut tables: Vec<GroupInfoTable> = (0..3).map(|_| GroupInfoTable::new(8)).collect();
        let gid = GroupId::new(42);
        let keys = install_group(gid, &pkg, &ids, &mut tables).unwrap();
        assert_eq!(keys.len(), 2);
        // All three reserved the GID…
        for t in &tables {
            assert!(t.get(gid).is_some());
        }
        // …but only members hold the key.
        assert!(tables[0].get(gid).unwrap().session_key.is_some());
        assert!(tables[1].get(gid).unwrap().session_key.is_some());
        assert!(tables[2].get(gid).unwrap().session_key.is_none());
    }

    #[test]
    fn empty_program_roundtrips() {
        let ids = identities(1);
        let members = vec![(ids[0].pid, ids[0].public_key())];
        let pkg = Distributor::new([3; 16])
            .dispatch(b"", &members, Block::ZERO)
            .unwrap();
        let k = ids[0].recover_session_key(&pkg).unwrap();
        assert_eq!(ids[0].decrypt_program(&pkg, &k).unwrap(), Vec::<u8>::new());
    }
}
