//! Functional SENSS bus encryption with a multi-mask chain (§4.2, §4.4).
//!
//! The value placed on the bus for data block `D` is `P = D ⊕ mask`; the
//! consumed mask is then regenerated in the background as
//! `mask' = AES_K(P ⊕ PID)` (Figure 2 feeds both the bus value and the
//! originating PID into the AES). With `k` masks, message number `n` uses
//! mask `n mod k` (§4.4's odd/even pair generalized), so back-to-back
//! messages never wait on a single in-flight regeneration.
//!
//! Every group member holds an identical [`MaskChain`] and observes every
//! message (snooping bus), so all copies advance in lock-step. The
//! *timing* of mask availability is modelled separately by
//! [`crate::mask::MaskArray`]; this module computes the values.

use senss_crypto::aes::Aes;
use senss_crypto::Block;

/// A group's synchronized multi-mask encryption chain.
///
/// # Example
///
/// ```
/// use senss::busenc::MaskChain;
/// use senss_crypto::aes::Aes;
/// use senss_crypto::Block;
///
/// let aes = Aes::new_128(&[1u8; 16]);
/// let c0 = Block::from([7u8; 16]);
/// let mut sender = MaskChain::new(aes.clone(), c0, 2);
/// let mut receiver = MaskChain::new(aes, c0, 2);
/// let data = Block::from([9u8; 16]);
/// let p = sender.encrypt(data, 0);
/// assert_eq!(receiver.decrypt(p, 0), data);
/// ```
#[derive(Debug, Clone)]
pub struct MaskChain {
    aes: Aes,
    masks: Vec<Block>,
    seq: u64,
}

impl MaskChain {
    /// Creates a chain of `num_masks` masks derived from the group's
    /// initial vector `c0` (mask `i` starts as `AES(c0 ⊕ i)` so the masks
    /// are independent but all members derive the same set).
    ///
    /// # Panics
    ///
    /// Panics if `num_masks` is zero.
    pub fn new(aes: Aes, c0: Block, num_masks: usize) -> MaskChain {
        assert!(num_masks > 0, "need at least one mask");
        let masks = (0..num_masks as u64)
            .map(|i| aes.encrypt_block(c0 ^ Block::from_words(i, 0)))
            .collect();
        MaskChain { aes, masks, seq: 0 }
    }

    /// Number of masks.
    pub fn num_masks(&self) -> usize {
        self.masks.len()
    }

    /// Messages processed so far (the group-wide total order).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The mask the next message will use (for tests/inspection).
    pub fn current_mask(&self) -> Block {
        self.masks[(self.seq % self.masks.len() as u64) as usize]
    }

    fn advance(&mut self, p: Block, pid: u32) {
        let idx = (self.seq % self.masks.len() as u64) as usize;
        self.masks[idx] = self.aes.encrypt_block(p ^ Block::from_words(pid as u64, 0));
        self.seq += 1;
    }

    /// Sender side: encrypts `data` originating from `pid`, returning the
    /// bus value `P` and advancing the chain.
    pub fn encrypt(&mut self, data: Block, pid: u32) -> Block {
        let p = data ^ self.current_mask();
        self.advance(p, pid);
        p
    }

    /// Receiver side: decrypts bus value `p` tagged with `pid`, advancing
    /// the chain identically to the sender.
    pub fn decrypt(&mut self, p: Block, pid: u32) -> Block {
        let data = p ^ self.current_mask();
        self.advance(p, pid);
        data
    }

    /// Encrypts a multi-block payload (e.g. a 64 B line = 4 blocks). The
    /// chain advances once per block — each bus beat is a block (§4.3).
    pub fn encrypt_payload(&mut self, data: &[Block], pid: u32) -> Vec<Block> {
        data.iter().map(|&d| self.encrypt(d, pid)).collect()
    }

    /// Decrypts a multi-block payload.
    pub fn decrypt_payload(&mut self, p: &[Block], pid: u32) -> Vec<Block> {
        p.iter().map(|&b| self.decrypt(b, pid)).collect()
    }

    /// Snapshots the chain (masks + sequence) for an encrypted context
    /// swap-out (§4.2). Secret material — encrypt before writing out.
    pub fn snapshot(&self) -> (Vec<Block>, u64) {
        (self.masks.clone(), self.seq)
    }

    /// Restores a chain from a snapshot taken by
    /// [`MaskChain::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if `masks` is empty.
    pub fn resume(aes: Aes, masks: Vec<Block>, seq: u64) -> MaskChain {
        assert!(!masks.is_empty(), "need at least one mask");
        MaskChain { aes, masks, seq }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aes() -> Aes {
        Aes::new_128(&[0x21; 16])
    }

    fn c0() -> Block {
        Block::from([0x5c; 16])
    }

    #[test]
    fn lock_step_over_many_messages() {
        for k in [1usize, 2, 4, 8] {
            let mut s = MaskChain::new(aes(), c0(), k);
            let mut r = MaskChain::new(aes(), c0(), k);
            for i in 0..100u8 {
                let d = Block::from([i; 16]);
                let p = s.encrypt(d, u32::from(i % 4));
                assert_eq!(r.decrypt(p, u32::from(i % 4)), d, "k={k} msg={i}");
            }
            assert_eq!(s.seq(), 100);
        }
    }

    #[test]
    fn repeated_data_yields_fresh_ciphertext() {
        let mut s = MaskChain::new(aes(), c0(), 2);
        let d = Block::from([0xAA; 16]);
        let p1 = s.encrypt(d, 0);
        let p2 = s.encrypt(d, 0);
        let p3 = s.encrypt(d, 0);
        assert_ne!(p1, p2);
        assert_ne!(p2, p3);
        // With 2 masks, message 3 reuses mask slot 0 — but its value was
        // regenerated, so ciphertext still differs from message 1.
        assert_ne!(p1, p3);
    }

    #[test]
    fn xor_of_two_ciphertexts_leaks_nothing_useful() {
        // The §3.1 attack XORs two ciphertexts of the same slot hoping for
        // D ⊕ D'. Chained masks change every use, so the XOR is masked by
        // the (secret) mask difference.
        let mut s = MaskChain::new(aes(), c0(), 1);
        let d1 = Block::from([0x11; 16]);
        let d2 = Block::from([0x22; 16]);
        let p1 = s.encrypt(d1, 0);
        let p2 = s.encrypt(d2, 0);
        assert_ne!(p1 ^ p2, d1 ^ d2, "static-pad leak must not appear");
    }

    #[test]
    fn pid_feeds_the_mask_update() {
        // Same data, same slot, different claimed originator ⇒ chains
        // diverge (the hook Type 3 detection relies on).
        let mut a = MaskChain::new(aes(), c0(), 1);
        let mut b = MaskChain::new(aes(), c0(), 1);
        let d = Block::from([0x77; 16]);
        a.encrypt(d, 0);
        b.encrypt(d, 1);
        assert_ne!(a.current_mask(), b.current_mask());
        // ... and the divergence shows on the next message.
        let pa = a.encrypt(d, 2);
        let pb = b.encrypt(d, 2);
        assert_ne!(pa, pb);
    }

    #[test]
    fn payload_roundtrip() {
        let mut s = MaskChain::new(aes(), c0(), 4);
        let mut r = MaskChain::new(aes(), c0(), 4);
        let line: Vec<Block> = (0..4u8).map(|i| Block::from([i; 16])).collect();
        let wire = s.encrypt_payload(&line, 3);
        assert_eq!(r.decrypt_payload(&wire, 3), line);
        assert_eq!(s.seq(), 4);
        assert_eq!(r.seq(), 4);
    }

    #[test]
    fn different_c0_different_traces() {
        // §4.2 initialization: every invocation draws a fresh C0.
        let mut a = MaskChain::new(aes(), Block::from([1; 16]), 2);
        let mut b = MaskChain::new(aes(), Block::from([2; 16]), 2);
        let d = Block::from([0x42; 16]);
        assert_ne!(a.encrypt(d, 0), b.encrypt(d, 0));
    }

    #[test]
    fn desync_breaks_decryption() {
        // A receiver that missed a message (Type 1 drop) decrypts garbage
        // from then on.
        let mut s = MaskChain::new(aes(), c0(), 2);
        let mut r = MaskChain::new(aes(), c0(), 2);
        let d1 = Block::from([1; 16]);
        let d2 = Block::from([2; 16]);
        let d3 = Block::from([3; 16]);
        let _dropped = s.encrypt(d1, 0);
        let p2 = s.encrypt(d2, 0);
        let p3 = s.encrypt(d3, 0);
        // Receiver never saw p1: masks now disagree for slot 0 (and seq).
        assert_ne!(r.decrypt(p2, 0), d2);
        assert_ne!(r.decrypt(p3, 0), d3);
    }

    #[test]
    #[should_panic(expected = "at least one mask")]
    fn zero_masks_rejected() {
        MaskChain::new(aes(), c0(), 0);
    }
}
