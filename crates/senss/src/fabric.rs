//! The functional secure-bus fabric: real ciphertext, real MACs, real
//! alarms.
//!
//! [`GroupFabric`] instantiates one SHU state (mask chain + authentication
//! engine) per group member and moves actual [`Block`] payloads between
//! them, exactly as the snooping bus would. It is the object the
//! `senss-attacks` crate attacks: an adversary may withhold deliveries
//! (Type 1), reorder messages (Type 2), or inject spoofed ones (Type 3),
//! and the fabric's authentication rounds raise the paper's "global alarm"
//! when the chains disagree.
//!
//! The fabric is *functional* — cycle timing lives in
//! [`crate::secure_bus::SenssExtension`]; the two are exercised together
//! in the integration tests.

use crate::auth::{authenticate_round, AuthEngine, AuthOutcome, AuthSchedule};
use crate::busenc::MaskChain;
use crate::group::{GroupId, MessageTag, ProcessorId};
use senss_crypto::aes::Aes;
use senss_crypto::gcm::Gcm;
use senss_crypto::mac::ChainedMac;
use senss_crypto::{Block, CryptoError};

/// A ciphertext message on the snooping bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusMessage {
    /// GID/PID tag attached by the sending SHU.
    pub tag: MessageTag,
    /// Encrypted payload blocks (`P` values).
    pub payload: Vec<Block>,
}

/// Why a processor raised the global alarm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlarmReason {
    /// A message carrying this processor's own PID appeared on the bus
    /// that it did not send (immediate Type 3 detection, §4.3).
    OwnPidSpoofed,
    /// An authentication round found divergent MACs.
    AuthMismatch {
        /// Members whose MAC differed from the initiator's.
        dissenting: Vec<ProcessorId>,
    },
}

/// A raised alarm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alarm {
    /// The processor that raised it.
    pub pid: ProcessorId,
    /// Why.
    pub reason: AlarmReason,
}

/// One group's worth of synchronized SHU state across all members.
#[derive(Debug)]
pub struct GroupFabric {
    gid: GroupId,
    members: Vec<ProcessorId>,
    session_key: [u8; 16],
    chains: Vec<MaskChain>,
    auths: Vec<AuthEngine>,
    schedule: AuthSchedule,
    mac_bits: usize,
    alarms: Vec<Alarm>,
    halted: bool,
}

/// An encrypted, authenticated swap-out of a group's SHU context (§4.2:
/// "When an existing group is swapped out, all processes on all
/// processors are stopped and the contexts are encrypted before being
/// written out to the memory").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuspendedGroup {
    /// The group this context belongs to.
    pub gid: GroupId,
    /// GCM-sealed serialized context (untrusted memory may hold this).
    ciphertext: Vec<u8>,
    tag: Block,
    nonce: [u8; 12],
}

impl GroupFabric {
    /// Creates the fabric for `members` of group `gid`, keyed with the
    /// session key, with `num_masks` encryption masks, an authentication
    /// round every `auth_interval` messages, and `mac_bits`-bit MACs.
    /// `c0` and `auth_iv` are the two (distinct!) initial vectors
    /// broadcast at initialization.
    ///
    /// # Panics
    ///
    /// Panics if the IVs are equal (§4.3 requires distinct IVs — reusing
    /// the encryption IV lets misordering self-heal) or `members` is
    /// empty.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        gid: GroupId,
        members: Vec<ProcessorId>,
        session_key: &[u8; 16],
        c0: Block,
        auth_iv: Block,
        num_masks: usize,
        auth_interval: u64,
        mac_bits: usize,
    ) -> GroupFabric {
        assert_ne!(
            c0, auth_iv,
            "encryption and authentication IVs must differ (§4.3)"
        );
        assert!(!members.is_empty(), "a group needs members");
        let aes = Aes::new_128(session_key);
        let chains = members
            .iter()
            .map(|_| MaskChain::new(aes.clone(), c0, num_masks))
            .collect();
        let auths = members
            .iter()
            .map(|_| AuthEngine::new(aes.clone(), auth_iv))
            .collect();
        let schedule = AuthSchedule::new(auth_interval, members.clone());
        GroupFabric {
            gid,
            members,
            session_key: *session_key,
            chains,
            auths,
            schedule,
            mac_bits,
            alarms: Vec::new(),
            halted: false,
        }
    }

    /// The group id.
    pub fn gid(&self) -> GroupId {
        self.gid
    }

    /// Group members.
    pub fn members(&self) -> &[ProcessorId] {
        &self.members
    }

    /// Whether an alarm has halted the group.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Alarms raised so far.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    fn member_index(&self, pid: ProcessorId) -> usize {
        self.members
            .iter()
            .position(|&p| p == pid)
            .expect("pid must be a group member")
    }

    /// Sender-side SHU: encrypts `data` and emits the bus message. The
    /// sender's chain advances and its auth engine absorbs the plaintext.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is not a member.
    pub fn send(&mut self, sender: ProcessorId, data: &[Block]) -> BusMessage {
        let idx = self.member_index(sender);
        let payload = self.chains[idx].encrypt_payload(data, u32::from(sender.value()));
        self.auths[idx].observe_payload(data, sender);
        BusMessage {
            tag: MessageTag {
                gid: self.gid,
                pid: sender,
            },
            payload,
        }
    }

    /// Receiver-side SHU: decrypts a snooped message at member `to`,
    /// advancing its chain and absorbing into its auth engine. Returns the
    /// recovered plaintext, or `None` when the receiver refuses the message
    /// (own-PID spoof detection — an immediate alarm).
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a member.
    pub fn deliver(&mut self, msg: &BusMessage, to: ProcessorId) -> Option<Vec<Block>> {
        let idx = self.member_index(to);
        if msg.tag.pid == to {
            // "P should not receive its own message from the bus."
            self.raise(to, AlarmReason::OwnPidSpoofed);
            return None;
        }
        let data = self.chains[idx].decrypt_payload(&msg.payload, u32::from(msg.tag.pid.value()));
        self.auths[idx].observe_payload(&data, msg.tag.pid);
        Some(data)
    }

    /// The common un-attacked path: send from `sender` and deliver to every
    /// other member; then tick the authentication schedule, running a round
    /// if due. Returns each receiver's recovered plaintext.
    pub fn broadcast(&mut self, sender: ProcessorId, data: &[Block]) -> Vec<(ProcessorId, Vec<Block>)> {
        let msg = self.send(sender, data);
        let receivers: Vec<ProcessorId> = self
            .members
            .iter()
            .copied()
            .filter(|&p| p != sender)
            .collect();
        let mut out = Vec::with_capacity(receivers.len());
        for r in receivers {
            if let Some(d) = self.deliver(&msg, r) {
                out.push((r, d));
            }
        }
        if let Some(initiator) = self.schedule.tick() {
            self.run_auth_round(initiator);
        }
        out
    }

    /// Ticks the authentication schedule for one externally-managed
    /// message (used by attack scenarios that drive send/deliver manually).
    /// Runs a round if due and returns its outcome.
    pub fn tick_auth(&mut self) -> Option<AuthOutcome> {
        self.schedule.tick().map(|init| self.run_auth_round(init))
    }

    /// Forces an authentication round now with the given initiator.
    pub fn run_auth_round(&mut self, initiator: ProcessorId) -> AuthOutcome {
        let engines: Vec<(ProcessorId, &AuthEngine)> = self
            .members
            .iter()
            .copied()
            .zip(self.auths.iter())
            .collect();
        let outcome = authenticate_round(&engines, initiator, self.mac_bits);
        if let AuthOutcome::AlarmRaised { ref dissenting, .. } = outcome {
            let d = dissenting.clone();
            self.raise(
                initiator,
                AlarmReason::AuthMismatch {
                    dissenting: d,
                },
            );
        }
        outcome
    }

    fn raise(&mut self, pid: ProcessorId, reason: AlarmReason) {
        self.alarms.push(Alarm { pid, reason });
        self.halted = true;
    }

    /// Swaps the group out: serializes every member's mask chain and MAC
    /// state, seals it with AES-GCM under the session key, and consumes
    /// the fabric. The returned blob is safe to store in untrusted
    /// memory.
    pub fn suspend(self) -> SuspendedGroup {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(self.members.len() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.mac_bits as u64).to_le_bytes());
        buf.extend_from_slice(&self.schedule.interval().to_le_bytes());
        for pid in &self.members {
            buf.push(pid.value());
        }
        for chain in &self.chains {
            let (masks, seq) = chain.snapshot();
            buf.extend_from_slice(&(masks.len() as u64).to_le_bytes());
            buf.extend_from_slice(&seq.to_le_bytes());
            for m in masks {
                buf.extend_from_slice(m.as_bytes());
            }
        }
        for auth in &self.auths {
            let (state, absorbed) = auth.mac_snapshot();
            buf.extend_from_slice(state.as_bytes());
            buf.extend_from_slice(&absorbed.to_le_bytes());
        }
        let mut nonce = [0u8; 12];
        nonce[..2].copy_from_slice(&self.gid.value().to_le_bytes());
        nonce[4..].copy_from_slice(&self.chains[0].seq().to_le_bytes());
        let gcm = Gcm::new(Aes::new_128(&self.session_key));
        let (ciphertext, tag) = gcm.encrypt(&nonce, b"senss-context", &buf);
        SuspendedGroup {
            gid: self.gid,
            ciphertext,
            tag,
            nonce,
        }
    }

    /// Resumes a swapped-out group. Fails if the stored context was
    /// tampered with in memory.
    ///
    /// # Errors
    ///
    /// [`CryptoError::TagMismatch`] on a corrupted context;
    /// [`CryptoError::BadLength`] on truncation.
    pub fn resume(
        suspended: &SuspendedGroup,
        session_key: &[u8; 16],
    ) -> Result<GroupFabric, CryptoError> {
        let gcm = Gcm::new(Aes::new_128(session_key));
        let buf = gcm.decrypt(
            &suspended.nonce,
            b"senss-context",
            &suspended.ciphertext,
            suspended.tag,
        )?;
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], CryptoError> {
            if pos + n > buf.len() {
                return Err(CryptoError::BadLength { len: buf.len() });
            }
            let s = &buf[pos..pos + n];
            pos += n;
            Ok(s)
        };
        let read_u64 = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8 bytes"));
        let n_members = read_u64(take(8)?) as usize;
        let mac_bits = read_u64(take(8)?) as usize;
        let interval = read_u64(take(8)?);
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            members.push(ProcessorId::new(take(1)?[0]));
        }
        let aes = Aes::new_128(session_key);
        let mut chains = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            let n_masks = read_u64(take(8)?) as usize;
            let seq = read_u64(take(8)?);
            let mut masks = Vec::with_capacity(n_masks);
            for _ in 0..n_masks {
                masks.push(Block::from_slice(take(16)?));
            }
            chains.push(MaskChain::resume(aes.clone(), masks, seq));
        }
        let mut auths = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            let state = Block::from_slice(take(16)?);
            let absorbed = read_u64(take(8)?);
            auths.push(AuthEngine::from_mac_snapshot(
                ChainedMac::resume(aes.clone(), state, absorbed),
                absorbed,
            ));
        }
        let schedule = AuthSchedule::new(interval, members.clone());
        Ok(GroupFabric {
            gid: suspended.gid,
            members,
            session_key: *session_key,
            chains,
            auths,
            schedule,
            mac_bits,
            alarms: Vec::new(),
            halted: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: u8, interval: u64) -> GroupFabric {
        GroupFabric::new(
            GroupId::new(1),
            (0..n).map(ProcessorId::new).collect(),
            &[0x44; 16],
            Block::from([1; 16]),
            Block::from([2; 16]),
            2,
            interval,
            64,
        )
    }

    fn line(tag: u8) -> Vec<Block> {
        (0..4u8).map(|i| Block::from([tag.wrapping_add(i); 16])).collect()
    }

    #[test]
    fn clean_broadcasts_stay_consistent() {
        let mut f = fabric(4, 10);
        for i in 0..100u8 {
            let sender = ProcessorId::new(i % 4);
            let data = line(i);
            let got = f.broadcast(sender, &data);
            assert_eq!(got.len(), 3);
            for (_, d) in got {
                assert_eq!(d, data, "message {i}");
            }
        }
        assert!(!f.is_halted());
        assert!(f.alarms().is_empty());
    }

    #[test]
    fn wire_payload_is_not_plaintext() {
        let mut f = fabric(2, 100);
        let data = line(9);
        let msg = f.send(ProcessorId::new(0), &data);
        assert_ne!(msg.payload, data);
    }

    #[test]
    fn own_pid_spoof_detected_immediately() {
        let mut f = fabric(3, 100);
        // Forge a message claiming to come from P1 and show it to P1.
        let forged = BusMessage {
            tag: MessageTag {
                gid: GroupId::new(1),
                pid: ProcessorId::new(1),
            },
            payload: line(0),
        };
        assert!(f.deliver(&forged, ProcessorId::new(1)).is_none());
        assert!(f.is_halted());
        assert_eq!(f.alarms()[0].reason, AlarmReason::OwnPidSpoofed);
    }

    #[test]
    fn explicit_auth_round_on_clean_traffic_is_consistent() {
        let mut f = fabric(2, 1000);
        f.broadcast(ProcessorId::new(0), &line(1));
        assert_eq!(
            f.run_auth_round(ProcessorId::new(1)),
            AuthOutcome::Consistent
        );
    }

    #[test]
    #[should_panic(expected = "IVs must differ")]
    fn equal_ivs_rejected() {
        GroupFabric::new(
            GroupId::new(0),
            vec![ProcessorId::new(0)],
            &[0; 16],
            Block::ZERO,
            Block::ZERO,
            2,
            1,
            64,
        );
    }

    #[test]
    fn suspend_resume_preserves_lockstep() {
        let mut f = fabric(3, 1000);
        for i in 0..7u8 {
            f.broadcast(ProcessorId::new(i % 3), &line(i));
        }
        let suspended = f.suspend();
        let mut resumed = GroupFabric::resume(&suspended, &[0x44; 16]).unwrap();
        // Traffic continues seamlessly after the swap-in.
        for i in 7..20u8 {
            let data = line(i);
            for (_, got) in resumed.broadcast(ProcessorId::new(i % 3), &data) {
                assert_eq!(got, data, "post-resume message {i}");
            }
        }
        assert!(!resumed.is_halted());
        assert_eq!(
            resumed.run_auth_round(ProcessorId::new(1)),
            AuthOutcome::Consistent
        );
    }

    #[test]
    fn tampered_context_fails_resume() {
        let f = fabric(2, 10);
        let mut suspended = f.suspend();
        suspended.ciphertext[3] ^= 1;
        assert!(GroupFabric::resume(&suspended, &[0x44; 16]).is_err());
    }

    #[test]
    fn wrong_key_fails_resume() {
        let f = fabric(2, 10);
        let suspended = f.suspend();
        assert!(GroupFabric::resume(&suspended, &[0x45; 16]).is_err());
    }

    #[test]
    fn auth_interval_drives_rounds() {
        let mut f = fabric(2, 5);
        for i in 0..25u8 {
            f.broadcast(ProcessorId::new(i % 2), &line(i));
        }
        // 25 messages / interval 5 = 5 rounds; all consistent.
        assert!(!f.is_halted());
    }
}
