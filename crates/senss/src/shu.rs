//! The Security Hardware Unit (SHU) tables — §5, Figure 4.
//!
//! Each processor's SHU holds two structures:
//!
//! * the **group-processor bit matrix** — indexed by GID and PID, a set bit
//!   at `(g, p)` means processor `p` belongs to group `g`. A snooping SHU
//!   indexes it with the message tag in O(1) to decide whether to pick a
//!   message up. A row is all-zero on processors that are not themselves
//!   members of that group (a processor must not know another group's
//!   membership).
//! * the **group information table** — per GID: an *occupied* bit, the
//!   128-bit session key, the mask set, and the authentication-interval
//!   counter. GIDs are allocated from this table when a program is loaded
//!   and reclaimed at exit; an occupied GID is marked on **all** processors
//!   (members and non-members) so it cannot be concurrently reused.
//!
//! [`BitMatrix::storage_bits`] and [`GroupInfoTable::storage_bits`]
//! reproduce the paper's §7.1 hardware accounting (640 B matrix;
//! 1161 bits/entry ⇒ ≈148.6 KB table).

use crate::group::{GroupId, ProcessorId, MAX_GROUPS, MAX_PROCESSORS};
use senss_crypto::Block;

/// The group-processor bit matrix.
#[derive(Debug, Clone)]
pub struct BitMatrix {
    rows: Vec<u32>, // one u32 bit-row per group (MAX_PROCESSORS = 32)
}

impl Default for BitMatrix {
    fn default() -> BitMatrix {
        BitMatrix::new()
    }
}

impl BitMatrix {
    /// Creates an all-zero matrix.
    pub fn new() -> BitMatrix {
        BitMatrix {
            rows: vec![0; MAX_GROUPS],
        }
    }

    /// Sets membership of `pid` in `gid`.
    pub fn set(&mut self, gid: GroupId, pid: ProcessorId) {
        self.rows[gid.index()] |= 1 << pid.index();
    }

    /// Clears membership of `pid` in `gid`.
    pub fn clear(&mut self, gid: GroupId, pid: ProcessorId) {
        self.rows[gid.index()] &= !(1 << pid.index());
    }

    /// Clears a whole group row (group teardown).
    pub fn clear_group(&mut self, gid: GroupId) {
        self.rows[gid.index()] = 0;
    }

    /// O(1) membership test — the snoop-path lookup.
    pub fn contains(&self, gid: GroupId, pid: ProcessorId) -> bool {
        self.rows[gid.index()] & (1 << pid.index()) != 0
    }

    /// All member PIDs of a group.
    pub fn members(&self, gid: GroupId) -> Vec<ProcessorId> {
        let row = self.rows[gid.index()];
        (0..MAX_PROCESSORS as u8)
            .filter(|p| row & (1 << p) != 0)
            .map(ProcessorId::new)
            .collect()
    }

    /// The paper's storage accounting: 1024 entries × 5 bits = 640 bytes
    /// (§7.1 encodes the 32-processor membership compactly).
    pub fn storage_bits() -> usize {
        MAX_GROUPS * 5
    }
}

/// One entry of the group information table.
#[derive(Debug, Clone)]
pub struct GroupEntry {
    /// Allocation bit — set on **every** processor once the GID is taken.
    pub occupied: bool,
    /// The group's 128-bit session key (None on non-member processors,
    /// which hold the occupied bit but no secrets).
    pub session_key: Option<[u8; 16]>,
    /// The group's current mask values (members only).
    pub masks: Vec<Block>,
    /// Authentication-interval counter (bus transfers since last auth).
    pub ctr: u8,
}

/// The per-processor group information table.
#[derive(Debug, Clone)]
pub struct GroupInfoTable {
    entries: Vec<Option<GroupEntry>>,
    masks_per_group: usize,
}

impl GroupInfoTable {
    /// Creates a table sized for [`MAX_GROUPS`] with `masks_per_group`
    /// masks per entry (the paper stores 8).
    pub fn new(masks_per_group: usize) -> GroupInfoTable {
        GroupInfoTable {
            entries: (0..MAX_GROUPS).map(|_| None).collect(),
            masks_per_group,
        }
    }

    /// Finds a free GID and marks it occupied, returning it. This is the
    /// allocation step performed when the OS loads a program.
    pub fn allocate(&mut self) -> Option<GroupId> {
        let idx = self.entries.iter().position(|e| e.is_none())?;
        self.entries[idx] = Some(GroupEntry {
            occupied: true,
            session_key: None,
            masks: Vec::new(),
            ctr: 0,
        });
        Some(GroupId::new(idx as u16))
    }

    /// Marks a specific GID occupied (the broadcast that reserves the GID
    /// on non-member processors too).
    pub fn occupy(&mut self, gid: GroupId) -> bool {
        if self.entries[gid.index()].is_some() {
            return false;
        }
        self.entries[gid.index()] = Some(GroupEntry {
            occupied: true,
            session_key: None,
            masks: Vec::new(),
            ctr: 0,
        });
        true
    }

    /// Installs the decrypted session key and initial masks (members only).
    ///
    /// # Panics
    ///
    /// Panics if the GID has not been occupied first.
    pub fn install_secrets(&mut self, gid: GroupId, key: [u8; 16], masks: Vec<Block>) {
        let entry = self.entries[gid.index()]
            .as_mut()
            .expect("GID must be occupied before secrets install");
        entry.session_key = Some(key);
        entry.masks = masks;
    }

    /// Reads an entry.
    pub fn get(&self, gid: GroupId) -> Option<&GroupEntry> {
        self.entries[gid.index()].as_ref()
    }

    /// Mutable entry access.
    pub fn get_mut(&mut self, gid: GroupId) -> Option<&mut GroupEntry> {
        self.entries[gid.index()].as_mut()
    }

    /// Releases a GID at program exit.
    pub fn release(&mut self, gid: GroupId) {
        self.entries[gid.index()] = None;
    }

    /// Number of occupied entries.
    pub fn occupied_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// The paper's §7.1 accounting: per entry, 1 occupied bit, a 128-bit
    /// key, an 8-bit counter and `masks × 128` mask bits. With 8 masks:
    /// 1161 bits/entry, or about 148.6 KB for 1024 entries.
    pub fn storage_bits(&self) -> usize {
        MAX_GROUPS * (1 + 128 + 8 + self.masks_per_group * 128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_set_clear_contains() {
        let mut m = BitMatrix::new();
        let g = GroupId::new(5);
        let p = ProcessorId::new(2);
        assert!(!m.contains(g, p));
        m.set(g, p);
        assert!(m.contains(g, p));
        m.clear(g, p);
        assert!(!m.contains(g, p));
    }

    #[test]
    fn matrix_members_enumerates() {
        let mut m = BitMatrix::new();
        let g = GroupId::new(1);
        for p in [0u8, 3, 31] {
            m.set(g, ProcessorId::new(p));
        }
        let members: Vec<u8> = m.members(g).iter().map(|p| p.value()).collect();
        assert_eq!(members, vec![0, 3, 31]);
        m.clear_group(g);
        assert!(m.members(g).is_empty());
    }

    #[test]
    fn matrix_storage_is_640_bytes() {
        // §7.1: "1024 entries × 5 bits per entry = 640 bytes".
        assert_eq!(BitMatrix::storage_bits() / 8, 640);
    }

    #[test]
    fn table_allocation_cycle() {
        let mut t = GroupInfoTable::new(8);
        let g1 = t.allocate().unwrap();
        let g2 = t.allocate().unwrap();
        assert_ne!(g1, g2);
        assert_eq!(t.occupied_count(), 2);
        t.release(g1);
        assert_eq!(t.occupied_count(), 1);
        // The freed GID is reusable.
        let g3 = t.allocate().unwrap();
        assert_eq!(g3, g1);
    }

    #[test]
    fn occupy_prevents_double_use() {
        let mut t = GroupInfoTable::new(8);
        let g = GroupId::new(7);
        assert!(t.occupy(g));
        assert!(!t.occupy(g), "GID reuse must be refused");
    }

    #[test]
    fn secrets_only_after_occupation() {
        let mut t = GroupInfoTable::new(8);
        let g = t.allocate().unwrap();
        t.install_secrets(g, [9; 16], vec![Block::ZERO; 8]);
        let e = t.get(g).unwrap();
        assert_eq!(e.session_key, Some([9; 16]));
        assert_eq!(e.masks.len(), 8);
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn secrets_without_occupation_panic() {
        let mut t = GroupInfoTable::new(8);
        t.install_secrets(GroupId::new(3), [0; 16], vec![]);
    }

    #[test]
    fn table_storage_matches_paper() {
        // §7.1: 1161 bits per entry, 1024 entries ≈ 148.6 KB.
        let t = GroupInfoTable::new(8);
        assert_eq!(t.storage_bits() / MAX_GROUPS, 1161);
        let kb = t.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((kb - 145.1).abs() < 1.0, "≈145 KiB (paper rounds to 148.6 KB decimal): {kb}");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut t = GroupInfoTable::new(1);
        for _ in 0..MAX_GROUPS {
            assert!(t.allocate().is_some());
        }
        assert!(t.allocate().is_none());
    }
}
