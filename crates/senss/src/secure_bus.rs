//! The SENSS timing layer for the simulator: [`SenssExtension`].
//!
//! This is the object a `senss_sim::System` is parameterized with to turn
//! the stock SMP into a SENSS machine. It models the paper's costs:
//!
//! * **+3 cycles** per cache-to-cache data transfer (1 cycle sender XOR,
//!   1 cycle receiver GID lookup, 1 cycle receiver XOR — §7.1),
//! * **mask availability stalls** through a [`MaskArray`] driven by the
//!   80-cycle AES unit (§4.4; the paper's Figure 7 sweeps 1/2/4/perfect),
//! * **authentication transactions** injected every `auth_interval`
//!   cache-to-cache transfers (§4.3; Figure 9 sweeps 1/10/32/100),
//! * optionally, the §6 cache-to-memory protection: pad requests, pad
//!   invalidates and Merkle ancestor chains via a
//!   [`senss_memprot::MemProtPolicy`] (Figure 10).

use crate::mask::{MaskArray, PERFECT_MASKS};
use senss_memprot::MemProtPolicy;
use senss_sim::bus::{Transaction, TxnKind};
use senss_sim::extension::{Extension, FollowUp};
use senss_trace::{TraceEvent, Tracer};

/// Which encryption/authentication algorithm pair the SHU runs (§4.3
/// *Implications*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CipherMode {
    /// The paper's scheme: CBC-AES masks for encryption plus a second AES
    /// pass per block for the chained MAC (two pipeline issues/transfer).
    #[default]
    CbcTwoPass,
    /// The GCM alternative: ciphertext and MAC from a single AES pass,
    /// with the tag computed by GF(2^128) multiplication.
    GcmSinglePass,
}

impl CipherMode {
    fn issues_per_use(self) -> u64 {
        match self {
            CipherMode::CbcTwoPass => 2,
            CipherMode::GcmSinglePass => 1,
        }
    }
}

/// Configuration of the SENSS security layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SenssConfig {
    /// Number of encryption masks ([`PERFECT_MASKS`] for an unbounded
    /// supply).
    pub num_masks: usize,
    /// Cache-to-cache transfers between authentication transactions.
    pub auth_interval: u64,
    /// Fixed per-transfer critical-path cycles (the paper's 3).
    pub per_transfer_overhead: u64,
    /// AES unit latency in cycles (mask regeneration).
    pub aes_latency: u64,
    /// AES pipeline initiation interval in cycles (one block per bus
    /// cycle at the paper's throughput).
    pub aes_initiation_interval: u64,
    /// Number of processors (round-robin auth initiators).
    pub num_processors: usize,
    /// Encryption/authentication algorithm pair.
    pub cipher: CipherMode,
}

impl SenssConfig {
    /// The paper's highest-security default: interval-100 authentication,
    /// 8 masks, +3 cycles, 80-cycle AES at bus-matched throughput.
    pub fn paper_default(num_processors: usize) -> SenssConfig {
        SenssConfig {
            num_masks: 8,
            auth_interval: 100,
            per_transfer_overhead: 3,
            aes_latency: 80,
            aes_initiation_interval: 10,
            num_processors,
            cipher: CipherMode::CbcTwoPass,
        }
    }

    /// Same but with a perfect mask supply (Figure 6/8/9 runs).
    pub fn with_perfect_masks(mut self) -> SenssConfig {
        self.num_masks = PERFECT_MASKS;
        self
    }

    /// Sets the authentication interval (Figure 9 sweep).
    pub fn with_auth_interval(mut self, interval: u64) -> SenssConfig {
        self.auth_interval = interval;
        self
    }

    /// Sets the mask count (Figure 7 sweep).
    pub fn with_masks(mut self, masks: usize) -> SenssConfig {
        self.num_masks = masks;
        self
    }

    /// Selects the cipher mode (ablation: CBC two-pass vs GCM one-pass).
    pub fn with_cipher(mut self, cipher: CipherMode) -> SenssConfig {
        self.cipher = cipher;
        self
    }
}

/// SENSS-layer statistics accumulated during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SenssStats {
    /// Cache-to-cache transfers secured.
    pub secured_transfers: u64,
    /// Authentication transactions injected.
    pub auth_rounds: u64,
    /// Pad invalidate broadcasts injected.
    pub pad_invalidates: u64,
    /// Blocking pad requests demanded.
    pub pad_requests: u64,
}

/// Per-group security state: each group owns its masks and its
/// authentication counter (the SHU's group information table row).
#[derive(Debug)]
struct GroupState {
    masks: MaskArray,
    transfers_since_auth: u64,
    next_initiator_idx: usize,
    members: Vec<usize>,
}

/// The simulator extension implementing the SENSS model.
#[derive(Debug)]
pub struct SenssExtension {
    cfg: SenssConfig,
    groups: Vec<GroupState>,
    /// pid -> index into `groups`.
    group_of: Vec<usize>,
    stats: SenssStats,
    memprot: Option<MemProtPolicy>,
}

impl SenssExtension {
    /// Creates the bus-security-only extension (Figures 6–9) with a single
    /// group spanning all processors.
    pub fn new(cfg: SenssConfig) -> SenssExtension {
        let all: Vec<usize> = (0..cfg.num_processors).collect();
        SenssExtension::with_groups(cfg, vec![all])
    }

    /// Creates the extension with an explicit processor grouping: each
    /// group gets its own mask array and authentication counter, exactly
    /// as the SHU's group information table keeps per-GID state (§5.2).
    /// Processors not listed in any group join group 0.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty, any group is empty, or a pid is out of
    /// range.
    pub fn with_groups(cfg: SenssConfig, groups: Vec<Vec<usize>>) -> SenssExtension {
        assert!(!groups.is_empty(), "need at least one group");
        let mut group_of = vec![0usize; cfg.num_processors];
        let states: Vec<GroupState> = groups
            .into_iter()
            .enumerate()
            .map(|(g, members)| {
                assert!(!members.is_empty(), "a group needs members");
                for &pid in &members {
                    assert!(pid < cfg.num_processors, "pid {pid} out of range");
                    group_of[pid] = g;
                }
                GroupState {
                    masks: MaskArray::new(
                        cfg.num_masks,
                        cfg.aes_latency,
                        cfg.aes_initiation_interval,
                    )
                    .with_issues_per_use(cfg.cipher.issues_per_use()),
                    transfers_since_auth: 0,
                    next_initiator_idx: 0,
                    members,
                }
            })
            .collect();
        SenssExtension {
            groups: states,
            group_of,
            stats: SenssStats::default(),
            memprot: None,
            cfg,
        }
    }

    /// Adds the §6 cache-to-memory protection (Figure 10's
    /// `SENSS+Mem_OTP_CHash`).
    pub fn with_memory_protection(mut self, policy: MemProtPolicy) -> SenssExtension {
        self.memprot = Some(policy);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &SenssConfig {
        &self.cfg
    }

    /// SENSS-layer statistics.
    pub fn stats(&self) -> &SenssStats {
        &self.stats
    }

    /// The mask array of group `g` (stall statistics).
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a valid group index.
    pub fn group_masks(&self, g: usize) -> &MaskArray {
        &self.groups[g].masks
    }

    /// The first group's mask array (the common single-group case).
    pub fn masks(&self) -> &MaskArray {
        self.group_masks(0)
    }

    /// Number of groups configured.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The memory-protection policy, if attached.
    pub fn memory_protection(&self) -> Option<&MemProtPolicy> {
        self.memprot.as_ref()
    }

    /// The §7.1 bus augmentation: 2 message-type lines + 10 GID lines on
    /// top of the modelled machine's 378 — a 3.1% increase.
    pub fn extra_bus_lines() -> (usize, usize, f64) {
        let base = 378;
        let extra = 2 + 10;
        (base, extra, extra as f64 / base as f64 * 100.0)
    }
}

impl Extension for SenssExtension {
    fn transfer_start_delay(
        &mut self,
        txn: &Transaction,
        now: u64,
        tracer: &mut Tracer<'_>,
    ) -> u64 {
        let g = self.group_of[txn.request.pid];
        let stall = self.groups[g].masks.acquire(now);
        tracer.emit(|| TraceEvent::ShuEncrypt {
            time: now,
            pid: txn.request.pid as u32,
            token: txn.request.token,
            stall,
        });
        stall
    }

    fn transfer_extra_latency(&mut self, _txn: &Transaction) -> u64 {
        self.cfg.per_transfer_overhead
    }

    fn transaction_complete(
        &mut self,
        txn: &Transaction,
        now: u64,
        tracer: &mut Tracer<'_>,
    ) -> Vec<FollowUp> {
        let mut followups = Vec::new();
        if txn.is_cache_to_cache() {
            self.stats.secured_transfers += 1;
            let g = self.group_of[txn.request.pid];
            let group = &mut self.groups[g];
            group.transfers_since_auth += 1;
            if group.transfers_since_auth >= self.cfg.auth_interval {
                group.transfers_since_auth = 0;
                let initiator = group.members[group.next_initiator_idx % group.members.len()];
                group.next_initiator_idx += 1;
                self.stats.auth_rounds += 1;
                let auth_round = self.stats.auth_rounds;
                tracer.emit(|| TraceEvent::ShuVerify {
                    time: now,
                    pid: initiator as u32,
                    token: txn.request.token,
                    auth_round,
                });
                followups.push(FollowUp::Auth { initiator });
            }
        }
        if txn.request.kind == TxnKind::Writeback {
            if let Some(mp) = self.memprot.as_mut() {
                if mp.writeback_needs_broadcast(txn.request.pid, txn.request.addr) {
                    self.stats.pad_invalidates += 1;
                    followups.push(FollowUp::PadInvalidate {
                        pid: txn.request.pid,
                        addr: txn.request.addr,
                    });
                }
            }
        }
        followups
    }

    fn pad_request_needed(&mut self, pid: usize, addr: u64) -> bool {
        match self.memprot.as_mut() {
            Some(mp) => {
                let needed = mp.fill_needs_pad_request(pid, addr);
                if needed {
                    self.stats.pad_requests += 1;
                }
                needed
            }
            None => false,
        }
    }

    fn integrity_chain(&mut self, pid: usize, addr: u64) -> Vec<u64> {
        match self.memprot.as_mut() {
            Some(mp) => mp.fill_integrity_chain(pid, addr),
            None => Vec::new(),
        }
    }

    fn writeback_chain(&mut self, pid: usize, addr: u64) -> Vec<u64> {
        match self.memprot.as_mut() {
            Some(mp) => mp.writeback_integrity_chain(pid, addr),
            None => Vec::new(),
        }
    }

    fn hash_latency(&self) -> u64 {
        if self.memprot.is_some() {
            160
        } else {
            0
        }
    }

    fn snapshot(&self, out: &mut Vec<(String, u64)>) {
        out.push(("shu.secured".into(), self.stats.secured_transfers));
        out.push(("shu.auth_rounds".into(), self.stats.auth_rounds));
        out.push(("shu.pad_inv".into(), self.stats.pad_invalidates));
        out.push(("shu.pad_req".into(), self.stats.pad_requests));
        for (i, group) in self.groups.iter().enumerate() {
            out.push((format!("g{i}.auth"), group.transfers_since_auth));
            out.push((format!("g{i}.init"), group.next_initiator_idx as u64));
            let (slots, aes_next, aes_issued, acquisitions, total_stall) =
                group.masks.export_state();
            out.push((format!("g{i}.aes.next"), aes_next));
            out.push((format!("g{i}.aes.issued"), aes_issued));
            out.push((format!("g{i}.acq"), acquisitions));
            out.push((format!("g{i}.stall"), total_stall));
            out.push((format!("g{i}.mask.len"), slots.len() as u64));
            for (j, &at) in slots.iter().enumerate() {
                out.push((format!("g{i}.mask.{j}"), at));
            }
        }
        if let Some(mp) = &self.memprot {
            mp.snapshot_into(out);
        }
    }

    fn restore(&mut self, state: &[(String, u64)]) {
        let map: std::collections::BTreeMap<&str, u64> =
            state.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let get = |k: String| -> u64 {
            *map.get(k.as_str())
                .unwrap_or_else(|| panic!("snapshot missing key {k}"))
        };
        self.stats.secured_transfers = get("shu.secured".into());
        self.stats.auth_rounds = get("shu.auth_rounds".into());
        self.stats.pad_invalidates = get("shu.pad_inv".into());
        self.stats.pad_requests = get("shu.pad_req".into());
        for (i, group) in self.groups.iter_mut().enumerate() {
            group.transfers_since_auth = get(format!("g{i}.auth"));
            group.next_initiator_idx = get(format!("g{i}.init")) as usize;
            let len = get(format!("g{i}.mask.len")) as usize;
            let slots: Vec<u64> = (0..len).map(|j| get(format!("g{i}.mask.{j}"))).collect();
            group.masks.restore_state(
                &slots,
                get(format!("g{i}.aes.next")),
                get(format!("g{i}.aes.issued")),
                get(format!("g{i}.acq")),
                get(format!("g{i}.stall")),
            );
        }
        if let Some(mp) = self.memprot.as_mut() {
            mp.restore_from(&map);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senss_memprot::{MemProtConfig, MemProtPolicy};
    use senss_sim::bus::{BusRequest, Supplier};
    use senss_sim::config::SystemConfig;
    use senss_sim::system::System;
    use senss_sim::trace::{Op, VecTrace};

    fn c2c_txn(pid: usize) -> Transaction {
        Transaction {
            request: BusRequest {
                pid,
                kind: TxnKind::Read,
                addr: 0x40,
                blocking: true,
                token: 0,
            },
            supplier: Supplier::Cache(1 - pid),
            granted_at: 0,
        }
    }

    /// A fresh disabled tracer for direct hook calls.
    fn tr() -> Tracer<'static> {
        Tracer::disabled()
    }

    fn mem_txn() -> Transaction {
        Transaction {
            request: BusRequest {
                pid: 0,
                kind: TxnKind::Read,
                addr: 0x40,
                blocking: true,
                token: 0,
            },
            supplier: Supplier::Memory,
            granted_at: 0,
        }
    }

    #[test]
    fn overhead_is_three_cycles() {
        let mut e = SenssExtension::new(SenssConfig::paper_default(2));
        assert_eq!(e.transfer_extra_latency(&c2c_txn(0)), 3);
    }

    #[test]
    fn auth_fires_every_interval_with_round_robin_initiators() {
        let cfg = SenssConfig::paper_default(2).with_auth_interval(2);
        let mut e = SenssExtension::new(cfg);
        let mut initiators = Vec::new();
        for i in 0..8 {
            for f in e.transaction_complete(&c2c_txn(i % 2), 0, &mut tr()) {
                match f {
                    FollowUp::Auth { initiator } => initiators.push(initiator),
                    other => panic!("unexpected follow-up {other:?}"),
                }
            }
        }
        assert_eq!(initiators, vec![0, 1, 0, 1]);
        assert_eq!(e.stats().auth_rounds, 4);
        assert_eq!(e.stats().secured_transfers, 8);
    }

    #[test]
    fn memory_fills_do_not_tick_the_auth_counter() {
        let cfg = SenssConfig::paper_default(2).with_auth_interval(1);
        let mut e = SenssExtension::new(cfg);
        assert!(e.transaction_complete(&mem_txn(), 0, &mut tr()).is_empty());
        assert_eq!(e.stats().secured_transfers, 0);
    }

    #[test]
    fn mask_stalls_surface_with_one_mask() {
        let cfg = SenssConfig::paper_default(2).with_masks(1);
        let mut e = SenssExtension::new(cfg);
        assert_eq!(e.transfer_start_delay(&c2c_txn(0), 0, &mut tr()), 0);
        let stall = e.transfer_start_delay(&c2c_txn(1), 10, &mut tr());
        assert_eq!(stall, 70, "second transfer waits out the AES latency");
    }

    #[test]
    fn shu_events_reach_a_live_tracer() {
        use senss_trace::{RingSink, TraceEvent};
        let cfg = SenssConfig::paper_default(2).with_auth_interval(1);
        let mut e = SenssExtension::new(cfg);
        let mut sink = RingSink::new();
        let mut tracer = Tracer::of(&mut sink);
        e.transfer_start_delay(&c2c_txn(0), 5, &mut tracer);
        let followups = e.transaction_complete(&c2c_txn(0), 9, &mut tracer);
        assert_eq!(followups.len(), 1, "interval of 1 fires auth immediately");
        let events: Vec<_> = sink.events().copied().collect();
        assert_eq!(events.len(), 2);
        match events[0] {
            TraceEvent::ShuEncrypt { time, pid, stall, .. } => {
                assert_eq!(time, 5);
                assert_eq!(pid, 0);
                assert_eq!(stall, 0);
            }
            other => panic!("expected ShuEncrypt, got {other:?}"),
        }
        match events[1] {
            TraceEvent::ShuVerify {
                time, auth_round, ..
            } => {
                assert_eq!(time, 9);
                assert_eq!(auth_round, 1, "round number is 1-based");
            }
            other => panic!("expected ShuVerify, got {other:?}"),
        }
    }

    #[test]
    fn perfect_masks_never_stall() {
        let cfg = SenssConfig::paper_default(2).with_perfect_masks();
        let mut e = SenssExtension::new(cfg);
        for t in 0..100 {
            assert_eq!(e.transfer_start_delay(&c2c_txn(0), t, &mut tr()), 0);
        }
    }

    #[test]
    fn memprot_hooks_route_to_policy() {
        let policy = MemProtPolicy::new(MemProtConfig::paper_default(2));
        let mut e =
            SenssExtension::new(SenssConfig::paper_default(2)).with_memory_protection(policy);
        assert!(!e.integrity_chain(0, 0x1000).is_empty());
        assert_eq!(e.hash_latency(), 160);
        // A write-back after which another processor fills the same line.
        let wb = Transaction {
            request: BusRequest {
                pid: 0,
                kind: TxnKind::Writeback,
                addr: 0x1000,
                blocking: false,
                token: 0,
            },
            supplier: Supplier::None,
            granted_at: 0,
        };
        e.transaction_complete(&wb, 0, &mut tr());
        assert!(e.pad_request_needed(1, 0x1000));
        assert_eq!(e.stats().pad_requests, 1);
    }

    #[test]
    fn without_memprot_hooks_are_inert() {
        let mut e = SenssExtension::new(SenssConfig::paper_default(2));
        assert!(e.integrity_chain(0, 0x1000).is_empty());
        assert!(e.writeback_chain(0, 0x1000).is_empty());
        assert!(!e.pad_request_needed(0, 0x1000));
        assert_eq!(e.hash_latency(), 0);
    }

    #[test]
    fn extra_bus_lines_match_paper() {
        let (base, extra, pct) = SenssExtension::extra_bus_lines();
        assert_eq!(base, 378);
        assert_eq!(extra, 12);
        assert!((pct - 3.17).abs() < 0.1, "§7.1 reports ≈3.1%: {pct}");
    }

    #[test]
    fn groups_have_independent_auth_counters() {
        // Two 2-processor groups on a 4-way machine: transfers in group 0
        // must not tick group 1's counter.
        let cfg = SenssConfig::paper_default(4).with_auth_interval(2);
        let mut e = SenssExtension::with_groups(cfg, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(e.num_groups(), 2);
        // Three transfers inside group 0 -> exactly one auth (after 2).
        let mut auths = Vec::new();
        for _ in 0..3 {
            for f in e.transaction_complete(&c2c_txn(0), 0, &mut tr()) {
                if let FollowUp::Auth { initiator } = f {
                    auths.push(initiator);
                }
            }
        }
        assert_eq!(auths, vec![0], "group-0 initiator, one round");
        // Group 1's counter is untouched: its first transfer fires nothing.
        let t = Transaction {
            request: BusRequest {
                pid: 2,
                kind: TxnKind::Read,
                addr: 0x80,
                blocking: true,
                token: 0,
            },
            supplier: Supplier::Cache(3),
            granted_at: 0,
        };
        assert!(e.transaction_complete(&t, 0, &mut tr()).is_empty());
    }

    #[test]
    fn auth_initiators_stay_inside_the_group() {
        let cfg = SenssConfig::paper_default(4).with_auth_interval(1);
        let mut e = SenssExtension::with_groups(cfg, vec![vec![0, 1], vec![2, 3]]);
        let t = Transaction {
            request: BusRequest {
                pid: 3,
                kind: TxnKind::Read,
                addr: 0x80,
                blocking: true,
                token: 0,
            },
            supplier: Supplier::Cache(2),
            granted_at: 0,
        };
        for _ in 0..4 {
            for f in e.transaction_complete(&t, 0, &mut tr()) {
                if let FollowUp::Auth { initiator } = f {
                    assert!(initiator == 2 || initiator == 3);
                }
            }
        }
    }

    #[test]
    fn gcm_mode_stalls_less_at_peak_rate() {
        let mk = |cipher: CipherMode| {
            let mut e = SenssExtension::new(
                SenssConfig::paper_default(2).with_cipher(cipher).with_masks(8),
            );
            let mut stall = 0;
            for i in 0..200u64 {
                stall += e.transfer_start_delay(&c2c_txn(0), i * 10, &mut tr());
            }
            stall
        };
        let cbc = mk(CipherMode::CbcTwoPass);
        let gcm = mk(CipherMode::GcmSinglePass);
        assert_eq!(gcm, 0);
        assert!(cbc > gcm, "CBC's second pass must congest: {cbc} vs {gcm}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_group_pid_rejected() {
        let _ = SenssExtension::with_groups(
            SenssConfig::paper_default(2),
            vec![vec![0, 5]],
        );
    }

    #[test]
    fn end_to_end_senss_run_is_slower_but_close() {
        // A sharing-heavy two-core trace: SENSS must add auth transactions
        // and a small slowdown, nothing catastrophic.
        let mk_traces = || {
            let a: VecTrace = (0..200)
                .map(|i| {
                    if i % 2 == 0 {
                        Op::write(20, (i % 16) * 64)
                    } else {
                        Op::read(20, (i % 16) * 64)
                    }
                })
                .collect();
            let b: VecTrace = (0..200)
                .map(|i| Op::read(25, ((i + 8) % 16) * 64))
                .collect();
            vec![a, b]
        };
        let cfg = SystemConfig::e6000(2, 1 << 20);
        let base = System::new(cfg.clone(), mk_traces(), senss_sim::NullExtension).run();
        let mut sys = System::new(
            cfg,
            mk_traces(),
            SenssExtension::new(SenssConfig::paper_default(2).with_auth_interval(10)),
        );
        let secured = sys.run();
        assert!(secured.txn_auth > 0, "auth transactions must appear");
        let slowdown = secured.slowdown_vs(&base);
        assert!(
            slowdown > -1.0 && slowdown < 15.0,
            "slowdown out of plausible range: {slowdown}%"
        );
    }
}
