//! Group and processor identities, and message tagging (§4.1).
//!
//! Every bus message in SENSS is tagged by the SHU with the originating
//! processor id (PID) and the group id (GID) of the application it belongs
//! to, so that (a) each processor only picks up messages of groups it is a
//! member of, and (b) the authentication algorithm can bind each message
//! to its originator. The paper budgets 10 bits of GID (1024 simultaneous
//! groups) and reuses the bus's existing source-id lines for the PID.

use std::fmt;

/// Maximum number of simultaneously active groups (10-bit GID, §7.1).
pub const MAX_GROUPS: usize = 1024;

/// Maximum number of processors on the bus (§7.1 sizes tables for 32).
pub const MAX_PROCESSORS: usize = 32;

/// A group identifier (10 bits on the augmented bus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(u16);

impl GroupId {
    /// Creates a group id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= MAX_GROUPS`.
    pub fn new(id: u16) -> GroupId {
        assert!((id as usize) < MAX_GROUPS, "GID must be below {MAX_GROUPS}");
        GroupId(id)
    }

    /// The raw 10-bit value.
    pub fn value(self) -> u16 {
        self.0
    }

    /// Index form for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// A processor identifier (the bus's source id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessorId(u8);

impl ProcessorId {
    /// Creates a processor id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= MAX_PROCESSORS`.
    pub fn new(id: u8) -> ProcessorId {
        assert!(
            (id as usize) < MAX_PROCESSORS,
            "PID must be below {MAX_PROCESSORS}"
        );
        ProcessorId(id)
    }

    /// The raw value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Index form for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The (GID, PID) tag the SHU attaches to every bus message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MessageTag {
    /// Owning group.
    pub gid: GroupId,
    /// Originating processor.
    pub pid: ProcessorId,
}

impl fmt::Display for MessageTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.gid, self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_construct_and_display() {
        let g = GroupId::new(17);
        let p = ProcessorId::new(3);
        assert_eq!(g.value(), 17);
        assert_eq!(p.value(), 3);
        assert_eq!(format!("{}", MessageTag { gid: g, pid: p }), "G17:P3");
    }

    #[test]
    #[should_panic(expected = "GID")]
    fn gid_range_checked() {
        GroupId::new(1024);
    }

    #[test]
    #[should_panic(expected = "PID")]
    fn pid_range_checked() {
        ProcessorId::new(32);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(GroupId::new(1) < GroupId::new(2));
        assert!(ProcessorId::new(0) < ProcessorId::new(31));
    }
}
