//! Bus authentication: the chained CBC-MAC over transfer history (§4.3).
//!
//! Every group member folds each cache-to-cache message — the data block
//! *and its originating PID* — into a running CBC-MAC seeded with an IV
//! distinct from the encryption chain's. A per-group counter ticks on
//! every transfer; when it reaches the configured interval, the initiating
//! processor (round-robin across the group) puts its MAC on the bus and
//! all members compare. Interval 1 authenticates every transfer; larger
//! intervals trade detection *latency* (never coverage — the chain never
//! forgets) for bus bandwidth.
//!
//! [`BaselineAuth`] is the non-chained per-message scheme (Shi et al.)
//! used as the paper's §8 comparison: it verifies each message in
//! isolation and so cannot see message dropping or spoof-to-subset.

use crate::group::ProcessorId;
use senss_crypto::aes::Aes;
use senss_crypto::mac::{ChainedMac, UnchainedMac};
use senss_crypto::Block;

/// Outcome of a group authentication round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthOutcome {
    /// All members agreed on the MAC.
    Consistent,
    /// Disagreement — the global alarm: which members differed from the
    /// initiator.
    AlarmRaised {
        /// The round-robin initiator whose MAC went on the bus.
        initiator: ProcessorId,
        /// Members whose local MAC differed.
        dissenting: Vec<ProcessorId>,
    },
}

/// One processor's authentication engine for one group.
#[derive(Debug, Clone)]
pub struct AuthEngine {
    mac: ChainedMac,
    transfers_seen: u64,
}

impl AuthEngine {
    /// Creates an engine with the group's session cipher and the
    /// authentication IV (must differ from the encryption IV, §4.3).
    pub fn new(aes: Aes, auth_iv: Block) -> AuthEngine {
        AuthEngine {
            mac: ChainedMac::new(aes, auth_iv),
            transfers_seen: 0,
        }
    }

    /// Folds a snooped transfer into the history.
    pub fn observe(&mut self, data: Block, pid: ProcessorId) {
        self.mac.absorb_tagged(data, u32::from(pid.value()));
        self.transfers_seen += 1;
    }

    /// Folds a multi-block payload (one absorb per block — each bus beat
    /// is a MAC block).
    pub fn observe_payload(&mut self, payload: &[Block], pid: ProcessorId) {
        for &b in payload {
            self.observe(b, pid);
        }
    }

    /// The current MAC truncated to `m` bits.
    pub fn mac(&self, m: usize) -> Block {
        self.mac.tag(m)
    }

    /// Transfers folded so far.
    pub fn transfers_seen(&self) -> u64 {
        self.transfers_seen
    }

    /// Snapshots the underlying MAC chain for an encrypted context
    /// swap-out (§4.2). Secret material — encrypt before writing out.
    pub fn mac_snapshot(&self) -> (Block, u64) {
        self.mac.snapshot()
    }

    /// Rebuilds an engine from a resumed MAC chain.
    pub fn from_mac_snapshot(mac: ChainedMac, transfers_seen: u64) -> AuthEngine {
        AuthEngine {
            mac,
            transfers_seen,
        }
    }
}

/// Group-wide authentication coordinator: tracks the interval counter and
/// the round-robin initiator.
#[derive(Debug, Clone)]
pub struct AuthSchedule {
    interval: u64,
    since_last: u64,
    rounds: u64,
    members: Vec<ProcessorId>,
}

impl AuthSchedule {
    /// Creates a schedule authenticating every `interval` transfers across
    /// the given members.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `members` is empty.
    pub fn new(interval: u64, members: Vec<ProcessorId>) -> AuthSchedule {
        assert!(interval > 0, "authentication interval must be positive");
        assert!(!members.is_empty(), "a group needs members");
        AuthSchedule {
            interval,
            since_last: 0,
            rounds: 0,
            members,
        }
    }

    /// The configured interval.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Ticks the counter for one observed transfer; returns the initiator
    /// if an authentication round is now due.
    pub fn tick(&mut self) -> Option<ProcessorId> {
        self.since_last += 1;
        if self.since_last >= self.interval {
            self.since_last = 0;
            let initiator = self.members[(self.rounds as usize) % self.members.len()];
            self.rounds += 1;
            Some(initiator)
        } else {
            None
        }
    }

    /// Completed rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

/// Runs one authentication round over all members' engines: the initiator
/// broadcasts its MAC and everyone compares (`m`-bit tags).
pub fn authenticate_round(
    engines: &[(ProcessorId, &AuthEngine)],
    initiator: ProcessorId,
    m: usize,
) -> AuthOutcome {
    let initiator_mac = engines
        .iter()
        .find(|(p, _)| *p == initiator)
        .map(|(_, e)| e.mac(m))
        .expect("initiator must be a member");
    let dissenting: Vec<ProcessorId> = engines
        .iter()
        .filter(|(_, e)| e.mac(m) != initiator_mac)
        .map(|(p, _)| *p)
        .collect();
    if dissenting.is_empty() {
        AuthOutcome::Consistent
    } else {
        AuthOutcome::AlarmRaised {
            initiator,
            dissenting,
        }
    }
}

/// The non-chained per-message baseline (Shi et al. [20]).
#[derive(Debug, Clone)]
pub struct BaselineAuth {
    mac: UnchainedMac,
    m: usize,
}

impl BaselineAuth {
    /// Creates the baseline with an `m`-bit tag.
    pub fn new(aes: Aes, iv: Block, m: usize) -> BaselineAuth {
        BaselineAuth {
            mac: UnchainedMac::new(aes, iv),
            m,
        }
    }

    /// Tags one message.
    pub fn tag(&self, data: Block) -> Block {
        self.mac.tag(data, self.m)
    }

    /// Verifies one message in isolation — valid replays and messages the
    /// verifier never saw dropped are invisible to this check.
    pub fn verify(&self, data: Block, tag: Block) -> bool {
        self.mac.verify(data, tag, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aes() -> Aes {
        Aes::new_128(&[0x3c; 16])
    }

    fn iv() -> Block {
        Block::from([0x99; 16])
    }

    fn pids(n: u8) -> Vec<ProcessorId> {
        (0..n).map(ProcessorId::new).collect()
    }

    #[test]
    fn consistent_group_authenticates() {
        let mut engines: Vec<AuthEngine> =
            (0..4).map(|_| AuthEngine::new(aes(), iv())).collect();
        for i in 0..50u8 {
            let d = Block::from([i; 16]);
            let pid = ProcessorId::new(i % 4);
            for e in engines.iter_mut() {
                e.observe(d, pid);
            }
        }
        let refs: Vec<(ProcessorId, &AuthEngine)> = pids(4)
            .into_iter()
            .zip(engines.iter())
            .collect();
        assert_eq!(
            authenticate_round(&refs, ProcessorId::new(0), 64),
            AuthOutcome::Consistent
        );
    }

    #[test]
    fn divergent_member_raises_alarm() {
        let mut engines: Vec<AuthEngine> =
            (0..3).map(|_| AuthEngine::new(aes(), iv())).collect();
        let d = Block::from([0x42; 16]);
        engines[0].observe(d, ProcessorId::new(0));
        engines[1].observe(d, ProcessorId::new(0));
        // Member 2 saw a *different* block (tampered in flight).
        engines[2].observe(Block::from([0x43; 16]), ProcessorId::new(0));
        let refs: Vec<(ProcessorId, &AuthEngine)> =
            pids(3).into_iter().zip(engines.iter()).collect();
        match authenticate_round(&refs, ProcessorId::new(0), 128) {
            AuthOutcome::AlarmRaised { dissenting, .. } => {
                assert_eq!(dissenting, vec![ProcessorId::new(2)]);
            }
            other => panic!("expected alarm, got {other:?}"),
        }
    }

    #[test]
    fn schedule_fires_every_interval() {
        let mut s = AuthSchedule::new(3, pids(2));
        assert_eq!(s.tick(), None);
        assert_eq!(s.tick(), None);
        assert_eq!(s.tick(), Some(ProcessorId::new(0)));
        assert_eq!(s.tick(), None);
        assert_eq!(s.tick(), None);
        // Round-robin initiator.
        assert_eq!(s.tick(), Some(ProcessorId::new(1)));
        assert_eq!(s.rounds(), 2);
    }

    #[test]
    fn interval_one_fires_every_transfer() {
        let mut s = AuthSchedule::new(1, pids(4));
        let initiators: Vec<u8> = (0..8).map(|_| s.tick().unwrap().value()).collect();
        assert_eq!(initiators, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn interval_never_loses_coverage() {
        // A tamper inside an interval is still caught at the interval end:
        // the chain remembers everything since the last round.
        let mut good = AuthEngine::new(aes(), iv());
        let mut bad = AuthEngine::new(aes(), iv());
        for i in 0..99u8 {
            let d = Block::from([i; 16]);
            good.observe(d, ProcessorId::new(0));
            // One corrupted message at position 7, clean elsewhere.
            let seen = if i == 7 { Block::from([0xFF; 16]) } else { d };
            bad.observe(seen, ProcessorId::new(0));
        }
        assert_ne!(good.mac(64), bad.mac(64));
    }

    #[test]
    fn payload_observation_counts_blocks() {
        let mut e = AuthEngine::new(aes(), iv());
        let payload: Vec<Block> = (0..4u8).map(|i| Block::from([i; 16])).collect();
        e.observe_payload(&payload, ProcessorId::new(1));
        assert_eq!(e.transfers_seen(), 4);
    }

    #[test]
    fn baseline_verifies_but_forgets() {
        let b = BaselineAuth::new(aes(), iv(), 64);
        let d = Block::from([0x10; 16]);
        let t = b.tag(d);
        assert!(b.verify(d, t));
        // Replay of the identical (message, tag) pair still verifies —
        // the weakness the chained scheme closes.
        assert!(b.verify(d, t));
        assert!(!b.verify(Block::from([0x11; 16]), t));
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_rejected() {
        AuthSchedule::new(0, pids(1));
    }

    #[test]
    #[should_panic(expected = "members")]
    fn empty_group_rejected() {
        AuthSchedule::new(1, vec![]);
    }
}
