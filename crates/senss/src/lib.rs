//! **SENSS** — Security ENhancement to Symmetric Shared-memory
//! multiprocessor Systems (HPCA 2005), reproduced in Rust.
//!
//! On an SMP, the uniprocessor secure-processor model (XOM/AEGIS-style
//! memory encryption + integrity trees) leaves one channel exposed: the
//! **cache-to-cache transfers** that the snooping coherence protocol puts
//! on the shared bus in cleartext. SENSS closes it with two mechanisms:
//!
//! * **Bus encryption** ([`busenc`], [`mask`]): every transfer is XORed
//!   with a *mask* — the previous AES output in a CBC-style chain — so
//!   encryption costs one XOR on the critical path while the AES runs in
//!   the background. Multiple masks ([`mask::MaskArray`]) hide the AES
//!   latency under back-to-back transfers (§4.4).
//! * **Bus authentication** ([`auth`]): all group members fold every
//!   transfer (data + originating PID) into a chained CBC-MAC and
//!   periodically compare MACs on the bus. The chain remembers the whole
//!   history, so dropping (Type 1), reordering (Type 2) and spoofing
//!   (Type 3) attacks are all caught — including ones invisible to
//!   per-message MAC schemes (§4.3).
//!
//! Around these sit the SHU hardware model ([`shu`]), group management and
//! message tagging ([`group`]), program dispatch ([`dispatch`]), the
//! functional bus fabric attacked in `senss-attacks` ([`fabric`]), and the
//! simulator timing layer ([`secure_bus`]) that regenerates the paper's
//! figures together with `senss-sim`, `senss-workloads` and
//! `senss-memprot`.
//!
//! # Quickstart
//!
//! ```
//! use senss::prelude::*;
//! use senss_sim::{System, SystemConfig};
//! use senss_workloads::Workload;
//!
//! // An insecure baseline and a SENSS run of the same workload:
//! let cfg = SystemConfig::e6000(2, 1 << 20);
//! let base = System::new(cfg.clone(), Workload::Ocean.generate(2, 2_000, 1),
//!                        senss_sim::NullExtension).run();
//! let senss = System::new(cfg, Workload::Ocean.generate(2, 2_000, 1),
//!                         SenssExtension::new(SenssConfig::paper_default(2))).run();
//! println!("slowdown: {:.2}%", senss.slowdown_vs(&base));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod auth;
pub mod busenc;
pub mod dispatch;
pub mod fabric;
pub mod gcm_fabric;
pub mod group;
pub mod mask;
pub mod secure_bus;
pub mod shu;

/// The most commonly used types, re-exported.
pub mod prelude {
    pub use crate::auth::{AuthEngine, AuthOutcome, AuthSchedule};
    pub use crate::busenc::MaskChain;
    pub use crate::fabric::{Alarm, AlarmReason, BusMessage, GroupFabric};
    pub use crate::gcm_fabric::{GcmDeliveryError, GcmFabric, GcmMessage};
    pub use crate::group::{GroupId, MessageTag, ProcessorId};
    pub use crate::mask::{MaskArray, PERFECT_MASKS};
    pub use crate::secure_bus::{CipherMode, SenssConfig, SenssExtension, SenssStats};
    pub use crate::shu::{BitMatrix, GroupInfoTable};
}

pub use prelude::*;
