//! A GCM-based secure-bus fabric — the §4.3 *Implications* alternative.
//!
//! The paper notes that "newly developed algorithms … can provide
//! encryption and fast MACs calculation involving only one invoking of
//! AES such as the GCM algorithm". This module implements that variant
//! functionally: each bus message is sealed with AES-GCM under a nonce
//! derived from the group's *total message order* (every member sees
//! every message on the snooping bus, so the sequence number is known to
//! all without transmission), giving:
//!
//! * **immediate** per-message integrity (a tampered message fails its
//!   tag on arrival — no wait for the next authentication round),
//! * **immediate** reorder/replay detection (the nonce encodes the
//!   sequence number: a swapped or replayed message decrypts under the
//!   wrong nonce and fails authentication),
//! * history binding like the CBC scheme: every member additionally folds
//!   each message tag into a chained MAC, so *dropping* a message (which
//!   the victim never sees, hence can't tag-check) is still caught at the
//!   next round — the attack per-message schemes miss.

use crate::auth::{authenticate_round, AuthEngine, AuthOutcome};
use crate::fabric::{Alarm, AlarmReason};
use crate::group::{GroupId, MessageTag, ProcessorId};
use senss_crypto::aes::Aes;
use senss_crypto::gcm::Gcm;
use senss_crypto::Block;

/// A sealed GCM bus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcmMessage {
    /// GID/PID tag attached by the sending SHU.
    pub tag: MessageTag,
    /// Position in the group's total message order.
    pub seq: u64,
    /// GCM ciphertext.
    pub ciphertext: Vec<u8>,
    /// GCM authentication tag.
    pub auth_tag: Block,
}

/// Per-message delivery failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcmDeliveryError {
    /// The receiver's expected sequence number disagrees (reorder, replay
    /// or an earlier drop) — detected on the spot.
    SequenceMismatch {
        /// What the receiver expected.
        expected: u64,
        /// What the message claimed.
        got: u64,
    },
    /// The GCM tag failed (tampered payload or forged origin).
    TagFailure,
    /// A message carrying the receiver's own PID that it never sent.
    OwnPidSpoofed,
}

/// One group's GCM fabric state across all members.
#[derive(Debug)]
pub struct GcmFabric {
    gid: GroupId,
    members: Vec<ProcessorId>,
    gcm: Gcm,
    /// Each member's view of the total order (advances on send/deliver).
    expected_seq: Vec<u64>,
    /// Sender's allocation of the next sequence number.
    next_seq: u64,
    history: Vec<AuthEngine>,
    mac_bits: usize,
    alarms: Vec<Alarm>,
}

impl GcmFabric {
    /// Creates the fabric (compare [`crate::fabric::GroupFabric::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(
        gid: GroupId,
        members: Vec<ProcessorId>,
        session_key: &[u8; 16],
        history_iv: Block,
        mac_bits: usize,
    ) -> GcmFabric {
        assert!(!members.is_empty(), "a group needs members");
        let aes = Aes::new_128(session_key);
        let history = members
            .iter()
            .map(|_| AuthEngine::new(aes.clone(), history_iv))
            .collect();
        GcmFabric {
            gid,
            gcm: Gcm::new(aes),
            expected_seq: vec![0; members.len()],
            next_seq: 0,
            history,
            mac_bits,
            members,
            alarms: Vec::new(),
        }
    }

    /// The group id.
    pub fn gid(&self) -> GroupId {
        self.gid
    }

    /// Alarms raised so far.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    fn member_index(&self, pid: ProcessorId) -> usize {
        self.members
            .iter()
            .position(|&p| p == pid)
            .expect("pid must be a group member")
    }

    /// Nonce = GID ‖ PID ‖ seq: unique per message within the group's
    /// lifetime, derivable by every snooping member.
    fn nonce(&self, pid: ProcessorId, seq: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[..2].copy_from_slice(&self.gid.value().to_le_bytes());
        n[2] = pid.value();
        n[4..].copy_from_slice(&seq.to_le_bytes());
        n
    }

    /// Seals and sends a message (one AES pass per block inside GCM).
    pub fn send(&mut self, sender: ProcessorId, data: &[u8]) -> GcmMessage {
        let idx = self.member_index(sender);
        let seq = self.next_seq;
        let nonce = self.nonce(sender, seq);
        let aad = [sender.value()];
        let (ciphertext, auth_tag) = self.gcm.encrypt(&nonce, &aad, data);
        self.next_seq += 1;
        self.expected_seq[idx] = self.next_seq;
        self.history[idx].observe(auth_tag, sender);
        GcmMessage {
            tag: MessageTag {
                gid: self.gid,
                pid: sender,
            },
            seq,
            ciphertext,
            auth_tag,
        }
    }

    /// Receives a snooped message at member `to`: sequence check, tag
    /// check, history fold.
    ///
    /// # Errors
    ///
    /// Every error also raises a fabric alarm (the receiving SHU halts
    /// the program).
    pub fn deliver(
        &mut self,
        msg: &GcmMessage,
        to: ProcessorId,
    ) -> Result<Vec<u8>, GcmDeliveryError> {
        let idx = self.member_index(to);
        if msg.tag.pid == to {
            self.alarms.push(Alarm {
                pid: to,
                reason: AlarmReason::OwnPidSpoofed,
            });
            return Err(GcmDeliveryError::OwnPidSpoofed);
        }
        let expected = self.expected_seq[idx];
        if msg.seq != expected {
            self.alarms.push(Alarm {
                pid: to,
                reason: AlarmReason::AuthMismatch {
                    dissenting: vec![to],
                },
            });
            return Err(GcmDeliveryError::SequenceMismatch {
                expected,
                got: msg.seq,
            });
        }
        let nonce = self.nonce(msg.tag.pid, msg.seq);
        let aad = [msg.tag.pid.value()];
        match self.gcm.decrypt(&nonce, &aad, &msg.ciphertext, msg.auth_tag) {
            Ok(pt) => {
                self.expected_seq[idx] = expected + 1;
                // Keep the sender's next_seq in sync with the furthest
                // observer (all members track the same total order).
                self.next_seq = self.next_seq.max(expected + 1);
                self.history[idx].observe(msg.auth_tag, msg.tag.pid);
                Ok(pt)
            }
            Err(_) => {
                self.alarms.push(Alarm {
                    pid: to,
                    reason: AlarmReason::AuthMismatch {
                        dissenting: vec![to],
                    },
                });
                Err(GcmDeliveryError::TagFailure)
            }
        }
    }

    /// Periodic history comparison: catches drops, where the victim has
    /// nothing to tag-check.
    pub fn run_auth_round(&mut self, initiator: ProcessorId) -> AuthOutcome {
        let engines: Vec<(ProcessorId, &AuthEngine)> = self
            .members
            .iter()
            .copied()
            .zip(self.history.iter())
            .collect();
        let outcome = authenticate_round(&engines, initiator, self.mac_bits);
        if let AuthOutcome::AlarmRaised { ref dissenting, .. } = outcome {
            self.alarms.push(Alarm {
                pid: initiator,
                reason: AlarmReason::AuthMismatch {
                    dissenting: dissenting.clone(),
                },
            });
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: u8) -> GcmFabric {
        GcmFabric::new(
            GroupId::new(4),
            (0..n).map(ProcessorId::new).collect(),
            &[0x66; 16],
            Block::from([0x10; 16]),
            64,
        )
    }

    #[test]
    fn clean_traffic_roundtrips() {
        let mut f = fabric(3);
        for i in 0..30u8 {
            let sender = ProcessorId::new(i % 3);
            let data = vec![i; 48];
            let msg = f.send(sender, &data);
            for r in 0..3u8 {
                let r = ProcessorId::new(r);
                if r == sender {
                    continue;
                }
                assert_eq!(f.deliver(&msg, r).unwrap(), data, "msg {i}");
            }
        }
        assert!(f.alarms().is_empty());
        assert_eq!(
            f.run_auth_round(ProcessorId::new(0)),
            AuthOutcome::Consistent
        );
    }

    #[test]
    fn tampering_is_detected_immediately() {
        let mut f = fabric(2);
        let mut msg = f.send(ProcessorId::new(0), &[7u8; 32]);
        msg.ciphertext[5] ^= 1;
        assert_eq!(
            f.deliver(&msg, ProcessorId::new(1)),
            Err(GcmDeliveryError::TagFailure)
        );
        assert!(!f.alarms().is_empty());
    }

    #[test]
    fn replay_is_detected_immediately_by_sequence() {
        let mut f = fabric(2);
        let msg = f.send(ProcessorId::new(0), &[1u8; 16]);
        assert!(f.deliver(&msg, ProcessorId::new(1)).is_ok());
        // Replay the captured message.
        assert!(matches!(
            f.deliver(&msg, ProcessorId::new(1)),
            Err(GcmDeliveryError::SequenceMismatch { .. })
        ));
    }

    #[test]
    fn swap_is_detected_immediately_by_sequence() {
        let mut f = fabric(2);
        let m1 = f.send(ProcessorId::new(0), &[1u8; 16]);
        let m2 = f.send(ProcessorId::new(0), &[2u8; 16]);
        // Deliver out of order: the receiver expects seq 0 first.
        assert!(matches!(
            f.deliver(&m2, ProcessorId::new(1)),
            Err(GcmDeliveryError::SequenceMismatch { expected: 0, got: 1 })
        ));
        let _ = m1;
    }

    #[test]
    fn drop_still_needs_the_history_round() {
        // A dropped message gives the victim nothing to check — only the
        // chained history comparison sees it, as with the CBC scheme.
        let mut f = fabric(3);
        let msg = f.send(ProcessorId::new(0), &[9u8; 16]);
        f.deliver(&msg, ProcessorId::new(1)).unwrap();
        // P2 never sees it; nothing fails locally yet.
        assert!(f.alarms().is_empty());
        match f.run_auth_round(ProcessorId::new(0)) {
            AuthOutcome::AlarmRaised { dissenting, .. } => {
                assert!(dissenting.contains(&ProcessorId::new(2)));
            }
            other => panic!("drop undetected: {other:?}"),
        }
    }

    #[test]
    fn own_pid_spoof_detected() {
        let mut f = fabric(2);
        let msg = GcmMessage {
            tag: MessageTag {
                gid: GroupId::new(4),
                pid: ProcessorId::new(1),
            },
            seq: 0,
            ciphertext: vec![0; 16],
            auth_tag: Block::ZERO,
        };
        assert_eq!(
            f.deliver(&msg, ProcessorId::new(1)),
            Err(GcmDeliveryError::OwnPidSpoofed)
        );
    }

    #[test]
    fn forged_origin_fails_tag() {
        // Valid-looking message claiming the wrong sender: AAD mismatch.
        let mut f = fabric(3);
        let mut msg = f.send(ProcessorId::new(0), &[3u8; 16]);
        msg.tag.pid = ProcessorId::new(2); // spoof the originator
        assert_eq!(
            f.deliver(&msg, ProcessorId::new(1)),
            Err(GcmDeliveryError::TagFailure)
        );
    }
}
