//! Property tests for the GCM fabric variant.

use proptest::prelude::*;
use senss::gcm_fabric::{GcmDeliveryError, GcmFabric};
use senss::group::{GroupId, ProcessorId};
use senss_crypto::Block;

fn fabric(key: [u8; 16], n: u8) -> GcmFabric {
    GcmFabric::new(
        GroupId::new(6),
        (0..n).map(ProcessorId::new).collect(),
        &key,
        Block::from([0x31; 16]),
        64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary clean traffic roundtrips for every receiver under GCM.
    #[test]
    fn gcm_traffic_roundtrips(
        key in proptest::array::uniform16(any::<u8>()),
        n in 2u8..5,
        msgs in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..96)),
            1..25,
        ),
    ) {
        let mut f = fabric(key, n);
        for (s, data) in msgs {
            let sender = ProcessorId::new(s % n);
            let msg = f.send(sender, &data);
            for r in 0..n {
                let r = ProcessorId::new(r);
                if r == sender {
                    continue;
                }
                prop_assert_eq!(f.deliver(&msg, r).unwrap(), data.clone());
            }
        }
        prop_assert!(f.alarms().is_empty());
    }

    /// Any single-bit ciphertext flip fails immediately at every receiver.
    #[test]
    fn gcm_catches_any_bit_flip(
        key in proptest::array::uniform16(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 1..64),
        bit in any::<usize>(),
    ) {
        let mut f = fabric(key, 2);
        let mut msg = f.send(ProcessorId::new(0), &data);
        let nbits = msg.ciphertext.len() * 8;
        let b = bit % nbits;
        msg.ciphertext[b / 8] ^= 1 << (b % 8);
        prop_assert_eq!(
            f.deliver(&msg, ProcessorId::new(1)),
            Err(GcmDeliveryError::TagFailure)
        );
    }

    /// A replayed message always trips the sequence check, regardless of
    /// how much clean traffic separates capture from replay.
    #[test]
    fn gcm_catches_replay_after_any_gap(
        key in proptest::array::uniform16(any::<u8>()),
        gap in 0usize..20,
    ) {
        let mut f = fabric(key, 2);
        let captured = f.send(ProcessorId::new(0), b"capture me");
        f.deliver(&captured, ProcessorId::new(1)).unwrap();
        for i in 0..gap {
            let m = f.send(ProcessorId::new(0), &[i as u8; 8]);
            f.deliver(&m, ProcessorId::new(1)).unwrap();
        }
        let replay_result = f.deliver(&captured, ProcessorId::new(1));
        let caught = matches!(replay_result, Err(GcmDeliveryError::SequenceMismatch { .. }));
        prop_assert!(caught, "replay outcome: {:?}", replay_result);
    }
}
