//! Randomized-but-deterministic tests for the GCM fabric variant
//! (formerly proptest; now driven by the in-tree [`SplitMix64`]).

use senss::gcm_fabric::{GcmDeliveryError, GcmFabric};
use senss::group::{GroupId, ProcessorId};
use senss_crypto::rng::SplitMix64;
use senss_crypto::Block;

fn fabric(key: [u8; 16], n: u8) -> GcmFabric {
    GcmFabric::new(
        GroupId::new(6),
        (0..n).map(ProcessorId::new).collect(),
        &key,
        Block::from([0x31; 16]),
        64,
    )
}

fn key16(rng: &mut SplitMix64) -> [u8; 16] {
    let mut k = [0u8; 16];
    rng.fill_bytes(&mut k);
    k
}

fn bytes(rng: &mut SplitMix64, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// Arbitrary clean traffic roundtrips for every receiver under GCM.
#[test]
fn gcm_traffic_roundtrips() {
    let mut rng = SplitMix64::new(0xC1);
    for case in 0..32u64 {
        let key = key16(&mut rng);
        let n = 2 + (case % 3) as u8;
        let mut f = fabric(key, n);
        for _ in 0..1 + rng.next_below(24) {
            let sender = ProcessorId::new(rng.next_below(n as u64) as u8);
            let len = 1 + rng.next_below(95) as usize;
            let data = bytes(&mut rng, len);
            let msg = f.send(sender, &data);
            for r in 0..n {
                let r = ProcessorId::new(r);
                if r == sender {
                    continue;
                }
                assert_eq!(f.deliver(&msg, r).unwrap(), data);
            }
        }
        assert!(f.alarms().is_empty());
    }
}

/// Any single-bit ciphertext flip fails immediately at every receiver.
#[test]
fn gcm_catches_any_bit_flip() {
    let mut rng = SplitMix64::new(0xC2);
    for _ in 0..32 {
        let key = key16(&mut rng);
        let len = 1 + rng.next_below(63) as usize;
        let data = bytes(&mut rng, len);
        let mut f = fabric(key, 2);
        let mut msg = f.send(ProcessorId::new(0), &data);
        let nbits = msg.ciphertext.len() * 8;
        let b = rng.next_below(nbits as u64) as usize;
        msg.ciphertext[b / 8] ^= 1 << (b % 8);
        assert_eq!(
            f.deliver(&msg, ProcessorId::new(1)),
            Err(GcmDeliveryError::TagFailure)
        );
    }
}

/// A replayed message always trips the sequence check, regardless of how
/// much clean traffic separates capture from replay.
#[test]
fn gcm_catches_replay_after_any_gap() {
    let mut rng = SplitMix64::new(0xC3);
    for gap in 0usize..20 {
        let key = key16(&mut rng);
        let mut f = fabric(key, 2);
        let captured = f.send(ProcessorId::new(0), b"capture me");
        f.deliver(&captured, ProcessorId::new(1)).unwrap();
        for i in 0..gap {
            let m = f.send(ProcessorId::new(0), &[i as u8; 8]);
            f.deliver(&m, ProcessorId::new(1)).unwrap();
        }
        let replay_result = f.deliver(&captured, ProcessorId::new(1));
        let caught = matches!(replay_result, Err(GcmDeliveryError::SequenceMismatch { .. }));
        assert!(caught, "replay outcome: {replay_result:?}");
    }
}
