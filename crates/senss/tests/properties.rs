//! Randomized-but-deterministic tests of the SENSS security layer
//! (formerly proptest; now driven by the in-tree [`SplitMix64`]).

use senss::auth::AuthOutcome;
use senss::busenc::MaskChain;
use senss::fabric::GroupFabric;
use senss::group::{GroupId, ProcessorId};
use senss::mask::MaskArray;
use senss_crypto::aes::Aes;
use senss_crypto::rng::SplitMix64;
use senss_crypto::Block;

fn key16(rng: &mut SplitMix64) -> [u8; 16] {
    let mut k = [0u8; 16];
    rng.fill_bytes(&mut k);
    k
}

/// All group members recover every payload for any member count, mask
/// count and message mix.
#[test]
fn fabric_roundtrips_arbitrary_traffic() {
    let mut rng = SplitMix64::new(0xB1);
    for case in 0..48u64 {
        let key = key16(&mut rng);
        let n = 2 + (case % 4) as u8;
        let masks = 1 + (case % 8) as usize;
        let mut f = GroupFabric::new(
            GroupId::new(1),
            (0..n).map(ProcessorId::new).collect(),
            &key,
            Block::from([1; 16]),
            Block::from([2; 16]),
            masks,
            7,
            64,
        );
        let msgs = 1 + rng.next_below(30);
        for _ in 0..msgs {
            let sender = ProcessorId::new(rng.next_below(n as u64) as u8);
            let payload: Vec<Block> =
                (0..1 + rng.next_below(4)).map(|_| rng.next_block()).collect();
            for (_, got) in f.broadcast(sender, &payload) {
                assert_eq!(got, payload);
            }
        }
        assert!(!f.is_halted(), "clean traffic must not alarm");
    }
}

/// Dropping any single message from any single receiver is detected at
/// the next authentication round.
#[test]
fn any_single_drop_is_detected() {
    let mut rng = SplitMix64::new(0xB2);
    for _ in 0..48 {
        let key = key16(&mut rng);
        let msgs: Vec<Block> = (0..1 + rng.next_below(19)).map(|_| rng.next_block()).collect();
        let drop_idx = rng.next_below(msgs.len() as u64) as usize;
        let n = 3u8;
        let victim = ProcessorId::new(2);
        let mut f = GroupFabric::new(
            GroupId::new(2),
            (0..n).map(ProcessorId::new).collect(),
            &key,
            Block::from([3; 16]),
            Block::from([4; 16]),
            2,
            1_000_000,
            128,
        );
        let sender = ProcessorId::new(0);
        for (i, &d) in msgs.iter().enumerate() {
            let m = f.send(sender, &[d]);
            f.deliver(&m, ProcessorId::new(1));
            if i != drop_idx {
                f.deliver(&m, victim);
            }
        }
        match f.run_auth_round(sender) {
            AuthOutcome::AlarmRaised { dissenting, .. } => {
                assert!(dissenting.contains(&victim));
            }
            AuthOutcome::Consistent => panic!("drop went undetected"),
        }
    }
}

/// Mask chains in lock-step decrypt correctly for any mask count and any
/// pid sequence.
#[test]
fn mask_chain_lockstep() {
    let mut rng = SplitMix64::new(0xB3);
    for case in 0..48 {
        let key = key16(&mut rng);
        let c0 = rng.next_block();
        let k = 1 + case % 9;
        let mut s = MaskChain::new(Aes::new_128(&key), c0, k);
        let mut r = MaskChain::new(Aes::new_128(&key), c0, k);
        for _ in 0..1 + rng.next_below(50) {
            let pid = rng.next_u64() as u32;
            let d = rng.next_block();
            let p = s.encrypt(d, pid);
            assert_eq!(r.decrypt(p, pid), d);
        }
    }
}

/// Mask timing: total stall is zero whenever the inter-arrival gap times
/// the mask count covers the AES latency.
#[test]
fn mask_array_stall_bound() {
    let latency = 80u64;
    for k in 1u64..12 {
        for gap in 1u64..40 {
            let mut arr = MaskArray::new(k as usize, latency, 10);
            let mut total = 0;
            for i in 0..200 {
                total += arr.acquire(i * gap);
            }
            if k * gap >= latency && gap >= 10 {
                assert_eq!(total, 0, "k={k} gap={gap} should never stall");
            }
        }
    }
}

/// Stalls are bounded by the AES latency plus the pipeline backlog
/// (queueing theory bound: each earlier acquisition adds at most one
/// initiation interval), and the array's accounting matches the sum of
/// returned stalls.
#[test]
fn mask_stall_bounded_by_backlog() {
    let mut rng = SplitMix64::new(0xB4);
    for case in 0..48 {
        let k = 1 + case % 9;
        let steps = 1 + rng.next_below(79) as usize;
        let mut arr = MaskArray::new(k, 80, 10);
        let mut now = 0u64;
        let mut total = 0u64;
        for i in 0..steps {
            now += rng.next_below(50);
            let stall = arr.acquire(now);
            assert!(
                stall <= 80 * (i as u64 + 1),
                "stall {stall} exceeds cumulative latency bound at step {i}"
            );
            total += stall;
        }
        assert_eq!(arr.total_stall(), total);
        assert_eq!(arr.acquisitions(), steps as u64);
    }
}
