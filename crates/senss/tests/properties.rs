//! Property-based tests of the SENSS security layer.

use proptest::prelude::*;
use senss::auth::AuthOutcome;
use senss::busenc::MaskChain;
use senss::fabric::GroupFabric;
use senss::group::{GroupId, ProcessorId};
use senss::mask::MaskArray;
use senss_crypto::aes::Aes;
use senss_crypto::Block;

fn block() -> impl Strategy<Value = Block> {
    proptest::array::uniform16(any::<u8>()).prop_map(Block::from)
}

fn key16() -> impl Strategy<Value = [u8; 16]> {
    proptest::array::uniform16(any::<u8>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All group members recover every payload for any member count, mask
    /// count and message mix.
    #[test]
    fn fabric_roundtrips_arbitrary_traffic(
        key in key16(),
        n in 2u8..6,
        masks in 1usize..9,
        msgs in proptest::collection::vec((any::<u8>(), proptest::collection::vec(block(), 1..5)), 1..30),
    ) {
        let mut f = GroupFabric::new(
            GroupId::new(1),
            (0..n).map(ProcessorId::new).collect(),
            &key,
            Block::from([1; 16]),
            Block::from([2; 16]),
            masks,
            7,
            64,
        );
        for (s, payload) in msgs {
            let sender = ProcessorId::new(s % n);
            for (_, got) in f.broadcast(sender, &payload) {
                prop_assert_eq!(&got, &payload);
            }
        }
        prop_assert!(!f.is_halted(), "clean traffic must not alarm");
    }

    /// Dropping any single message from any single receiver is detected
    /// at the next authentication round.
    #[test]
    fn any_single_drop_is_detected(
        key in key16(),
        msgs in proptest::collection::vec(block(), 1..20),
        drop_at in any::<usize>(),
    ) {
        let n = 3u8;
        let drop_idx = drop_at % msgs.len();
        let victim = ProcessorId::new(2);
        let mut f = GroupFabric::new(
            GroupId::new(2),
            (0..n).map(ProcessorId::new).collect(),
            &key,
            Block::from([3; 16]),
            Block::from([4; 16]),
            2,
            1_000_000,
            128,
        );
        let sender = ProcessorId::new(0);
        for (i, &d) in msgs.iter().enumerate() {
            let m = f.send(sender, &[d]);
            f.deliver(&m, ProcessorId::new(1));
            if i != drop_idx {
                f.deliver(&m, victim);
            }
        }
        match f.run_auth_round(sender) {
            AuthOutcome::AlarmRaised { dissenting, .. } => {
                prop_assert!(dissenting.contains(&victim));
            }
            AuthOutcome::Consistent => prop_assert!(false, "drop went undetected"),
        }
    }

    /// Mask chains in lock-step decrypt correctly for any mask count and
    /// any pid sequence.
    #[test]
    fn mask_chain_lockstep(
        key in key16(), c0 in block(), k in 1usize..10,
        traffic in proptest::collection::vec((any::<u32>(), block()), 1..50),
    ) {
        let mut s = MaskChain::new(Aes::new_128(&key), c0, k);
        let mut r = MaskChain::new(Aes::new_128(&key), c0, k);
        for (pid, d) in traffic {
            let p = s.encrypt(d, pid);
            prop_assert_eq!(r.decrypt(p, pid), d);
        }
    }

    /// Mask timing: total stall is zero whenever the inter-arrival gap
    /// times the mask count covers the AES latency.
    #[test]
    fn mask_array_stall_bound(k in 1u64..12, gap in 1u64..40) {
        let latency = 80u64;
        let mut arr = MaskArray::new(k as usize, latency, 10);
        let mut total = 0;
        for i in 0..200 {
            total += arr.acquire(i * gap);
        }
        if k * gap >= latency && gap >= 10 {
            prop_assert_eq!(total, 0, "k={} gap={} should never stall", k, gap);
        }
    }

    /// Stalls are bounded by the AES latency plus the pipeline backlog
    /// (queueing theory bound: each earlier acquisition adds at most one
    /// initiation interval), and the array's accounting matches the sum
    /// of returned stalls.
    #[test]
    fn mask_stall_bounded_by_backlog(k in 1usize..10, times in proptest::collection::vec(0u64..50, 1..80)) {
        let mut arr = MaskArray::new(k, 80, 10);
        let mut now = 0u64;
        let mut total = 0u64;
        for (i, dt) in times.iter().enumerate() {
            now += dt;
            let stall = arr.acquire(now);
            prop_assert!(
                stall <= 80 * (i as u64 + 1),
                "stall {} exceeds cumulative latency bound at step {}", stall, i
            );
            total += stall;
        }
        prop_assert_eq!(arr.total_stall(), total);
        prop_assert_eq!(arr.acquisitions(), times.len() as u64);
    }
}
