//! Scripted attack scenarios against the functional secure-bus fabric.
//!
//! Each scenario builds a group, drives real encrypted traffic through
//! [`GroupFabric`], perturbs it the way the paper's adversary would, and
//! records two verdicts:
//!
//! * `detected_by_senss` — did the chained-MAC machinery raise the global
//!   alarm (immediately for own-PID spoofs, at the next authentication
//!   round otherwise)?
//! * `detected_by_baseline` — would a per-message MAC scheme (Shi et
//!   al.-style: every message carries an individually valid tag) have
//!   noticed anything? For Type 1 drops and Type 3 subset-spoofs it
//!   cannot: every message any processor *sees* verifies fine.

use senss::auth::{AuthOutcome, BaselineAuth};
use senss::fabric::{BusMessage, GroupFabric};
use senss::group::{GroupId, MessageTag, ProcessorId};
use senss_crypto::aes::Aes;
use senss_crypto::Block;

/// Outcome of one scripted attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackReport {
    /// Scenario name for reporting.
    pub name: &'static str,
    /// SENSS (chained MAC + tagging) caught it.
    pub detected_by_senss: bool,
    /// The per-message baseline caught it.
    pub detected_by_baseline: bool,
    /// Human-readable explanation of what happened.
    pub detail: String,
}

const KEY: [u8; 16] = [0x5E; 16];

fn fabric(n: u8, interval: u64) -> GroupFabric {
    GroupFabric::new(
        GroupId::new(3),
        (0..n).map(ProcessorId::new).collect(),
        &KEY,
        Block::from([0xC0; 16]),
        Block::from([0xA0; 16]),
        2,
        interval,
        64,
    )
}

fn line(tag: u8) -> Vec<Block> {
    (0..4u8)
        .map(|i| Block::from([tag.wrapping_mul(17).wrapping_add(i); 16]))
        .collect()
}

/// Baseline observer: tags every plaintext message like Shi et al.'s
/// per-transfer MAC and checks each delivered message in isolation.
fn baseline() -> BaselineAuth {
    BaselineAuth::new(Aes::new_128(&KEY), Block::from([0xB0; 16]), 64)
}

/// **Type 1 — the paper's split-drop (§4.3 "Defending Type 1 attacks").**
///
/// Processor A sends `D_AB` intended for B in transaction *i*; C sends
/// `D_CD` intended for D in transaction *i+1*. The adversary drops
/// transaction *i* from {C, D} and transaction *i+1* from {A, B}. Every
/// processor still observes exactly one valid message, so per-message MACs
/// and bus sequence numbers see nothing — but the chained MACs split the
/// group into {A, B} and {C, D}, and the next authentication round raises
/// the alarm.
pub fn type1_split_drop() -> AttackReport {
    let mut f = fabric(4, 1_000_000); // manual auth below
    let (a, b, c, d) = (
        ProcessorId::new(0),
        ProcessorId::new(1),
        ProcessorId::new(2),
        ProcessorId::new(3),
    );
    let base = baseline();

    // Transaction i: A -> all, but the adversary blocks C and D.
    let d_ab = line(1);
    let tag_ab = base.tag(d_ab[0]);
    let msg_i = f.send(a, &d_ab);
    let got_b = f.deliver(&msg_i, b).expect("B receives");
    // Baseline check at B: the message verifies — nothing suspicious.
    let baseline_ok_at_b = base.verify(got_b[0], tag_ab);

    // Transaction i+1: C -> all, blocked from A and B.
    let d_cd = line(2);
    let tag_cd = base.tag(d_cd[0]);
    let msg_i1 = f.send(c, &d_cd);
    let got_d = f.deliver(&msg_i1, d).expect("D receives");
    let baseline_ok_at_d = base.verify(got_d[0], tag_cd);

    // SENSS: the next authentication round compares full histories.
    let outcome = f.run_auth_round(a);
    let detected = matches!(outcome, AuthOutcome::AlarmRaised { .. });

    AttackReport {
        name: "type1-split-drop",
        detected_by_senss: detected,
        detected_by_baseline: !(baseline_ok_at_b && baseline_ok_at_d),
        detail: format!(
            "auth outcome {outcome:?}; every delivered message carried a \
             valid per-message tag (B: {baseline_ok_at_b}, D: {baseline_ok_at_d})"
        ),
    }
}

/// **Type 1 — total blackout of one receiver.** The adversary blocks a
/// single processor from an entire stretch of traffic.
pub fn type1_receiver_blackout() -> AttackReport {
    let mut f = fabric(3, 1_000_000);
    let (a, b, c) = (
        ProcessorId::new(0),
        ProcessorId::new(1),
        ProcessorId::new(2),
    );
    for i in 0..10u8 {
        let msg = f.send(a, &line(i));
        f.deliver(&msg, b);
        // c never sees anything.
        let _ = c;
    }
    let outcome = f.run_auth_round(a);
    AttackReport {
        name: "type1-receiver-blackout",
        detected_by_senss: matches!(outcome, AuthOutcome::AlarmRaised { .. }),
        detected_by_baseline: false, // c saw nothing to check
        detail: format!("auth outcome {outcome:?}"),
    }
}

/// **Type 2 — swap the first two bus transfers (§4.3 "Defending Type 2
/// attacks").** Receivers see `m2` then `m1`. The masks alone would
/// *self-heal* after the swap (the paper's motivation for a separate
/// authentication IV); the chained MAC keeps the divergence forever.
pub fn type2_swap() -> AttackReport {
    let mut f = fabric(2, 1_000_000);
    let (a, b) = (ProcessorId::new(0), ProcessorId::new(1));
    let m1 = f.send(a, &line(1));
    let m2 = f.send(a, &line(2));
    // Deliver out of order.
    let r2 = f.deliver(&m2, b).expect("delivered");
    let r1 = f.deliver(&m1, b).expect("delivered");
    // The swap also garbles the plaintext the receiver recovers.
    let garbled = r2 != line(2) || r1 != line(1);
    let outcome = f.run_auth_round(a);
    AttackReport {
        name: "type2-swap",
        detected_by_senss: matches!(outcome, AuthOutcome::AlarmRaised { .. }),
        // A per-message MAC over plaintext would also notice garbled
        // plaintext here; over ciphertext it would not. The paper's point
        // is subtler (mask self-healing), so we credit the baseline.
        detected_by_baseline: garbled,
        detail: format!("garbled plaintext: {garbled}; auth outcome {outcome:?}"),
    }
}

/// **Type 3 — spoof with the victim's own PID.** The SHU snoops every
/// message of its groups; a message tagged with its own PID that it never
/// sent is flagged immediately (§4.3 "Defending Type 3 attacks").
pub fn type3_own_pid_spoof() -> AttackReport {
    let mut f = fabric(3, 1_000_000);
    let victim = ProcessorId::new(1);
    let forged = BusMessage {
        tag: MessageTag {
            gid: f.gid(),
            pid: victim,
        },
        payload: line(7),
    };
    let refused = f.deliver(&forged, victim).is_none();
    AttackReport {
        name: "type3-own-pid-spoof",
        detected_by_senss: refused && f.is_halted(),
        detected_by_baseline: false, // the tag was never checkable: forged afresh
        detail: format!("victim refused: {refused}, alarms: {:?}", f.alarms()),
    }
}

/// **Type 3 — spoof-to-subset.** The adversary singles out one processor
/// with a message tagged `(GID, PID=p')` where `p'` is another valid
/// member. No receiver can reject it on sight, but only the victim folds
/// it into its MAC — the chains diverge and the next round alarms.
pub fn type3_subset_spoof() -> AttackReport {
    let mut f = fabric(3, 1_000_000);
    let (a, b, c) = (
        ProcessorId::new(0),
        ProcessorId::new(1),
        ProcessorId::new(2),
    );
    // Normal traffic first.
    let m = f.send(a, &line(1));
    f.deliver(&m, b);
    f.deliver(&m, c);
    // Forged message "from C", shown only to B.
    let forged = BusMessage {
        tag: MessageTag { gid: f.gid(), pid: c },
        payload: line(9),
    };
    let accepted = f.deliver(&forged, b).is_some();
    let outcome = f.run_auth_round(a);
    AttackReport {
        name: "type3-subset-spoof",
        detected_by_senss: matches!(outcome, AuthOutcome::AlarmRaised { .. }),
        detected_by_baseline: false, // B had no reference tag to check against
        detail: format!("victim accepted: {accepted}; auth outcome {outcome:?}"),
    }
}

/// **Type 3 — replay.** A legitimate ciphertext message is captured and
/// re-broadcast later. The receivers' chains have advanced, so the replay
/// decrypts to garbage and diverges the MACs; a per-message MAC scheme
/// (tag captured along with the message) verifies the replay as valid.
pub fn type3_replay() -> AttackReport {
    let mut f = fabric(2, 1_000_000);
    let (a, b) = (ProcessorId::new(0), ProcessorId::new(1));
    let base = baseline();
    let data = line(4);
    let tag = base.tag(data[0]);
    let msg = f.send(a, &data);
    let first = f.deliver(&msg, b).expect("delivered");
    assert_eq!(first, data, "legitimate delivery is clean");
    // … time passes, the adversary replays the captured ciphertext.
    let replayed = f.deliver(&msg, b).expect("fabric does not drop it");
    let garbage = replayed != data;
    // Baseline: the captured (plaintext, tag) pair still verifies.
    let baseline_fooled = base.verify(first[0], tag);
    let outcome = f.run_auth_round(a);
    AttackReport {
        name: "type3-replay",
        detected_by_senss: matches!(outcome, AuthOutcome::AlarmRaised { .. }) || garbage,
        detected_by_baseline: !baseline_fooled,
        detail: format!(
            "replay decrypted to garbage: {garbage}; auth outcome {outcome:?}"
        ),
    }
}

/// **Type 2 variant — in-flight tampering.** The adversary flips bits in
/// a ciphertext payload on the wire. The receiver decrypts garbage (it
/// cannot know yet) and its MAC chain diverges from the sender's; a
/// per-message MAC computed by the *sender over the plaintext* would
/// also catch this one — the baseline's one success.
pub fn type2_tamper_in_flight() -> AttackReport {
    let mut f = fabric(2, 1_000_000);
    let (a, b) = (ProcessorId::new(0), ProcessorId::new(1));
    let base = baseline();
    let data = line(6);
    let tag = base.tag(data[0]);
    let mut msg = f.send(a, &data);
    msg.payload[1] ^= senss_crypto::Block::from_words(0x40, 0);
    let got = f.deliver(&msg, b).expect("fabric delivers; crypto decides");
    let garbled = got != data;
    let baseline_catches = !base.verify(got[0], tag) || garbled && !base.verify(got[1], base.tag(data[1]));
    let outcome = f.run_auth_round(a);
    AttackReport {
        name: "type2-tamper-in-flight",
        detected_by_senss: matches!(outcome, AuthOutcome::AlarmRaised { .. }),
        detected_by_baseline: baseline_catches,
        detail: format!("plaintext garbled: {garbled}; auth outcome {outcome:?}"),
    }
}

/// Runs every scenario.
pub fn all() -> Vec<AttackReport> {
    vec![
        type1_split_drop(),
        type1_receiver_blackout(),
        type2_swap(),
        type2_tamper_in_flight(),
        type3_own_pid_spoof(),
        type3_subset_spoof(),
        type3_replay(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn senss_detects_every_attack() {
        let reports = all();
        assert_eq!(reports.len(), 7);
        for r in reports {
            assert!(r.detected_by_senss, "{}: SENSS missed it — {}", r.name, r.detail);
        }
    }

    #[test]
    fn tampering_is_caught_by_both_schemes() {
        let r = type2_tamper_in_flight();
        assert!(r.detected_by_senss);
        assert!(
            r.detected_by_baseline,
            "per-message MACs do catch plain tampering: {}",
            r.detail
        );
    }

    #[test]
    fn baseline_misses_drops_and_spoofs() {
        assert!(!type1_split_drop().detected_by_baseline);
        assert!(!type1_receiver_blackout().detected_by_baseline);
        assert!(!type3_own_pid_spoof().detected_by_baseline);
        assert!(!type3_subset_spoof().detected_by_baseline);
        assert!(!type3_replay().detected_by_baseline);
    }

    #[test]
    fn clean_traffic_raises_no_alarm() {
        let mut f = fabric(4, 5);
        for i in 0..50u8 {
            f.broadcast(ProcessorId::new(i % 4), &line(i));
        }
        assert!(!f.is_halted(), "false positive on clean traffic");
    }

    #[test]
    fn reports_have_detail() {
        for r in all() {
            assert!(!r.detail.is_empty(), "{}", r.name);
        }
    }
}
