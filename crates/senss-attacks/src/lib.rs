//! Bus adversaries for the SENSS reproduction (§3).
//!
//! The paper motivates SENSS with three classes of shared-bus attacks —
//! message **dropping** (Type 1), **reordering** (Type 2) and **spoofing /
//! replay** (Type 3) — plus the §3.1 *pad-reuse* confidentiality break
//! that rules out reusing memory-encryption pads for cache-to-cache
//! traffic. This crate implements each attack against the functional
//! [`senss::fabric::GroupFabric`] and reports whether the SENSS chained
//! authentication catches it (it must), and whether the non-chained
//! per-message baseline of Shi et al. would (for Types 1 and 3, it
//! cannot).
//!
//! # Example
//!
//! ```
//! use senss_attacks::scenarios;
//!
//! let report = scenarios::type1_split_drop();
//! assert!(report.detected_by_senss);
//! assert!(!report.detected_by_baseline);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod pad_reuse;
pub mod scenarios;

pub use scenarios::AttackReport;
