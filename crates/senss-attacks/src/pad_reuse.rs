//! The §3.1 confidentiality break: reusing memory-encryption pads on the
//! bus.
//!
//! The paper's opening attack: suppose cache-to-cache traffic were
//! encrypted with the *same* OTP pad `P` as the cache-to-memory traffic
//! for the same datum `D`. The owner keeps modifying `D` locally without
//! changing `P` (pads advance only on memory write-backs). Two successive
//! read requests then put `P ⊕ D` and `P ⊕ D'` on the bus, and a passive
//! observer XORs them to learn `D ⊕ D'` — plaintext difference leakage
//! with no key material at all. This module scripts the attack and shows
//! that the SENSS chained masks close it.

use senss::busenc::MaskChain;
use senss::group::{GroupId, ProcessorId};
use senss_crypto::aes::Aes;
use senss_crypto::otp::PadGenerator;
use senss_crypto::Block;

/// Result of the pad-reuse demonstration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PadReuseReport {
    /// What the observer recovered by XORing the two naive ciphertexts.
    pub naive_leak: Block,
    /// The true `D ⊕ D'` — equal to `naive_leak`, proving the break.
    pub true_xor: Block,
    /// The observer's XOR under SENSS chained masks (≠ `true_xor`).
    pub senss_observation: Block,
}

impl PadReuseReport {
    /// Whether the naive scheme leaked the plaintext difference.
    pub fn naive_scheme_broken(&self) -> bool {
        self.naive_leak == self.true_xor
    }

    /// Whether SENSS's chained masks prevent the leak.
    pub fn senss_resists(&self) -> bool {
        self.senss_observation != self.true_xor
    }
}

/// Runs the attack: processor A owns `d`, updates it to `d_prime`
/// in-cache, and services two read requests from processor B.
pub fn run(d: Block, d_prime: Block) -> PadReuseReport {
    let key = [0x77u8; 16];

    // --- naive scheme: bus reuses the memory pad (same address, same
    //     sequence number — A never wrote the line back) ---
    let pads = PadGenerator::new(Aes::new_128(&key));
    let addr = 0x1000;
    let seq = 5; // unchanged between the two transfers
    let wire1 = d ^ pads.pad(addr, seq);
    let wire2 = d_prime ^ pads.pad(addr, seq);
    let naive_leak = wire1 ^ wire2;

    // --- SENSS: chained masks advance on every transfer ---
    let gid = GroupId::new(0);
    let pid_a = ProcessorId::new(0);
    let _ = gid;
    let mut chain = MaskChain::new(Aes::new_128(&key), Block::from([0x42; 16]), 2);
    let s1 = chain.encrypt(d, u32::from(pid_a.value()));
    let s2 = chain.encrypt(d_prime, u32::from(pid_a.value()));
    let senss_observation = s1 ^ s2;

    PadReuseReport {
        naive_leak,
        true_xor: d ^ d_prime,
        senss_observation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_pad_reuse_leaks_plaintext_difference() {
        let r = run(Block::from([0x11; 16]), Block::from([0x2F; 16]));
        assert!(r.naive_scheme_broken(), "the paper's break must reproduce");
        assert_eq!(r.naive_leak, Block::from([0x11 ^ 0x2F; 16]));
    }

    #[test]
    fn senss_masks_close_the_leak() {
        let r = run(Block::from([0x11; 16]), Block::from([0x2F; 16]));
        assert!(r.senss_resists());
    }

    #[test]
    fn holds_for_many_plaintext_pairs() {
        for i in 0..32u8 {
            let r = run(Block::from([i; 16]), Block::from([i.wrapping_add(77); 16]));
            assert!(r.naive_scheme_broken(), "pair {i}");
            assert!(r.senss_resists(), "pair {i}");
        }
    }
}
