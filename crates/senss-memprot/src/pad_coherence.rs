//! Pad coherence across processors (§6.1).
//!
//! Each processor caches the OTP pads of memory lines it uses. A pad
//! changes whenever *any* processor writes the line back (the sequence
//! number advances), so pads are subject to the classic coherence problem.
//! The paper considers both protocols and adopts **write-invalidate** (as
//! most SMPs do):
//!
//! * *write-invalidate*: a write-back sends one pad-invalidate broadcast;
//!   a later user of the line must send a pad-request to fetch the latest
//!   pad before it can decrypt the memory fill.
//! * *write-update*: every write-back broadcasts the new pad to all
//!   holders; fills never wait, at the cost of an update message per
//!   write-back regardless of future use.

use std::collections::HashMap;

/// Which pad-coherence protocol the directory runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PadProtocol {
    /// Invalidate cached pads on write-back; re-fetch on demand.
    #[default]
    WriteInvalidate,
    /// Push the new pad to all holders on write-back.
    WriteUpdate,
}

/// What bus traffic a pad event requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PadAction {
    /// A broadcast message must go on the bus (invalidate or update).
    pub broadcast: bool,
    /// The requester must fetch the pad (blocking) before using the fill.
    pub request: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct PadLine {
    /// Bitmask of processors holding the *current* pad.
    holders: u32,
    /// Whether the line has ever been written back (pads of never-written
    /// lines are derivable from the in-memory sequence-number table and
    /// need no cache-to-cache fetch).
    written: bool,
}

/// Tracks, per memory line, which processors hold a valid pad.
#[derive(Debug, Clone)]
pub struct PadDirectory {
    protocol: PadProtocol,
    num_processors: usize,
    lines: HashMap<u64, PadLine>,
    broadcasts: u64,
    requests: u64,
}

impl PadDirectory {
    /// Creates a directory for `num_processors` processors.
    ///
    /// # Panics
    ///
    /// Panics if `num_processors` is zero or above 32.
    pub fn new(protocol: PadProtocol, num_processors: usize) -> PadDirectory {
        assert!(
            num_processors > 0 && num_processors <= 32,
            "1..=32 processors supported"
        );
        PadDirectory {
            protocol,
            num_processors,
            lines: HashMap::new(),
            broadcasts: 0,
            requests: 0,
        }
    }

    /// The protocol in use.
    pub fn protocol(&self) -> PadProtocol {
        self.protocol
    }

    /// Processor `pid` writes line `addr` back to memory: its pad advances.
    /// Returns the required bus action.
    pub fn on_writeback(&mut self, pid: usize, addr: u64) -> PadAction {
        debug_assert!(pid < self.num_processors);
        let all = if self.num_processors == 32 {
            u32::MAX
        } else {
            (1u32 << self.num_processors) - 1
        };
        let entry = self.lines.entry(addr).or_default();
        let others = entry.holders & !(1 << pid);
        entry.written = true;
        let broadcast = others != 0;
        match self.protocol {
            PadProtocol::WriteInvalidate => {
                // Other holders' pads become stale; the writer keeps the
                // fresh one.
                entry.holders = 1 << pid;
            }
            PadProtocol::WriteUpdate => {
                // The broadcast pushes the fresh pad to everyone.
                entry.holders = all;
            }
        }
        if broadcast {
            self.broadcasts += 1;
        }
        PadAction {
            broadcast,
            request: false,
        }
    }

    /// Processor `pid` fills line `addr` from memory and needs its pad to
    /// decrypt. Returns the required bus action (a blocking pad request
    /// when another processor holds a fresher pad).
    pub fn on_memory_fill(&mut self, pid: usize, addr: u64) -> PadAction {
        debug_assert!(pid < self.num_processors);
        let entry = self.lines.entry(addr).or_default();
        let has = entry.holders & (1 << pid) != 0;
        entry.holders |= 1 << pid;
        // A request is needed only when the line has been written back
        // (so its pad advanced past the derivable default) and this
        // processor does not hold the current pad.
        let request = entry.written && !has;
        if request {
            self.requests += 1;
        }
        PadAction {
            broadcast: false,
            request,
        }
    }

    /// Checkpoint capture: `(lines as (addr, holder bitmask, written)
    /// sorted by addr, broadcasts, requests)`. Sorted so equal
    /// directories always export identically regardless of `HashMap`
    /// iteration order.
    pub fn export_state(&self) -> (Vec<(u64, u64, bool)>, u64, u64) {
        let mut lines: Vec<(u64, u64, bool)> = self
            .lines
            .iter()
            .map(|(&addr, line)| (addr, line.holders as u64, line.written))
            .collect();
        lines.sort_unstable();
        (lines, self.broadcasts, self.requests)
    }

    /// Checkpoint restore onto a configuration-identical directory.
    ///
    /// # Panics
    ///
    /// Panics if a holder bitmask references a processor outside this
    /// directory's range.
    pub fn restore_state(&mut self, lines: &[(u64, u64, bool)], broadcasts: u64, requests: u64) {
        let all = if self.num_processors == 32 {
            u32::MAX as u64
        } else {
            (1u64 << self.num_processors) - 1
        };
        self.lines = lines
            .iter()
            .map(|&(addr, holders, written)| {
                assert!(
                    holders <= all,
                    "snapshot pad holders {holders:#x} exceed {} processors",
                    self.num_processors
                );
                (
                    addr,
                    PadLine {
                        holders: holders as u32,
                        written,
                    },
                )
            })
            .collect();
        self.broadcasts = broadcasts;
        self.requests = requests;
    }

    /// Pad broadcasts (invalidates or updates) so far.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// Blocking pad requests so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_writeback_needs_no_broadcast() {
        let mut d = PadDirectory::new(PadProtocol::WriteInvalidate, 4);
        let a = d.on_writeback(0, 0x1000);
        assert!(!a.broadcast);
        assert_eq!(d.broadcasts(), 0);
    }

    #[test]
    fn invalidate_protocol_round_trip() {
        let mut d = PadDirectory::new(PadProtocol::WriteInvalidate, 2);
        // P0 writes back: P0 holds the pad.
        d.on_writeback(0, 0x40);
        // P1 fills from memory: it lacks the pad while P0 holds it.
        let a = d.on_memory_fill(1, 0x40);
        assert!(a.request);
        // Second fill by P1: pad now held, no request.
        let b = d.on_memory_fill(1, 0x40);
        assert!(!b.request);
        assert_eq!(d.requests(), 1);
    }

    #[test]
    fn invalidate_broadcast_only_with_other_holders() {
        let mut d = PadDirectory::new(PadProtocol::WriteInvalidate, 2);
        d.on_memory_fill(0, 0x40);
        d.on_memory_fill(1, 0x40);
        // P0 writes back: P1's pad is stale -> broadcast.
        let a = d.on_writeback(0, 0x40);
        assert!(a.broadcast);
        // P1 fills again: must request the fresh pad.
        assert!(d.on_memory_fill(1, 0x40).request);
    }

    #[test]
    fn update_protocol_never_requests() {
        let mut d = PadDirectory::new(PadProtocol::WriteUpdate, 2);
        d.on_memory_fill(0, 0x40);
        d.on_memory_fill(1, 0x40);
        let a = d.on_writeback(0, 0x40);
        assert!(a.broadcast, "update pushes the pad");
        // P1 still holds a valid (updated) pad.
        assert!(!d.on_memory_fill(1, 0x40).request);
        assert_eq!(d.requests(), 0);
    }

    #[test]
    fn unrelated_lines_do_not_interact() {
        let mut d = PadDirectory::new(PadProtocol::WriteInvalidate, 2);
        d.on_writeback(0, 0x40);
        assert!(!d.on_memory_fill(1, 0x80).request);
    }

    #[test]
    #[should_panic(expected = "processors")]
    fn too_many_processors_rejected() {
        PadDirectory::new(PadProtocol::WriteInvalidate, 33);
    }
}
