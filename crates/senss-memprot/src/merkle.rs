//! Merkle hash-tree memory integrity (CHash, §2.2 / §6.2).
//!
//! Two pieces live here:
//!
//! * [`TreeGeometry`] — pure address arithmetic: for a data line, the
//!   chain of hash-*line* addresses from its parent up to (but excluding)
//!   the on-chip root. Hash lines occupy a disjoint address region (above
//!   `1 << 47` by crate convention) so they flow through the ordinary L2 +
//!   bus machinery, polluting the cache exactly as the paper describes.
//! * [`MerkleTree`] — the functional tree: real SHA-256 hashes over
//!   64-byte lines with a sparse default representation, `update` on
//!   write-back and `verify` on fetch. Tampering any byte of any line (or
//!   replaying a stale line) makes `verify` fail — the replay-attack
//!   defence that per-block MACs lack.

use senss_crypto::sha256::{Digest, Sha256};
use std::collections::HashMap;

/// Base of the hash-line address region (shared convention with
/// `senss-sim`'s victim classification).
pub const HASH_REGION_BASE: u64 = 1 << 47;

/// Bytes per line (data and hash lines alike).
pub const LINE_BYTES: u64 = 64;

/// Fan-out of the tree: one 64-byte hash line holds four 16-byte child
/// digests.
pub const ARITY: u64 = 4;

/// Address arithmetic for the tree over a data region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeGeometry {
    data_span: u64,
    levels: u32,
    level_bases: Vec<u64>,
}

impl TreeGeometry {
    /// Creates the geometry for a data region `[0, data_span)`.
    ///
    /// # Panics
    ///
    /// Panics unless `data_span` is a power of two of at least two lines
    /// and below [`HASH_REGION_BASE`].
    pub fn new(data_span: u64) -> TreeGeometry {
        assert!(
            data_span.is_power_of_two() && data_span >= 2 * LINE_BYTES,
            "data span must be a power of two covering at least two lines"
        );
        assert!(data_span <= HASH_REGION_BASE, "data span overlaps hash region");
        let mut level_bases = Vec::new();
        let mut nodes = data_span / LINE_BYTES; // lines at level 0 (data)
        let mut base = HASH_REGION_BASE;
        let mut levels = 0;
        while nodes > 1 {
            nodes = nodes.div_ceil(ARITY);
            level_bases.push(base);
            base += nodes * LINE_BYTES;
            levels += 1;
        }
        TreeGeometry {
            data_span,
            levels,
            level_bases,
        }
    }

    /// Covered data-region size in bytes.
    pub fn data_span(&self) -> u64 {
        self.data_span
    }

    /// Number of hash levels above the data (the last is the root line).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Whether `addr` is a hash-region address of this tree.
    pub fn is_hash_addr(&self, addr: u64) -> bool {
        addr >= HASH_REGION_BASE
    }

    /// The hash-line address of the level-`level` ancestor of data line
    /// `data_addr` (level 1 = parent).
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds [`TreeGeometry::levels`], or the
    /// address lies outside the covered span.
    pub fn ancestor(&self, data_addr: u64, level: u32) -> u64 {
        assert!(level >= 1 && level <= self.levels, "level out of range");
        assert!(data_addr < self.data_span, "address outside covered span");
        let leaf = data_addr / LINE_BYTES;
        let idx = leaf / ARITY.pow(level);
        self.level_bases[(level - 1) as usize] + idx * LINE_BYTES
    }

    /// The full ancestor chain of a data line, nearest parent first,
    /// **excluding** the root line (the root digest lives on-chip and is
    /// never fetched). Addresses outside the covered span (e.g. the hash
    /// region itself) yield an empty chain.
    pub fn ancestors(&self, data_addr: u64) -> Vec<u64> {
        if data_addr >= self.data_span {
            return Vec::new();
        }
        (1..self.levels)
            .map(|l| self.ancestor(data_addr, l))
            .collect()
    }
}

/// The functional Merkle tree with sparse storage.
///
/// Untouched regions hash to per-level default digests (the hash of an
/// all-default child row), so the root is well defined without
/// materializing the whole tree.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    geometry: TreeGeometry,
    /// Written data lines (level 0).
    data: HashMap<u64, Vec<u8>>,
    /// Materialized digests per (level, index).
    nodes: HashMap<(u32, u64), Digest>,
    /// Default digest of a level-`l` node over untouched children.
    defaults: Vec<Digest>,
}

fn leaf_digest(line: &[u8]) -> Digest {
    Sha256::digest(line)
}

fn combine(children: &[Digest; ARITY as usize]) -> Digest {
    let mut h = Sha256::new();
    for c in children {
        h.update(c);
    }
    h.finalize()
}

impl MerkleTree {
    /// Creates an empty (all-default) tree over `[0, data_span)`.
    pub fn new(data_span: u64) -> MerkleTree {
        let geometry = TreeGeometry::new(data_span);
        let mut defaults = Vec::with_capacity(geometry.levels() as usize + 1);
        defaults.push(leaf_digest(&vec![0u8; LINE_BYTES as usize]));
        for l in 1..=geometry.levels() {
            let child = defaults[(l - 1) as usize];
            defaults.push(combine(&[child, child, child, child]));
        }
        MerkleTree {
            geometry,
            data: HashMap::new(),
            nodes: HashMap::new(),
            defaults,
        }
    }

    /// The geometry in use.
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    fn digest_at(&self, level: u32, idx: u64) -> Digest {
        if level == 0 {
            return self
                .data
                .get(&(idx * LINE_BYTES))
                .map(|d| leaf_digest(d))
                .unwrap_or(self.defaults[0]);
        }
        self.nodes
            .get(&(level, idx))
            .copied()
            .unwrap_or(self.defaults[level as usize])
    }

    /// The current root digest (held in the processor in hardware).
    pub fn root(&self) -> Digest {
        self.digest_at(self.geometry.levels(), 0)
    }

    /// Records a write-back of `line` bytes at `addr` and updates the path
    /// to the root.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unaligned, outside the span, or `line` is not
    /// exactly one line.
    pub fn update(&mut self, addr: u64, line: &[u8]) {
        assert_eq!(addr % LINE_BYTES, 0, "line-aligned address required");
        assert!(addr < self.geometry.data_span(), "address outside span");
        assert_eq!(line.len(), LINE_BYTES as usize, "exactly one line");
        self.data.insert(addr, line.to_vec());
        let mut idx = addr / LINE_BYTES;
        for level in 1..=self.geometry.levels() {
            idx /= ARITY;
            let base = idx * ARITY;
            let children = [
                self.digest_at(level - 1, base),
                self.digest_at(level - 1, base + 1),
                self.digest_at(level - 1, base + 2),
                self.digest_at(level - 1, base + 3),
            ];
            self.nodes.insert((level, idx), combine(&children));
        }
    }

    /// Verifies that `line` is the authentic current content of `addr` by
    /// recomputing the path and comparing against the stored tree (whose
    /// root stands in for the on-chip root register).
    pub fn verify(&self, addr: u64, line: &[u8]) -> bool {
        if !addr.is_multiple_of(LINE_BYTES)
            || addr >= self.geometry.data_span()
            || line.len() != LINE_BYTES as usize
        {
            return false;
        }
        let mut digest = leaf_digest(line);
        let mut idx = addr / LINE_BYTES;
        for level in 1..=self.geometry.levels() {
            let base = (idx / ARITY) * ARITY;
            let mut children = [
                self.digest_at(level - 1, base),
                self.digest_at(level - 1, base + 1),
                self.digest_at(level - 1, base + 2),
                self.digest_at(level - 1, base + 3),
            ];
            children[(idx % ARITY) as usize] = digest;
            digest = combine(&children);
            idx /= ARITY;
        }
        digest == self.root()
    }

    /// The stored content of a line (default zeros if never written).
    pub fn read(&self, addr: u64) -> Vec<u8> {
        self.data
            .get(&(addr / LINE_BYTES * LINE_BYTES))
            .cloned()
            .unwrap_or_else(|| vec![0u8; LINE_BYTES as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_levels() {
        // 16 lines -> levels: 4, 1 => 2 levels.
        let g = TreeGeometry::new(16 * LINE_BYTES);
        assert_eq!(g.levels(), 2);
        // 4GB of data lines: 2^26 leaves -> 13 levels.
        let g = TreeGeometry::new(1 << 32);
        assert_eq!(g.levels(), 13);
    }

    #[test]
    fn ancestors_are_shared_by_siblings() {
        let g = TreeGeometry::new(1 << 20);
        let a = g.ancestors(0);
        let b = g.ancestors(64); // sibling leaf
        assert_eq!(a, b, "siblings share their whole chain");
        let c = g.ancestors(64 * 4); // cousin: shares all but the parent
        assert_ne!(a[0], c[0]);
        assert_eq!(a[1..], c[1..]);
    }

    #[test]
    fn ancestors_exclude_root_and_are_in_hash_region() {
        let g = TreeGeometry::new(1 << 20);
        let chain = g.ancestors(0x4000);
        assert_eq!(chain.len() as u32, g.levels() - 1);
        for a in &chain {
            assert!(g.is_hash_addr(*a));
        }
    }

    #[test]
    fn hash_addresses_yield_empty_chain() {
        let g = TreeGeometry::new(1 << 20);
        assert!(g.ancestors(HASH_REGION_BASE + 64).is_empty());
    }

    #[test]
    fn distinct_levels_have_distinct_addresses() {
        let g = TreeGeometry::new(1 << 20);
        let chain = g.ancestors(0);
        let mut sorted = chain.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), chain.len());
    }

    #[test]
    fn fresh_tree_verifies_default_lines() {
        let t = MerkleTree::new(1 << 16);
        assert!(t.verify(0, &[0u8; 64]));
        assert!(t.verify(0x8000, &[0u8; 64]));
    }

    #[test]
    fn update_then_verify() {
        let mut t = MerkleTree::new(1 << 16);
        let line = vec![0xAB; 64];
        t.update(0x1000, &line);
        assert!(t.verify(0x1000, &line));
        assert_eq!(t.read(0x1000), line);
    }

    #[test]
    fn tampering_any_byte_is_detected() {
        let mut t = MerkleTree::new(1 << 16);
        let line = vec![0x11; 64];
        t.update(0x2000, &line);
        let mut tampered = line.clone();
        tampered[63] ^= 0x01;
        assert!(!t.verify(0x2000, &tampered));
    }

    #[test]
    fn replay_attack_is_detected() {
        // The attack CHash exists to stop: replaying an old (line, MAC)
        // pair. After an update, the *old* line no longer verifies.
        let mut t = MerkleTree::new(1 << 16);
        let old = vec![0x01; 64];
        let new = vec![0x02; 64];
        t.update(0x3000, &old);
        assert!(t.verify(0x3000, &old));
        t.update(0x3000, &new);
        assert!(!t.verify(0x3000, &old), "stale line must not verify");
        assert!(t.verify(0x3000, &new));
    }

    #[test]
    fn updates_elsewhere_do_not_break_verification() {
        let mut t = MerkleTree::new(1 << 16);
        let a = vec![0xAA; 64];
        let b = vec![0xBB; 64];
        t.update(0x0000, &a);
        t.update(0x8000, &b);
        assert!(t.verify(0x0000, &a));
        assert!(t.verify(0x8000, &b));
    }

    #[test]
    fn root_changes_with_every_update() {
        let mut t = MerkleTree::new(1 << 16);
        let r0 = t.root();
        t.update(0, &[1; 64]);
        let r1 = t.root();
        t.update(64, &[2; 64]);
        let r2 = t.root();
        assert_ne!(r0, r1);
        assert_ne!(r1, r2);
    }

    #[test]
    fn misaligned_or_out_of_range_verify_fails() {
        let t = MerkleTree::new(1 << 16);
        assert!(!t.verify(1, &[0; 64]));
        assert!(!t.verify(1 << 20, &[0; 64]));
        assert!(!t.verify(0, &[0; 63]));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_span_rejected() {
        TreeGeometry::new(100);
    }
}
