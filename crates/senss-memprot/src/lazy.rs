//! LHash-style lazy memory-integrity verification (Suh et al., MICRO'03).
//!
//! The paper's §2.2 and §7.7 point out that the *lazy* scheme ("LHash")
//! cuts CHash's ~25% overhead to ~5% and "will also be very effective in
//! SENSS". Instead of verifying a Merkle path on every fill, the
//! processor keeps two **multiset hashes** in trusted on-chip storage:
//!
//! * `WriteHash` — folds every (address, value, timestamp) the processor
//!   writes to memory,
//! * `ReadHash` — folds every (address, value, timestamp) it reads back.
//!
//! At a verification point the processor sweeps the untrusted memory,
//! folds each line's current (address, value, timestamp) into `ReadHash`,
//! folds the initial contents into `WriteHash`, and compares. Any
//! substitution, replay of a stale (value, timestamp) pair, or dropped
//! write leaves the multisets unequal with overwhelming probability.
//!
//! [`MultisetHash`] is the additive (order-independent) hash;
//! [`LazyVerifier`] is the full read/write/verify protocol over an
//! in-crate model of untrusted memory that attacks can tamper with.

use senss_crypto::sha256::Sha256;
use std::collections::HashMap;

/// An order-independent multiset hash: elements are hashed with SHA-256
/// and combined by wrapping addition over two 128-bit lanes. Adding the
/// same multiset of elements in any order yields the same value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MultisetHash {
    lo: u128,
    hi: u128,
}

impl MultisetHash {
    /// The empty multiset.
    pub fn new() -> MultisetHash {
        MultisetHash::default()
    }

    /// Folds one element into the multiset.
    pub fn add(&mut self, element: &[u8]) {
        let d = Sha256::digest(element);
        let lo = u128::from_le_bytes(d[..16].try_into().expect("16 bytes"));
        let hi = u128::from_le_bytes(d[16..].try_into().expect("16 bytes"));
        self.lo = self.lo.wrapping_add(lo);
        self.hi = self.hi.wrapping_add(hi);
    }

    /// Folds an (address, value, timestamp) memory record.
    pub fn add_record(&mut self, addr: u64, value: &[u8], timestamp: u64) {
        let mut buf = Vec::with_capacity(16 + value.len());
        buf.extend_from_slice(&addr.to_le_bytes());
        buf.extend_from_slice(&timestamp.to_le_bytes());
        buf.extend_from_slice(value);
        self.add(&buf);
    }
}

/// Why lazy verification failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LazyViolation {
    /// A read observed a timestamp from the future (simple freshness
    /// check that catches crude forgeries immediately).
    TimestampFromFuture {
        /// Offending line.
        addr: u64,
    },
    /// The final multiset comparison failed (substitution/replay/drop).
    MultisetMismatch,
}

/// The lazy verifier plus its model of untrusted memory.
#[derive(Debug, Clone)]
pub struct LazyVerifier {
    write_hash: MultisetHash,
    read_hash: MultisetHash,
    timer: u64,
    line_bytes: usize,
    /// The *untrusted* memory: (value, timestamp) per line. Exposed for
    /// tampering via [`LazyVerifier::tamper`].
    memory: HashMap<u64, (Vec<u8>, u64)>,
    reads: u64,
    writes: u64,
}

impl LazyVerifier {
    /// Creates a verifier over lines of `line_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    pub fn new(line_bytes: usize) -> LazyVerifier {
        assert!(line_bytes > 0, "line size must be positive");
        LazyVerifier {
            write_hash: MultisetHash::new(),
            read_hash: MultisetHash::new(),
            timer: 0,
            line_bytes,
            memory: HashMap::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// Processor writes `value` back to memory at `addr`. The previous
    /// record (if any) is *consumed* into `ReadHash` — in LHash every
    /// memory write replaces a record that was logged when written, so
    /// the books balance (a line's records alternate W, R, W, R, …).
    ///
    /// # Panics
    ///
    /// Panics if `value` is not exactly one line.
    pub fn write(&mut self, addr: u64, value: Vec<u8>) {
        assert_eq!(value.len(), self.line_bytes, "line-sized writes only");
        if let Some((old, ts)) = self.memory.get(&addr).cloned() {
            self.read_hash.add_record(addr, &old, ts);
        }
        self.timer += 1;
        self.write_hash.add_record(addr, &value, self.timer);
        self.memory.insert(addr, (value, self.timer));
        self.writes += 1;
    }

    /// Processor reads `addr` back from memory, logging the observation.
    ///
    /// # Errors
    ///
    /// Returns [`LazyViolation::TimestampFromFuture`] immediately if the
    /// stored timestamp exceeds the trusted timer.
    pub fn read(&mut self, addr: u64) -> Result<Vec<u8>, LazyViolation> {
        let existing = self.memory.get(&addr).cloned();
        let value = match existing {
            Some((value, ts)) => {
                if ts > self.timer {
                    return Err(LazyViolation::TimestampFromFuture { addr });
                }
                // Consume the stored record…
                self.read_hash.add_record(addr, &value, ts);
                value
            }
            // Untouched line: default contents, no record to consume.
            None => vec![0u8; self.line_bytes],
        };
        self.reads += 1;
        // …and re-log it with a fresh timestamp, so replaying the old
        // (value, timestamp) pair later is stale (the LHash discipline:
        // every read is paired with a logged re-write).
        self.timer += 1;
        self.write_hash.add_record(addr, &value, self.timer);
        self.memory.insert(addr, (value.clone(), self.timer));
        Ok(value)
    }

    /// Adversary access: overwrite memory behind the processor's back.
    pub fn tamper(&mut self, addr: u64, value: Vec<u8>, timestamp: u64) {
        self.memory.insert(addr, (value, timestamp));
    }

    /// The verification sweep: folds the final memory state into
    /// `ReadHash` and compares with `WriteHash` (zero-initialized lines
    /// contribute to neither side).
    ///
    /// # Errors
    ///
    /// Returns [`LazyViolation::MultisetMismatch`] when the histories
    /// disagree.
    pub fn verify(&self) -> Result<(), LazyViolation> {
        let mut read_final = self.read_hash;
        for (&addr, (value, ts)) in &self.memory {
            read_final.add_record(addr, value, *ts);
        }
        if read_final == self.write_hash {
            Ok(())
        } else {
            Err(LazyViolation::MultisetMismatch)
        }
    }

    /// Reads logged so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes logged so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiset_hash_is_order_independent() {
        let mut a = MultisetHash::new();
        let mut b = MultisetHash::new();
        a.add(b"x");
        a.add(b"y");
        a.add(b"z");
        b.add(b"z");
        b.add(b"x");
        b.add(b"y");
        assert_eq!(a, b);
    }

    #[test]
    fn multiset_hash_counts_multiplicity() {
        let mut a = MultisetHash::new();
        let mut b = MultisetHash::new();
        a.add(b"x");
        a.add(b"x");
        b.add(b"x");
        assert_ne!(a, b);
    }

    #[test]
    fn clean_history_verifies() {
        let mut v = LazyVerifier::new(64);
        v.write(0x000, vec![1; 64]);
        v.write(0x040, vec![2; 64]);
        assert_eq!(v.read(0x000).unwrap(), vec![1; 64]);
        v.write(0x000, vec![3; 64]);
        assert_eq!(v.read(0x040).unwrap(), vec![2; 64]);
        assert_eq!(v.read(0x000).unwrap(), vec![3; 64]);
        assert!(v.verify().is_ok());
        assert_eq!(v.reads(), 3);
        assert_eq!(v.writes(), 3);
    }

    #[test]
    fn substitution_fails_verification() {
        let mut v = LazyVerifier::new(64);
        v.write(0x100, vec![7; 64]);
        // Adversary swaps the value, keeping the timestamp.
        let ts = 1;
        v.tamper(0x100, vec![8; 64], ts);
        let _ = v.read(0x100);
        assert_eq!(v.verify(), Err(LazyViolation::MultisetMismatch));
    }

    #[test]
    fn replay_of_stale_value_fails_verification() {
        let mut v = LazyVerifier::new(64);
        v.write(0x200, vec![1; 64]); // ts 1
        v.write(0x200, vec![2; 64]); // ts 2
        // Adversary restores the old (value, timestamp) pair — the replay
        // attack plain MACs cannot see.
        v.tamper(0x200, vec![1; 64], 1);
        let got = v.read(0x200).unwrap();
        assert_eq!(got, vec![1; 64], "the processor is fooled *for now*");
        assert_eq!(v.verify(), Err(LazyViolation::MultisetMismatch));
    }

    #[test]
    fn future_timestamp_caught_immediately() {
        let mut v = LazyVerifier::new(64);
        v.write(0x300, vec![4; 64]);
        v.tamper(0x300, vec![4; 64], 999);
        assert_eq!(
            v.read(0x300),
            Err(LazyViolation::TimestampFromFuture { addr: 0x300 })
        );
    }

    #[test]
    fn untouched_lines_do_not_disturb_verification() {
        let mut v = LazyVerifier::new(64);
        v.write(0x000, vec![9; 64]);
        // Reading a never-written line is fine (zero default, ts 0).
        assert_eq!(v.read(0x4000).unwrap(), vec![0; 64]);
        assert!(v.verify().is_ok());
    }

    #[test]
    fn dropping_a_write_fails_verification() {
        let mut v = LazyVerifier::new(64);
        v.write(0x500, vec![1; 64]);
        // Adversary blocks the write from reaching DRAM: memory still has
        // the old (absent) content.
        v.memory.remove(&0x500);
        let _ = v.read(0x500);
        assert_eq!(v.verify(), Err(LazyViolation::MultisetMismatch));
    }
}
