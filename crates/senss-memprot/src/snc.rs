//! The sequence-number cache (SNC) for fast OTP memory encryption (§2.1).
//!
//! Each memory line's pad is `AES(address ‖ seq)`; the per-line sequence
//! number increments on every write-back so pads never repeat. Sequence
//! numbers live in an on-chip cache: the paper uses a *perfect* SNC in its
//! Figure 10 experiments ("the difference between a perfect SNC and large
//! SNC is small"), and this module provides both the perfect variant and a
//! finite LRU one for sensitivity studies.

use std::collections::HashMap;

/// On-chip sequence-number cache.
#[derive(Debug, Clone)]
pub struct SeqNumCache {
    /// None = perfect (unbounded); Some(n) = capacity of n entries, LRU.
    capacity: Option<usize>,
    entries: HashMap<u64, (u64, u64)>, // line -> (seq, last_use)
    clock: u64,
    hits: u64,
    misses: u64,
}

impl SeqNumCache {
    /// A perfect (unbounded) SNC — the paper's configuration.
    pub fn perfect() -> SeqNumCache {
        SeqNumCache {
            capacity: None,
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// A finite SNC with `capacity` entries, LRU-replaced.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> SeqNumCache {
        assert!(capacity > 0, "capacity must be positive");
        SeqNumCache {
            capacity: Some(capacity),
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn touch(&mut self, line: u64) {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&line) {
            e.1 = self.clock;
        }
    }

    fn maybe_evict(&mut self) {
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                let victim = self
                    .entries
                    .iter()
                    .min_by_key(|(_, (_, lu))| *lu)
                    .map(|(k, _)| *k)
                    .expect("non-empty");
                self.entries.remove(&victim);
            }
        }
    }

    /// The current sequence number for a line (0 if never written). A
    /// lookup that finds the entry is a hit; otherwise a miss (the number
    /// must be re-fetched from its in-memory table — evicted entries are
    /// conceptually backed by memory, so the value is still 0-defaulted
    /// here only for never-written lines).
    pub fn current(&mut self, line: u64) -> u64 {
        if self.entries.contains_key(&line) {
            self.hits += 1;
            self.touch(line);
            self.entries[&line].0
        } else {
            self.misses += 1;
            self.clock += 1;
            self.entries.insert(line, (0, self.clock));
            self.maybe_evict();
            0
        }
    }

    /// Increments the line's sequence number for a write-back and returns
    /// the new value.
    pub fn advance(&mut self, line: u64) -> u64 {
        let cur = self.current(line);
        let next = cur + 1;
        self.clock += 1;
        self.entries.insert(line, (next, self.clock));
        self.maybe_evict();
        next
    }

    /// Checkpoint capture: `(entries as (line, seq, last_use) sorted by
    /// line, clock, hits, misses)`. Sorted so equal caches always export
    /// identically regardless of `HashMap` iteration order.
    pub fn export_state(&self) -> (Vec<(u64, u64, u64)>, u64, u64, u64) {
        let mut entries: Vec<(u64, u64, u64)> = self
            .entries
            .iter()
            .map(|(&line, &(seq, last_use))| (line, seq, last_use))
            .collect();
        entries.sort_unstable();
        (entries, self.clock, self.hits, self.misses)
    }

    /// Checkpoint restore onto a configuration-identical cache.
    ///
    /// # Panics
    ///
    /// Panics if the entry count exceeds a finite cache's capacity.
    pub fn restore_state(&mut self, entries: &[(u64, u64, u64)], clock: u64, hits: u64, misses: u64) {
        if let Some(cap) = self.capacity {
            assert!(
                entries.len() <= cap,
                "snapshot has {} SNC entries, capacity is {cap}",
                entries.len()
            );
        }
        self.entries = entries
            .iter()
            .map(|&(line, seq, last_use)| (line, (seq, last_use)))
            .collect();
        self.clock = clock;
        self.hits = hits;
        self.misses = misses;
    }

    /// Lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_lines_start_at_zero() {
        let mut c = SeqNumCache::perfect();
        assert_eq!(c.current(0x1000), 0);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn advance_increments_monotonically() {
        let mut c = SeqNumCache::perfect();
        assert_eq!(c.advance(0x40), 1);
        assert_eq!(c.advance(0x40), 2);
        assert_eq!(c.advance(0x40), 3);
        assert_eq!(c.current(0x40), 3);
    }

    #[test]
    fn distinct_lines_are_independent() {
        let mut c = SeqNumCache::perfect();
        c.advance(0x00);
        c.advance(0x00);
        assert_eq!(c.current(0x40), 0);
    }

    #[test]
    fn perfect_cache_always_hits_after_first_touch() {
        let mut c = SeqNumCache::perfect();
        for line in 0..1000u64 {
            c.current(line * 64);
        }
        for line in 0..1000u64 {
            c.current(line * 64);
        }
        assert_eq!(c.misses(), 1000);
        assert_eq!(c.hits(), 1000);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn finite_cache_evicts_lru() {
        let mut c = SeqNumCache::with_capacity(2);
        c.current(0x00);
        c.current(0x40);
        c.current(0x00); // touch 0x00 so 0x40 is LRU
        c.current(0x80); // evicts 0x40
        assert_eq!(c.hits(), 1);
        // 0x40 is gone: a fresh lookup misses again.
        c.current(0x40);
        assert_eq!(c.misses(), 4);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        SeqNumCache::with_capacity(0);
    }
}
