//! Cache-to-memory protection substrates for SENSS (§2, §6).
//!
//! SENSS secures the *bus*; the memory itself is protected by the
//! uniprocessor techniques the paper integrates in §6 and measures in
//! Figure 10:
//!
//! * **fast OTP memory encryption** (Suh et al. / Yang et al., §2.1):
//!   blocks are XORed with pads derived from `(address, sequence number)`;
//!   the sequence numbers live in an on-chip cache ([`snc`]),
//! * **pad coherence** (§6.1): pads change on every write-back, so cached
//!   pads must be kept coherent across processors — write-invalidate or
//!   write-update ([`pad_coherence`]),
//! * **CHash Merkle-tree memory integrity** (Gassend et al., §2.2/§6.2):
//!   a hash tree over memory whose nodes are cached in L2; fills from
//!   memory verify an ancestor chain that stops at the first resident
//!   node ([`merkle`]).
//!
//! [`policy::MemProtPolicy`] packages the three for the simulator's
//! extension hooks; [`merkle::MerkleTree`] is the *functional* tree used
//! to demonstrate actual tamper detection.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lazy;
pub mod merkle;
pub mod pad_coherence;
pub mod policy;
pub mod snc;

pub use lazy::{LazyVerifier, MultisetHash};
pub use merkle::{MerkleTree, TreeGeometry};
pub use pad_coherence::{PadDirectory, PadProtocol};
pub use policy::{IntegrityMode, MemProtConfig, MemProtPolicy};
pub use snc::SeqNumCache;
