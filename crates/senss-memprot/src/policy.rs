//! The combined memory-protection policy consumed by the simulator
//! extension (§6, Figure 10's `Mem_OTP_CHash`).
//!
//! [`MemProtPolicy`] bundles OTP pad coherence (+ its sequence-number
//! cache) and the CHash Merkle-tree geometry into the exact queries the
//! bus-level hooks ask:
//!
//! * *this processor just filled a data line from memory — must it fetch a
//!   pad first, and which hash ancestors must it verify?*
//! * *this processor just wrote a dirty data line back — which broadcast
//!   and which hash-tree updates follow?*

use crate::merkle::TreeGeometry;
use crate::pad_coherence::{PadDirectory, PadProtocol};
use crate::snc::SeqNumCache;

/// Which memory-integrity scheme runs (§2.2, §7.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IntegrityMode {
    /// No integrity checking.
    None,
    /// CHash: verify a Merkle ancestor chain on every memory fill.
    #[default]
    CHash,
    /// LHash-style lazy verification: log reads/writes into on-chip
    /// multiset hashes, verify in bulk at check-points — no per-fill
    /// chain walk (see [`crate::lazy`]).
    Lazy,
}

/// Configuration for the memory-protection stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemProtConfig {
    /// Enable OTP memory encryption + pad coherence.
    pub otp: bool,
    /// Memory-integrity scheme.
    pub integrity: IntegrityMode,
    /// Pad coherence protocol.
    pub pad_protocol: PadProtocol,
    /// Covered data span in bytes (power of two).
    pub data_span: u64,
    /// Processors on the bus.
    pub num_processors: usize,
}

impl MemProtConfig {
    /// The paper's Figure 10 configuration: OTP with a perfect SNC and
    /// write-invalidate pad coherence, plus CHash integrity, over a 4 GB
    /// data span.
    pub fn paper_default(num_processors: usize) -> MemProtConfig {
        MemProtConfig {
            otp: true,
            integrity: IntegrityMode::CHash,
            pad_protocol: PadProtocol::WriteInvalidate,
            data_span: 1 << 32,
            num_processors,
        }
    }

    /// The LHash variant the paper recommends (§7.7): same OTP stack, lazy
    /// integrity with no per-fill Merkle walk.
    pub fn lazy_variant(num_processors: usize) -> MemProtConfig {
        MemProtConfig {
            integrity: IntegrityMode::Lazy,
            ..MemProtConfig::paper_default(num_processors)
        }
    }
}

/// The runtime policy object.
#[derive(Debug)]
pub struct MemProtPolicy {
    cfg: MemProtConfig,
    geometry: TreeGeometry,
    pads: PadDirectory,
    snc: SeqNumCache,
    lazy_reads: u64,
    lazy_writes: u64,
}

impl MemProtPolicy {
    /// Builds the policy from a configuration.
    pub fn new(cfg: MemProtConfig) -> MemProtPolicy {
        let geometry = TreeGeometry::new(cfg.data_span);
        let pads = PadDirectory::new(cfg.pad_protocol, cfg.num_processors);
        MemProtPolicy {
            geometry,
            pads,
            snc: SeqNumCache::perfect(),
            lazy_reads: 0,
            lazy_writes: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemProtConfig {
        &self.cfg
    }

    /// The tree geometry (for tests and the figure harness).
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// Pad-coherence statistics.
    pub fn pad_directory(&self) -> &PadDirectory {
        &self.pads
    }

    /// Sequence-number cache statistics.
    pub fn snc(&self) -> &SeqNumCache {
        &self.snc
    }

    fn is_data_addr(&self, addr: u64) -> bool {
        addr < self.geometry.data_span()
    }

    /// Hook: processor `pid` fills data line `addr` from memory. Returns
    /// whether a blocking pad request must precede use of the data.
    pub fn fill_needs_pad_request(&mut self, pid: usize, addr: u64) -> bool {
        if !self.cfg.otp || !self.is_data_addr(addr) {
            return false;
        }
        self.pads.on_memory_fill(pid, addr).request
    }

    /// Hook: the Merkle ancestor chain to verify for a memory fill of
    /// `addr` (empty when integrity is off/lazy or `addr` is not a covered
    /// data line). In [`IntegrityMode::Lazy`] the fill is instead logged
    /// into the on-chip multiset hash — off the critical path.
    pub fn fill_integrity_chain(&mut self, _pid: usize, addr: u64) -> Vec<u64> {
        if !self.is_data_addr(addr) {
            return Vec::new();
        }
        match self.cfg.integrity {
            IntegrityMode::CHash => self.geometry.ancestors(addr),
            IntegrityMode::Lazy => {
                self.lazy_reads += 1;
                Vec::new()
            }
            IntegrityMode::None => Vec::new(),
        }
    }

    /// Hook: processor `pid` writes data line `addr` back. Advances the
    /// line's sequence number; returns whether a pad broadcast message is
    /// required.
    pub fn writeback_needs_broadcast(&mut self, pid: usize, addr: u64) -> bool {
        if !self.cfg.otp || !self.is_data_addr(addr) {
            return false;
        }
        self.snc.advance(addr);
        self.pads.on_writeback(pid, addr).broadcast
    }

    /// Hook: the Merkle ancestor chain to *update* after a write-back
    /// (same chain as verification; the walk stops at the first resident
    /// node and dirties the parent). Lazy mode logs instead.
    pub fn writeback_integrity_chain(&mut self, _pid: usize, addr: u64) -> Vec<u64> {
        if !self.is_data_addr(addr) {
            return Vec::new();
        }
        match self.cfg.integrity {
            IntegrityMode::CHash => self.geometry.ancestors(addr),
            IntegrityMode::Lazy => {
                self.lazy_writes += 1;
                Vec::new()
            }
            IntegrityMode::None => Vec::new(),
        }
    }

    /// Appends the policy's mutable state to a checkpoint key/value list
    /// (the `mp.` namespace of the extension snapshot format). Keys are
    /// stable, unique and whitespace-free; list entries are emitted in
    /// sorted order so equal policies always snapshot identically.
    pub fn snapshot_into(&self, out: &mut Vec<(String, u64)>) {
        out.push(("mp.lazy_reads".into(), self.lazy_reads));
        out.push(("mp.lazy_writes".into(), self.lazy_writes));
        let (entries, clock, hits, misses) = self.snc.export_state();
        out.push(("mp.snc.clock".into(), clock));
        out.push(("mp.snc.hits".into(), hits));
        out.push(("mp.snc.misses".into(), misses));
        out.push(("mp.snc.len".into(), entries.len() as u64));
        for (i, (line, seq, last_use)) in entries.iter().enumerate() {
            out.push((format!("mp.snc.{i}.line"), *line));
            out.push((format!("mp.snc.{i}.seq"), *seq));
            out.push((format!("mp.snc.{i}.lu"), *last_use));
        }
        let (lines, broadcasts, requests) = self.pads.export_state();
        out.push(("mp.pad.bcasts".into(), broadcasts));
        out.push(("mp.pad.reqs".into(), requests));
        out.push(("mp.pad.len".into(), lines.len() as u64));
        for (i, (addr, holders, written)) in lines.iter().enumerate() {
            out.push((format!("mp.pad.{i}.addr"), *addr));
            out.push((format!("mp.pad.{i}.hold"), *holders));
            out.push((format!("mp.pad.{i}.wr"), *written as u64));
        }
    }

    /// Restores the policy's mutable state from a checkpoint key lookup
    /// (the inverse of [`MemProtPolicy::snapshot_into`]).
    ///
    /// # Panics
    ///
    /// Panics on any missing key — a truncated or mismatched snapshot
    /// fails loudly.
    pub fn restore_from(&mut self, state: &std::collections::BTreeMap<&str, u64>) {
        let get = |k: String| -> u64 {
            *state
                .get(k.as_str())
                .unwrap_or_else(|| panic!("snapshot missing key {k}"))
        };
        self.lazy_reads = get("mp.lazy_reads".into());
        self.lazy_writes = get("mp.lazy_writes".into());
        let snc_len = get("mp.snc.len".into()) as usize;
        let entries: Vec<(u64, u64, u64)> = (0..snc_len)
            .map(|i| {
                (
                    get(format!("mp.snc.{i}.line")),
                    get(format!("mp.snc.{i}.seq")),
                    get(format!("mp.snc.{i}.lu")),
                )
            })
            .collect();
        self.snc.restore_state(
            &entries,
            get("mp.snc.clock".into()),
            get("mp.snc.hits".into()),
            get("mp.snc.misses".into()),
        );
        let pad_len = get("mp.pad.len".into()) as usize;
        let lines: Vec<(u64, u64, bool)> = (0..pad_len)
            .map(|i| {
                (
                    get(format!("mp.pad.{i}.addr")),
                    get(format!("mp.pad.{i}.hold")),
                    get(format!("mp.pad.{i}.wr")) != 0,
                )
            })
            .collect();
        self.pads.restore_state(
            &lines,
            get("mp.pad.bcasts".into()),
            get("mp.pad.reqs".into()),
        );
    }

    /// Memory reads logged by lazy verification.
    pub fn lazy_reads(&self) -> u64 {
        self.lazy_reads
    }

    /// Memory write-backs logged by lazy verification.
    pub fn lazy_writes(&self) -> u64 {
        self.lazy_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle::HASH_REGION_BASE;

    fn policy() -> MemProtPolicy {
        MemProtPolicy::new(MemProtConfig {
            otp: true,
            integrity: IntegrityMode::CHash,
            pad_protocol: PadProtocol::WriteInvalidate,
            data_span: 1 << 30,
            num_processors: 4,
        })
    }

    #[test]
    fn integrity_chain_for_data_lines_only() {
        let mut p = policy();
        assert!(!p.fill_integrity_chain(0, 0x1000).is_empty());
        assert!(p.fill_integrity_chain(0, HASH_REGION_BASE + 64).is_empty());
    }

    #[test]
    fn disabled_features_return_nothing() {
        let mut p = MemProtPolicy::new(MemProtConfig {
            otp: false,
            integrity: IntegrityMode::None,
            pad_protocol: PadProtocol::WriteInvalidate,
            data_span: 1 << 30,
            num_processors: 2,
        });
        assert!(p.fill_integrity_chain(0, 0x1000).is_empty());
        assert!(!p.fill_needs_pad_request(0, 0x1000));
        assert!(!p.writeback_needs_broadcast(0, 0x1000));
        assert!(p.writeback_integrity_chain(0, 0x1000).is_empty());
    }

    #[test]
    fn writeback_advances_sequence_numbers() {
        let mut p = policy();
        p.writeback_needs_broadcast(0, 0x2000);
        p.writeback_needs_broadcast(0, 0x2000);
        assert_eq!(p.snc().misses(), 1, "one cold SNC lookup");
        assert!(p.snc().hits() >= 1);
    }

    #[test]
    fn pad_request_after_remote_writeback() {
        let mut p = policy();
        assert!(!p.fill_needs_pad_request(1, 0x4000), "cold line: derivable");
        p.writeback_needs_broadcast(0, 0x4000);
        assert!(
            p.fill_needs_pad_request(1, 0x4000),
            "P0 holds the fresh pad"
        );
    }

    #[test]
    fn lazy_variant_logs_instead_of_walking() {
        let mut p = MemProtPolicy::new(MemProtConfig::lazy_variant(2));
        assert!(p.fill_integrity_chain(0, 0x1000).is_empty());
        assert!(p.writeback_integrity_chain(0, 0x1000).is_empty());
        assert_eq!(p.lazy_reads(), 1);
        assert_eq!(p.lazy_writes(), 1);
    }

    #[test]
    fn paper_default_is_full_stack() {
        let c = MemProtConfig::paper_default(4);
        assert!(c.otp);
        assert_eq!(c.integrity, IntegrityMode::CHash);
        assert_eq!(c.pad_protocol, PadProtocol::WriteInvalidate);
        let p = MemProtPolicy::new(c);
        assert_eq!(p.geometry().levels(), 13);
    }
}
