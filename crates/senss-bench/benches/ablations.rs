//! Ablation benchmarks for the design decisions DESIGN.md calls out.
//!
//! 1. *Send P vs send C* (§4.2, Table 1): critical-path work to produce
//!    the bus value — one XOR versus a full AES.
//! 2. *Mask count* (§4.4): stall cycles under peak bus rate.
//! 3. *Pad coherence protocol* (§6.1): write-invalidate vs write-update
//!    on a write-heavy workload.

use senss::mask::MaskArray;
use senss::secure_bus::{SenssConfig, SenssExtension};
use senss_bench::benchkit::{black_box, Group};
use senss_crypto::aes::Aes;
use senss_crypto::Block;
use senss_memprot::{MemProtConfig, MemProtPolicy, PadProtocol};
use senss_sim::{System, SystemConfig};
use senss_workloads::Workload;

fn ablation_send_p_vs_c() {
    // What SENSS puts on the critical path (XOR with a ready mask) versus
    // what classic CBC would (an AES invocation).
    let aes = Aes::new_128(&[3; 16]);
    let mask = Block::from([9; 16]);
    let data = Block::from([0x5A; 16]);
    let mut g = Group::new("ablation-send-p-vs-c");
    g.bench("send_p_xor_only", || {
        black_box(black_box(data) ^ black_box(mask))
    });
    g.bench("send_c_full_aes", || {
        black_box(aes.encrypt_block(black_box(data) ^ black_box(mask)))
    });
}

fn ablation_mask_count() {
    // Simulated stall cycles at peak bus rate for each mask count.
    let mut g = Group::new("ablation-mask-count");
    for masks in [1usize, 2, 4, 8] {
        g.bench(&format!("acquire_1000/{masks}"), || {
            let mut arr = MaskArray::new(masks, 80, 10);
            let mut stall = 0u64;
            for i in 0..1000u64 {
                stall += arr.acquire(i * 10);
            }
            black_box(stall)
        });
    }
}

fn ablation_pad_coherence() {
    let mut g = Group::new("ablation-pad-coherence");
    for (name, protocol) in [
        ("write_invalidate", PadProtocol::WriteInvalidate),
        ("write_update", PadProtocol::WriteUpdate),
    ] {
        g.bench(name, || {
            let ext = SenssExtension::new(SenssConfig::paper_default(4))
                .with_memory_protection(MemProtPolicy::new(MemProtConfig {
                    otp: true,
                    integrity: senss_memprot::IntegrityMode::None,
                    pad_protocol: protocol,
                    data_span: 1 << 32,
                    num_processors: 4,
                }));
            let mut sys = System::new(
                SystemConfig::e6000(4, 1 << 20),
                Workload::Radix.generate(4, 3_000, 5),
                ext,
            );
            black_box(sys.run())
        });
    }
}

fn ablation_chash_vs_lhash() {
    // §7.7: the paper expects LHash (lazy verification) to beat CHash.
    // Same workload, same OTP stack, different integrity mode.
    let mut g = Group::new("ablation-integrity-mode");
    for (name, mode) in [
        ("chash", senss_memprot::IntegrityMode::CHash),
        ("lhash", senss_memprot::IntegrityMode::Lazy),
    ] {
        g.bench(name, || {
            let ext = SenssExtension::new(SenssConfig::paper_default(4))
                .with_memory_protection(MemProtPolicy::new(MemProtConfig {
                    otp: true,
                    integrity: mode,
                    pad_protocol: PadProtocol::WriteInvalidate,
                    data_span: 1 << 32,
                    num_processors: 4,
                }));
            let mut sys = System::new(
                SystemConfig::e6000(4, 1 << 20),
                Workload::Ocean.generate(4, 3_000, 5),
                ext,
            );
            black_box(sys.run())
        });
    }
}

fn ablation_cipher_mode() {
    // §4.3 Implications at system level: CBC two-pass vs GCM one-pass
    // under a c2c-heavy workload.
    use senss::secure_bus::CipherMode;
    let mut g = Group::new("ablation-cipher-mode");
    for (name, mode) in [
        ("cbc_two_pass", CipherMode::CbcTwoPass),
        ("gcm_single_pass", CipherMode::GcmSinglePass),
    ] {
        g.bench(name, || {
            let mut sys = System::new(
                SystemConfig::e6000(4, 4 << 20),
                Workload::Fft.generate(4, 3_000, 7),
                SenssExtension::new(
                    SenssConfig::paper_default(4).with_cipher(mode).with_masks(2),
                ),
            );
            black_box(sys.run())
        });
    }
}

fn main() {
    ablation_send_p_vs_c();
    ablation_mask_count();
    ablation_pad_coherence();
    ablation_chash_vs_lhash();
    ablation_cipher_mode();
}
