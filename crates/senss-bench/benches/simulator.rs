//! Simulator-substrate benchmarks: how fast the cycle-level SMP model
//! runs (simulated references per wall-clock second).

use senss_bench::benchkit::{black_box, Group};
use senss_sim::{NullExtension, System, SystemConfig};
use senss_workloads::Workload;

fn bench_baseline_runs() {
    let mut g = Group::new("simulator");
    let ops = 5_000usize;
    for w in [Workload::Ocean, Workload::Radix] {
        g.throughput_elements(4 * ops as u64);
        g.bench(&format!("run_4p_1m/{}", w.name()), || {
            let mut sys = System::new(
                SystemConfig::e6000(4, 1 << 20),
                w.generate(4, ops, 42),
                NullExtension,
            );
            black_box(sys.run())
        });
    }
}

fn bench_trace_generation() {
    let mut g = Group::new("workload-generation");
    for w in Workload::all() {
        g.throughput_elements(4 * 10_000);
        g.bench(&format!("generate/{}", w.name()), || {
            black_box(w.generate(4, 10_000, 1))
        });
    }
}

fn main() {
    bench_baseline_runs();
    bench_trace_generation();
}
