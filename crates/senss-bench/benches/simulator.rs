//! Simulator-substrate benchmarks: how fast the cycle-level SMP model
//! runs (simulated references per wall-clock second).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use senss_sim::{NullExtension, System, SystemConfig};
use senss_workloads::Workload;

fn bench_baseline_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let ops = 5_000usize;
    for w in [Workload::Ocean, Workload::Radix] {
        g.throughput(Throughput::Elements(4 * ops as u64));
        g.bench_with_input(BenchmarkId::new("run_4p_1m", w.name()), &w, |b, &w| {
            b.iter(|| {
                let mut sys = System::new(
                    SystemConfig::e6000(4, 1 << 20),
                    w.generate(4, ops, 42),
                    NullExtension,
                );
                black_box(sys.run())
            });
        });
    }
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload-generation");
    g.sample_size(10);
    for w in Workload::all() {
        g.throughput(Throughput::Elements(4 * 10_000));
        g.bench_with_input(BenchmarkId::new("generate", w.name()), &w, |b, &w| {
            b.iter(|| black_box(w.generate(4, 10_000, 1)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_baseline_runs, bench_trace_generation);
criterion_main!(benches);
