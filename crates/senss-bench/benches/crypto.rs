//! Crypto-substrate microbenchmarks: the primitives whose hardware
//! latencies the paper models (AES, CBC chain, CBC-MAC, GCM, SHA-256).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use senss_crypto::aes::Aes;
use senss_crypto::cbc::{BusChain, CbcEncryptor};
use senss_crypto::gcm::Gcm;
use senss_crypto::mac::ChainedMac;
use senss_crypto::sha256::Sha256;
use senss_crypto::Block;

fn bench_aes(c: &mut Criterion) {
    let aes = Aes::new_128(&[7; 16]);
    let block = Block::from([0x42; 16]);
    let mut g = c.benchmark_group("aes");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("encrypt_block", |b| {
        b.iter(|| aes.encrypt_block(black_box(block)))
    });
    g.bench_function("decrypt_block", |b| {
        let ct = aes.encrypt_block(block);
        b.iter(|| aes.decrypt_block(black_box(ct)))
    });
    g.finish();
}

fn bench_chains(c: &mut Criterion) {
    let mut g = c.benchmark_group("bus-encryption");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("bus_chain_encrypt", |b| {
        let mut chain = BusChain::new(Aes::new_128(&[1; 16]), Block::from([2; 16]));
        b.iter(|| chain.encrypt(black_box(Block::from([3; 16]))))
    });
    g.bench_function("cbc_encrypt_block", |b| {
        let mut enc = CbcEncryptor::new(Aes::new_128(&[1; 16]), Block::from([2; 16]));
        b.iter(|| enc.encrypt_block(black_box(Block::from([3; 16]))))
    });
    g.bench_function("chained_mac_absorb", |b| {
        let mut mac = ChainedMac::new(Aes::new_128(&[1; 16]), Block::from([4; 16]));
        b.iter(|| mac.absorb_tagged(black_box(Block::from([5; 16])), 3))
    });
    g.finish();
}

fn bench_gcm_vs_cbc_two_pass(c: &mut Criterion) {
    // §4.3 Implications: CBC needs two AES passes per block (encrypt +
    // MAC); GCM produces ciphertext + tag with one AES pass and a GF
    // multiply. Compare a 64-byte line (one bus transfer).
    let line = [0x5Au8; 64];
    let mut g = c.benchmark_group("line-encrypt-auth");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("cbc_plus_cbcmac", |b| {
        let aes = Aes::new_128(&[1; 16]);
        b.iter(|| {
            let mut enc = CbcEncryptor::new(aes.clone(), Block::from([2; 16]));
            let mut mac = ChainedMac::new(aes.clone(), Block::from([3; 16]));
            for chunk in line.chunks_exact(16) {
                let blk = Block::from_slice(chunk);
                black_box(enc.encrypt_block(blk));
                mac.absorb(blk);
            }
            black_box(mac.tag(128))
        })
    });
    g.bench_function("gcm_single_pass", |b| {
        let gcm = Gcm::new(Aes::new_128(&[1; 16]));
        b.iter(|| black_box(gcm.encrypt(&[9u8; 12], b"", &line)))
    });
    g.finish();
}

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 1024] {
        let data = vec![0xCC; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| Sha256::digest(black_box(&data)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_aes,
    bench_chains,
    bench_gcm_vs_cbc_two_pass,
    bench_sha256
);
criterion_main!(benches);
