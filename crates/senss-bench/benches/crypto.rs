//! Crypto-substrate microbenchmarks: the primitives whose hardware
//! latencies the paper models (AES, CBC chain, CBC-MAC, GCM, SHA-256).

use senss_bench::benchkit::{black_box, Group};
use senss_crypto::aes::Aes;
use senss_crypto::cbc::{BusChain, CbcEncryptor};
use senss_crypto::gcm::Gcm;
use senss_crypto::mac::ChainedMac;
use senss_crypto::sha256::Sha256;
use senss_crypto::Block;

fn bench_aes() {
    let aes = Aes::new_128(&[7; 16]);
    let block = Block::from([0x42; 16]);
    let mut g = Group::new("aes");
    g.throughput_bytes(16);
    g.bench("encrypt_block", || aes.encrypt_block(black_box(block)));
    let ct = aes.encrypt_block(block);
    g.bench("decrypt_block", || aes.decrypt_block(black_box(ct)));
}

fn bench_chains() {
    let mut g = Group::new("bus-encryption");
    g.throughput_bytes(16);
    let mut chain = BusChain::new(Aes::new_128(&[1; 16]), Block::from([2; 16]));
    g.bench("bus_chain_encrypt", || {
        chain.encrypt(black_box(Block::from([3; 16])))
    });
    let mut enc = CbcEncryptor::new(Aes::new_128(&[1; 16]), Block::from([2; 16]));
    g.bench("cbc_encrypt_block", || {
        enc.encrypt_block(black_box(Block::from([3; 16])))
    });
    let mut mac = ChainedMac::new(Aes::new_128(&[1; 16]), Block::from([4; 16]));
    g.bench("chained_mac_absorb", || {
        mac.absorb_tagged(black_box(Block::from([5; 16])), 3)
    });
}

fn bench_gcm_vs_cbc_two_pass() {
    // §4.3 Implications: CBC needs two AES passes per block (encrypt +
    // MAC); GCM produces ciphertext + tag with one AES pass and a GF
    // multiply. Compare a 64-byte line (one bus transfer).
    let line = [0x5Au8; 64];
    let mut g = Group::new("line-encrypt-auth");
    g.throughput_bytes(64);
    let aes = Aes::new_128(&[1; 16]);
    g.bench("cbc_plus_cbcmac", || {
        let mut enc = CbcEncryptor::new(aes.clone(), Block::from([2; 16]));
        let mut mac = ChainedMac::new(aes.clone(), Block::from([3; 16]));
        for chunk in line.chunks_exact(16) {
            let blk = Block::from_slice(chunk);
            black_box(enc.encrypt_block(blk));
            mac.absorb(blk);
        }
        black_box(mac.tag(128))
    });
    let gcm = Gcm::new(Aes::new_128(&[1; 16]));
    g.bench("gcm_single_pass", || {
        black_box(gcm.encrypt(&[9u8; 12], b"", &line))
    });
}

fn bench_sha256() {
    let mut g = Group::new("sha256");
    for size in [64usize, 1024] {
        let data = vec![0xCC; size];
        g.throughput_bytes(size as u64);
        g.bench(&format!("digest_{size}B"), || {
            Sha256::digest(black_box(&data))
        });
    }
}

fn main() {
    bench_aes();
    bench_chains();
    bench_gcm_vs_cbc_two_pass();
    bench_sha256();
}
