//! SENSS-layer benchmarks: the cost the security machinery adds per
//! simulated run, and the functional fabric's throughput (real AES on
//! every transfer).

use senss::fabric::GroupFabric;
use senss::group::{GroupId, ProcessorId};
use senss::secure_bus::{SenssConfig, SenssExtension};
use senss_bench::benchkit::{black_box, Group};
use senss_crypto::Block;
use senss_sim::{NullExtension, System, SystemConfig};
use senss_workloads::Workload;

fn bench_secured_simulation() {
    let mut g = Group::new("secured-simulation");
    let ops = 5_000usize;
    let w = Workload::Ocean;
    g.bench("baseline", || {
        let mut sys = System::new(
            SystemConfig::e6000(4, 1 << 20),
            w.generate(4, ops, 42),
            NullExtension,
        );
        black_box(sys.run())
    });
    for interval in [100u64, 1] {
        g.bench(&format!("senss_interval/{interval}"), || {
            let mut sys = System::new(
                SystemConfig::e6000(4, 1 << 20),
                w.generate(4, ops, 42),
                SenssExtension::new(SenssConfig::paper_default(4).with_auth_interval(interval)),
            );
            black_box(sys.run())
        });
    }
}

fn bench_functional_fabric() {
    // Full crypto per transfer: 4-block payload encrypted by the sender
    // and decrypted + MAC'd by 3 receivers.
    let mut g = Group::new("functional-fabric");
    g.throughput_bytes(64);
    let mut fabric = GroupFabric::new(
        GroupId::new(0),
        (0..4).map(ProcessorId::new).collect(),
        &[7; 16],
        Block::from([1; 16]),
        Block::from([2; 16]),
        8,
        100,
        64,
    );
    let line: Vec<Block> = (0..4u8).map(|i| Block::from([i; 16])).collect();
    let mut sender = 0u8;
    g.bench("broadcast_64B_4members", || {
        sender = (sender + 1) % 4;
        black_box(fabric.broadcast(ProcessorId::new(sender), &line))
    });
}

fn main() {
    bench_secured_simulation();
    bench_functional_fabric();
}
