//! SENSS-layer benchmarks: the cost the security machinery adds per
//! simulated run, and the functional fabric's throughput (real AES on
//! every transfer).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use senss::fabric::GroupFabric;
use senss::group::{GroupId, ProcessorId};
use senss::secure_bus::{SenssConfig, SenssExtension};
use senss_crypto::Block;
use senss_sim::{NullExtension, System, SystemConfig};
use senss_workloads::Workload;

fn bench_secured_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("secured-simulation");
    g.sample_size(10);
    let ops = 5_000usize;
    let w = Workload::Ocean;
    g.bench_function("baseline", |b| {
        b.iter(|| {
            let mut sys = System::new(
                SystemConfig::e6000(4, 1 << 20),
                w.generate(4, ops, 42),
                NullExtension,
            );
            black_box(sys.run())
        });
    });
    for interval in [100u64, 1] {
        g.bench_with_input(
            BenchmarkId::new("senss_interval", interval),
            &interval,
            |b, &interval| {
                b.iter(|| {
                    let mut sys = System::new(
                        SystemConfig::e6000(4, 1 << 20),
                        w.generate(4, ops, 42),
                        SenssExtension::new(
                            SenssConfig::paper_default(4).with_auth_interval(interval),
                        ),
                    );
                    black_box(sys.run())
                });
            },
        );
    }
    g.finish();
}

fn bench_functional_fabric(c: &mut Criterion) {
    // Full crypto per transfer: 4-block payload encrypted by the sender
    // and decrypted + MAC'd by 3 receivers.
    let mut g = c.benchmark_group("functional-fabric");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("broadcast_64B_4members", |b| {
        let mut fabric = GroupFabric::new(
            GroupId::new(0),
            (0..4).map(ProcessorId::new).collect(),
            &[7; 16],
            Block::from([1; 16]),
            Block::from([2; 16]),
            8,
            100,
            64,
        );
        let line: Vec<Block> = (0..4u8).map(|i| Block::from([i; 16])).collect();
        let mut sender = 0u8;
        b.iter(|| {
            sender = (sender + 1) % 4;
            black_box(fabric.broadcast(ProcessorId::new(sender), &line))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_secured_simulation, bench_functional_fabric);
criterion_main!(benches);
