//! §7.1 hardware-overhead table: SHU storage and extra bus lines.
//!
//! Regenerates the paper's accounting: the group-processor bit matrix
//! (640 B), the group information table (1161 bits/entry ⇒ ≈148.6 KB for
//! 1024 entries), and the 11-extra-bus-lines (+3.1%) augmentation of the
//! Gigaplane-class bus. Also prints the Figure 5 parameter table.

use senss::secure_bus::SenssExtension;
use senss::shu::{BitMatrix, GroupInfoTable};
use senss_sim::SystemConfig;

fn main() {
    println!("=== SENSS §7.1 hardware overhead ===\n");

    let matrix_bits = BitMatrix::storage_bits();
    println!(
        "Group-processor bit matrix : 1024 entries x 5 bits = {} bytes",
        matrix_bits / 8
    );

    let table = GroupInfoTable::new(8);
    let entry_bits = table.storage_bits() / 1024;
    println!(
        "Group information table    : {} bits/entry (1 occupied + 128 key + 8 ctr + 8x128 masks)",
        entry_bits
    );
    println!(
        "                             {:.1} KB for 1024 entries",
        table.storage_bits() as f64 / 8.0 / 1000.0
    );

    let (base, extra, pct) = SenssExtension::extra_bus_lines();
    println!(
        "Bus lines                  : {base} (Gigaplane) + {extra} (2 msg-type + 10 GID) = +{pct:.1}%"
    );

    println!("\n=== Figure 5: architectural parameters ===\n");
    println!("{}", SystemConfig::e6000(4, 4 << 20).figure5_table());

    println!("Paper reference: matrix 640 bytes; table 1161 bits/entry, 148.6 KB; +3.1% bus lines.");
}
