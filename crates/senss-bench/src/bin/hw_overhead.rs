//! §7.1 hardware-overhead table: SHU storage and extra bus lines.
//!
//! Regenerates the paper's accounting: the group-processor bit matrix
//! (640 B), the group information table (1161 bits/entry ⇒ ≈148.6 KB for
//! 1024 entries), and the 11-extra-bus-lines (+3.1%) augmentation of the
//! Gigaplane-class bus. Also prints the Figure 5 parameter table and a
//! dynamic cross-check run through the harness: the observed auth-per-c2c
//! ratio must match the configured interval-100 accounting.

use senss::secure_bus::SenssExtension;
use senss::shu::{BitMatrix, GroupInfoTable};
use senss_bench::sweeps::{self, SecurityMode, SweepSpec};
use senss_bench::RunEnv;
use senss_workloads::Workload;

fn main() {
    let env = RunEnv::from_env();
    env.banner_bare("SENSS §7.1 hardware overhead");

    let matrix_bits = BitMatrix::storage_bits();
    println!(
        "Group-processor bit matrix : 1024 entries x 5 bits = {} bytes",
        matrix_bits / 8
    );

    let table = GroupInfoTable::new(8);
    let entry_bits = table.storage_bits() / 1024;
    println!(
        "Group information table    : {} bits/entry (1 occupied + 128 key + 8 ctr + 8x128 masks)",
        entry_bits
    );
    println!(
        "                             {:.1} KB for 1024 entries",
        table.storage_bits() as f64 / 8.0 / 1000.0
    );

    let (base, extra, pct) = SenssExtension::extra_bus_lines();
    println!(
        "Bus lines                  : {base} (Gigaplane) + {extra} (2 msg-type + 10 GID) = +{pct:.1}%"
    );

    // The figure-5 parameters come from the same materialized JobSpec the
    // sweeps run, so this table cannot drift from what is simulated.
    let job = sweeps::point(Workload::Ocean, 4, 4 << 20).with_mode(SecurityMode::senss());
    println!("\n=== Figure 5: architectural parameters ===\n");
    println!("{}", job.system_config().figure5_table());

    // Dynamic cross-check: one harness job confirms the static accounting
    // (auth interval 100 ⇒ one auth transaction per 100 c2c transfers).
    let mut sweep = SweepSpec::new("hw_overhead");
    sweep.push(job);
    let result = sweeps::execute(&sweep);
    let stats = result.require(&job);
    println!(
        "Dynamic cross-check (ocean, 4P, 4MB L2, ops/core = {}, seed = {}):",
        env.ops,
        env.seed
    );
    println!(
        "  c2c transfers = {}, auth transactions = {} (expected ~ c2c/100 = {})",
        stats.cache_to_cache_transfers,
        stats.txn_auth,
        stats.cache_to_cache_transfers / 100
    );

    println!("\nPaper reference: matrix 640 bytes; table 1161 bits/entry, 148.6 KB; +3.1% bus lines.");
}
