//! Figure 11 / §7.8: simulation variability through access reordering.
//!
//! The paper's example: two CPUs false-sharing a line. The few extra
//! cycles SENSS adds to each bus transfer shift the interleaving of
//! accesses, which can flip hits to misses (and vice versa), occasionally
//! making the *secured* run faster than the baseline — which is why some
//! figure bars dip below zero. This binary reproduces the effect on the
//! false-sharing microbenchmark and on a seed sweep of `radix`.

use senss_bench::sweeps::{self, JobSpec, SecurityMode, SweepSpec, TraceSpec};
use senss_bench::{overhead, RunEnv};
use senss_workloads::Workload;

const MICRO_OPS: usize = 2_000;
const SEEDS: u64 = 8;

fn main() {
    let env = RunEnv::from_env();
    env.banner_bare("Figure 11 / §7.8: access reordering & variability");

    // One sweep covers both experiments: the paper-diagram false-sharing
    // micro-trace (interval 1 = worst case) and the radix seed sweep.
    let ops = env.ops.min(10_000);
    let mut sweep = SweepSpec::new("fig11");
    let micro = JobSpec::new(TraceSpec::FalseSharing, 2, 1 << 20).with_ops(MICRO_OPS);
    sweep.push(micro);
    sweep.push(micro.with_mode(SecurityMode::senss_interval(1)));
    for s in 0..SEEDS {
        let radix = JobSpec::new(Workload::Radix, 4, 1 << 20)
            .with_ops(ops)
            .with_seed(s);
        sweep.push(radix);
        sweep.push(radix.with_mode(SecurityMode::senss()));
    }
    let result = sweeps::execute(&sweep);

    let base = result.require(&micro);
    let sec = result.require(&micro.with_mode(SecurityMode::senss_interval(1)));
    println!("false-sharing micro (2 CPUs, same line, different words):");
    println!(
        "  base : cycles={:>9} l1_hits={:>6} c2c={:>5} upgrades={:>5}",
        base.total_cycles, base.l1_hits, base.cache_to_cache_transfers, base.txn_upgrade
    );
    println!(
        "  senss: cycles={:>9} l1_hits={:>6} c2c={:>5} upgrades={:>5}",
        sec.total_cycles, sec.l1_hits, sec.cache_to_cache_transfers, sec.txn_upgrade
    );
    println!(
        "  hit/miss mix changed: {} (the reordering effect)\n",
        base.l1_hits != sec.l1_hits || base.cache_to_cache_transfers != sec.cache_to_cache_transfers
    );

    // Seed sweep: the distribution of slowdowns includes negative values.
    println!("radix slowdown across seeds (4P, 1MB L2, interval 100):");
    let mut negatives = 0;
    for s in 0..SEEDS {
        let radix = JobSpec::new(Workload::Radix, 4, 1 << 20)
            .with_ops(ops)
            .with_seed(s);
        let base = result.require(&radix);
        let sec = result.require(&radix.with_mode(SecurityMode::senss()));
        let o = overhead(sec, base);
        if o.slowdown_pct < 0.0 {
            negatives += 1;
        }
        println!("  seed {s}: {:+.3}%", o.slowdown_pct);
    }
    println!("\nnegative slowdowns observed: {negatives}/{SEEDS}");
    println!("Paper: \"some of the programs run faster ... than the base case\" (§7.8).");
}
