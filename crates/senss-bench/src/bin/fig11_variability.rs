//! Figure 11 / §7.8: simulation variability through access reordering.
//!
//! The paper's example: two CPUs false-sharing a line. The few extra
//! cycles SENSS adds to each bus transfer shift the interleaving of
//! accesses, which can flip hits to misses (and vice versa), occasionally
//! making the *secured* run faster than the baseline — which is why some
//! figure bars dip below zero. This binary reproduces the effect on the
//! false-sharing microbenchmark and on a seed sweep of `radix`.

use senss::secure_bus::{SenssConfig, SenssExtension};
use senss_bench::{ops_per_core, overhead, Point};
use senss_sim::{NullExtension, System, SystemConfig};
use senss_workloads::{micro, Workload};

fn main() {
    println!("=== Figure 11 / §7.8: access reordering & variability ===\n");

    // The false-sharing micro-trace of the paper's diagram.
    let cfg = SystemConfig::e6000(2, 1 << 20);
    let base = System::new(cfg.clone(), micro::false_sharing(2_000), NullExtension).run();
    let sec = System::new(
        cfg,
        micro::false_sharing(2_000),
        SenssExtension::new(SenssConfig::paper_default(2).with_auth_interval(1)),
    )
    .run();
    println!("false-sharing micro (2 CPUs, same line, different words):");
    println!(
        "  base : cycles={:>9} l1_hits={:>6} c2c={:>5} upgrades={:>5}",
        base.total_cycles, base.l1_hits, base.cache_to_cache_transfers, base.txn_upgrade
    );
    println!(
        "  senss: cycles={:>9} l1_hits={:>6} c2c={:>5} upgrades={:>5}",
        sec.total_cycles, sec.l1_hits, sec.cache_to_cache_transfers, sec.txn_upgrade
    );
    println!(
        "  hit/miss mix changed: {} (the reordering effect)\n",
        base.l1_hits != sec.l1_hits || base.cache_to_cache_transfers != sec.cache_to_cache_transfers
    );

    // Seed sweep: the distribution of slowdowns includes negative values.
    let ops = ops_per_core().min(10_000);
    println!("radix slowdown across seeds (4P, 1MB L2, interval 100):");
    let mut negatives = 0;
    for s in 0..8u64 {
        let p = Point::new(Workload::Radix, 4, 1 << 20);
        let base = p.run_baseline(ops, s);
        let sec = p.run_senss(ops, s, SenssConfig::paper_default(4));
        let o = overhead(&sec, &base);
        if o.slowdown_pct < 0.0 {
            negatives += 1;
        }
        println!("  seed {s}: {:+.3}%", o.slowdown_pct);
    }
    println!("\nnegative slowdowns observed: {negatives}/8");
    println!("Paper: \"some of the programs run faster ... than the base case\" (§7.8).");
}
