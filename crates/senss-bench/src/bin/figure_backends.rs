//! The cross-backend comparison figure: SENSS vs the `senss-backends`
//! alternatives (SERVAS authenticryption, Sealer in-SRAM AES,
//! secret-sharing scattered memory), as overhead vs the insecure
//! baseline over workloads × 4/8/16 processors × three scale points.
//!
//! ```text
//! figure_backends [--smoke] [--out results/backends.jsonl]
//! ```
//!
//! `--smoke` shrinks the grid to three workloads at a fixed 900
//! ops/core (ignoring `SENSS_OPS`) — the CI configuration, small enough
//! to run three ways (local, cluster, warm-start) and `cmp` the
//! outputs. The JSONL table is a pure function of the simulated stats:
//! byte-identical across worker counts, cache warmth, `SENSS_SERVE`
//! remoting and `HARNESS_WARM_START` snapshot forking.

use senss_bench::{backends, sweeps, RunEnv};
use std::path::PathBuf;

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("results/backends.jsonl");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!("unknown flag {other:?}; usage: figure_backends [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let mut env = RunEnv::from_env();
    if smoke {
        env.ops = 900;
    }
    env.banner(if smoke {
        "Cross-backend comparison (smoke grid)"
    } else {
        "Cross-backend comparison: SENSS vs SERVAS vs Sealer vs scattered memory"
    });

    let workloads = backends::workloads(smoke);
    let sweep = backends::sweep(&workloads, env.ops, env.seed);
    let result = sweeps::execute(&sweep);
    let cells = backends::cells(&result, &workloads, env.ops, env.seed);

    print!("{}", backends::human_table(&cells, &workloads, env.ops));

    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    let table = backends::jsonl_table(&cells);
    std::fs::write(&out, &table).expect("write jsonl table");
    eprintln!(
        "wrote {} line(s) to {} ({} jobs, {} cached, {} forked)",
        cells.len(),
        out.display(),
        result.records.len(),
        result.cached,
        result.forked,
    );
    println!(
        "Reading: servas ≈ senss minus auth traffic; sealer ≈ senss minus mask stalls; \
         scattered trades crypto stalls for share-fetch traffic."
    );
}
