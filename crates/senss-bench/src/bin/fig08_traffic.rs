//! Figure 8: bus traffic increase from interval-100 authentication.
//!
//! The only extra transactions in bus-security-only SENSS are the
//! authentication messages — one per 100 cache-to-cache transfers — so
//! the paper reports increases well under 1% (max 0.46%).
//!
//! The sweep grid is identical to Figure 6's, so with a warm result
//! cache this binary executes zero simulations.

use senss_bench::sweeps::{self, SecurityMode, SweepSpec};
use senss_bench::{format_table, maybe_write_csv, workload_columns, RunEnv};

const L2S: [usize; 2] = [1 << 20, 4 << 20];
const CORES: [usize; 2] = [2, 4];

fn main() {
    let env = RunEnv::from_env();
    env.banner("Figure 8: % bus activity increase (SENSS, auth interval 100)");

    let mut sweep = SweepSpec::new("fig08");
    sweep.grid(
        &workload_columns(),
        &CORES,
        &L2S,
        &[SecurityMode::Baseline, SecurityMode::senss()],
        env.ops,
        env.seed,
    );
    let result = sweeps::execute(&sweep);

    for &l2 in &L2S {
        let mut rows = Vec::new();
        for &cores in &CORES {
            let values = sweeps::workload_overheads(&result, cores, l2, SecurityMode::senss())
                .into_iter()
                .map(|o| o.traffic_pct)
                .collect();
            rows.push((format!("{cores}P"), values));
        }
        maybe_write_csv(&format!("fig08_l2_{}mb", l2 >> 20), &rows);
        println!(
            "{}",
            format_table(
                &format!(
                    "Write-Invalidate + {}M write-back L2: % bus activity increase",
                    l2 >> 20
                ),
                &rows
            )
        );
    }
    println!("Paper shape: all values < 1% (auth adds 1 transaction per 100 c2c transfers).");
}
