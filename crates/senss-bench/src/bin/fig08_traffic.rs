//! Figure 8: bus traffic increase from interval-100 authentication.
//!
//! The only extra transactions in bus-security-only SENSS are the
//! authentication messages — one per 100 cache-to-cache transfers — so
//! the paper reports increases well under 1% (max 0.46%).

use senss::secure_bus::SenssConfig;
use senss_bench::{format_table, maybe_write_csv, ops_per_core, overhead, seed, workload_columns, Point};

fn main() {
    let ops = ops_per_core();
    let seed = seed();
    println!("=== Figure 8: % bus activity increase (SENSS, auth interval 100) ===");
    println!("ops/core = {ops}, seed = {seed}\n");

    for &l2 in &[1usize << 20, 4 << 20] {
        let mut rows = Vec::new();
        for &cores in &[2usize, 4] {
            let mut values = Vec::new();
            for w in workload_columns() {
                let p = Point::new(w, cores, l2);
                let base = p.run_baseline(ops, seed);
                let cfg = SenssConfig::paper_default(cores);
                let sec = p.run_senss(ops, seed, cfg);
                values.push(overhead(&sec, &base).traffic_pct);
            }
            rows.push((format!("{cores}P"), values));
        }
        maybe_write_csv(&format!("fig08_l2_{}mb" , l2 >> 20), &rows);
        println!(
            "{}",
            format_table(
                &format!(
                    "Write-Invalidate + {}M write-back L2: % bus activity increase",
                    l2 >> 20
                ),
                &rows
            )
        );
    }
    println!("Paper shape: all values < 1% (auth adds 1 transaction per 100 c2c transfers).");
}
