//! Figure 6: performance slowdown of SENSS bus security alone.
//!
//! The paper's setup: write-invalidate MESI, write-back L2 of 1 MB and
//! 4 MB, 2 and 4 processors, authentication every 100 cache-to-cache
//! transactions, bus security only (no cache-to-memory protection).
//! Reported shape: all slowdowns well under 1% (max 0.18%), generally
//! growing with the number of cache-to-cache transfers (more processors /
//! larger L2 ⇒ relatively more c2c).

use senss::secure_bus::SenssConfig;
use senss_bench::{format_table, maybe_write_csv, ops_per_core, overhead, seed, workload_columns, Point};

fn main() {
    let ops = ops_per_core();
    let seed = seed();
    println!("=== Figure 6: percentage slowdown (SENSS, auth interval 100) ===");
    println!("ops/core = {ops}, seed = {seed}\n");

    for &l2 in &[1usize << 20, 4 << 20] {
        let mut rows = Vec::new();
        for &cores in &[2usize, 4] {
            let mut values = Vec::new();
            for w in workload_columns() {
                let p = Point::new(w, cores, l2);
                let base = p.run_baseline(ops, seed);
                let cfg = SenssConfig::paper_default(cores);
                let sec = p.run_senss(ops, seed, cfg);
                values.push(overhead(&sec, &base).slowdown_pct);
            }
            rows.push((format!("{cores}P"), values));
        }
        maybe_write_csv(&format!("fig06_l2_{}mb" , l2 >> 20), &rows);
        println!(
            "{}",
            format_table(
                &format!(
                    "Write-Invalidate + {}M write-back L2: % slowdown",
                    l2 >> 20
                ),
                &rows
            )
        );
    }
    println!("Paper shape: all values < 0.2%; larger L2 and more processors trend higher.");
}
