//! Figure 6: performance slowdown of SENSS bus security alone.
//!
//! The paper's setup: write-invalidate MESI, write-back L2 of 1 MB and
//! 4 MB, 2 and 4 processors, authentication every 100 cache-to-cache
//! transactions, bus security only (no cache-to-memory protection).
//! Reported shape: all slowdowns well under 1% (max 0.18%), generally
//! growing with the number of cache-to-cache transfers (more processors /
//! larger L2 ⇒ relatively more c2c).

use senss_bench::sweeps::{self, SecurityMode, SweepSpec};
use senss_bench::{format_table, maybe_write_csv, workload_columns, RunEnv};

const L2S: [usize; 2] = [1 << 20, 4 << 20];
const CORES: [usize; 2] = [2, 4];

fn main() {
    let env = RunEnv::from_env();
    env.banner("Figure 6: percentage slowdown (SENSS, auth interval 100)");

    let mut sweep = SweepSpec::new("fig06");
    sweep.grid(
        &workload_columns(),
        &CORES,
        &L2S,
        &[SecurityMode::Baseline, SecurityMode::senss()],
        env.ops,
        env.seed,
    );
    let result = sweeps::execute(&sweep);

    for &l2 in &L2S {
        let mut rows = Vec::new();
        for &cores in &CORES {
            let values = sweeps::workload_overheads(&result, cores, l2, SecurityMode::senss())
                .into_iter()
                .map(|o| o.slowdown_pct)
                .collect();
            rows.push((format!("{cores}P"), values));
        }
        maybe_write_csv(&format!("fig06_l2_{}mb", l2 >> 20), &rows);
        println!(
            "{}",
            format_table(
                &format!(
                    "Write-Invalidate + {}M write-back L2: % slowdown",
                    l2 >> 20
                ),
                &rows
            )
        );
    }
    println!("Paper shape: all values < 0.2%; larger L2 and more processors trend higher.");
}
