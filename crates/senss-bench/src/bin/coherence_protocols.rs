//! Ablation: write-invalidate vs write-update **data** coherence under
//! SENSS (§6.1).
//!
//! The paper adopts write-invalidate "for its better performance" and
//! notes most SMPs do the same. This study makes the security angle
//! explicit: an update protocol broadcasts *data* on every shared write,
//! and under SENSS every such broadcast must be encrypted, MAC-chained
//! and (at interval 1) authenticated — so the security tax multiplies
//! with the protocol's chattiness. Write-invalidate is the right
//! substrate for SENSS twice over.

use senss_bench::sweeps::{self, SecurityMode, SweepSpec};
use senss_bench::{format_table, maybe_write_csv, workload_columns, RunEnv};
use senss_sim::config::CoherenceProtocol;

fn main() {
    RunEnv::from_env().banner("Coherence-protocol ablation under SENSS (4P, 1MB L2)");

    let protocols = [
        ("invalidate", CoherenceProtocol::WriteInvalidate),
        ("update", CoherenceProtocol::WriteUpdate),
    ];

    // SENSS cost (interval 1 = every transfer authenticated) per protocol.
    let mode = SecurityMode::senss_interval(1);
    let mut sweep = SweepSpec::new("coherence");
    for (_, protocol) in protocols {
        for w in workload_columns() {
            let job = sweeps::point(w, 4, 1 << 20).with_coherence(protocol);
            sweep.push(job);
            sweep.push(job.with_mode(mode));
        }
    }
    let result = sweeps::execute(&sweep);

    let mut slow_rows = Vec::new();
    let mut secured_rows = Vec::new();
    for (name, protocol) in protocols {
        let mut slow = Vec::new();
        let mut secured = Vec::new();
        for w in workload_columns() {
            let job = sweeps::point(w, 4, 1 << 20).with_coherence(protocol);
            let base = result.require(&job);
            let sec = result.require(&job.with_mode(mode));
            slow.push(sec.slowdown_vs(base));
            // Transfers SENSS had to secure (c2c fills + update broadcasts).
            secured.push((sec.cache_to_cache_transfers + sec.txn_update) as f64);
        }
        slow_rows.push((format!("SENSS over {name}"), slow));
        secured_rows.push((format!("{name}: secured transfers"), secured));
    }
    maybe_write_csv("coherence_slowdown", &slow_rows);
    println!(
        "{}",
        format_table("% slowdown of SENSS (auth interval 1)", &slow_rows)
    );
    println!(
        "{}",
        format_table("transfers SENSS must secure (count)", &secured_rows)
    );
    println!(
        "Write-update multiplies the secured-transfer count, so the SENSS tax grows with it;\n\
         the paper's choice of a write-invalidate substrate minimizes what must be encrypted."
    );
}
