//! Figure 9: sensitivity to the authentication interval.
//!
//! 4 processors, 4 MB L2. Interval 1 authenticates every cache-to-cache
//! transfer (maximum security): the paper reports up to 3.4% slowdown and
//! up to 46% more bus transactions (the auth messages mirror the c2c
//! share of total bus activity); longer intervals shrink both.

use senss_bench::sweeps::{self, SecurityMode, SweepSpec};
use senss_bench::{format_table, maybe_write_csv, workload_columns, RunEnv};

fn main() {
    let env = RunEnv::from_env();
    env.banner("Figure 9: authentication-interval sensitivity (4P, 4MB L2)");

    let intervals = [100u64, 32, 10, 1];
    let mut modes = vec![SecurityMode::Baseline];
    modes.extend(intervals.iter().map(|&i| SecurityMode::senss_interval(i)));
    let mut sweep = SweepSpec::new("fig09");
    sweep.grid(&workload_columns(), &[4], &[4 << 20], &modes, env.ops, env.seed);
    let result = sweeps::execute(&sweep);

    let mut slow_rows = Vec::new();
    let mut traffic_rows = Vec::new();
    for &interval in &intervals {
        let overheads =
            sweeps::workload_overheads(&result, 4, 4 << 20, SecurityMode::senss_interval(interval));
        slow_rows.push((
            format!("{interval} transactions"),
            overheads.iter().map(|o| o.slowdown_pct).collect(),
        ));
        traffic_rows.push((
            format!("{interval} transactions"),
            overheads.iter().map(|o| o.traffic_pct).collect(),
        ));
    }
    maybe_write_csv("fig09_slowdown", &slow_rows);
    maybe_write_csv("fig09_traffic", &traffic_rows);
    println!("{}", format_table("% slowdown", &slow_rows));
    println!("{}", format_table("% bus activity increase", &traffic_rows));
    println!("Paper shape: interval 1 ⇒ slowdown up to a few %, traffic up to ~46%;");
    println!("interval 100 ⇒ both near zero. Traffic at interval 1 equals the c2c share.");
}
