//! Checkpoint-cost and warm-start-speedup micro-benchmark.
//!
//! Two measurements, both machine-readable in `BENCH_snapshot.json`:
//!
//! 1. **Checkpoint cost** — on one representative SENSS job, the wall
//!    cost of `Snapshot::capture`, text `encode`, `decode`, and
//!    `restore` at the run's midpoint, plus the encoded size. This is
//!    the price `senss-serve` pays to retain a trace checkpoint and the
//!    harness pays per `HARNESS_CHECKPOINT_CYCLES` interval.
//!
//! 2. **Fork speedup** — a dense ops-per-core grid (every member shares
//!    the same architectural config, so the executor's warm-start
//!    planner folds them into one fork group) is swept twice on one
//!    worker with the cache off: once cold, once with warm-start
//!    forking. The merged result JSONL must be byte-identical — a fork
//!    is only legal if it is invisible in every number — and the
//!    speedup is reported.
//!
//! ```text
//! snapshot_bench [--smoke] [--assert-speedup] [--ops N] [--points N]
//!                [--out PATH] [--emit-snapshot PATH]
//! ```
//!
//! `--smoke` is the CI mode: tiny grid, byte-equality still enforced,
//! timing reported but not judged. `--assert-speedup` exits nonzero if
//! the warm sweep is not at least 1.5× faster than the cold one — the
//! acceptance gate, meant for quiet machines rather than busy CI boxes.

use senss_bench::benchkit::black_box;
use senss_harness::json::Value;
use senss_harness::{Harness, HarnessConfig, JobSpec, SecurityMode, SweepSpec};
use senss_serve::protocol::result_line;
use senss_snapshot::Snapshot;
use senss_workloads::Workload;
use std::time::Instant;

/// The acceptance floor `--assert-speedup` enforces.
const SPEEDUP_FLOOR: f64 = 1.5;

fn usage() -> ! {
    eprintln!(
        "usage: snapshot_bench [--smoke] [--assert-speedup] [--ops N] \
         [--points N] [--out PATH] [--emit-snapshot PATH]"
    );
    std::process::exit(2);
}

/// Times one closure, returning (result, micros).
fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let started = Instant::now();
    let out = f();
    (out, started.elapsed().as_micros() as u64)
}

/// Measures capture/encode/decode/restore cost at the midpoint of one
/// representative job. With `emit`, also writes the encoded snapshot
/// text to disk (the CI sample artifact).
fn checkpoint_cost(ops: usize, emit: Option<&str>) -> Vec<(String, Value)> {
    let spec = JobSpec::new(Workload::Fft, 4, 1 << 20)
        .with_mode(SecurityMode::senss())
        .with_ops(ops);
    let total = spec.run().total_cycles;
    let mut sys = spec.build_system();
    sys.run_until(total / 2);

    let (snap, capture_us) = timed(|| Snapshot::capture(&sys, total / 2));
    let (text, encode_us) = timed(|| snap.encode());
    let (back, decode_us) = timed(|| Snapshot::decode(&text).expect("own encoding decodes"));
    let (warm, restore_us) = timed(|| back.restore(spec.build_extension()));
    black_box(&warm);
    if let Some(path) = emit {
        std::fs::write(path, &text).expect("write sample snapshot");
        eprintln!("snapshot_bench: wrote sample snapshot to {path}");
    }

    println!(
        "snapshot_bench: checkpoint at cycle {} of {total}: capture {capture_us}us, \
         encode {encode_us}us ({} bytes), decode {decode_us}us, restore {restore_us}us",
        total / 2,
        text.len()
    );
    vec![
        ("checkpoint_cycle".to_string(), Value::UInt(total / 2)),
        ("capture_micros".to_string(), Value::UInt(capture_us)),
        ("encode_micros".to_string(), Value::UInt(encode_us)),
        ("decode_micros".to_string(), Value::UInt(decode_us)),
        ("restore_micros".to_string(), Value::UInt(restore_us)),
        ("snapshot_bytes".to_string(), Value::UInt(text.len() as u64)),
    ]
}

/// The dense sweep every fork-group member of which shares one config:
/// only ops-per-core varies, in small steps. A modest L2 keeps the
/// per-fork state copy small relative to the simulation being skipped —
/// forking pays off when runs are simulation-dominated, not when a few
/// thousand ops ride on megabytes of cache arrays.
fn dense_grid(ops: usize, points: usize) -> SweepSpec {
    let mut sweep = SweepSpec::new("snapshot-bench-dense");
    let step = (ops / 100).max(1);
    for i in 0..points {
        sweep.push(
            JobSpec::new(Workload::Fft, 2, 1 << 18)
                .with_mode(SecurityMode::senss())
                .with_ops(ops + i * step),
        );
    }
    sweep
}

/// Runs the sweep on one worker with the cache off and renders its
/// merged (deterministic) result JSONL.
fn run_sweep(sweep: &SweepSpec, warm: bool) -> (String, u64, usize) {
    let harness = Harness::new(
        HarnessConfig::hermetic()
            .with_workers(1)
            .with_warm_start(warm),
    );
    let started = Instant::now();
    let result = harness.run(sweep).expect("hermetic sweep cannot fail on I/O");
    let wall_us = started.elapsed().as_micros() as u64;
    assert!(result.is_complete(), "sweep had failures");
    let mut jsonl = String::new();
    for rec in &result.records {
        jsonl.push_str(&result_line(rec));
        jsonl.push('\n');
    }
    (jsonl, wall_us, result.forked)
}

fn main() {
    let mut smoke = false;
    let mut assert_speedup = false;
    let mut ops: Option<usize> = None;
    let mut points: Option<usize> = None;
    let mut out = "BENCH_snapshot.json".to_string();
    let mut emit: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--assert-speedup" => assert_speedup = true,
            "--ops" => {
                ops = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--points" => {
                points = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--emit-snapshot" => emit = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let ops = ops.unwrap_or(if smoke { 400 } else { 40_000 });
    let points = points.unwrap_or(if smoke { 4 } else { 10 }).max(2);

    eprintln!(
        "snapshot_bench: {points}-point dense grid at {ops}+ ops/core{}",
        if smoke { " (smoke)" } else { "" }
    );

    let cost = checkpoint_cost(ops, emit.as_deref());

    let sweep = dense_grid(ops, points);
    let (cold_jsonl, cold_us, cold_forked) = run_sweep(&sweep, false);
    let (warm_jsonl, warm_us, warm_forked) = run_sweep(&sweep, true);

    assert_eq!(cold_forked, 0, "cold sweep must not fork");
    assert!(
        warm_forked >= points - 2,
        "warm sweep forked only {warm_forked} of {points} jobs; the dense \
         grid should fork every middle member"
    );
    assert_eq!(
        warm_jsonl, cold_jsonl,
        "warm-start forked results must be byte-identical to cold runs"
    );

    let speedup = cold_us as f64 / warm_us.max(1) as f64;
    println!(
        "snapshot_bench: cold {cold_us}us, warm {warm_us}us ({warm_forked} forked) \
         -> {speedup:.2}x"
    );

    let doc = Value::Obj(
        [
            (
                "schema".to_string(),
                Value::Str("senss.snapshot_bench.v1".to_string()),
            ),
            ("smoke".to_string(), Value::Bool(smoke)),
            ("ops_per_core".to_string(), Value::UInt(ops as u64)),
            ("grid_points".to_string(), Value::UInt(points as u64)),
        ]
        .into_iter()
        .chain(cost)
        .chain([
            ("cold_wall_micros".to_string(), Value::UInt(cold_us)),
            ("warm_wall_micros".to_string(), Value::UInt(warm_us)),
            ("jobs_forked".to_string(), Value::UInt(warm_forked as u64)),
            (
                "speedup_milli".to_string(),
                Value::UInt((speedup * 1000.0).round() as u64),
            ),
        ])
        .collect(),
    );
    std::fs::write(&out, doc.encode() + "\n").expect("write bench JSON");
    eprintln!("snapshot_bench: wrote {out}");

    if assert_speedup && speedup < SPEEDUP_FLOOR {
        eprintln!(
            "snapshot_bench: warm-start speedup {speedup:.2}x is below the \
             {SPEEDUP_FLOOR}x floor"
        );
        std::process::exit(1);
    }
}
