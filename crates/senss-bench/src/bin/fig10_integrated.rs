//! Figure 10: the integrated system — SENSS plus cache-to-memory
//! protection (fast OTP encryption with a perfect sequence-number cache,
//! write-invalidate pad coherence, and CHash Merkle-tree integrity).
//!
//! 1 MB L2, 4 processors, auth interval 100. The paper reports an average
//! ≈12% slowdown (cache pollution by hash-tree nodes + hash fetch
//! traffic) and ≈58% more bus transactions, dominated by hash-tree
//! fetches and pad-coherence messages — an order of magnitude above the
//! bus-security-only cost.

use senss::secure_bus::SenssConfig;
use senss_bench::{format_table, maybe_write_csv, ops_per_core, overhead, seed, workload_columns, Point};

fn main() {
    let ops = ops_per_core();
    let seed = seed();
    println!("=== Figure 10: integrated system (4P, 1MB L2, interval 100) ===");
    println!("ops/core = {ops}, seed = {seed}\n");

    let mut slow_rows = Vec::new();
    let mut traffic_rows = Vec::new();
    for flavour in ["SENSS", "SENSS+Mem_OTP_CHash"] {
        let mut slow = Vec::new();
        let mut traffic = Vec::new();
        for w in workload_columns() {
            let p = Point::new(w, 4, 1 << 20);
            let base = p.run_baseline(ops, seed);
            let cfg = SenssConfig::paper_default(4);
            let sec = if flavour == "SENSS" {
                p.run_senss(ops, seed, cfg)
            } else {
                p.run_integrated(ops, seed, cfg)
            };
            let o = overhead(&sec, &base);
            slow.push(o.slowdown_pct);
            traffic.push(o.traffic_pct);
        }
        slow_rows.push((flavour.to_string(), slow));
        traffic_rows.push((flavour.to_string(), traffic));
    }
    maybe_write_csv("fig10_slowdown", &slow_rows);
    maybe_write_csv("fig10_traffic", &traffic_rows);
    println!("{}", format_table("% slowdown", &slow_rows));
    println!("{}", format_table("% bus activity increase", &traffic_rows));

    // Detail: what the extra traffic is made of, for one workload.
    let p = Point::new(senss_workloads::Workload::Ocean, 4, 1 << 20);
    let stats = p.run_integrated(ops, seed, SenssConfig::paper_default(4));
    println!("ocean detail: hash fetches = {}, hash writebacks = {}, pad invalidates = {}, pad requests = {}",
        stats.txn_hash_fetch, stats.txn_hash_writeback,
        stats.txn_pad_invalidate, stats.txn_pad_request);
    println!("\nPaper shape: memory protection dominates (≈12% avg slowdown, ≈58% avg traffic);");
    println!("SENSS-only remains sub-1%.");
}
