//! Figure 10: the integrated system — SENSS plus cache-to-memory
//! protection (fast OTP encryption with a perfect sequence-number cache,
//! write-invalidate pad coherence, and CHash Merkle-tree integrity).
//!
//! 1 MB L2, 4 processors, auth interval 100. The paper reports an average
//! ≈12% slowdown (cache pollution by hash-tree nodes + hash fetch
//! traffic) and ≈58% more bus transactions, dominated by hash-tree
//! fetches and pad-coherence messages — an order of magnitude above the
//! bus-security-only cost.

use senss_bench::sweeps::{self, SecurityMode, SweepSpec};
use senss_bench::{format_table, maybe_write_csv, workload_columns, RunEnv};
use senss_workloads::Workload;

fn main() {
    let env = RunEnv::from_env();
    env.banner("Figure 10: integrated system (4P, 1MB L2, interval 100)");

    let flavours = [
        ("SENSS", SecurityMode::senss()),
        ("SENSS+Mem_OTP_CHash", SecurityMode::integrated()),
    ];
    let mut modes = vec![SecurityMode::Baseline];
    modes.extend(flavours.iter().map(|&(_, m)| m));
    let mut sweep = SweepSpec::new("fig10");
    sweep.grid(&workload_columns(), &[4], &[1 << 20], &modes, env.ops, env.seed);
    let result = sweeps::execute(&sweep);

    let mut slow_rows = Vec::new();
    let mut traffic_rows = Vec::new();
    for &(flavour, mode) in &flavours {
        let overheads = sweeps::workload_overheads(&result, 4, 1 << 20, mode);
        slow_rows.push((
            flavour.to_string(),
            overheads.iter().map(|o| o.slowdown_pct).collect(),
        ));
        traffic_rows.push((
            flavour.to_string(),
            overheads.iter().map(|o| o.traffic_pct).collect(),
        ));
    }
    maybe_write_csv("fig10_slowdown", &slow_rows);
    maybe_write_csv("fig10_traffic", &traffic_rows);
    println!("{}", format_table("% slowdown", &slow_rows));
    println!("{}", format_table("% bus activity increase", &traffic_rows));

    // Detail: what the extra traffic is made of, for one workload.
    let stats = result.require(
        &sweeps::point(Workload::Ocean, 4, 1 << 20).with_mode(SecurityMode::integrated()),
    );
    println!("ocean detail: hash fetches = {}, hash writebacks = {}, pad invalidates = {}, pad requests = {}",
        stats.txn_hash_fetch, stats.txn_hash_writeback,
        stats.txn_pad_invalidate, stats.txn_pad_request);
    println!("\nPaper shape: memory protection dominates (≈12% avg slowdown, ≈58% avg traffic);");
    println!("SENSS-only remains sub-1%.");
}
