//! Figure 7: impact of the number of encryption masks.
//!
//! 4 processors, 4 MB L2, auth interval 100. The paper finds 2 masks
//! generally satisfactory and 4 masks indistinguishable from a perfect
//! (unbounded) supply; a single mask pays mask-regeneration stalls on
//! back-to-back transfers.

use senss::mask::PERFECT_MASKS;
use senss_bench::sweeps::{self, SecurityMode, SweepSpec};
use senss_bench::{format_table, maybe_write_csv, workload_columns, RunEnv};

fn main() {
    let env = RunEnv::from_env();
    env.banner("Figure 7: mask-count sensitivity (4P, 4MB L2, interval 100)");

    let variants: &[(&str, usize)] = &[
        ("Perfect", PERFECT_MASKS),
        ("4 masks", 4),
        ("2 masks", 2),
        ("1 mask", 1),
    ];

    let mut modes = vec![SecurityMode::Baseline];
    modes.extend(variants.iter().map(|&(_, m)| SecurityMode::senss_masks(m)));
    let mut sweep = SweepSpec::new("fig07");
    sweep.grid(&workload_columns(), &[4], &[4 << 20], &modes, env.ops, env.seed);
    let result = sweeps::execute(&sweep);

    let mut slow_rows = Vec::new();
    let mut traffic_rows = Vec::new();
    for &(label, masks) in variants {
        let overheads =
            sweeps::workload_overheads(&result, 4, 4 << 20, SecurityMode::senss_masks(masks));
        slow_rows.push((
            label.to_string(),
            overheads.iter().map(|o| o.slowdown_pct).collect(),
        ));
        traffic_rows.push((
            label.to_string(),
            overheads.iter().map(|o| o.traffic_pct).collect(),
        ));
    }
    maybe_write_csv("fig07_slowdown", &slow_rows);
    maybe_write_csv("fig07_traffic", &traffic_rows);
    println!("{}", format_table("% slowdown", &slow_rows));
    println!("{}", format_table("% bus activity increase", &traffic_rows));
    println!("Paper shape: 4 masks ≈ perfect; 2 masks close; 1 mask visibly worse.");
}
