//! CI smoke test for the tracing layer: run one fft 4-processor
//! SENSS-CBC job with live sinks, write both trace artifacts, and
//! validate them against the run's `Stats`.
//!
//! ```text
//! trace_smoke [--out-dir DIR] [--ops N]
//! ```
//!
//! Writes `DIR/trace.jsonl` (streamed through [`JsonlSink`]) and
//! `DIR/trace.trace.json` (Chrome `trace_event` export of a ring-traced
//! re-run of the same job). Exits nonzero if any of the tie-out checks
//! fail, so CI catches a trace layer that drifts from the simulator:
//!
//! - both traced runs reproduce the untraced `Stats` bit-for-bit;
//! - the streamed JSONL has exactly as many lines as the ring holds;
//! - per-kind transaction counts folded from the trace match the
//!   `Stats` counters, and summed `BusGrant::busy` matches
//!   `Stats::bus_busy_cycles`.

use senss_harness::{JobSpec, SecurityMode};
use senss_sim::Stats;
use senss_trace::{chrome_trace, fold, JsonlSink, RingSink, TxnClass};
use senss_workloads::Workload;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: trace_smoke [--out-dir DIR] [--ops N]");
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("trace_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn stats_txn_count(stats: &Stats, class: TxnClass) -> u64 {
    match class {
        TxnClass::Read => stats.txn_read,
        TxnClass::ReadExclusive => stats.txn_read_exclusive,
        TxnClass::Upgrade => stats.txn_upgrade,
        TxnClass::Update => stats.txn_update,
        TxnClass::Writeback => stats.txn_writeback,
        TxnClass::HashFetch => stats.txn_hash_fetch,
        TxnClass::HashWriteback => stats.txn_hash_writeback,
        TxnClass::Auth => stats.txn_auth,
        TxnClass::PadInvalidate => stats.txn_pad_invalidate,
        TxnClass::PadRequest => stats.txn_pad_request,
    }
}

fn main() {
    let mut out_dir = PathBuf::from("results/traces");
    let mut ops = 2_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out-dir" => out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--ops" => {
                ops = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| fail(format_args!("cannot create {}: {e}", out_dir.display())));

    let job = JobSpec::new(Workload::Fft, 4, 1 << 20)
        .with_mode(SecurityMode::senss())
        .with_ops(ops);
    let reference = job.run();

    // Streamed artifact: every event through the JSONL sink.
    let jsonl_path = out_dir.join("trace.jsonl");
    let sink = JsonlSink::create(&jsonl_path)
        .unwrap_or_else(|e| fail(format_args!("cannot create {}: {e}", jsonl_path.display())));
    let (stats, sink) = job.run_with_sink(sink);
    let written = sink.written();
    if let Err(e) = sink.finish() {
        fail(format_args!("jsonl stream failed: {e}"));
    }
    if stats != reference {
        fail("jsonl-traced run diverged from the untraced run");
    }

    // In-memory re-run: chrome export plus the fold tie-out.
    let (ring_stats, ring) = job.run_with_sink(RingSink::new());
    if ring_stats != reference {
        fail("ring-traced run diverged from the untraced run");
    }
    if ring.dropped() > 0 {
        fail(format_args!("ring dropped {} events", ring.dropped()));
    }
    if written != ring.len() as u64 {
        fail(format_args!(
            "jsonl wrote {written} events but the ring holds {}",
            ring.len()
        ));
    }
    let chrome_path = out_dir.join("trace.trace.json");
    std::fs::write(&chrome_path, chrome_trace(ring.events()))
        .unwrap_or_else(|e| fail(format_args!("cannot write {}: {e}", chrome_path.display())));

    let derived = fold(ring.events(), 1 << 14);
    for class in TxnClass::ALL {
        let (traced, counted) = (
            derived.txn_counts[class.index()],
            stats_txn_count(&reference, class),
        );
        if traced != counted {
            fail(format_args!(
                "{} count mismatch: trace says {traced}, Stats says {counted}",
                class.name()
            ));
        }
    }
    if derived.bus_busy_cycles != reference.bus_busy_cycles {
        fail(format_args!(
            "bus occupancy mismatch: trace says {}, Stats says {}",
            derived.bus_busy_cycles, reference.bus_busy_cycles
        ));
    }
    if derived.total_transactions() == 0 {
        fail("trace contains no transactions");
    }

    eprintln!(
        "trace_smoke: OK — {written} events, {} transactions, artifacts in {}",
        derived.total_transactions(),
        out_dir.display()
    );
}
