//! Scaling study: SENSS overhead from 2 to 16 processors.
//!
//! The paper evaluates 2 and 4 processors but sizes the SHU tables for 32
//! (§7.1). This study extends Figure 6/8 along the processor axis: the
//! overhead tracks the cache-to-cache share of bus traffic, which grows
//! with the processor count until the single bus itself saturates.

use senss_bench::sweeps::{self, SecurityMode, SweepSpec};
use senss_bench::{overhead, RunEnv};
use senss_workloads::Workload;

const CORES: [usize; 4] = [2, 4, 8, 16];

fn main() {
    let env = RunEnv::from_env();
    env.banner("Scaling study: SENSS (interval 100) from 2P to 16P, 4MB L2");

    let mut sweep = SweepSpec::new("scaling");
    sweep.grid(
        &[Workload::Ocean],
        &CORES,
        &[4 << 20],
        &[SecurityMode::Baseline, SecurityMode::senss()],
        env.ops,
        env.seed,
    );
    let result = sweeps::execute(&sweep);

    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "cores", "slowdown%", "traffic%", "c2c-share%", "bus-util%", "auth-txns"
    );
    for &cores in &CORES {
        let job = sweeps::point(Workload::Ocean, cores, 4 << 20);
        let base = result.require(&job);
        let sec = result.require(&job.with_mode(SecurityMode::senss()));
        let o = overhead(sec, base);
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>12.1} {:>12.1} {:>10}",
            cores,
            o.slowdown_pct,
            o.traffic_pct,
            sec.c2c_fraction() * 100.0,
            sec.bus_utilization() * 100.0,
            sec.txn_auth,
        );
    }
    println!("\nworkload: ocean (boundary exchange grows with the ring of neighbours).");
    println!("Shape: overhead follows the c2c share; the bus becomes the scaling limit,");
    println!("matching the paper's restriction to snooping-bus (not directory) machines.");
}
