//! `senss_cli` — run any SENSS configuration from the command line.
//!
//! ```text
//! cargo run --release -p senss-bench --bin senss_cli -- \
//!     --workload ocean --cores 4 --l2-mb 1 --masks 8 --interval 100 \
//!     --ops 30000 --seed 42 --memprot chash --cipher cbc
//! ```
//!
//! Prints the insecure baseline, the configured SENSS run, and the
//! overhead comparison. `--memprot none|otp|chash|lhash` selects the §6
//! stack; `--cipher cbc|gcm` the §4.3 algorithm pair.

use senss::secure_bus::{CipherMode, SenssConfig, SenssExtension};
use senss::mask::PERFECT_MASKS;
use senss_memprot::{IntegrityMode, MemProtConfig, MemProtPolicy, PadProtocol};
use senss_sim::{NullExtension, System, SystemConfig};
use senss_workloads::Workload;

#[derive(Debug)]
struct CliArgs {
    workload: Workload,
    cores: usize,
    l2_mb: usize,
    masks: usize,
    interval: u64,
    ops: usize,
    seed: u64,
    memprot: String,
    cipher: CipherMode,
}

fn usage() -> ! {
    eprintln!(
        "usage: senss_cli [--workload fft|radix|barnes|lu|ocean] [--cores N] \
         [--l2-mb N] [--masks N|perfect] [--interval N] [--ops N] [--seed N] \
         [--memprot none|otp|chash|lhash] [--cipher cbc|gcm]"
    );
    std::process::exit(2);
}

fn parse_args() -> CliArgs {
    let mut args = CliArgs {
        workload: Workload::Ocean,
        cores: 4,
        l2_mb: 1,
        masks: 8,
        interval: 100,
        ops: 30_000,
        seed: 42,
        memprot: "none".to_string(),
        cipher: CipherMode::CbcTwoPass,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = match argv.get(i + 1) {
            Some(v) => v.as_str(),
            None => usage(),
        };
        match flag {
            "--workload" => args.workload = value.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                usage()
            }),
            "--cores" => args.cores = value.parse().unwrap_or_else(|_| usage()),
            "--l2-mb" => args.l2_mb = value.parse().unwrap_or_else(|_| usage()),
            "--masks" => {
                args.masks = if value == "perfect" {
                    PERFECT_MASKS
                } else {
                    value.parse().unwrap_or_else(|_| usage())
                }
            }
            "--interval" => args.interval = value.parse().unwrap_or_else(|_| usage()),
            "--ops" => args.ops = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
            "--memprot" => args.memprot = value.to_string(),
            "--cipher" => {
                args.cipher = match value {
                    "cbc" => CipherMode::CbcTwoPass,
                    "gcm" => CipherMode::GcmSinglePass,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
        i += 2;
    }
    args
}

fn main() {
    let a = parse_args();
    let cfg = SystemConfig::e6000(a.cores, a.l2_mb << 20);
    println!(
        "workload={} cores={} l2={}MB masks={} interval={} ops={} seed={} memprot={} cipher={:?}\n",
        a.workload,
        a.cores,
        a.l2_mb,
        if a.masks == PERFECT_MASKS { "perfect".to_string() } else { a.masks.to_string() },
        a.interval,
        a.ops,
        a.seed,
        a.memprot,
        a.cipher,
    );

    let base = System::new(
        cfg.clone(),
        a.workload.generate(a.cores, a.ops, a.seed),
        NullExtension,
    )
    .run();

    let sec_cfg = SenssConfig::paper_default(a.cores)
        .with_masks(a.masks)
        .with_auth_interval(a.interval)
        .with_cipher(a.cipher);
    let mut ext = SenssExtension::new(sec_cfg);
    let integrity = match a.memprot.as_str() {
        "none" => None,
        "otp" => Some(IntegrityMode::None),
        "chash" => Some(IntegrityMode::CHash),
        "lhash" => Some(IntegrityMode::Lazy),
        _ => usage(),
    };
    if let Some(mode) = integrity {
        ext = ext.with_memory_protection(MemProtPolicy::new(MemProtConfig {
            otp: true,
            integrity: mode,
            pad_protocol: PadProtocol::WriteInvalidate,
            data_span: 1 << 32,
            num_processors: a.cores,
        }));
    }
    let mut sys = System::new(cfg, a.workload.generate(a.cores, a.ops, a.seed), ext);
    let sec = sys.run();

    let row = |name: &str, s: &senss_sim::Stats| {
        println!(
            "{name:<9} cycles={:>12}  txns={:>8}  c2c={:>7}  mem={:>7}  auth={:>6}  hash={:>6}  pad={:>5}",
            s.total_cycles,
            s.total_transactions(),
            s.cache_to_cache_transfers,
            s.memory_transfers,
            s.txn_auth,
            s.txn_hash_fetch + s.txn_hash_writeback,
            s.txn_pad_invalidate + s.txn_pad_request,
        );
    };
    row("baseline", &base);
    row("senss", &sec);
    println!(
        "\nslowdown = {:+.3}%   bus-traffic = {:+.2}%   mask-stalls = {} cycles",
        sec.slowdown_vs(&base),
        sec.bus_increase_vs(&base),
        sec.mask_stall_cycles
    );
    println!(
        "bus utilization: baseline {:.1}%, senss {:.1}%;  c2c share {:.1}%",
        base.bus_utilization() * 100.0,
        sec.bus_utilization() * 100.0,
        sec.c2c_fraction() * 100.0
    );
}
