//! Event-loop hot-path micro-benchmark with a machine-readable output.
//!
//! Times `System::run` — the inner loop every figure and every
//! `senss-serve` job spends its cycles in — on the fft/radix/ocean
//! traces at 4/8/16/32 processors, under the insecure baseline and under
//! SENSS-CBC (the paper's default security mode). Each configuration is
//! run several times; the per-iteration events/sec and simulated
//! cycles/sec rates are summarized as median / p10 / p90 and written as
//! JSON to `BENCH_sim.json` (see `docs/perf.md` for the schema and how
//! to compare two runs).
//!
//! ```text
//! sim_hotpath [--smoke] [--iters N] [--ops N] [--out PATH]
//!             [--sink null|ring] [--sched heap|wheel]
//!             [--check BASELINE.json] [--tol PCT]
//! ```
//!
//! `--smoke` is the CI mode: a tiny trace and a single iteration, so the
//! binary and its JSON emission stay exercised without burning minutes.
//!
//! `--check` compares this run's median events/s against a previously
//! committed `BENCH_sim.json` and exits nonzero if any matching config
//! regressed by more than `--tol` percent (default 2). The simulator
//! compiles with the `NullSink` trace sink by default, so this guard is
//! exactly the tracing-off overhead gate: tracing instrumentation must
//! not move the hot path.
//!
//! `--sink ring` times the tracing-*on* path instead (a default-capacity
//! `RingSink` attached), for measuring the cost of live tracing; see
//! `docs/observability.md`. Comparing a ring run to a null baseline with
//! `--check` is meaningless — the regression gate is for `--sink null`.
//!
//! `--sched` selects the event-queue implementation (default `heap`);
//! every scheduler produces bit-identical simulation results, so A/B
//! runs of this flag measure pure event-queue overhead.

use senss_bench::benchkit::black_box;
use senss_harness::json::Value;
use senss_harness::{JobSpec, SecurityMode};
use senss_sim::config::SchedulerKind;
use senss_trace::RingSink;
use senss_workloads::Workload;
use std::time::Instant;

/// Which trace sink the timed runs attach.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SinkChoice {
    /// Tracing off — the default build, the regression-gated path.
    Null,
    /// Tracing on into a default-capacity ring, for overhead studies.
    Ring,
}

/// One benchmark configuration (a cell of the workload × processors ×
/// mode grid).
struct Config {
    workload: Workload,
    processors: usize,
    mode: SecurityMode,
}

/// One configuration's measured summary.
struct Measured {
    config: Config,
    /// Events the loop dispatched in one run (identical across
    /// iterations — the simulator is deterministic).
    events: u64,
    /// Simulated cycles of one run.
    sim_cycles: u64,
    /// Per-iteration events/sec samples.
    events_per_sec: Vec<f64>,
    /// Per-iteration simulated-cycles/sec samples.
    cycles_per_sec: Vec<f64>,
}

fn mode_tag(mode: SecurityMode) -> &'static str {
    match mode {
        SecurityMode::Baseline => "baseline",
        _ => "senss-cbc",
    }
}

/// Nearest-rank percentile of an unsorted sample set (q in 0..=100).
fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn summary(samples: &[f64]) -> Value {
    let as_uint = |v: f64| Value::UInt(v.round().max(0.0) as u64);
    Value::Obj(vec![
        ("median".to_string(), as_uint(percentile(samples, 50.0))),
        ("p10".to_string(), as_uint(percentile(samples, 10.0))),
        ("p90".to_string(), as_uint(percentile(samples, 90.0))),
    ])
}

fn run_config(
    config: Config,
    ops: usize,
    iters: usize,
    sink: SinkChoice,
    sched: SchedulerKind,
) -> Measured {
    let job = JobSpec::new(config.workload, config.processors, 1 << 20)
        .with_mode(config.mode)
        .with_ops(ops)
        .with_scheduler(sched);
    let mut events = 0;
    let mut sim_cycles = 0;
    let mut events_per_sec = Vec::with_capacity(iters);
    let mut cycles_per_sec = Vec::with_capacity(iters);
    // One untimed warmup run per config settles the allocator and caches.
    black_box(job.run());
    // The event count is a property of the config (the simulator is
    // deterministic and tracing does not alter it), so for the ring
    // mode it is measured once here rather than inside the timed loop.
    if sink == SinkChoice::Ring {
        let (stats, loop_events) = job.run_counting();
        events = loop_events;
        sim_cycles = stats.total_cycles;
    }
    for _ in 0..iters {
        let started = Instant::now();
        let stats = match sink {
            SinkChoice::Null => {
                let (stats, loop_events) = job.run_counting();
                events = loop_events;
                stats
            }
            SinkChoice::Ring => {
                let (stats, ring) = job.run_with_sink(RingSink::new());
                black_box(ring.len());
                stats
            }
        };
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        sim_cycles = stats.total_cycles;
        events_per_sec.push(events as f64 / secs);
        cycles_per_sec.push(stats.total_cycles as f64 / secs);
        black_box(stats);
    }
    Measured {
        config,
        events,
        sim_cycles,
        events_per_sec,
        cycles_per_sec,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: sim_hotpath [--smoke] [--iters N] [--ops N] [--out PATH] \
         [--sink null|ring] [--sched heap|wheel] [--check BASELINE.json] [--tol PCT]"
    );
    std::process::exit(2);
}

/// Baseline cell key: the grid coordinates a config is matched on.
fn cell_key(cell: &Value) -> Option<(String, u64, String)> {
    Some((
        cell.get("workload")?.as_str()?.to_string(),
        cell.get("processors")?.as_u64()?,
        cell.get("mode")?.as_str()?.to_string(),
    ))
}

/// Compares this run's cells against a committed baseline document.
/// Returns the number of configs that regressed beyond `tol_pct`.
/// Configs present in only one document are reported but not failed —
/// the grid may legitimately grow or shrink between revisions.
fn check_against_baseline(current: &[Value], baseline_path: &str, tol_pct: f64) -> usize {
    let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!("sim_hotpath: cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let doc = senss_harness::json::parse(text.trim()).unwrap_or_else(|e| {
        eprintln!("sim_hotpath: baseline {baseline_path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let Some(base_cells) = doc.get("configs").and_then(Value::as_arr) else {
        eprintln!("sim_hotpath: baseline {baseline_path} has no configs array");
        std::process::exit(2);
    };
    let median = |cell: &Value| -> Option<u64> {
        cell.get("events_per_sec")?.get("median")?.as_u64()
    };
    eprintln!(
        "sim_hotpath: {:<8} {:>3} {:<10} {:>12} {:>12} {:>8}  verdict",
        "workload", "P", "mode", "events/s", "baseline", "delta"
    );
    let mut regressions = 0;
    for cell in current {
        let Some(key) = cell_key(cell) else { continue };
        let Some(base) = base_cells
            .iter()
            .find(|c| cell_key(c).as_ref() == Some(&key))
        else {
            eprintln!(
                "sim_hotpath: {} {}P {} not in baseline, skipping",
                key.0, key.1, key.2
            );
            continue;
        };
        let (Some(now), Some(was)) = (median(cell), median(base)) else {
            continue;
        };
        let floor = was as f64 * (1.0 - tol_pct / 100.0);
        let delta_pct = (now as f64 - was as f64) / was as f64 * 100.0;
        let verdict = if (now as f64) < floor { "REGRESSED" } else { "ok" };
        eprintln!(
            "sim_hotpath: {:<8} {:>2}P {:<10} {now:>12} {was:>12} {delta_pct:>+7.2}%  {verdict}",
            key.0, key.1, key.2
        );
        if (now as f64) < floor {
            regressions += 1;
        }
    }
    regressions
}

fn main() {
    let mut smoke = false;
    let mut iters: Option<usize> = None;
    let mut ops: Option<usize> = None;
    let mut out = "BENCH_sim.json".to_string();
    let mut sink = SinkChoice::Null;
    let mut sched = SchedulerKind::default();
    let mut check: Option<String> = None;
    let mut tol_pct = 2.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--sink" => {
                sink = match args.next().as_deref() {
                    Some("null") => SinkChoice::Null,
                    Some("ring") => SinkChoice::Ring,
                    _ => usage(),
                }
            }
            "--sched" => {
                sched = match args.next().as_deref() {
                    Some("heap") => SchedulerKind::Heap,
                    Some("wheel") => SchedulerKind::Wheel,
                    _ => usage(),
                }
            }
            "--check" => check = Some(args.next().unwrap_or_else(|| usage())),
            "--tol" => {
                tol_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--iters" => {
                iters = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--ops" => {
                ops = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    let iters = iters.unwrap_or(if smoke { 1 } else { 7 }).max(1);
    let ops = ops.unwrap_or(if smoke { 300 } else { 20_000 });

    let workloads = [Workload::Fft, Workload::Radix, Workload::Ocean];
    let processors = [4usize, 8, 16, 32];
    let modes = [SecurityMode::Baseline, SecurityMode::senss()];

    eprintln!(
        "sim_hotpath: {} configs x {iters} iteration(s), {ops} ops/core, {} scheduler{}",
        workloads.len() * processors.len() * modes.len(),
        match sched {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Wheel => "wheel",
        },
        if smoke { " (smoke)" } else { "" }
    );

    let mut cells = Vec::new();
    for &workload in &workloads {
        for &procs in &processors {
            for &mode in &modes {
                let m = run_config(
                    Config {
                        workload,
                        processors: procs,
                        mode,
                    },
                    ops,
                    iters,
                    sink,
                    sched,
                );
                println!(
                    "{:<8} {:>2}P {:<10} {:>12.0} events/s (median of {iters}), {} events/run",
                    m.config.workload.name(),
                    m.config.processors,
                    mode_tag(m.config.mode),
                    percentile(&m.events_per_sec, 50.0),
                    m.events,
                );
                cells.push(Value::Obj(vec![
                    (
                        "workload".to_string(),
                        Value::Str(m.config.workload.name().to_string()),
                    ),
                    (
                        "processors".to_string(),
                        Value::UInt(m.config.processors as u64),
                    ),
                    (
                        "mode".to_string(),
                        Value::Str(mode_tag(m.config.mode).to_string()),
                    ),
                    ("events".to_string(), Value::UInt(m.events)),
                    ("sim_cycles".to_string(), Value::UInt(m.sim_cycles)),
                    ("events_per_sec".to_string(), summary(&m.events_per_sec)),
                    ("cycles_per_sec".to_string(), summary(&m.cycles_per_sec)),
                ]));
            }
        }
    }

    let doc = Value::Obj(vec![
        (
            "schema".to_string(),
            Value::Str("senss.sim_hotpath.v1".to_string()),
        ),
        ("smoke".to_string(), Value::Bool(smoke)),
        (
            "sink".to_string(),
            Value::Str(
                match sink {
                    SinkChoice::Null => "null",
                    SinkChoice::Ring => "ring",
                }
                .to_string(),
            ),
        ),
        (
            "scheduler".to_string(),
            Value::Str(
                match sched {
                    SchedulerKind::Heap => "heap",
                    SchedulerKind::Wheel => "wheel",
                }
                .to_string(),
            ),
        ),
        ("iterations".to_string(), Value::UInt(iters as u64)),
        ("ops_per_core".to_string(), Value::UInt(ops as u64)),
        ("configs".to_string(), Value::Arr(cells)),
    ]);
    std::fs::write(&out, doc.encode() + "\n").expect("write bench JSON");
    eprintln!("sim_hotpath: wrote {out}");

    if let Some(baseline) = check {
        let cells = doc
            .get("configs")
            .and_then(Value::as_arr)
            .expect("just built");
        let regressions = check_against_baseline(cells, &baseline, tol_pct);
        if regressions > 0 {
            eprintln!(
                "sim_hotpath: {regressions} config(s) regressed more than {tol_pct}% vs {baseline}"
            );
            std::process::exit(1);
        }
        eprintln!("sim_hotpath: all configs within {tol_pct}% of {baseline}");
    }
}
