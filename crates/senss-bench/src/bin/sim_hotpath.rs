//! Event-loop hot-path micro-benchmark with a machine-readable output.
//!
//! Times `System::run` — the inner loop every figure and every
//! `senss-serve` job spends its cycles in — on the fft/radix/ocean
//! traces at 4/8/16 processors, under the insecure baseline and under
//! SENSS-CBC (the paper's default security mode). Each configuration is
//! run several times; the per-iteration events/sec and simulated
//! cycles/sec rates are summarized as median / p10 / p90 and written as
//! JSON to `BENCH_sim.json` (see `docs/perf.md` for the schema and how
//! to compare two runs).
//!
//! ```text
//! sim_hotpath [--smoke] [--iters N] [--ops N] [--out PATH]
//! ```
//!
//! `--smoke` is the CI mode: a tiny trace and a single iteration, so the
//! binary and its JSON emission stay exercised without burning minutes.

use senss_bench::benchkit::black_box;
use senss_harness::json::Value;
use senss_harness::{JobSpec, SecurityMode};
use senss_workloads::Workload;
use std::time::Instant;

/// One benchmark configuration (a cell of the workload × processors ×
/// mode grid).
struct Config {
    workload: Workload,
    processors: usize,
    mode: SecurityMode,
}

/// One configuration's measured summary.
struct Measured {
    config: Config,
    /// Events the loop dispatched in one run (identical across
    /// iterations — the simulator is deterministic).
    events: u64,
    /// Simulated cycles of one run.
    sim_cycles: u64,
    /// Per-iteration events/sec samples.
    events_per_sec: Vec<f64>,
    /// Per-iteration simulated-cycles/sec samples.
    cycles_per_sec: Vec<f64>,
}

fn mode_tag(mode: SecurityMode) -> &'static str {
    match mode {
        SecurityMode::Baseline => "baseline",
        _ => "senss-cbc",
    }
}

/// Nearest-rank percentile of an unsorted sample set (q in 0..=100).
fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn summary(samples: &[f64]) -> Value {
    let as_uint = |v: f64| Value::UInt(v.round().max(0.0) as u64);
    Value::Obj(vec![
        ("median".to_string(), as_uint(percentile(samples, 50.0))),
        ("p10".to_string(), as_uint(percentile(samples, 10.0))),
        ("p90".to_string(), as_uint(percentile(samples, 90.0))),
    ])
}

fn run_config(config: Config, ops: usize, iters: usize) -> Measured {
    let job = JobSpec::new(config.workload, config.processors, 1 << 20)
        .with_mode(config.mode)
        .with_ops(ops);
    let mut events = 0;
    let mut sim_cycles = 0;
    let mut events_per_sec = Vec::with_capacity(iters);
    let mut cycles_per_sec = Vec::with_capacity(iters);
    // One untimed warmup run per config settles the allocator and caches.
    black_box(job.run());
    for _ in 0..iters {
        let started = Instant::now();
        let (stats, loop_events) = job.run_counting();
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        events = loop_events;
        sim_cycles = stats.total_cycles;
        events_per_sec.push(loop_events as f64 / secs);
        cycles_per_sec.push(stats.total_cycles as f64 / secs);
        black_box(stats);
    }
    Measured {
        config,
        events,
        sim_cycles,
        events_per_sec,
        cycles_per_sec,
    }
}

fn usage() -> ! {
    eprintln!("usage: sim_hotpath [--smoke] [--iters N] [--ops N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut smoke = false;
    let mut iters: Option<usize> = None;
    let mut ops: Option<usize> = None;
    let mut out = "BENCH_sim.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--iters" => {
                iters = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--ops" => {
                ops = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    let iters = iters.unwrap_or(if smoke { 1 } else { 7 }).max(1);
    let ops = ops.unwrap_or(if smoke { 300 } else { 20_000 });

    let workloads = [Workload::Fft, Workload::Radix, Workload::Ocean];
    let processors = [4usize, 8, 16];
    let modes = [SecurityMode::Baseline, SecurityMode::senss()];

    eprintln!(
        "sim_hotpath: {} configs x {iters} iteration(s), {ops} ops/core{}",
        workloads.len() * processors.len() * modes.len(),
        if smoke { " (smoke)" } else { "" }
    );

    let mut cells = Vec::new();
    for &workload in &workloads {
        for &procs in &processors {
            for &mode in &modes {
                let m = run_config(
                    Config {
                        workload,
                        processors: procs,
                        mode,
                    },
                    ops,
                    iters,
                );
                println!(
                    "{:<8} {:>2}P {:<10} {:>12.0} events/s (median of {iters}), {} events/run",
                    m.config.workload.name(),
                    m.config.processors,
                    mode_tag(m.config.mode),
                    percentile(&m.events_per_sec, 50.0),
                    m.events,
                );
                cells.push(Value::Obj(vec![
                    (
                        "workload".to_string(),
                        Value::Str(m.config.workload.name().to_string()),
                    ),
                    (
                        "processors".to_string(),
                        Value::UInt(m.config.processors as u64),
                    ),
                    (
                        "mode".to_string(),
                        Value::Str(mode_tag(m.config.mode).to_string()),
                    ),
                    ("events".to_string(), Value::UInt(m.events)),
                    ("sim_cycles".to_string(), Value::UInt(m.sim_cycles)),
                    ("events_per_sec".to_string(), summary(&m.events_per_sec)),
                    ("cycles_per_sec".to_string(), summary(&m.cycles_per_sec)),
                ]));
            }
        }
    }

    let doc = Value::Obj(vec![
        (
            "schema".to_string(),
            Value::Str("senss.sim_hotpath.v1".to_string()),
        ),
        ("smoke".to_string(), Value::Bool(smoke)),
        ("iterations".to_string(), Value::UInt(iters as u64)),
        ("ops_per_core".to_string(), Value::UInt(ops as u64)),
        ("configs".to_string(), Value::Arr(cells)),
    ]);
    std::fs::write(&out, doc.encode() + "\n").expect("write bench JSON");
    eprintln!("sim_hotpath: wrote {out}");
}
