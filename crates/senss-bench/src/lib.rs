//! Figure-regeneration harness for the SENSS reproduction.
//!
//! One binary per paper figure/table lives in `src/bin/`; this library
//! holds the shared machinery: building the three system flavours
//! (insecure baseline, SENSS, SENSS + memory protection) over the five
//! SPLASH-2-like workloads and formatting the result tables.
//!
//! The binaries intentionally print the *same rows/series* as the paper's
//! figures so paper-vs-measured comparison is mechanical; see
//! `EXPERIMENTS.md` at the repository root for the recorded comparison.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backends;
pub mod benchkit;
pub mod sweeps;

use senss::secure_bus::{SenssConfig, SenssExtension};
use senss_memprot::{MemProtConfig, MemProtPolicy};
use senss_sim::{NullExtension, Stats, System, SystemConfig};
use senss_workloads::Workload;

/// Default operations per core for figure runs (override with the
/// `SENSS_OPS` environment variable).
pub const DEFAULT_OPS: usize = 30_000;

/// Default workload seed (override with `SENSS_SEED`).
pub const DEFAULT_SEED: u64 = 42;

/// Reads the per-core operation count from `SENSS_OPS`.
pub fn ops_per_core() -> usize {
    std::env::var("SENSS_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_OPS)
}

/// Reads the workload seed from `SENSS_SEED`.
pub fn seed() -> u64 {
    std::env::var("SENSS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Snapshot of the environment knobs every figure binary honours:
/// the simulation size (`SENSS_OPS`/`SENSS_SEED`) plus how sweeps will
/// execute (`HARNESS_WORKERS`, `HARNESS_NO_CACHE`, `SENSS_SERVE`).
///
/// The binaries call [`RunEnv::banner`] first thing; it prints the
/// figure title and ops/seed line to **stdout** — byte-identical no
/// matter how the sweep executes — and the execution knobs to
/// **stderr**, preserving the piped-stdout determinism invariant.
#[derive(Debug, Clone)]
pub struct RunEnv {
    /// Operations per core (`SENSS_OPS`).
    pub ops: usize,
    /// Workload seed (`SENSS_SEED`).
    pub seed: u64,
    /// Worker-count override (`HARNESS_WORKERS`); `None` = auto.
    pub workers: Option<usize>,
    /// Whether the result cache is enabled (`HARNESS_NO_CACHE` unset).
    pub cache: bool,
    /// Remote `senss-serve` address (`SENSS_SERVE`); `None` = run
    /// sweeps in-process.
    pub serve: Option<String>,
}

impl RunEnv {
    /// Reads every knob from the environment.
    pub fn from_env() -> RunEnv {
        RunEnv {
            ops: ops_per_core(),
            seed: seed(),
            workers: std::env::var("HARNESS_WORKERS")
                .ok()
                .and_then(|v| v.parse().ok()),
            cache: std::env::var_os("HARNESS_NO_CACHE").is_none(),
            serve: std::env::var("SENSS_SERVE").ok().filter(|a| !a.is_empty()),
        }
    }

    /// The standard figure banner: title line plus the ops/seed line.
    pub fn banner(&self, title: &str) {
        println!("=== {title} ===");
        println!("ops/core = {}, seed = {}\n", self.ops, self.seed);
        self.log_knobs();
    }

    /// Banner for figures whose stdout doesn't lead with ops/seed (the
    /// hardware-accounting table, the variability study).
    pub fn banner_bare(&self, title: &str) {
        println!("=== {title} ===\n");
        self.log_knobs();
    }

    /// One stderr line describing how sweeps will execute.
    pub fn log_knobs(&self) {
        let workers = match self.workers {
            Some(w) => w.to_string(),
            None => "auto".to_string(),
        };
        let exec = match &self.serve {
            Some(addr) => format!("remote via {addr}"),
            None => "in-process".to_string(),
        };
        eprintln!(
            "env: {exec}, workers = {workers}, cache = {}",
            if self.cache { "on" } else { "off" }
        );
    }
}

/// One experimental point: a workload on a machine shape.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// The workload.
    pub workload: Workload,
    /// Processor count.
    pub cores: usize,
    /// L2 capacity in bytes.
    pub l2: usize,
}

impl Point {
    /// Creates a point.
    pub fn new(workload: Workload, cores: usize, l2: usize) -> Point {
        Point { workload, cores, l2 }
    }

    fn config(&self) -> SystemConfig {
        SystemConfig::e6000(self.cores, self.l2)
    }

    fn traces(&self, ops: usize, seed: u64) -> Vec<senss_sim::trace::VecTrace> {
        self.workload.generate(self.cores, ops, seed)
    }

    /// Runs the insecure baseline.
    pub fn run_baseline(&self, ops: usize, seed: u64) -> Stats {
        System::new(self.config(), self.traces(ops, seed), NullExtension).run()
    }

    /// Runs SENSS with the given security configuration.
    pub fn run_senss(&self, ops: usize, seed: u64, cfg: SenssConfig) -> Stats {
        System::new(self.config(), self.traces(ops, seed), SenssExtension::new(cfg)).run()
    }

    /// Runs SENSS plus the §6 memory-protection stack (Figure 10).
    pub fn run_integrated(&self, ops: usize, seed: u64, cfg: SenssConfig) -> Stats {
        let policy = MemProtPolicy::new(MemProtConfig::paper_default(self.cores));
        let ext = SenssExtension::new(cfg).with_memory_protection(policy);
        System::new(self.config(), self.traces(ops, seed), ext).run()
    }
}

/// The paper's five workloads plus the derived "average" column.
pub fn workload_columns() -> Vec<Workload> {
    Workload::all().to_vec()
}

/// Formats a figure table: one row label + per-workload values + average.
pub fn format_table(title: &str, rows: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:<28}", "configuration"));
    for w in workload_columns() {
        out.push_str(&format!("{:>9}", w.name()));
    }
    out.push_str(&format!("{:>9}\n", "average"));
    out.push_str(&"-".repeat(28 + 9 * 6));
    out.push('\n');
    for (label, values) in rows {
        out.push_str(&format!("{label:<28}"));
        for v in values {
            out.push_str(&format!("{v:>9.3}"));
        }
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        out.push_str(&format!("{avg:>9.3}\n"));
    }
    out
}

/// Writes a figure's rows as CSV under `results/` when the `SENSS_CSV`
/// environment variable is set (any value). The figure binaries call this
/// after printing the human-readable table.
///
/// # Panics
///
/// Panics if the `results/` directory cannot be written.
pub fn maybe_write_csv(figure: &str, rows: &[(String, Vec<f64>)]) {
    if std::env::var_os("SENSS_CSV").is_none() {
        return;
    }
    let mut csv = String::from("configuration");
    for w in workload_columns() {
        csv.push(',');
        csv.push_str(w.name());
    }
    csv.push_str(",average
");
    for (label, values) in rows {
        csv.push_str(label);
        for v in values {
            csv.push_str(&format!(",{v:.6}"));
        }
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        csv.push_str(&format!(",{avg:.6}
"));
    }
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(format!("results/{figure}.csv"), csv).expect("write csv");
}

/// Convenience: the slowdown/traffic pair of a secured run vs baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overhead {
    /// Percentage slowdown (positive = slower).
    pub slowdown_pct: f64,
    /// Percentage increase in total bus transactions.
    pub traffic_pct: f64,
}

/// Computes both headline metrics.
pub fn overhead(secured: &Stats, baseline: &Stats) -> Overhead {
    Overhead {
        slowdown_pct: secured.slowdown_vs(baseline),
        traffic_pct: secured.bus_increase_vs(baseline),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_runs_all_three_flavours() {
        let p = Point::new(Workload::Lu, 2, 1 << 20);
        let base = p.run_baseline(1_500, 1);
        let senss = p.run_senss(1_500, 1, SenssConfig::paper_default(2));
        let integrated = p.run_integrated(1_500, 1, SenssConfig::paper_default(2));
        assert!(base.total_cycles > 0);
        // §7.8: timing perturbation may flip hit/miss patterns, so allow a
        // small negative slowdown; the integrated stack must still cost
        // clearly more than bus security alone.
        assert!(senss.slowdown_vs(&base) > -5.0);
        assert!(integrated.total_cycles > base.total_cycles);
        assert!(integrated.txn_hash_fetch > 0);
    }

    #[test]
    fn table_formatting_includes_average() {
        let t = format_table(
            "Figure X",
            &[("row".to_string(), vec![1.0, 2.0, 3.0, 4.0, 5.0])],
        );
        assert!(t.contains("Figure X"));
        assert!(t.contains("fft"));
        assert!(t.contains("3.000"), "{t}");
    }

    #[test]
    fn env_defaults() {
        assert!(ops_per_core() > 0);
        let _ = seed();
    }

    #[test]
    fn run_env_matches_free_functions() {
        let env = RunEnv::from_env();
        assert_eq!(env.ops, ops_per_core());
        assert_eq!(env.seed, seed());
        // Smoke the stderr line; stdout is covered by the figures-smoke
        // determinism test.
        env.log_knobs();
    }
}
