//! Shared machinery for the cross-backend comparison figure
//! (`figure_backends`): the sweep grid, the deterministic JSONL table
//! and the human-readable rendering.
//!
//! The figure puts the paper's SENSS design and the three
//! `senss-backends` alternatives (SERVAS authenticryption, Sealer
//! in-SRAM AES, secret-sharing scattered memory) on one axis, as
//! overhead vs the insecure baseline across workloads × 4/8/16
//! processors. Everything runs as ordinary cached, servable
//! [`SweepSpec`] jobs, so the same grid executes locally, against a
//! `senss-serve` cluster (`SENSS_SERVE`), or warm-started from forked
//! checkpoints (`HARNESS_WARM_START=1`) — byte-identically.
//!
//! Each (workload, cores, mode) cell runs at **three scale points**
//! (half, three-quarter and full ops). The extra points serve two
//! masters: the figure gets a cheap scaling sanity column, and the
//! warm-start executor gets fork groups with ≥3 members so
//! snapshot-forked execution is genuinely exercised rather than
//! degenerating to all-cold runs.

use crate::sweeps::{JobSpec, SecurityMode, SweepResult, SweepSpec};
use crate::overhead;
use senss_workloads::Workload;

/// Processor counts of the cross-backend figure.
pub const CORES: [usize; 3] = [4, 8, 16];

/// L2 capacity: the paper's 1 MB write-back L2.
pub const L2: usize = 1 << 20;

/// The competing modes, baseline first. Labels are the stable column
/// names of the figure (the JSONL carries the full mode tag as well).
pub fn modes() -> Vec<(&'static str, SecurityMode)> {
    vec![
        ("baseline", SecurityMode::Baseline),
        ("senss", SecurityMode::senss()),
        ("servas", SecurityMode::servas()),
        ("sealer", SecurityMode::sealer()),
        ("scattered", SecurityMode::scattered()),
    ]
}

/// The workloads of the full figure (all five paper workloads) or the
/// CI smoke slice.
pub fn workloads(smoke: bool) -> Vec<Workload> {
    if smoke {
        vec![Workload::Fft, Workload::Radix, Workload::Ocean]
    } else {
        Workload::all().to_vec()
    }
}

/// The three scale points of one cell: half, three-quarter and full
/// ops. Strictly increasing for `ops ≥ 4`, which makes each
/// (workload, cores, mode) cell a warm-start fork group of three.
pub fn scale_points(ops: usize) -> [usize; 3] {
    assert!(ops >= 4, "need at least 4 ops for distinct scale points");
    [ops / 2, ops * 3 / 4, ops]
}

/// The full cross-backend sweep: `modes × cores × workloads` at each
/// scale point, as one servable spec.
pub fn sweep(workloads: &[Workload], ops: usize, seed: u64) -> SweepSpec {
    let mode_list: Vec<SecurityMode> = modes().iter().map(|&(_, m)| m).collect();
    let mut sweep = SweepSpec::new("backends");
    for scale in scale_points(ops) {
        sweep.grid(workloads, &CORES, &[L2], &mode_list, scale, seed);
    }
    sweep
}

/// One row of the deterministic JSONL table.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendCell {
    /// Stable mode label (`senss`, `servas`, ...).
    pub label: &'static str,
    /// Full mode tag (`servas:m8`, ...).
    pub tag: String,
    /// Workload name.
    pub workload: &'static str,
    /// Processor count.
    pub cores: usize,
    /// Scale point (ops per core).
    pub scale: usize,
    /// Slowdown vs the baseline job of the same shape and scale (%).
    pub slowdown_pct: f64,
    /// Bus-traffic increase vs that baseline (%).
    pub traffic_pct: f64,
}

impl BackendCell {
    /// The canonical JSONL rendering. Floats are fixed to six decimals
    /// so the line is a deterministic function of the stats (the
    /// harness JSON model is integer-only by design — these lines are
    /// rendered by hand instead of widening it).
    pub fn jsonl(&self) -> String {
        format!(
            "{{\"figure\":\"backends\",\"workload\":\"{}\",\"cores\":{},\"scale\":{},\
             \"mode\":\"{}\",\"label\":\"{}\",\"slowdown_pct\":{:.6},\"traffic_pct\":{:.6}}}",
            self.workload, self.cores, self.scale, self.tag, self.label, self.slowdown_pct,
            self.traffic_pct
        )
    }
}

/// Extracts the full table from an executed sweep: one cell per
/// (secured mode × workload × cores × scale), in that deterministic
/// order.
///
/// # Panics
///
/// Panics if the result is missing any job of [`sweep`]'s grid (the
/// `ops`/`seed` arguments must match the ones the sweep was built with).
pub fn cells(result: &SweepResult, workloads: &[Workload], ops: usize, seed: u64) -> Vec<BackendCell> {
    let mut out = Vec::new();
    for (label, mode) in modes().into_iter().skip(1) {
        for &w in workloads {
            for &cores in &CORES {
                for scale in scale_points(ops) {
                    let shape = JobSpec::new(w, cores, L2).with_ops(scale).with_seed(seed);
                    let base = result.require(&shape);
                    let secured = result.require(&shape.with_mode(mode));
                    let o = overhead(secured, base);
                    out.push(BackendCell {
                        label,
                        tag: mode.tag(),
                        workload: w.name(),
                        cores,
                        scale,
                        slowdown_pct: o.slowdown_pct,
                        traffic_pct: o.traffic_pct,
                    });
                }
            }
        }
    }
    out
}

/// The JSONL table: one line per cell, newline-terminated.
pub fn jsonl_table(cells: &[BackendCell]) -> String {
    let mut out = String::new();
    for c in cells {
        out.push_str(&c.jsonl());
        out.push('\n');
    }
    out
}

/// The human-readable table: per processor count, one row per backend
/// with the full-scale slowdown per workload.
pub fn human_table(cells: &[BackendCell], workloads: &[Workload], ops: usize) -> String {
    let full = scale_points(ops)[2];
    let mut out = String::new();
    for &cores in &CORES {
        out.push_str(&format!("-- {cores}P: % slowdown vs baseline (ops={full}) --\n"));
        out.push_str(&format!("{:<12}", "backend"));
        for w in workloads {
            out.push_str(&format!("{:>9}", w.name()));
        }
        out.push_str(&format!("{:>9}\n", "average"));
        for (label, _) in modes().into_iter().skip(1) {
            let mut row = Vec::new();
            for w in workloads {
                let cell = cells
                    .iter()
                    .find(|c| {
                        c.label == label
                            && c.workload == w.name()
                            && c.cores == cores
                            && c.scale == full
                    })
                    .expect("cell for every grid point");
                row.push(cell.slowdown_pct);
            }
            out.push_str(&format!("{label:<12}"));
            for v in &row {
                out.push_str(&format!("{v:>9.3}"));
            }
            let avg = row.iter().sum::<f64>() / row.len() as f64;
            out.push_str(&format!("{avg:>9.3}\n"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_mode_and_shape() {
        let ws = workloads(true);
        let s = sweep(&ws, 100, 1);
        // 5 modes × 3 cores × 3 workloads × 3 scales.
        assert_eq!(s.len(), 5 * 3 * 3 * 3);
        // Every cell is a fork group of three (same spec, ops differ).
        let scales = scale_points(100);
        assert_eq!(scales, [50, 75, 100]);
        let first = &s.jobs[0];
        let group: Vec<_> = s
            .jobs
            .iter()
            .filter(|j| {
                j.trace == first.trace
                    && j.cores == first.cores
                    && j.mode == first.mode
            })
            .collect();
        assert_eq!(group.len(), 3);
    }

    #[test]
    fn jsonl_lines_are_stable() {
        let cell = BackendCell {
            label: "servas",
            tag: "servas:m8".to_string(),
            workload: "fft",
            cores: 4,
            scale: 450,
            slowdown_pct: 0.1234567,
            traffic_pct: -0.2,
        };
        assert_eq!(
            cell.jsonl(),
            "{\"figure\":\"backends\",\"workload\":\"fft\",\"cores\":4,\"scale\":450,\
             \"mode\":\"servas:m8\",\"label\":\"servas\",\"slowdown_pct\":0.123457,\
             \"traffic_pct\":-0.200000}"
        );
    }
}
