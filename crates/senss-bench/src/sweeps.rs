//! The bridge between the figure binaries and the senss-harness
//! executor.
//!
//! Every figure binary follows the same pattern now: declare its grid as
//! a [`SweepSpec`], hand it to [`execute`] (which runs it on the shared
//! worker-pool executor with caching and run-record output), then look
//! results up by [`JobSpec`] to build its tables. The bespoke nested
//! simulation loops the binaries used to carry are gone.

pub use senss_harness::{
    Harness, HarnessConfig, JobSpec, RunRecord, SecurityMode, SweepResult, SweepSpec, TraceSpec,
};

use crate::{ops_per_core, overhead, seed, workload_columns, Overhead};
use senss_workloads::Workload;
use std::time::{Duration, Instant};

/// Runs a sweep through the environment-configured harness
/// ([`HarnessConfig::from_env`]) — or, when the `SENSS_SERVE`
/// environment variable names a server address, remotely through that
/// `senss-serve` instance (see `docs/serving.md`).
///
/// The execution summary (jobs executed vs served from cache, worker
/// count, wall time) and any per-job failures go to **stderr**, so
/// figure output piped from stdout stays byte-identical regardless of
/// worker count, cache warmth, or local-vs-remote execution.
///
/// # Panics
///
/// Panics if the cache or record directories cannot be written, or if
/// the `SENSS_SERVE` server is unreachable or reports a failure.
pub fn execute(sweep: &SweepSpec) -> SweepResult {
    if let Some(addr) = std::env::var("SENSS_SERVE").ok().filter(|a| !a.is_empty()) {
        return execute_remote(sweep, &addr);
    }
    let result = Harness::from_env()
        .run(sweep)
        .expect("harness: cache/records I/O failed");
    eprintln!("{}", result.summary());
    for f in &result.failures {
        eprintln!(
            "harness[{}]: job {} ({}) failed after {} attempt(s): {}",
            result.name,
            f.index,
            f.spec.trace.tag(),
            f.attempts,
            f.error
        );
    }
    result
}

/// Ships the sweep to a `senss-serve` server and reassembles the reply
/// into a [`SweepResult`]. The wire's result lines carry no execution
/// metadata, so the records come back with zero wall time and no worker
/// attribution — but the `stats` are byte-identical to a local run, and
/// that is all the figure tables read.
fn execute_remote(sweep: &SweepSpec, addr: &str) -> SweepResult {
    let started = Instant::now();
    let die = |stage: &str, err: &dyn std::fmt::Display| -> ! {
        panic!("SENSS_SERVE={addr}: {stage} failed: {err}")
    };
    let client = senss_serve::Client::new(addr);
    let (id, _) = client
        .submit(sweep)
        .unwrap_or_else(|e| die("submit", &e));
    let info = loop {
        let info = client.status(id).unwrap_or_else(|e| die("status", &e));
        match info.state {
            senss_serve::SweepState::Done => break info,
            senss_serve::SweepState::Failed => panic!(
                "SENSS_SERVE={addr}: sweep {id} failed on the server: {}",
                info.message
            ),
            senss_serve::SweepState::Queued | senss_serve::SweepState::Running => {
                std::thread::sleep(Duration::from_millis(100))
            }
        }
    };
    assert!(
        info.failures == 0,
        "SENSS_SERVE={addr}: {} job(s) of sweep {id} failed on the server \
         (see the server's stderr for per-job errors)",
        info.failures
    );
    let records = client
        .results(id)
        .unwrap_or_else(|e| die("results", &e))
        .into_iter()
        .map(|r| RunRecord {
            index: r.index as usize,
            spec: r.spec,
            key: r.key,
            stats: r.stats,
            wall_micros: 0,
            worker: None,
            attempts: 0,
            cached: false,
            trace_artifact: None,
        })
        .collect();
    let result = SweepResult::from_records(&sweep.name, records, 0, started.elapsed());
    eprintln!(
        "harness[{}]: remote via {addr}: {} executed, {} cached on the server; \
         {} record(s) fetched in {:.2?}",
        result.name,
        info.executed,
        info.cached,
        result.records.len(),
        result.wall
    );
    result
}

/// A job on workload `w` with the environment's ops/seed
/// (`SENSS_OPS`/`SENSS_SEED`), baseline mode; refine with the `with_`
/// builders.
pub fn point(w: Workload, cores: usize, l2: usize) -> JobSpec {
    JobSpec::new(w, cores, l2)
        .with_ops(ops_per_core())
        .with_seed(seed())
}

/// Per-workload overheads of `mode` vs the baseline at the same shape:
/// one [`Overhead`] per paper workload, in column order. Both the
/// baseline and secured jobs must be present in `result`.
pub fn workload_overheads(
    result: &SweepResult,
    cores: usize,
    l2: usize,
    mode: SecurityMode,
) -> Vec<Overhead> {
    workload_columns()
        .into_iter()
        .map(|w| {
            let base = result.require(&point(w, cores, l2));
            let sec = result.require(&point(w, cores, l2).with_mode(mode));
            overhead(sec, base)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_uses_env_defaults() {
        let p = point(Workload::Fft, 2, 1 << 20);
        assert_eq!(p.ops_per_core, ops_per_core());
        assert_eq!(p.seed, seed());
        assert_eq!(p.mode, SecurityMode::Baseline);
    }

    #[test]
    fn workload_overheads_reads_back_a_sweep() {
        // A hermetic in-process run: tiny ops, no cache/records.
        let mut sweep = SweepSpec::new("");
        let mode = SecurityMode::senss();
        for w in workload_columns() {
            sweep.push(point(w, 2, 1 << 20).with_ops(400));
            sweep.push(point(w, 2, 1 << 20).with_ops(400).with_mode(mode));
        }
        let result = Harness::new(HarnessConfig::hermetic())
            .run(&sweep)
            .unwrap();
        assert!(result.is_complete());
        // Look up through the same spec constructors the binaries use.
        let w = workload_columns()[0];
        let base = result.require(&point(w, 2, 1 << 20).with_ops(400));
        let sec = result.require(&point(w, 2, 1 << 20).with_ops(400).with_mode(mode));
        assert!(base.total_cycles > 0);
        assert!(sec.txn_auth <= sec.cache_to_cache_transfers);
    }
}
