//! The bridge between the figure binaries and the senss-harness
//! executor.
//!
//! Every figure binary follows the same pattern now: declare its grid as
//! a [`SweepSpec`], hand it to [`execute`] (which runs it on the shared
//! worker-pool executor with caching and run-record output), then look
//! results up by [`JobSpec`] to build its tables. The bespoke nested
//! simulation loops the binaries used to carry are gone.

pub use senss_harness::{
    Harness, HarnessConfig, JobSpec, RunRecord, SecurityMode, SweepResult, SweepSpec, TraceSpec,
};

use crate::{ops_per_core, overhead, seed, workload_columns, Overhead};
use senss_workloads::Workload;

/// Runs a sweep through the environment-configured harness
/// ([`HarnessConfig::from_env`]).
///
/// The execution summary (jobs executed vs served from cache, worker
/// count, wall time) and any per-job failures go to **stderr**, so
/// figure output piped from stdout stays byte-identical regardless of
/// worker count or cache warmth.
///
/// # Panics
///
/// Panics if the cache or record directories cannot be written.
pub fn execute(sweep: &SweepSpec) -> SweepResult {
    let result = Harness::from_env()
        .run(sweep)
        .expect("harness: cache/records I/O failed");
    eprintln!("{}", result.summary());
    for f in &result.failures {
        eprintln!(
            "harness[{}]: job {} ({}) failed after {} attempt(s): {}",
            result.name,
            f.index,
            f.spec.trace.tag(),
            f.attempts,
            f.error
        );
    }
    result
}

/// A job on workload `w` with the environment's ops/seed
/// (`SENSS_OPS`/`SENSS_SEED`), baseline mode; refine with the `with_`
/// builders.
pub fn point(w: Workload, cores: usize, l2: usize) -> JobSpec {
    JobSpec::new(w, cores, l2)
        .with_ops(ops_per_core())
        .with_seed(seed())
}

/// Per-workload overheads of `mode` vs the baseline at the same shape:
/// one [`Overhead`] per paper workload, in column order. Both the
/// baseline and secured jobs must be present in `result`.
pub fn workload_overheads(
    result: &SweepResult,
    cores: usize,
    l2: usize,
    mode: SecurityMode,
) -> Vec<Overhead> {
    workload_columns()
        .into_iter()
        .map(|w| {
            let base = result.require(&point(w, cores, l2));
            let sec = result.require(&point(w, cores, l2).with_mode(mode));
            overhead(sec, base)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_uses_env_defaults() {
        let p = point(Workload::Fft, 2, 1 << 20);
        assert_eq!(p.ops_per_core, ops_per_core());
        assert_eq!(p.seed, seed());
        assert_eq!(p.mode, SecurityMode::Baseline);
    }

    #[test]
    fn workload_overheads_reads_back_a_sweep() {
        // A hermetic in-process run: tiny ops, no cache/records.
        let mut sweep = SweepSpec::new("");
        let mode = SecurityMode::senss();
        for w in workload_columns() {
            sweep.push(point(w, 2, 1 << 20).with_ops(400));
            sweep.push(point(w, 2, 1 << 20).with_ops(400).with_mode(mode));
        }
        let result = Harness::new(HarnessConfig::hermetic())
            .run(&sweep)
            .unwrap();
        assert!(result.is_complete());
        // Look up through the same spec constructors the binaries use.
        let w = workload_columns()[0];
        let base = result.require(&point(w, 2, 1 << 20).with_ops(400));
        let sec = result.require(&point(w, 2, 1 << 20).with_ops(400).with_mode(mode));
        assert!(base.total_cycles > 0);
        assert!(sec.txn_auth <= sec.cache_to_cache_transfers);
    }
}
