//! A minimal micro-benchmark timer used by the `benches/` targets.
//!
//! The criterion dependency was dropped so the workspace builds with no
//! external crates; this module supplies the small slice of it the SENSS
//! benches need: named groups, per-iteration timing with warmup, and
//! bytes/elements throughput reporting. Run via `cargo bench -p
//! senss-bench` exactly as before (the bench targets set
//! `harness = false` and call [`Group`] from `main`).

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the name the benches use.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// How the per-iteration cost is scaled into a throughput line.
#[derive(Debug, Clone, Copy)]
enum Throughput {
    None,
    Bytes(u64),
    Elements(u64),
}

/// A named collection of benchmarks, printed as one block.
#[derive(Debug)]
pub struct Group {
    name: String,
    throughput: Throughput,
    /// Target measurement time per benchmark.
    measure: Duration,
}

impl Group {
    /// Starts a group and prints its header.
    pub fn new(name: &str) -> Group {
        println!("\n== {name} ==");
        Group {
            name: name.to_string(),
            throughput: Throughput::None,
            measure: Duration::from_millis(
                std::env::var("SENSS_BENCH_MS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(200),
            ),
        }
    }

    /// Scales subsequent results by bytes processed per iteration.
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Group {
        self.throughput = Throughput::Bytes(bytes);
        self
    }

    /// Scales subsequent results by elements processed per iteration.
    pub fn throughput_elements(&mut self, elements: u64) -> &mut Group {
        self.throughput = Throughput::Elements(elements);
        self
    }

    /// Times `f`, printing mean ns/iter (and throughput when configured).
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &mut Group {
        // Warmup: let caches and branch predictors settle.
        let warmup_end = Instant::now() + self.measure / 4;
        let mut iters_per_batch = 1u64;
        while Instant::now() < warmup_end {
            for _ in 0..iters_per_batch {
                hint_black_box(f());
            }
            iters_per_batch = (iters_per_batch * 2).min(1 << 20);
        }
        // Measure in batches until the time budget is spent.
        let mut total_iters = 0u64;
        let mut total_time = Duration::ZERO;
        while total_time < self.measure {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                hint_black_box(f());
            }
            total_time += start.elapsed();
            total_iters += iters_per_batch;
        }
        let ns = total_time.as_nanos() as f64 / total_iters as f64;
        let rate = match self.throughput {
            Throughput::None => String::new(),
            Throughput::Bytes(b) => {
                format!("  {:>10.1} MB/s", b as f64 / ns * 1e9 / 1e6)
            }
            Throughput::Elements(e) => {
                format!("  {:>10.0} elem/s", e as f64 / ns * 1e9)
            }
        };
        println!("{:<40} {ns:>12.1} ns/iter{rate}", format!("{}/{name}", self.name));
        self
    }
}
