//! The scheduler choice must be invisible in every observable output.
//!
//! `SchedulerKind` selects how the simulator's event queue is
//! implemented (binary heap vs. calendar queue) — a pure performance
//! knob. These tests pin the contract that makes it safe to benchmark
//! one and ship the other: a `Wheel`-scheduled run produces
//! bit-identical statistics, trace-event streams, and snapshot text to
//! the default `Heap` run on the same spec.

use senss_harness::{JobSpec, SecurityMode};
use senss_sim::config::SchedulerKind;
use senss_snapshot::Snapshot;
use senss_trace::RingSink;
use senss_workloads::Workload;

const OPS: usize = 2_000;

/// A mix of shapes: small and wide systems, baseline and SENSS, the
/// same coordinates the golden suite leans on.
fn specs() -> Vec<JobSpec> {
    vec![
        JobSpec::new(Workload::Fft, 2, 1 << 20)
            .with_mode(SecurityMode::senss())
            .with_ops(OPS),
        JobSpec::new(Workload::Ocean, 4, 4 << 20).with_ops(OPS),
        JobSpec::new(Workload::Radix, 16, 4 << 20)
            .with_mode(SecurityMode::senss())
            .with_ops(OPS),
    ]
}

#[test]
fn wheel_and_heap_runs_are_bit_identical() {
    for spec in specs() {
        let heap = spec.with_scheduler(SchedulerKind::Heap);
        let wheel = spec.with_scheduler(SchedulerKind::Wheel);
        let (heap_stats, heap_events) = heap.run_counting();
        let (wheel_stats, wheel_events) = wheel.run_counting();
        assert_eq!(heap_stats, wheel_stats, "{spec:?}: stats diverged");
        assert_eq!(
            heap_events, wheel_events,
            "{spec:?}: event counts diverged"
        );
        assert_eq!(
            heap.cache_key(),
            wheel.cache_key(),
            "the scheduler must not be part of the cache key"
        );
    }
}

#[test]
fn wheel_runs_emit_the_same_trace_stream() {
    let spec = JobSpec::new(Workload::Fft, 2, 1 << 20)
        .with_mode(SecurityMode::senss())
        .with_ops(OPS);
    let (heap_stats, heap_sink) = spec
        .with_scheduler(SchedulerKind::Heap)
        .run_with_sink(RingSink::new());
    let (wheel_stats, wheel_sink) = spec
        .with_scheduler(SchedulerKind::Wheel)
        .run_with_sink(RingSink::new());
    assert_eq!(heap_stats, wheel_stats);
    assert_eq!(heap_sink.dropped(), 0);
    assert_eq!(wheel_sink.dropped(), 0);
    let heap_events: Vec<_> = heap_sink.events().copied().collect();
    let wheel_events: Vec<_> = wheel_sink.events().copied().collect();
    assert_eq!(heap_events, wheel_events, "trace streams diverged");
}

/// Mid-run snapshots must also be identical: capture sorts the exported
/// event queue, so the schedulers' internal layouts never leak into the
/// text. A heap-captured snapshot restored into a wheel-scheduled
/// continuation (and vice versa) finishes with the same stats.
#[test]
fn snapshots_are_scheduler_agnostic() {
    let spec = JobSpec::new(Workload::Ocean, 4, 4 << 20)
        .with_mode(SecurityMode::senss())
        .with_ops(OPS);
    let cold = spec.run();
    let cycle = cold.total_cycles / 2;

    let mut texts = Vec::new();
    for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
        let mut sys = spec.with_scheduler(kind).build_system();
        sys.run_until(cycle);
        texts.push(Snapshot::capture(&sys, cycle).encode());
    }
    assert_eq!(
        texts[0], texts[1],
        "snapshot text must not depend on the scheduler"
    );

    // Cross-restore: the decoded snapshot (which carries no scheduler)
    // finishes to the cold run's stats.
    let warm = Snapshot::decode(&texts[1])
        .expect("decodes")
        .restore(spec.build_extension())
        .finish();
    assert_eq!(warm, cold, "restored continuation diverged");
}
