//! Snapshot *format* stability: a snapshot written by an earlier build
//! must either restore bit-identically on the current build or be
//! rejected with a versioned error — never silently misread.
//!
//! `tests/pre_change_snapshot.txt` was captured at T/2 of the
//! `fig06_slowdown` golden configuration by the build that introduced
//! it, and is only regenerated when the on-disk format intentionally
//! changes (bump [`senss_snapshot::FORMAT_VERSION`] at the same time):
//!
//! ```text
//! SNAPSHOT_FIXTURE_REGEN=1 cargo test -p senss-bench --test snapshot_format
//! ```

use senss_harness::{JobSpec, SecurityMode};
use senss_snapshot::{Snapshot, SnapshotError, FORMAT_VERSION};
use senss_workloads::Workload;

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/pre_change_snapshot.txt");

/// Same job as the `fig06_slowdown` golden config.
fn fixture_spec() -> JobSpec {
    JobSpec::new(Workload::Fft, 2, 1 << 20)
        .with_mode(SecurityMode::senss())
        .with_ops(2_000)
}

#[test]
fn pre_change_snapshot_restores_bit_identically() {
    let spec = fixture_spec();
    let cold = spec.run();

    if std::env::var_os("SNAPSHOT_FIXTURE_REGEN").is_some() {
        let cycle = cold.total_cycles / 2;
        let mut sys = spec.build_system();
        sys.run_until(cycle);
        let text = Snapshot::capture(&sys, cycle).encode();
        std::fs::write(FIXTURE, &text).expect("write snapshot fixture");
        eprintln!("regenerated {FIXTURE}");
        return;
    }

    let text = std::fs::read_to_string(FIXTURE)
        .expect("snapshot fixture missing; regenerate with SNAPSHOT_FIXTURE_REGEN=1");
    let snap = Snapshot::decode(&text).unwrap_or_else(|e| {
        panic!(
            "pre-change snapshot no longer decodes ({e}); if the format \
             changed intentionally, bump FORMAT_VERSION so old snapshots \
             are *rejected*, and regenerate the fixture"
        )
    });
    assert_eq!(
        snap.encode(),
        text,
        "re-encoding the pre-change snapshot is not byte-identical — the \
         writer drifted without a FORMAT_VERSION bump"
    );
    let warm = snap.restore(spec.build_extension()).finish();
    assert_eq!(
        warm, cold,
        "restoring the pre-change snapshot diverged from the cold run"
    );
}

/// A snapshot claiming a future format version must fail loudly with
/// the versioned error, not be parsed on a best-effort basis.
#[test]
fn future_format_version_is_rejected_with_versioned_error() {
    let text = std::fs::read_to_string(FIXTURE)
        .expect("snapshot fixture missing; regenerate with SNAPSHOT_FIXTURE_REGEN=1");
    let header = format!("senss-snapshot {FORMAT_VERSION}");
    assert!(text.starts_with(&header), "fixture header changed");
    let bumped = text.replacen(
        &header,
        &format!("senss-snapshot {}", FORMAT_VERSION + 1),
        1,
    );
    match Snapshot::decode(&bumped) {
        Err(SnapshotError::UnsupportedVersion(v)) => {
            assert_eq!(v, (FORMAT_VERSION + 1) as u64)
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}
