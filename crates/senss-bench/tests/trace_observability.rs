//! Acceptance tests for the tracing/observability layer (issue 5).
//!
//! The paper-default configuration here is fft at 4 processors under
//! SENSS-CBC. The tests pin down the three guarantees the trace layer
//! makes:
//!
//! 1. tracing observes, never perturbs — a traced run's `Stats` are
//!    bit-identical to an untraced run of the same spec;
//! 2. the trace ties out — per-kind transaction counts and bus-busy
//!    cycles derived from the event stream match the `Stats` counters
//!    exactly;
//! 3. the Chrome export is well-formed — valid JSON, monotonic `ts`,
//!    and every `B` span closed by a matching `E` on its lane — and
//!    byte-identically deterministic across identical runs.

use senss_harness::json::{self, Value};
use senss_harness::{JobSpec, SecurityMode};
use senss_sim::Stats;
use senss_trace::{chrome_trace, fold, RingSink, TxnClass};
use senss_workloads::Workload;
use std::collections::HashMap;

fn traced_job() -> JobSpec {
    JobSpec::new(Workload::Fft, 4, 1 << 20)
        .with_mode(SecurityMode::senss())
        .with_ops(800)
}

fn stats_txn_count(stats: &Stats, class: TxnClass) -> u64 {
    match class {
        TxnClass::Read => stats.txn_read,
        TxnClass::ReadExclusive => stats.txn_read_exclusive,
        TxnClass::Upgrade => stats.txn_upgrade,
        TxnClass::Update => stats.txn_update,
        TxnClass::Writeback => stats.txn_writeback,
        TxnClass::HashFetch => stats.txn_hash_fetch,
        TxnClass::HashWriteback => stats.txn_hash_writeback,
        TxnClass::Auth => stats.txn_auth,
        TxnClass::PadInvalidate => stats.txn_pad_invalidate,
        TxnClass::PadRequest => stats.txn_pad_request,
    }
}

#[test]
fn traced_run_ties_out_against_stats() {
    let job = traced_job();
    let (stats, sink) = job.run_with_sink(RingSink::new());
    assert_eq!(sink.dropped(), 0, "ring must hold the whole run");
    assert!(!sink.is_empty());
    assert_eq!(
        stats,
        job.run(),
        "tracing must not perturb the simulation"
    );

    let derived = fold(sink.events(), 1 << 14);
    for class in TxnClass::ALL {
        assert_eq!(
            derived.txn_counts[class.index()],
            stats_txn_count(&stats, class),
            "traced {} count must match Stats",
            class.name()
        );
    }
    assert!(derived.total_transactions() > 0);
    assert_eq!(
        derived.bus_busy_cycles, stats.bus_busy_cycles,
        "sum of BusGrant busy must reproduce Stats::bus_busy_cycles"
    );
    assert_eq!(derived.mem_fills, stats.memory_transfers);
    assert_eq!(derived.unmatched_done, 0, "complete trace, no orphan closes");
}

#[test]
fn chrome_export_is_valid_monotonic_and_balanced() {
    let job = traced_job();
    let (stats, sink) = job.run_with_sink(RingSink::new());
    assert_eq!(sink.dropped(), 0);
    let text = chrome_trace(sink.events());

    let doc = json::parse(&text).expect("chrome export must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut last_ts = 0u64;
    // tid → stack of open span names; spans on one lane must nest.
    let mut open: HashMap<u64, Vec<String>> = HashMap::new();
    let mut begin_counts: HashMap<String, u64> = HashMap::new();
    for ev in events {
        let ts = ev.get("ts").and_then(Value::as_u64).expect("ts");
        assert!(ts >= last_ts, "ts must be monotonically non-decreasing");
        last_ts = ts;
        let tid = ev.get("tid").and_then(Value::as_u64).expect("tid");
        let name = ev.get("name").and_then(Value::as_str).expect("name");
        match ev.get("ph").and_then(Value::as_str).expect("ph") {
            "B" => {
                open.entry(tid).or_default().push(name.to_string());
                *begin_counts.entry(name.to_string()).or_default() += 1;
            }
            "E" => {
                let top = open
                    .get_mut(&tid)
                    .and_then(Vec::pop)
                    .unwrap_or_else(|| panic!("E without open B on tid {tid}"));
                assert_eq!(top, name, "E must close the innermost B of its lane");
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &open {
        assert!(stack.is_empty(), "unclosed span(s) {stack:?} on tid {tid}");
    }

    // Per-kind span counts in the exported file match the Stats counters.
    for class in TxnClass::ALL {
        assert_eq!(
            begin_counts.get(class.name()).copied().unwrap_or(0),
            stats_txn_count(&stats, class),
            "chrome {} span count must match Stats",
            class.name()
        );
    }
}

#[test]
fn identical_runs_trace_byte_identically() {
    let (stats_a, sink_a) = traced_job().run_with_sink(RingSink::new());
    let (stats_b, sink_b) = traced_job().run_with_sink(RingSink::new());
    assert_eq!(stats_a, stats_b);
    assert_eq!(
        sink_a.to_jsonl(),
        sink_b.to_jsonl(),
        "identical runs must produce byte-identical JSONL traces"
    );
    assert_eq!(
        chrome_trace(sink_a.events()),
        chrome_trace(sink_b.events()),
        "identical runs must produce byte-identical Chrome exports"
    );
}
