//! The `SENSS_SERVE` remote-execution bridge: `sweeps::execute` must
//! produce the same records whether a sweep runs in-process or through
//! a `senss-serve` server.
//!
//! This binary owns the `SENSS_SERVE` environment variable, so it holds
//! exactly one `#[test]`: environment variables are process-global and
//! must not race other tests.

use senss_bench::sweeps::{self, SecurityMode, SweepSpec};
use senss_bench::workload_columns;
use senss_harness::{Harness, HarnessConfig, JobSpec};
use senss_serve::{Server, ServerConfig};

#[test]
fn execute_bridges_to_a_server_when_senss_serve_is_set() {
    let server = Server::start(ServerConfig::loopback()).expect("bind loopback server");
    let addr = server.addr().to_string();

    let mut sweep = SweepSpec::new("bridge");
    sweep.grid(
        &workload_columns()[..2],
        &[2],
        &[1 << 20],
        &[SecurityMode::Baseline, SecurityMode::senss()],
        400,
        7,
    );

    let direct = Harness::new(HarnessConfig::hermetic()).run(&sweep).unwrap();

    std::env::set_var("SENSS_SERVE", &addr);
    let remote = sweeps::execute(&sweep);
    std::env::remove_var("SENSS_SERVE");

    assert!(remote.is_complete());
    assert_eq!(remote.records.len(), direct.records.len());
    for (r, d) in remote.records.iter().zip(&direct.records) {
        assert_eq!(r.spec, d.spec);
        assert_eq!(r.key, d.key);
        assert_eq!(r.stats, d.stats, "remote stats must match a local run");
    }

    // Lookup goes through the same spec constructors the figure
    // binaries use.
    let spec = JobSpec::new(workload_columns()[0], 2, 1 << 20)
        .with_ops(400)
        .with_seed(7);
    assert_eq!(remote.require(&spec), direct.require(&spec));

    server.shutdown();
}
