//! Golden-record equivalence: the simulator's observable statistics are
//! pinned byte-for-byte.
//!
//! One representative configuration per figure binary (plus a 32-core
//! scaling point) runs at
//! small scale and its full [`Stats`] — every counter plus the per-core
//! vectors — is serialized with the harness run-record codec and
//! compared against `tests/golden_stats.jsonl`. Any change to simulated
//! timing, coherence behaviour, or the security layers shows up here as
//! a byte diff, which is exactly the guarantee the hot-path rework rides
//! on: an optimization must not move a single number.
//!
//! To re-pin after an *intentional* semantic change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p senss-bench --test golden_stats
//! ```

use senss_harness::record::{encode_spec, encode_stats};
use senss_harness::{json::Value, JobSpec, SecurityMode, TraceSpec};
use senss_sim::config::CoherenceProtocol;
use senss_workloads::Workload;

const OPS: usize = 2_000;

/// One small-scale job per figure binary, covering every security mode,
/// both coherence protocols, micro and workload traces, and 2–16 cores.
fn figure_configs() -> Vec<(&'static str, JobSpec)> {
    vec![
        (
            "fig06_slowdown",
            JobSpec::new(Workload::Fft, 2, 1 << 20)
                .with_mode(SecurityMode::senss())
                .with_ops(OPS),
        ),
        (
            "fig07_masks",
            JobSpec::new(Workload::Radix, 4, 4 << 20)
                .with_mode(SecurityMode::senss_masks(1))
                .with_ops(OPS),
        ),
        (
            "fig08_traffic",
            JobSpec::new(Workload::Ocean, 4, 4 << 20).with_ops(OPS),
        ),
        (
            "fig09_interval",
            JobSpec::new(Workload::Lu, 4, 4 << 20)
                .with_mode(SecurityMode::senss_interval(1))
                .with_ops(OPS),
        ),
        (
            "fig10_integrated",
            JobSpec::new(Workload::Barnes, 4, 1 << 20)
                .with_mode(SecurityMode::integrated())
                .with_ops(OPS),
        ),
        (
            "fig11_variability",
            JobSpec::new(TraceSpec::FalseSharing, 2, 1 << 20)
                .with_mode(SecurityMode::senss_interval(1))
                .with_ops(OPS),
        ),
        (
            "coherence_protocols",
            JobSpec::new(Workload::Fft, 4, 1 << 20)
                .with_coherence(CoherenceProtocol::WriteUpdate)
                .with_mode(SecurityMode::senss_interval(1))
                .with_ops(OPS),
        ),
        (
            "hw_overhead",
            JobSpec::new(Workload::Ocean, 4, 4 << 20)
                .with_mode(SecurityMode::senss())
                .with_ops(OPS),
        ),
        (
            "scaling_study",
            JobSpec::new(Workload::Ocean, 16, 4 << 20)
                .with_mode(SecurityMode::senss())
                .with_ops(OPS),
        ),
        (
            "scaling_study_32p",
            JobSpec::new(Workload::Ocean, 32, 4 << 20)
                .with_mode(SecurityMode::senss())
                .with_ops(OPS),
        ),
    ]
}

/// Runs one config and renders its canonical golden line.
fn golden_line(name: &str, spec: &JobSpec) -> String {
    let stats = spec.run();
    let mut fields = vec![("figure".to_string(), Value::Str(name.to_string()))];
    fields.extend(encode_spec(spec));
    fields.push(("stats".to_string(), encode_stats(&stats)));
    Value::Obj(fields).encode()
}

#[test]
fn stats_match_golden_records_for_all_figures() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_stats.jsonl");
    let lines: Vec<String> = figure_configs()
        .iter()
        .map(|(name, spec)| golden_line(name, spec))
        .collect();
    let rendered = lines.join("\n") + "\n";

    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(path, &rendered).expect("write golden fixture");
        eprintln!("regenerated {path}");
        return;
    }

    let golden = std::fs::read_to_string(path)
        .expect("golden fixture missing; regenerate with GOLDEN_REGEN=1");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        golden_lines.len(),
        lines.len(),
        "fixture line count differs; regenerate with GOLDEN_REGEN=1 if intended"
    );
    for (got, want) in lines.iter().zip(&golden_lines) {
        assert_eq!(
            got.as_str(),
            *want,
            "simulated Stats diverged from the golden record — an \
             optimization changed an observable statistic (or a semantic \
             change needs GOLDEN_REGEN=1 to re-pin)"
        );
    }
    assert_eq!(rendered, golden, "trailing content differs");
}
