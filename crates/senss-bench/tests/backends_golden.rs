//! Golden-record and checkpoint oracles for the competing security
//! backends (`senss-backends`: SERVAS, Sealer, scattered memory).
//!
//! Three guarantees, mirroring what `golden_stats.rs` and
//! `snapshot_roundtrip.rs` pin for the paper's own configurations:
//!
//! 1. Every backend's observable [`Stats`] are pinned byte-for-byte in
//!    `tests/golden_backends.jsonl` (regenerate with `GOLDEN_REGEN=1`
//!    after an intentional semantic change).
//! 2. Interrupting each backend at T/4, T/2 and 3T/4, pushing the
//!    snapshot — extension `x key value` pairs included — through the
//!    text codec and restoring must reproduce the same golden line.
//!    A checkpoint of `servas.*` / `sealer.*` / `scat.*` state is only
//!    correct if it is invisible in every number.
//! 3. The cross-backend figure table is byte-identical between a cold
//!    hermetic run and a warm-start snapshot-forked run that actually
//!    forked (`forked > 0`).

use senss_bench::backends;
use senss_harness::record::{encode_spec, encode_stats};
use senss_harness::{json::Value, Harness, HarnessConfig, JobSpec, SecurityMode};
use senss_snapshot::Snapshot;
use senss_workloads::Workload;

const OPS: usize = 2_000;

/// One pinned configuration per backend, on distinct workloads/shapes so
/// the fixture also covers shape variety.
fn backend_configs() -> Vec<(&'static str, JobSpec)> {
    vec![
        (
            "backend_servas",
            JobSpec::new(Workload::Fft, 4, 1 << 20)
                .with_mode(SecurityMode::servas())
                .with_ops(OPS),
        ),
        (
            "backend_servas_m2",
            JobSpec::new(Workload::Radix, 8, 1 << 20)
                .with_mode(SecurityMode::Servas { masks: 2 })
                .with_ops(OPS),
        ),
        (
            "backend_sealer",
            JobSpec::new(Workload::Ocean, 4, 4 << 20)
                .with_mode(SecurityMode::sealer())
                .with_ops(OPS),
        ),
        (
            "backend_sealer_i1",
            JobSpec::new(Workload::Lu, 8, 4 << 20)
                .with_mode(SecurityMode::Sealer { auth_interval: 1 })
                .with_ops(OPS),
        ),
        (
            "backend_scattered",
            JobSpec::new(Workload::Barnes, 4, 1 << 20)
                .with_mode(SecurityMode::scattered())
                .with_ops(OPS),
        ),
        (
            "backend_scattered_n5",
            JobSpec::new(Workload::Fft, 16, 1 << 20)
                .with_mode(SecurityMode::Scattered { shares: 5 })
                .with_ops(OPS),
        ),
    ]
}

/// Renders the canonical golden line for `spec` with the given stats.
fn golden_line(name: &str, spec: &JobSpec, stats: &senss_sim::Stats) -> String {
    let mut fields = vec![("figure".to_string(), Value::Str(name.to_string()))];
    fields.extend(encode_spec(spec));
    fields.push(("stats".to_string(), encode_stats(stats)));
    Value::Obj(fields).encode()
}

#[test]
fn backend_stats_match_golden_records_and_survive_checkpoints() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_backends.jsonl");
    let configs = backend_configs();

    let lines: Vec<String> = configs
        .iter()
        .map(|(name, spec)| golden_line(name, spec, &spec.run()))
        .collect();
    let rendered = lines.join("\n") + "\n";

    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(path, &rendered).expect("write golden fixture");
        eprintln!("regenerated {path}");
        return;
    }

    let golden = std::fs::read_to_string(path)
        .expect("golden fixture missing; regenerate with GOLDEN_REGEN=1");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        golden_lines.len(),
        configs.len(),
        "fixture line count differs; regenerate with GOLDEN_REGEN=1 if intended"
    );

    for (((name, spec), line), want) in configs.iter().zip(&lines).zip(&golden_lines) {
        assert_eq!(
            line.as_str(),
            *want,
            "{name}: backend Stats diverged from the golden record — a \
             timing-model change needs GOLDEN_REGEN=1 to re-pin"
        );

        // The checkpoint oracle: interrupt at three points, round-trip
        // the snapshot (with the backend's `x key value` extension
        // pairs) through the text codec, restore, and demand the same
        // golden line.
        let total = spec.run().total_cycles;
        for cycle in [total / 4, total / 2, total * 3 / 4] {
            let mut sys = spec.build_system();
            sys.run_until(cycle);
            let snap = Snapshot::capture(&sys, cycle);

            let text = snap.encode();
            let back = Snapshot::decode(&text)
                .unwrap_or_else(|e| panic!("{name}@{cycle}: snapshot does not decode: {e}"));
            assert_eq!(back, snap, "{name}@{cycle}: codec round-trip changed state");
            assert_eq!(back.encode(), text, "{name}@{cycle}: re-encode not canonical");

            let warm = back.restore(spec.build_extension()).finish();
            assert_eq!(
                golden_line(name, spec, &warm).as_str(),
                *want,
                "{name}: restore at cycle {cycle} changed the golden JSONL"
            );
        }
    }
    assert_eq!(rendered, golden, "trailing content differs");
}

#[test]
fn warm_start_forking_reproduces_the_figure_table_byte_for_byte() {
    let ws = backends::workloads(true);
    let ops = 600;
    let sweep = backends::sweep(&ws, ops, 7);

    let cold = Harness::new(HarnessConfig::hermetic()).run(&sweep).unwrap();
    let warm = Harness::new(HarnessConfig::hermetic().with_warm_start(true))
        .run(&sweep)
        .unwrap();

    assert!(cold.is_complete() && warm.is_complete());
    assert_eq!(cold.forked, 0);
    assert!(
        warm.forked > 0,
        "the three scale points per cell must form real fork groups"
    );

    let cold_table = backends::jsonl_table(&backends::cells(&cold, &ws, ops, 7));
    let warm_table = backends::jsonl_table(&backends::cells(&warm, &ws, ops, 7));
    assert!(!cold_table.is_empty());
    assert_eq!(
        cold_table, warm_table,
        "snapshot-forked execution must be invisible in the figure"
    );
}
