//! Checkpoint/restore equivalence against the golden-record suite.
//!
//! For every one of the pinned figure configurations, the run is
//! interrupted at three distinct cycle points (T/4, T/2, 3T/4 of the
//! uninterrupted total), captured with `senss-snapshot`, pushed through
//! the text codec, and restored into a fresh system. The restored run's
//! final [`Stats`] must be bit-identical to the cold run's — and the
//! golden JSONL line rendered from them must match
//! `tests/golden_stats.jsonl` byte for byte. A checkpoint is only
//! correct if it is *invisible* in every observable number.
//!
//! One configuration additionally pins the trace-event stream: the
//! events captured before the checkpoint chained with the restored
//! run's tail must equal the cold run's full stream.

use senss_harness::record::{encode_spec, encode_stats};
use senss_harness::{json::Value, JobSpec, SecurityMode, TraceSpec};
use senss_sim::config::CoherenceProtocol;
use senss_snapshot::Snapshot;
use senss_trace::RingSink;
use senss_workloads::Workload;

const OPS: usize = 2_000;

/// The same configurations `golden_stats.rs` pins. Duplicated
/// rather than shared because each integration test compiles as its own
/// crate; any drift shows up as a fixture mismatch here.
fn figure_configs() -> Vec<(&'static str, JobSpec)> {
    vec![
        (
            "fig06_slowdown",
            JobSpec::new(Workload::Fft, 2, 1 << 20)
                .with_mode(SecurityMode::senss())
                .with_ops(OPS),
        ),
        (
            "fig07_masks",
            JobSpec::new(Workload::Radix, 4, 4 << 20)
                .with_mode(SecurityMode::senss_masks(1))
                .with_ops(OPS),
        ),
        (
            "fig08_traffic",
            JobSpec::new(Workload::Ocean, 4, 4 << 20).with_ops(OPS),
        ),
        (
            "fig09_interval",
            JobSpec::new(Workload::Lu, 4, 4 << 20)
                .with_mode(SecurityMode::senss_interval(1))
                .with_ops(OPS),
        ),
        (
            "fig10_integrated",
            JobSpec::new(Workload::Barnes, 4, 1 << 20)
                .with_mode(SecurityMode::integrated())
                .with_ops(OPS),
        ),
        (
            "fig11_variability",
            JobSpec::new(TraceSpec::FalseSharing, 2, 1 << 20)
                .with_mode(SecurityMode::senss_interval(1))
                .with_ops(OPS),
        ),
        (
            "coherence_protocols",
            JobSpec::new(Workload::Fft, 4, 1 << 20)
                .with_coherence(CoherenceProtocol::WriteUpdate)
                .with_mode(SecurityMode::senss_interval(1))
                .with_ops(OPS),
        ),
        (
            "hw_overhead",
            JobSpec::new(Workload::Ocean, 4, 4 << 20)
                .with_mode(SecurityMode::senss())
                .with_ops(OPS),
        ),
        (
            "scaling_study",
            JobSpec::new(Workload::Ocean, 16, 4 << 20)
                .with_mode(SecurityMode::senss())
                .with_ops(OPS),
        ),
        (
            "scaling_study_32p",
            JobSpec::new(Workload::Ocean, 32, 4 << 20)
                .with_mode(SecurityMode::senss())
                .with_ops(OPS),
        ),
    ]
}

/// Renders the canonical golden line for `spec` with the given stats.
fn golden_line(name: &str, spec: &JobSpec, stats: &senss_sim::Stats) -> String {
    let mut fields = vec![("figure".to_string(), Value::Str(name.to_string()))];
    fields.extend(encode_spec(spec));
    fields.push(("stats".to_string(), encode_stats(stats)));
    Value::Obj(fields).encode()
}

#[test]
fn checkpoint_restore_is_invisible_in_every_golden_figure() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_stats.jsonl");
    let golden = std::fs::read_to_string(path)
        .expect("golden fixture missing; regenerate with GOLDEN_REGEN=1");
    let golden_lines: Vec<&str> = golden.lines().collect();
    let configs = figure_configs();
    assert_eq!(golden_lines.len(), configs.len());

    for ((name, spec), want) in configs.iter().zip(&golden_lines) {
        let cold = spec.run();
        assert_eq!(
            golden_line(name, spec, &cold).as_str(),
            *want,
            "{name}: cold run diverged from the golden record before any \
             checkpointing — fix that first"
        );
        let total = cold.total_cycles;
        for cycle in [total / 4, total / 2, total * 3 / 4] {
            let mut sys = spec.build_system();
            sys.run_until(cycle);
            let snap = Snapshot::capture(&sys, cycle);

            let text = snap.encode();
            let back = Snapshot::decode(&text)
                .unwrap_or_else(|e| panic!("{name}@{cycle}: snapshot does not decode: {e}"));
            assert_eq!(back, snap, "{name}@{cycle}: codec round-trip changed state");
            assert_eq!(back.encode(), text, "{name}@{cycle}: re-encode not canonical");

            let warm = back.restore(spec.build_extension()).finish();
            assert_eq!(
                golden_line(name, spec, &warm).as_str(),
                *want,
                "{name}: restore at cycle {cycle} changed the golden JSONL"
            );
        }
    }
}

#[test]
fn restored_runs_reproduce_the_trace_event_stream() {
    let spec = JobSpec::new(Workload::Fft, 2, 1 << 20)
        .with_mode(SecurityMode::senss())
        .with_ops(OPS);
    let (cold_stats, cold_sink) = spec.run_with_sink(RingSink::new());
    assert_eq!(cold_sink.dropped(), 0, "ring must hold the full stream");
    let full: Vec<_> = cold_sink.events().copied().collect();

    let cycle = cold_stats.total_cycles / 2;
    let mut sys = spec.build_system_with_sink(RingSink::new());
    sys.run_until(cycle);
    let prefix: Vec<_> = sys.sink().events().copied().collect();
    let snap = Snapshot::capture(&sys, cycle);

    let mut warm = Snapshot::decode(&snap.encode())
        .expect("decodes")
        .restore_with_sink(spec.build_extension(), RingSink::new());
    let warm_stats = warm.finish();
    assert_eq!(warm_stats, cold_stats);

    let tail: Vec<_> = warm.into_sink().events().copied().collect();
    let stitched: Vec<_> = prefix.into_iter().chain(tail).collect();
    assert_eq!(
        stitched, full,
        "prefix + restored tail must equal the uninterrupted event stream"
    );
}
