//! In-process metrics registry, snapshotted into `metrics` responses.
//!
//! Everything is a lock-free [`AtomicU64`]; a snapshot is a plain JSON
//! object so clients (and the CLI) can render it without a schema. The
//! glossary of every counter lives in `docs/serving.md`.

use senss_harness::json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::protocol::ErrorClass;

/// Upper bucket bounds of the request wall-latency histogram, in
/// microseconds. The final bucket is unbounded.
pub const LATENCY_BUCKETS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

const BUCKET_LABELS: [&str; 7] = [
    "le_100us", "le_1ms", "le_10ms", "le_100ms", "le_1s", "le_10s", "inf",
];

/// A fixed-bucket wall-latency histogram.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 7],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn observe(&self, wall: Duration) {
        let micros = wall.as_micros().min(u128::from(u64::MAX)) as u64;
        let slot = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> Value {
        let mut fields: Vec<(String, Value)> = BUCKET_LABELS
            .iter()
            .zip(&self.buckets)
            .map(|(label, b)| (label.to_string(), Value::UInt(b.load(Ordering::Relaxed))))
            .collect();
        fields.push((
            "sum_micros".to_string(),
            Value::UInt(self.sum_micros.load(Ordering::Relaxed)),
        ));
        fields.push(("count".to_string(), Value::UInt(self.count())));
        Value::Obj(fields)
    }
}

/// The server's metrics registry. One instance per server, shared by
/// every thread; all counters are monotonic except the `*_depth`
/// gauges.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted (including ones rejected for backpressure).
    pub connections_total: AtomicU64,
    /// Connections turned away because the pending-connection queue was
    /// full.
    pub connections_rejected: AtomicU64,
    /// Requests fully parsed and dispatched.
    pub requests_total: AtomicU64,
    /// `submit` requests accepted (a rejected submit counts as an
    /// error, not here).
    pub requests_submit: AtomicU64,
    /// `status` requests served.
    pub requests_status: AtomicU64,
    /// `results` requests served.
    pub requests_results: AtomicU64,
    /// `stream` requests served.
    pub requests_stream: AtomicU64,
    /// `trace` requests served.
    pub requests_trace: AtomicU64,
    /// `metrics` requests served.
    pub requests_metrics: AtomicU64,
    /// `ping` requests served.
    pub requests_ping: AtomicU64,
    /// `shutdown` requests served.
    pub requests_shutdown: AtomicU64,
    /// Error responses sent, by [`ErrorClass`] (same order as
    /// [`ErrorClass::ALL`]).
    errors: [AtomicU64; ErrorClass::ALL.len()],
    /// Sweeps accepted into the queue.
    pub sweeps_submitted: AtomicU64,
    /// Sweeps that ran to completion (even with per-job failures).
    pub sweeps_completed: AtomicU64,
    /// Sweeps that failed server-side (harness I/O error).
    pub sweeps_failed: AtomicU64,
    /// Jobs actually executed by the harness (cache misses).
    pub jobs_executed: AtomicU64,
    /// Jobs served from the harness result cache.
    pub jobs_cached: AtomicU64,
    /// Jobs that failed permanently inside completed sweeps.
    pub jobs_failed: AtomicU64,
    /// Jobs whose result came from a warm-start checkpoint fork instead
    /// of a cold re-simulation (a subset of `jobs_executed`).
    pub jobs_forked: AtomicU64,
    /// Corrupt or truncated result-cache lines skipped while opening
    /// the cache (accumulated across sweeps; 0 when the cache is off or
    /// healthy).
    pub cache_lines_skipped: AtomicU64,
    /// `trace` requests answered by restoring a retained mid-run
    /// checkpoint instead of re-simulating from cycle 0.
    pub trace_checkpoint_hits: AtomicU64,
    /// Current depth of the sweep queue (gauge).
    pub queue_depth: AtomicU64,
    /// High-water mark of the sweep queue.
    pub queue_depth_max: AtomicU64,
    /// Open client connections on the event loop (gauge).
    pub connections_open: AtomicU64,
    /// Shards handed to cluster workers (0 unless running as a
    /// coordinator).
    pub shards_dispatched: AtomicU64,
    /// Shards whose results merged back successfully.
    pub shards_completed: AtomicU64,
    /// Shards re-dispatched after a worker error or death.
    pub shard_retries: AtomicU64,
    /// Worker processes respawned after dying or misbehaving.
    pub workers_respawned: AtomicU64,
    /// Per-worker counters, sized by [`Metrics::with_workers`]; empty
    /// outside coordinator mode.
    workers: Vec<WorkerStats>,
    /// Request wall-latency histogram (parse → response flushed).
    pub latency: LatencyHistogram,
}

/// Per-worker-slot counters for coordinator mode. A slot survives its
/// process: when a worker dies and is respawned, the replacement keeps
/// accumulating into the same slot.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Shards this worker slot completed.
    pub shards: AtomicU64,
    /// Jobs this worker slot executed or served from its cache.
    pub jobs: AtomicU64,
    /// Times this slot's process was respawned.
    pub respawns: AtomicU64,
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// A zeroed registry with `n` per-worker counter slots, for
    /// coordinator mode. The snapshot gains `worker_{i}_shards`,
    /// `worker_{i}_jobs` and `worker_{i}_respawns` fields.
    pub fn with_workers(n: usize) -> Metrics {
        Metrics {
            workers: (0..n).map(|_| WorkerStats::default()).collect(),
            ..Metrics::default()
        }
    }

    /// The per-worker counters for slot `i`, if this registry has them.
    pub fn worker(&self, i: usize) -> Option<&WorkerStats> {
        self.workers.get(i)
    }

    /// Counts one dispatched request of the given wire kind.
    pub fn record_request(&self, kind: &str) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let counter = match kind {
            "submit" => &self.requests_submit,
            "status" => &self.requests_status,
            "results" => &self.requests_results,
            "stream" => &self.requests_stream,
            "trace" => &self.requests_trace,
            "metrics" => &self.requests_metrics,
            "ping" => &self.requests_ping,
            "shutdown" => &self.requests_shutdown,
            _ => return,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one error response of the given class.
    pub fn record_error(&self, class: ErrorClass) {
        let slot = ErrorClass::ALL.iter().position(|&c| c == class).unwrap();
        self.errors[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Error responses sent for `class` so far.
    pub fn errors(&self, class: ErrorClass) -> u64 {
        let slot = ErrorClass::ALL.iter().position(|&c| c == class).unwrap();
        self.errors[slot].load(Ordering::Relaxed)
    }

    /// Moves the queue-depth gauge after a push.
    pub fn queue_pushed(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Moves the queue-depth gauge after a pop. Saturates at zero: an
    /// unmatched pop is a caller bug, but it must not wrap the gauge to
    /// `u64::MAX` and poison the high-water mark through `fetch_max`.
    pub fn queue_popped(&self) {
        let saturate = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
        debug_assert!(saturate.is_ok(), "fetch_update with Some never fails");
    }

    /// Snapshots every counter into a JSON object.
    pub fn snapshot(&self) -> Value {
        let get = |a: &AtomicU64| Value::UInt(a.load(Ordering::Relaxed));
        let mut fields = vec![
            ("connections_total".to_string(), get(&self.connections_total)),
            (
                "connections_rejected".to_string(),
                get(&self.connections_rejected),
            ),
            ("requests_total".to_string(), get(&self.requests_total)),
            ("requests_submit".to_string(), get(&self.requests_submit)),
            ("requests_status".to_string(), get(&self.requests_status)),
            ("requests_results".to_string(), get(&self.requests_results)),
            ("requests_stream".to_string(), get(&self.requests_stream)),
            ("requests_trace".to_string(), get(&self.requests_trace)),
            ("requests_metrics".to_string(), get(&self.requests_metrics)),
            ("requests_ping".to_string(), get(&self.requests_ping)),
            (
                "requests_shutdown".to_string(),
                get(&self.requests_shutdown),
            ),
            ("sweeps_submitted".to_string(), get(&self.sweeps_submitted)),
            ("sweeps_completed".to_string(), get(&self.sweeps_completed)),
            ("sweeps_failed".to_string(), get(&self.sweeps_failed)),
            ("jobs_executed".to_string(), get(&self.jobs_executed)),
            ("jobs_cached".to_string(), get(&self.jobs_cached)),
            ("jobs_failed".to_string(), get(&self.jobs_failed)),
            ("jobs_forked".to_string(), get(&self.jobs_forked)),
            (
                "cache_lines_skipped".to_string(),
                get(&self.cache_lines_skipped),
            ),
            (
                "trace_checkpoint_hits".to_string(),
                get(&self.trace_checkpoint_hits),
            ),
            ("queue_depth".to_string(), get(&self.queue_depth)),
            ("queue_depth_max".to_string(), get(&self.queue_depth_max)),
            ("connections_open".to_string(), get(&self.connections_open)),
            (
                "shards_dispatched".to_string(),
                get(&self.shards_dispatched),
            ),
            ("shards_completed".to_string(), get(&self.shards_completed)),
            ("shard_retries".to_string(), get(&self.shard_retries)),
            (
                "workers_respawned".to_string(),
                get(&self.workers_respawned),
            ),
        ];
        for (i, w) in self.workers.iter().enumerate() {
            fields.push((format!("worker_{i}_shards"), get(&w.shards)));
            fields.push((format!("worker_{i}_jobs"), get(&w.jobs)));
            fields.push((format!("worker_{i}_respawns"), get(&w.respawns)));
        }
        for (class, counter) in ErrorClass::ALL.iter().zip(&self.errors) {
            fields.push((format!("errors_{}", class.tag()), get(counter)));
        }
        fields.push(("latency_micros".to_string(), self.latency.snapshot()));
        Value::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_sum() {
        let h = LatencyHistogram::default();
        h.observe(Duration::from_micros(50)); // le_100us
        h.observe(Duration::from_micros(500)); // le_1ms
        h.observe(Duration::from_millis(5)); // le_10ms
        h.observe(Duration::from_secs(60)); // inf
        assert_eq!(h.count(), 4);
        let snap = h.snapshot();
        assert_eq!(snap.get("le_100us").unwrap().as_u64(), Some(1));
        assert_eq!(snap.get("le_1ms").unwrap().as_u64(), Some(1));
        assert_eq!(snap.get("le_10ms").unwrap().as_u64(), Some(1));
        assert_eq!(snap.get("le_100ms").unwrap().as_u64(), Some(0));
        assert_eq!(snap.get("inf").unwrap().as_u64(), Some(1));
        assert_eq!(
            snap.get("sum_micros").unwrap().as_u64(),
            Some(50 + 500 + 5_000 + 60_000_000)
        );
    }

    #[test]
    fn snapshot_carries_every_error_class_and_gauge() {
        let m = Metrics::new();
        m.record_request("submit");
        m.record_request("metrics");
        m.record_error(ErrorClass::Overloaded);
        m.record_error(ErrorClass::Overloaded);
        m.queue_pushed();
        m.queue_pushed();
        m.queue_popped();
        let snap = m.snapshot();
        assert_eq!(snap.get("requests_total").unwrap().as_u64(), Some(2));
        assert_eq!(snap.get("requests_submit").unwrap().as_u64(), Some(1));
        assert_eq!(snap.get("errors_overloaded").unwrap().as_u64(), Some(2));
        assert_eq!(snap.get("errors_malformed").unwrap().as_u64(), Some(0));
        assert_eq!(snap.get("queue_depth").unwrap().as_u64(), Some(1));
        assert_eq!(snap.get("queue_depth_max").unwrap().as_u64(), Some(2));
        assert_eq!(m.errors(ErrorClass::Overloaded), 2);
    }

    #[test]
    fn per_worker_slots_appear_in_the_snapshot() {
        let m = Metrics::with_workers(2);
        m.worker(0).unwrap().shards.fetch_add(3, Ordering::Relaxed);
        m.worker(1).unwrap().jobs.fetch_add(7, Ordering::Relaxed);
        m.worker(1)
            .unwrap()
            .respawns
            .fetch_add(1, Ordering::Relaxed);
        assert!(m.worker(2).is_none());
        let snap = m.snapshot();
        assert_eq!(snap.get("worker_0_shards").unwrap().as_u64(), Some(3));
        assert_eq!(snap.get("worker_0_jobs").unwrap().as_u64(), Some(0));
        assert_eq!(snap.get("worker_1_jobs").unwrap().as_u64(), Some(7));
        assert_eq!(snap.get("worker_1_respawns").unwrap().as_u64(), Some(1));
        // Plain registries carry no per-worker fields at all.
        assert!(Metrics::new().snapshot().get("worker_0_shards").is_none());
    }

    #[test]
    fn unmatched_pop_saturates_instead_of_wrapping() {
        let m = Metrics::new();
        m.queue_pushed();
        m.queue_popped();
        // Regression: this unmatched pop used to wrap the gauge to
        // u64::MAX, and the next push then froze the high-water mark there.
        m.queue_popped();
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 0);
        m.queue_pushed();
        let snap = m.snapshot();
        assert_eq!(snap.get("queue_depth").unwrap().as_u64(), Some(1));
        assert_eq!(snap.get("queue_depth_max").unwrap().as_u64(), Some(1));
    }
}
