//! A small blocking client for the serve protocol.
//!
//! One TCP connection per call keeps the client trivially thread-safe
//! and immune to server-side idle timeouts; the loopback integration
//! tests drive many of these concurrently. [`Client::run`] is the
//! high-level path: submit with bounded retry on `overloaded`, poll
//! `status`, then stream `results`.

use crate::protocol::{
    parse_result_line, ErrorClass, JobResult, Request, Response, StatusInfo, SweepState,
};
use senss_harness::json::Value;
use senss_harness::SweepSpec;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent something the client cannot interpret.
    Protocol(String),
    /// The server replied with a structured error frame.
    Server {
        /// Failure class.
        class: ErrorClass,
        /// Whether the server says a retry could succeed.
        retriable: bool,
        /// Server-provided detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server {
                class,
                retriable,
                message,
            } => write!(
                f,
                "server error [{}{}]: {message}",
                class.tag(),
                if *retriable { ", retriable" } else { "" }
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
    /// Extra attempts after the first on a retriable `overloaded`
    /// rejection.
    retries: u32,
    backoff: Duration,
}

impl Client {
    /// A client for `addr` with 30 s I/O timeouts and 3 retries at
    /// 100 ms starting backoff.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
            retries: 3,
            backoff: Duration::from_millis(100),
        }
    }

    /// Sets the per-call I/O timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Sets retry count and starting backoff for retriable rejections.
    pub fn with_retry(mut self, retries: u32, backoff: Duration) -> Client {
        self.retries = retries;
        self.backoff = backoff;
        self
    }

    fn connect(&self) -> Result<(BufReader<TcpStream>, BufWriter<TcpStream>), ClientError> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok((BufReader::new(stream.try_clone()?), BufWriter::new(stream)))
    }

    fn read_response(reader: &mut BufReader<TcpStream>) -> Result<Response, ClientError> {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection mid-exchange".to_string(),
            ));
        }
        match Response::decode(line.trim()) {
            Ok(Response::Error {
                class,
                retriable,
                message,
            }) => Err(ClientError::Server {
                class,
                retriable,
                message,
            }),
            Ok(r) => Ok(r),
            Err(m) => Err(ClientError::Protocol(m)),
        }
    }

    /// Sends one request and reads the first response frame.
    fn call(&self, request: &Request) -> Result<(BufReader<TcpStream>, Response), ClientError> {
        let (mut reader, mut writer) = self.connect()?;
        writeln!(writer, "{}", request.encode())?;
        writer.flush()?;
        let response = Self::read_response(&mut reader)?;
        Ok((reader, response))
    }

    /// Submits a sweep; no retry. Returns `(id, jobs accepted)`.
    pub fn submit_once(&self, sweep: &SweepSpec) -> Result<(u64, u64), ClientError> {
        match self.call(&Request::Submit {
            sweep: sweep.clone(),
            indices: None,
        })? {
            (_, Response::Submitted { id, jobs }) => Ok((id, jobs)),
            (_, other) => Err(unexpected("submitted", &other)),
        }
    }

    /// Submits a shard of a larger sweep, tagging each job with its
    /// position in the original sweep (`indices[i]` for job `i`) so the
    /// result lines merge back byte-identically. Used by the cluster
    /// coordinator; no retry.
    pub fn submit_sharded(
        &self,
        sweep: &SweepSpec,
        indices: &[u64],
    ) -> Result<(u64, u64), ClientError> {
        match self.call(&Request::Submit {
            sweep: sweep.clone(),
            indices: Some(indices.to_vec()),
        })? {
            (_, Response::Submitted { id, jobs }) => Ok((id, jobs)),
            (_, other) => Err(unexpected("submitted", &other)),
        }
    }

    /// Submits a sweep, backing off and retrying (up to the configured
    /// retry budget) when the server sheds load with a retriable
    /// `overloaded` error.
    pub fn submit(&self, sweep: &SweepSpec) -> Result<(u64, u64), ClientError> {
        let mut backoff = self.backoff;
        let mut attempt = 0;
        loop {
            match self.submit_once(sweep) {
                Err(ClientError::Server {
                    class: ErrorClass::Overloaded,
                    retriable: true,
                    ..
                }) if attempt < self.retries => {
                    attempt += 1;
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                other => return other,
            }
        }
    }

    /// Queries a sweep's status.
    pub fn status(&self, id: u64) -> Result<StatusInfo, ClientError> {
        match self.call(&Request::Status { id })? {
            (_, Response::Status(info)) => Ok(info),
            (_, other) => Err(unexpected("status", &other)),
        }
    }

    /// Streams a finished sweep's raw result lines (exactly the bytes
    /// the server sent, minus newlines).
    pub fn results_raw(&self, id: u64) -> Result<Vec<String>, ClientError> {
        let (mut reader, header) = self.call(&Request::Results { id })?;
        let count = match header {
            Response::ResultsHeader { count, .. } => count,
            other => return Err(unexpected("results", &other)),
        };
        let mut lines = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Protocol(
                    "result stream ended before the promised count".to_string(),
                ));
            }
            lines.push(line.trim_end_matches(['\r', '\n']).to_string());
        }
        match Self::read_response(&mut reader)? {
            Response::End { count: n, .. } if n == count => Ok(lines),
            other => Err(unexpected("end", &other)),
        }
    }

    /// Streams a sweep's result lines progressively, invoking
    /// `on_line` for each record line as the server ships it — in index
    /// order, while the sweep is still running. Blocks until the
    /// server's `end` trailer; returns the number of lines delivered.
    ///
    /// Unlike [`results`](Client::results), the sweep may be queued or
    /// running when the stream is opened; the connection then waits on
    /// job completions, so size the client timeout to the sweep, not to
    /// one round-trip.
    pub fn stream_with(
        &self,
        id: u64,
        mut on_line: impl FnMut(&str),
    ) -> Result<u64, ClientError> {
        let (mut reader, header) = self.call(&Request::Stream { id })?;
        match header {
            Response::StreamHeader { .. } => {}
            other => return Err(unexpected("stream", &other)),
        }
        let mut delivered = 0u64;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Protocol(
                    "stream ended without an end frame".to_string(),
                ));
            }
            let line = line.trim_end_matches(['\r', '\n']);
            let kind = senss_harness::json::parse(line)
                .ok()
                .and_then(|v| v.get("type").and_then(|t| t.as_str().map(String::from)));
            if kind.as_deref() == Some("record") {
                delivered += 1;
                on_line(line);
                continue;
            }
            return match Response::decode(line) {
                Ok(Response::End { count, .. }) if count == delivered => Ok(delivered),
                Ok(Response::End { count, .. }) => Err(ClientError::Protocol(format!(
                    "stream end frame promised {count} lines but {delivered} arrived"
                ))),
                Ok(Response::Error {
                    class,
                    retriable,
                    message,
                }) => Err(ClientError::Server {
                    class,
                    retriable,
                    message,
                }),
                Ok(other) => Err(unexpected("end", &other)),
                Err(m) => Err(ClientError::Protocol(m)),
            };
        }
    }

    /// Streams a sweep's result lines progressively and collects them.
    pub fn stream_raw(&self, id: u64) -> Result<Vec<String>, ClientError> {
        let mut lines = Vec::new();
        self.stream_with(id, |l| lines.push(l.to_string()))?;
        Ok(lines)
    }

    /// Streams and parses a finished sweep's results.
    pub fn results(&self, id: u64) -> Result<Vec<JobResult>, ClientError> {
        self.results_raw(id)?
            .iter()
            .map(|l| parse_result_line(l).map_err(ClientError::Protocol))
            .collect()
    }

    /// Derives trace metrics for one job of a finished sweep. Returns
    /// the server's `senss.trace.derived.v1` object.
    pub fn trace(&self, id: u64, index: u64) -> Result<Value, ClientError> {
        match self.call(&Request::Trace { id, index })? {
            (_, Response::Trace { derived, .. }) => Ok(derived),
            (_, other) => Err(unexpected("trace", &other)),
        }
    }

    /// Snapshots the server's metrics registry.
    pub fn metrics(&self) -> Result<Value, ClientError> {
        match self.call(&Request::Metrics)? {
            (_, Response::Metrics(snapshot)) => Ok(snapshot),
            (_, other) => Err(unexpected("metrics", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            (_, Response::Pong) => Ok(()),
            (_, other) => Err(unexpected("pong", &other)),
        }
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            (_, Response::ShuttingDown) => Ok(()),
            (_, other) => Err(unexpected("shutting_down", &other)),
        }
    }

    /// Submit → poll status → stream results, the full cycle. `poll` is
    /// the status-poll interval.
    pub fn run(&self, sweep: &SweepSpec, poll: Duration) -> Result<Vec<JobResult>, ClientError> {
        let (id, _) = self.submit(sweep)?;
        loop {
            let info = self.status(id)?;
            match info.state {
                SweepState::Done => return self.results(id),
                SweepState::Failed => {
                    return Err(ClientError::Server {
                        class: ErrorClass::Internal,
                        retriable: false,
                        message: info.message,
                    })
                }
                SweepState::Queued | SweepState::Running => std::thread::sleep(poll),
            }
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected a {wanted} frame, got: {}", got.encode()))
}
