//! The versioned newline-delimited JSON wire format.
//!
//! Every frame is one JSON object on one line. Requests carry a `"v"`
//! protocol-version field and a `"type"` discriminator; responses carry
//! `"type"` alone (the version is negotiated per request, not per
//! connection, so a single socket can outlive a protocol bump).
//!
//! Frame inventory:
//!
//! | direction | `type` | meaning |
//! |---|---|---|
//! | → | `submit` | enqueue a [`SweepSpec`] for execution |
//! | → | `status` | query a submitted sweep's state |
//! | → | `results` | stream a finished sweep's per-job results |
//! | → | `stream` | stream a sweep's results progressively, while it runs |
//! | → | `trace` | derive trace metrics for one job of a finished sweep |
//! | → | `metrics` | snapshot the server's metrics registry |
//! | → | `ping` | liveness probe |
//! | → | `shutdown` | drain the job queue, then exit |
//! | ← | `submitted`, `status`, `results`, `stream`, `record`…, `end`, `trace`, `metrics`, `pong`, `shutting_down` | success frames |
//! | ← | `error` | structured failure (`class`, `retriable`, `message`) |
//!
//! `results` and `stream` replies are the only multi-line exchanges: a
//! header frame, then [`result_line`] frames, then one `end` frame.
//! `results` requires the sweep to be done and ships exactly `count`
//! lines at once; `stream` accepts a queued or running sweep and ships
//! each record line as the job completes, **in index order** (line for
//! index `i` is held until every line below `i` has shipped, so the
//! concatenation is always a prefix of the final JSONL). Result lines
//! are **deterministic**: they carry the job's identity
//! ([`encode_spec`] fields + cache key) and its full [`Stats`], and
//! deliberately omit wall time, worker id, attempts and cache
//! provenance — so the bytes a client receives are identical to a
//! local [`Harness`](senss_harness::Harness) run of the same spec.
//!
//! A `submit` frame may carry an optional `"indices"` array (one u64
//! per job): the original sweep positions of each job. A coordinator
//! sharding one sweep across workers uses it so each worker's result
//! lines carry the *original* indices and merge back byte-identically;
//! plain clients omit it (indices default to `0..jobs`).
//!
//! See `docs/serving.md` for the prose reference.

use senss_harness::json::{self, Value};
use senss_harness::record::{decode_stats, encode_stats};
use senss_harness::{decode_spec, encode_spec, JobSpec, RunRecord, SweepSpec};
use senss_sim::Stats;

/// The wire-format version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// Classes of structured server-side failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// The frame was not parseable as a known request.
    Malformed,
    /// The request named a protocol version this server does not speak.
    UnsupportedVersion,
    /// The job queue is full; retry with backoff.
    Overloaded,
    /// The referenced sweep id is unknown.
    NotFound,
    /// The sweep exists but has not finished yet; poll again.
    NotReady,
    /// The server is draining and no longer accepts new work.
    ShuttingDown,
    /// The sweep executed but failed server-side (e.g. cache I/O).
    Internal,
}

impl ErrorClass {
    /// All classes, for metrics enumeration.
    pub const ALL: [ErrorClass; 7] = [
        ErrorClass::Malformed,
        ErrorClass::UnsupportedVersion,
        ErrorClass::Overloaded,
        ErrorClass::NotFound,
        ErrorClass::NotReady,
        ErrorClass::ShuttingDown,
        ErrorClass::Internal,
    ];

    /// Canonical wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorClass::Malformed => "malformed",
            ErrorClass::UnsupportedVersion => "unsupported_version",
            ErrorClass::Overloaded => "overloaded",
            ErrorClass::NotFound => "not_found",
            ErrorClass::NotReady => "not_ready",
            ErrorClass::ShuttingDown => "shutting_down",
            ErrorClass::Internal => "internal",
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: &str) -> Option<ErrorClass> {
        ErrorClass::ALL.into_iter().find(|c| c.tag() == tag)
    }

    /// Whether a later retry of the same request could succeed.
    /// `overloaded` and `not_ready` are transient by construction;
    /// everything else reflects the request or the server's fate.
    pub fn retriable(self) -> bool {
        matches!(self, ErrorClass::Overloaded | ErrorClass::NotReady)
    }
}

/// Lifecycle state of a submitted sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepState {
    /// Accepted, waiting in the bounded job queue.
    Queued,
    /// Currently executing on the harness.
    Running,
    /// Finished; results are streamable.
    Done,
    /// Executed but failed server-side; see the status message.
    Failed,
}

impl SweepState {
    /// Canonical wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            SweepState::Queued => "queued",
            SweepState::Running => "running",
            SweepState::Done => "done",
            SweepState::Failed => "failed",
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: &str) -> Option<SweepState> {
        [
            SweepState::Queued,
            SweepState::Running,
            SweepState::Done,
            SweepState::Failed,
        ]
        .into_iter()
        .find(|s| s.tag() == tag)
    }
}

/// A client→server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a sweep.
    Submit {
        /// The sweep to run.
        sweep: SweepSpec,
        /// Original sweep positions of each job, for sharded submits;
        /// `None` means the identity mapping `0..jobs`. When present,
        /// must be exactly one index per job.
        indices: Option<Vec<u64>>,
    },
    /// Query a sweep's state.
    Status {
        /// Server-assigned sweep id.
        id: u64,
    },
    /// Stream a finished sweep's results.
    Results {
        /// Server-assigned sweep id.
        id: u64,
    },
    /// Stream a sweep's results progressively: record lines ship in
    /// index order as jobs complete, without waiting for the sweep.
    Stream {
        /// Server-assigned sweep id.
        id: u64,
    },
    /// Derive trace metrics for one job of a finished sweep. The server
    /// re-runs the (deterministic) job with a trace sink and folds the
    /// event stream; the sweep's cached stats are untouched.
    Trace {
        /// Server-assigned sweep id.
        id: u64,
        /// Job index within the sweep.
        index: u64,
    },
    /// Snapshot the metrics registry.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Drain the queue, then exit.
    Shutdown,
}

impl Request {
    /// The wire tag, also the per-request-type metrics label.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Submit { .. } => "submit",
            Request::Status { .. } => "status",
            Request::Results { .. } => "results",
            Request::Stream { .. } => "stream",
            Request::Trace { .. } => "trace",
            Request::Metrics => "metrics",
            Request::Ping => "ping",
            Request::Shutdown => "shutdown",
        }
    }

    /// Serializes the request as one frame (no trailing newline).
    pub fn encode(&self) -> String {
        let mut fields = vec![
            ("v".to_string(), Value::UInt(PROTOCOL_VERSION)),
            ("type".to_string(), Value::Str(self.kind().to_string())),
        ];
        match self {
            Request::Submit { sweep, indices } => {
                fields.push(("name".to_string(), Value::Str(sweep.name.clone())));
                fields.push((
                    "jobs".to_string(),
                    Value::Arr(
                        sweep
                            .jobs
                            .iter()
                            .map(|j| Value::Obj(encode_spec(j)))
                            .collect(),
                    ),
                ));
                if let Some(indices) = indices {
                    fields.push((
                        "indices".to_string(),
                        Value::Arr(indices.iter().map(|&i| Value::UInt(i)).collect()),
                    ));
                }
            }
            Request::Status { id } | Request::Results { id } | Request::Stream { id } => {
                fields.push(("id".to_string(), Value::UInt(*id)));
            }
            Request::Trace { id, index } => {
                fields.push(("id".to_string(), Value::UInt(*id)));
                fields.push(("index".to_string(), Value::UInt(*index)));
            }
            Request::Metrics | Request::Ping | Request::Shutdown => {}
        }
        Value::Obj(fields).encode()
    }

    /// Parses one request frame. The error pair is ready to ship back
    /// as an [`Response::Error`].
    pub fn decode(line: &str) -> Result<Request, (ErrorClass, String)> {
        let v = json::parse(line)
            .map_err(|e| (ErrorClass::Malformed, format!("bad frame: {e}")))?;
        let version = v.get("v").and_then(Value::as_u64);
        if version != Some(PROTOCOL_VERSION) {
            return Err((
                ErrorClass::UnsupportedVersion,
                format!(
                    "protocol version {} required, got {}",
                    PROTOCOL_VERSION,
                    version.map_or("none".to_string(), |n| n.to_string())
                ),
            ));
        }
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| (ErrorClass::Malformed, "missing request type".to_string()))?;
        let id = || {
            v.get("id")
                .and_then(Value::as_u64)
                .ok_or_else(|| (ErrorClass::Malformed, "missing sweep id".to_string()))
        };
        match kind {
            "submit" => {
                let name = v
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string();
                let jobs = v
                    .get("jobs")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| (ErrorClass::Malformed, "missing jobs array".to_string()))?;
                let jobs: Vec<JobSpec> = jobs
                    .iter()
                    .enumerate()
                    .map(|(i, j)| {
                        decode_spec(j).ok_or((
                            ErrorClass::Malformed,
                            format!("job {i} is not a valid job spec"),
                        ))
                    })
                    .collect::<Result<_, _>>()?;
                let indices = match v.get("indices") {
                    None => None,
                    Some(arr) => {
                        let arr = arr.as_arr().ok_or((
                            ErrorClass::Malformed,
                            "indices must be an array".to_string(),
                        ))?;
                        let indices: Vec<u64> = arr
                            .iter()
                            .map(|i| {
                                i.as_u64().ok_or((
                                    ErrorClass::Malformed,
                                    "indices must be unsigned integers".to_string(),
                                ))
                            })
                            .collect::<Result<_, _>>()?;
                        if indices.len() != jobs.len() {
                            return Err((
                                ErrorClass::Malformed,
                                format!(
                                    "indices count {} does not match job count {}",
                                    indices.len(),
                                    jobs.len()
                                ),
                            ));
                        }
                        Some(indices)
                    }
                };
                Ok(Request::Submit {
                    sweep: SweepSpec { name, jobs },
                    indices,
                })
            }
            "status" => Ok(Request::Status { id: id()? }),
            "results" => Ok(Request::Results { id: id()? }),
            "stream" => Ok(Request::Stream { id: id()? }),
            "trace" => Ok(Request::Trace {
                id: id()?,
                index: v.get("index").and_then(Value::as_u64).ok_or_else(|| {
                    (ErrorClass::Malformed, "missing job index".to_string())
                })?,
            }),
            "metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err((
                ErrorClass::Malformed,
                format!("unknown request type {other:?}"),
            )),
        }
    }
}

/// A sweep's status as reported by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusInfo {
    /// Server-assigned sweep id.
    pub id: u64,
    /// Lifecycle state.
    pub state: SweepState,
    /// Total jobs in the sweep.
    pub jobs: u64,
    /// Jobs executed this run (0 until done).
    pub executed: u64,
    /// Jobs served from the result cache (0 until done).
    pub cached: u64,
    /// Jobs that failed permanently (0 until done).
    pub failures: u64,
    /// Failure detail for [`SweepState::Failed`], else empty.
    pub message: String,
}

/// One deterministic per-job result, as carried by a result line.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Position of the job in its sweep.
    pub index: u64,
    /// Content-addressed cache key.
    pub key: String,
    /// The job that ran.
    pub spec: JobSpec,
    /// Full simulation statistics.
    pub stats: Stats,
}

/// A server→client frame (excluding streamed result lines, which are
/// produced by [`result_line`] and parsed by [`parse_result_line`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A sweep was accepted.
    Submitted {
        /// Server-assigned sweep id.
        id: u64,
        /// Jobs accepted.
        jobs: u64,
    },
    /// Status of a submitted sweep.
    Status(StatusInfo),
    /// Header preceding `count` result lines and one `end` frame.
    ResultsHeader {
        /// The sweep the results belong to.
        id: u64,
        /// Number of result lines that follow.
        count: u64,
    },
    /// Header preceding a progressive result stream: record lines
    /// follow as jobs complete (in index order), then one `end` frame
    /// whose `count` is the lines actually shipped (jobs that failed
    /// permanently produce no line, so `count ≤ jobs`).
    StreamHeader {
        /// The sweep the stream belongs to.
        id: u64,
        /// Total jobs in the sweep (upper bound on record lines).
        jobs: u64,
    },
    /// Terminator after the streamed result lines.
    End {
        /// The sweep the results belong to.
        id: u64,
        /// Result lines streamed.
        count: u64,
    },
    /// Derived trace metrics for one job (the
    /// `senss.trace.derived.v1` object produced by
    /// `senss_trace::DerivedMetrics::to_json`).
    Trace {
        /// The sweep the job belongs to.
        id: u64,
        /// Job index within the sweep.
        index: u64,
        /// The derived-metrics object.
        derived: Value,
    },
    /// A metrics snapshot (counter name → value object).
    Metrics(Value),
    /// Liveness reply.
    Pong,
    /// Shutdown acknowledged; the server is draining.
    ShuttingDown,
    /// Structured failure.
    Error {
        /// Failure class.
        class: ErrorClass,
        /// Whether retrying later could succeed.
        retriable: bool,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// A structured error with the class's canonical retriability.
    pub fn error(class: ErrorClass, message: impl Into<String>) -> Response {
        Response::Error {
            class,
            retriable: class.retriable(),
            message: message.into(),
        }
    }

    /// Serializes the response as one frame (no trailing newline).
    pub fn encode(&self) -> String {
        let obj = |kind: &str, rest: Vec<(String, Value)>| {
            let mut fields = vec![("type".to_string(), Value::Str(kind.to_string()))];
            fields.extend(rest);
            Value::Obj(fields).encode()
        };
        match self {
            Response::Submitted { id, jobs } => obj(
                "submitted",
                vec![
                    ("id".to_string(), Value::UInt(*id)),
                    ("jobs".to_string(), Value::UInt(*jobs)),
                ],
            ),
            Response::Status(s) => obj(
                "status",
                vec![
                    ("id".to_string(), Value::UInt(s.id)),
                    ("state".to_string(), Value::Str(s.state.tag().to_string())),
                    ("jobs".to_string(), Value::UInt(s.jobs)),
                    ("executed".to_string(), Value::UInt(s.executed)),
                    ("cached".to_string(), Value::UInt(s.cached)),
                    ("failures".to_string(), Value::UInt(s.failures)),
                    ("message".to_string(), Value::Str(s.message.clone())),
                ],
            ),
            Response::ResultsHeader { id, count } => obj(
                "results",
                vec![
                    ("id".to_string(), Value::UInt(*id)),
                    ("count".to_string(), Value::UInt(*count)),
                ],
            ),
            Response::StreamHeader { id, jobs } => obj(
                "stream",
                vec![
                    ("id".to_string(), Value::UInt(*id)),
                    ("jobs".to_string(), Value::UInt(*jobs)),
                ],
            ),
            Response::End { id, count } => obj(
                "end",
                vec![
                    ("id".to_string(), Value::UInt(*id)),
                    ("count".to_string(), Value::UInt(*count)),
                ],
            ),
            Response::Trace { id, index, derived } => obj(
                "trace",
                vec![
                    ("id".to_string(), Value::UInt(*id)),
                    ("index".to_string(), Value::UInt(*index)),
                    ("derived".to_string(), derived.clone()),
                ],
            ),
            Response::Metrics(snapshot) => {
                obj("metrics", vec![("counters".to_string(), snapshot.clone())])
            }
            Response::Pong => obj("pong", vec![]),
            Response::ShuttingDown => obj("shutting_down", vec![]),
            Response::Error {
                class,
                retriable,
                message,
            } => obj(
                "error",
                vec![
                    ("class".to_string(), Value::Str(class.tag().to_string())),
                    ("retriable".to_string(), Value::Bool(*retriable)),
                    ("message".to_string(), Value::Str(message.clone())),
                ],
            ),
        }
    }

    /// Parses one response frame.
    pub fn decode(line: &str) -> Result<Response, String> {
        let v = json::parse(line).map_err(|e| format!("bad response frame: {e}"))?;
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or("missing response type")?;
        let uint = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing field {key:?} in {kind} response"))
        };
        let string = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing field {key:?} in {kind} response"))
        };
        match kind {
            "submitted" => Ok(Response::Submitted {
                id: uint("id")?,
                jobs: uint("jobs")?,
            }),
            "status" => Ok(Response::Status(StatusInfo {
                id: uint("id")?,
                state: SweepState::from_tag(&string("state")?)
                    .ok_or("unknown sweep state")?,
                jobs: uint("jobs")?,
                executed: uint("executed")?,
                cached: uint("cached")?,
                failures: uint("failures")?,
                message: string("message")?,
            })),
            "results" => Ok(Response::ResultsHeader {
                id: uint("id")?,
                count: uint("count")?,
            }),
            "stream" => Ok(Response::StreamHeader {
                id: uint("id")?,
                jobs: uint("jobs")?,
            }),
            "end" => Ok(Response::End {
                id: uint("id")?,
                count: uint("count")?,
            }),
            "trace" => Ok(Response::Trace {
                id: uint("id")?,
                index: uint("index")?,
                derived: v.get("derived").cloned().ok_or("missing derived")?,
            }),
            "metrics" => Ok(Response::Metrics(
                v.get("counters").cloned().ok_or("missing counters")?,
            )),
            "pong" => Ok(Response::Pong),
            "shutting_down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error {
                class: ErrorClass::from_tag(&string("class")?).ok_or("unknown error class")?,
                retriable: matches!(v.get("retriable"), Some(Value::Bool(true))),
                message: string("message")?,
            }),
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

/// Renders one streamed result line for `rec`.
///
/// Deterministic by construction: only the job's identity and its
/// [`Stats`] appear, never wall time, worker id, attempt count or cache
/// provenance — so a sweep's result lines are byte-identical whether it
/// ran remotely, locally, single-threaded, or from a warm cache.
pub fn result_line(rec: &RunRecord) -> String {
    result_line_indexed(rec, rec.index as u64)
}

/// [`result_line`] with the `index` field overridden. A worker running
/// one shard of a larger sweep emits lines carrying the job's position
/// in the **original** sweep (from the submit frame's `indices`), so a
/// coordinator's ordered merge is byte-identical to an unsharded run.
pub fn result_line_indexed(rec: &RunRecord, index: u64) -> String {
    let mut fields = vec![
        ("type".to_string(), Value::Str("record".to_string())),
        ("index".to_string(), Value::UInt(index)),
        ("key".to_string(), Value::Str(rec.key.clone())),
    ];
    fields.extend(encode_spec(&rec.spec));
    fields.push(("stats".to_string(), encode_stats(&rec.stats)));
    Value::Obj(fields).encode()
}

/// Parses one streamed result line.
pub fn parse_result_line(line: &str) -> Result<JobResult, String> {
    let v = json::parse(line).map_err(|e| format!("bad result line: {e}"))?;
    if v.get("type").and_then(Value::as_str) != Some("record") {
        return Err("not a record line".to_string());
    }
    Ok(JobResult {
        index: v.get("index").and_then(Value::as_u64).ok_or("missing index")?,
        key: v
            .get("key")
            .and_then(Value::as_str)
            .ok_or("missing key")?
            .to_string(),
        spec: decode_spec(&v).ok_or("bad job spec in record line")?,
        stats: v
            .get("stats")
            .and_then(decode_stats)
            .ok_or("bad stats in record line")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use senss_harness::SecurityMode;
    use senss_workloads::Workload;

    fn sample_sweep() -> SweepSpec {
        let mut sweep = SweepSpec::new("wire-test");
        sweep.grid(
            &[Workload::Fft, Workload::Ocean],
            &[2],
            &[1 << 20],
            &[SecurityMode::Baseline, SecurityMode::senss()],
            500,
            7,
        );
        sweep
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit {
                sweep: sample_sweep(),
                indices: None,
            },
            Request::Submit {
                sweep: sample_sweep(),
                indices: Some((0..sample_sweep().jobs.len() as u64).map(|i| i * 3).collect()),
            },
            Request::Status { id: 3 },
            Request::Results { id: u64::MAX },
            Request::Stream { id: 12 },
            Request::Trace { id: 7, index: 2 },
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn submit_indices_must_match_job_count() {
        let sweep = sample_sweep();
        let encoded = Request::Submit {
            sweep: sweep.clone(),
            indices: Some((0..sweep.jobs.len() as u64 - 1).collect()),
        }
        .encode();
        let err = Request::decode(&encoded).unwrap_err();
        assert_eq!(err.0, ErrorClass::Malformed);
        assert!(err.1.contains("indices"), "{}", err.1);
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Submitted { id: 1, jobs: 4 },
            Response::Status(StatusInfo {
                id: 1,
                state: SweepState::Running,
                jobs: 4,
                executed: 0,
                cached: 0,
                failures: 0,
                message: String::new(),
            }),
            Response::ResultsHeader { id: 1, count: 4 },
            Response::StreamHeader { id: 1, jobs: 4 },
            Response::End { id: 1, count: 4 },
            Response::Trace {
                id: 1,
                index: 0,
                derived: Value::Obj(vec![(
                    "bus_busy_cycles".to_string(),
                    Value::UInt(42),
                )]),
            },
            Response::Metrics(Value::Obj(vec![(
                "requests_total".to_string(),
                Value::UInt(9),
            )])),
            Response::Pong,
            Response::ShuttingDown,
            Response::error(ErrorClass::Overloaded, "queue full (32 sweeps)"),
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()), Ok(resp));
        }
    }

    #[test]
    fn overloaded_is_retriable_on_the_wire() {
        match Response::error(ErrorClass::Overloaded, "busy") {
            Response::Error { retriable, .. } => assert!(retriable),
            _ => unreachable!(),
        }
        assert!(!ErrorClass::Malformed.retriable());
        assert!(ErrorClass::NotReady.retriable());
        assert!(!ErrorClass::ShuttingDown.retriable());
    }

    #[test]
    fn malformed_frames_are_classified() {
        for line in ["", "not json", "{}", "{\"v\":1}", "{\"v\":2,\"type\":\"ping\"}"] {
            let err = Request::decode(line).unwrap_err();
            assert!(
                matches!(
                    err.0,
                    ErrorClass::Malformed | ErrorClass::UnsupportedVersion
                ),
                "{line:?} → {err:?}"
            );
        }
        let err = Request::decode("{\"v\":1,\"type\":\"submit\",\"jobs\":[{}]}").unwrap_err();
        assert_eq!(err.0, ErrorClass::Malformed);
    }

    #[test]
    fn result_lines_round_trip_and_are_deterministic() {
        let spec = senss_harness::JobSpec::new(Workload::Lu, 2, 1 << 20).with_ops(300);
        let stats = Stats {
            total_cycles: 99,
            core_ops: vec![150, 150],
            ..Stats::default()
        };
        let mk = |wall, worker, cached| RunRecord {
            index: 5,
            spec,
            key: spec.cache_key(),
            stats: stats.clone(),
            wall_micros: wall,
            worker,
            attempts: 1,
            cached,
            trace_artifact: None,
        };
        // Nondeterministic execution metadata must not leak into the line.
        let a = result_line(&mk(10, Some(0), false));
        let b = result_line(&mk(9999, None, true));
        assert_eq!(a, b);
        let parsed = parse_result_line(&a).unwrap();
        assert_eq!(parsed.index, 5);
        assert_eq!(parsed.spec, spec);
        assert_eq!(parsed.stats, stats);
    }
}
