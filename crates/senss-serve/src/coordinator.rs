//! The cluster coordinator: shards sweeps across worker processes.
//!
//! Topology: one coordinator (the process running [`Server`] with a
//! [`ClusterConfig`]) supervises N worker processes ([`WorkerProc`]),
//! each an ordinary `senss-serve worker` speaking the NDJSON protocol
//! on loopback. A submitted sweep is split round-robin into N shards
//! ([`SweepSpec::shards`]); each shard is submitted to its worker with
//! the `indices` extension so every result line carries its position in
//! the *original* sweep, streamed back progressively, and merged in
//! index order. Determinism end to end: the merged JSONL is
//! byte-identical to a local [`Harness`](senss_harness::Harness) run of
//! the same sweep.
//!
//! Fault model: workers are stateless (their result cache is an
//! optimization, not state the coordinator depends on), so supervision
//! is kill-and-respawn. Any error talking to a worker — connect
//! failure, mid-stream EOF from a crash, a structured error frame —
//! retires that worker's process and retries the whole shard on a
//! fresh one, up to [`ClusterConfig::shard_retries`] times. Because
//! job results are deterministic, a retried shard reproduces the lost
//! lines exactly.
//!
//! [`Server`]: crate::Server

use crate::client::Client;
use crate::metrics::Metrics;
use crate::worker::WorkerProc;
use senss_harness::{json, SweepShard, SweepSpec};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Configuration of the worker cluster behind a coordinator.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker processes (= maximum shards per sweep).
    pub workers: usize,
    /// Program to spawn as a worker — normally the coordinator's own
    /// executable (`std::env::current_exe`); tests point it at
    /// `CARGO_BIN_EXE_senss-serve`.
    pub program: String,
    /// Extra arguments after `worker --addr 127.0.0.1:0`, e.g.
    /// `--hermetic` or `--quiet`.
    pub worker_args: Vec<String>,
    /// Retries per shard after the first attempt; each retry respawns
    /// the shard's worker.
    pub shard_retries: u32,
    /// Per-call I/O timeout talking to a worker. The result stream
    /// waits on job completions, so this bounds worker *stall*, not
    /// sweep duration: size it to the slowest single job.
    pub worker_timeout: Duration,
}

impl ClusterConfig {
    /// A cluster of `workers` processes spawned from `program`, with
    /// 2 retries per shard and a 60 s worker-stall timeout.
    pub fn new(workers: usize, program: impl Into<String>) -> ClusterConfig {
        ClusterConfig {
            workers: workers.max(1),
            program: program.into(),
            worker_args: Vec::new(),
            shard_retries: 2,
            worker_timeout: Duration::from_secs(60),
        }
    }

    /// Appends an argument passed to every worker process.
    pub fn with_worker_arg(mut self, arg: impl Into<String>) -> ClusterConfig {
        self.worker_args.push(arg.into());
        self
    }

    /// Sets the per-shard retry budget.
    pub fn with_shard_retries(mut self, retries: u32) -> ClusterConfig {
        self.shard_retries = retries;
        self
    }

    /// Sets the worker-stall timeout.
    pub fn with_worker_timeout(mut self, timeout: Duration) -> ClusterConfig {
        self.worker_timeout = timeout;
        self
    }
}

/// One worker slot. `generation` increments on every (re)spawn so a
/// shard thread that hit an error can tell whether the process it was
/// talking to has already been replaced by someone else.
struct Slot {
    proc_: Option<WorkerProc>,
    generation: u64,
    ever_spawned: bool,
}

/// Merged outcome of a sharded sweep, in original-sweep index order.
pub(crate) struct ClusterOutcome {
    /// One slot per job; `None` where the job failed on its worker.
    pub lines: Vec<Option<String>>,
    /// Jobs executed across all shards.
    pub executed: u64,
    /// Jobs served from worker caches.
    pub cached: u64,
    /// Jobs that failed permanently.
    pub failures: u64,
}

/// Supervisor for the worker fleet. Shared by the executor (which runs
/// sweeps through it) and fault-injection tests (which kill workers
/// through it); dropping the coordinator kills every worker.
pub struct Coordinator {
    cfg: ClusterConfig,
    metrics: Arc<Metrics>,
    slots: Vec<Mutex<Slot>>,
    quiet: bool,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("workers", &self.slots.len())
            .field("program", &self.cfg.program)
            .finish()
    }
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Coordinator {
    /// Spawns the full worker fleet eagerly (failing fast if the worker
    /// binary is unusable) and returns the supervisor.
    pub fn start(
        cfg: ClusterConfig,
        metrics: Arc<Metrics>,
        quiet: bool,
    ) -> std::io::Result<Coordinator> {
        let coordinator = Coordinator {
            slots: (0..cfg.workers)
                .map(|_| {
                    Mutex::new(Slot {
                        proc_: None,
                        generation: 0,
                        ever_spawned: false,
                    })
                })
                .collect(),
            cfg,
            metrics,
            quiet,
        };
        for slot in 0..coordinator.slots.len() {
            coordinator.checkout(slot)?;
        }
        Ok(coordinator)
    }

    fn log(&self, msg: std::fmt::Arguments<'_>) {
        if !self.quiet {
            eprintln!("senss-serve: {msg}");
        }
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Ensures slot `slot` has a live worker, spawning one if needed;
    /// returns its address and generation. The slot lock is released
    /// before any network I/O happens against the returned address.
    fn checkout(&self, slot: usize) -> std::io::Result<(String, u64)> {
        let mut s = lock_recover(&self.slots[slot]);
        if s.proc_.is_none() {
            let proc_ = WorkerProc::spawn(&self.cfg.program, &self.cfg.worker_args)?;
            s.generation += 1;
            if s.ever_spawned {
                self.metrics.workers_respawned.fetch_add(1, Ordering::Relaxed);
                if let Some(w) = self.metrics.worker(slot) {
                    w.respawns.fetch_add(1, Ordering::Relaxed);
                }
                self.log(format_args!(
                    "worker {slot} respawned at {} (generation {})",
                    proc_.addr(),
                    s.generation
                ));
            } else {
                self.log(format_args!("worker {slot} started at {}", proc_.addr()));
            }
            s.ever_spawned = true;
            s.proc_ = Some(proc_);
        }
        let addr = s.proc_.as_ref().expect("just ensured").addr().to_string();
        Ok((addr, s.generation))
    }

    /// Retires slot `slot`'s worker **if** it is still the generation
    /// the caller was talking to — a concurrent retire-and-respawn must
    /// not get its fresh worker killed for the old one's failure.
    fn retire(&self, slot: usize, generation: u64) {
        let mut s = lock_recover(&self.slots[slot]);
        if s.generation == generation {
            if let Some(mut p) = s.proc_.take() {
                p.kill();
            }
        }
    }

    /// Fault-injection hook: kills slot `slot`'s worker process
    /// outright (no generation check — this *is* the failure). The next
    /// shard touching the slot respawns it.
    pub fn kill_worker(&self, slot: usize) {
        let mut s = lock_recover(&self.slots[slot]);
        if let Some(mut p) = s.proc_.take() {
            self.log(format_args!("worker {slot} killed (fault injection)"));
            p.kill();
        }
    }

    /// Runs `sweep` sharded across the fleet. `orig[i]` is job `i`'s
    /// index in the original client-submitted sweep (identity for a
    /// direct submit); `on_line(i, line)` fires for each completed job
    /// as its result line arrives from a worker, feeding the
    /// coordinator's own progressive streams.
    ///
    /// Returns the merged outcome once every shard has completed, or an
    /// error if any shard exhausted its retry budget — partial results
    /// are never reported as success.
    pub(crate) fn run_sweep(
        &self,
        sweep: &SweepSpec,
        orig: &[u64],
        on_line: &(dyn Fn(usize, String) + Sync),
    ) -> std::io::Result<ClusterOutcome> {
        let shards = sweep.shards(self.slots.len());
        self.metrics
            .shards_dispatched
            .fetch_add(shards.len() as u64, Ordering::Relaxed);
        let outcomes: Vec<Result<ShardOutcome, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| scope.spawn(move || self.run_shard(shard, orig, on_line)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err("shard thread panicked".to_string()))
                })
                .collect()
        });
        let mut merged = ClusterOutcome {
            lines: vec![None; sweep.len()],
            executed: 0,
            cached: 0,
            failures: 0,
        };
        for (shard, outcome) in shards.iter().zip(outcomes) {
            match outcome {
                Ok(out) => {
                    self.metrics
                        .shards_completed
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(w) = self.metrics.worker(shard.shard) {
                        w.shards.fetch_add(1, Ordering::Relaxed);
                        w.jobs.fetch_add(out.lines.len() as u64, Ordering::Relaxed);
                    }
                    for (local, line) in out.lines {
                        merged.lines[local] = Some(line);
                    }
                    merged.executed += out.executed;
                    merged.cached += out.cached;
                    merged.failures += out.failures;
                }
                Err(message) => {
                    return Err(std::io::Error::other(format!(
                        "shard {} failed after {} attempt(s): {message}",
                        shard.shard,
                        self.cfg.shard_retries + 1
                    )))
                }
            }
        }
        Ok(merged)
    }

    /// Runs one shard with kill-and-respawn retry.
    fn run_shard(
        &self,
        shard: &SweepShard,
        orig: &[u64],
        on_line: &(dyn Fn(usize, String) + Sync),
    ) -> Result<ShardOutcome, String> {
        let mut last_err = String::from("no attempt made");
        for attempt in 0..=self.cfg.shard_retries {
            if attempt > 0 {
                self.metrics.shard_retries.fetch_add(1, Ordering::Relaxed);
                self.log(format_args!(
                    "shard {} retry {attempt}/{}",
                    shard.shard, self.cfg.shard_retries
                ));
            }
            let (addr, generation) = match self.checkout(shard.shard) {
                Ok(x) => x,
                Err(e) => {
                    last_err = format!("worker spawn failed: {e}");
                    continue;
                }
            };
            match self.shard_attempt(&addr, shard, orig, on_line) {
                Ok(out) => return Ok(out),
                Err(e) => {
                    last_err = e;
                    // Whatever went wrong, the worker is suspect; a
                    // fresh process is cheap and always safe.
                    self.retire(shard.shard, generation);
                }
            }
        }
        Err(last_err)
    }

    /// One attempt of one shard against one worker: submit with
    /// original indices, stream lines back as they complete, then read
    /// the final status for the executed/cached/failure accounting.
    fn shard_attempt(
        &self,
        addr: &str,
        shard: &SweepShard,
        orig: &[u64],
        on_line: &(dyn Fn(usize, String) + Sync),
    ) -> Result<ShardOutcome, String> {
        let client = Client::new(addr)
            .with_timeout(self.cfg.worker_timeout)
            .with_retry(0, Duration::from_millis(0));
        let indices: Vec<u64> = shard.indices.iter().map(|&i| orig[i]).collect();
        let (id, _) = client
            .submit_sharded(&shard.spec, &indices)
            .map_err(|e| format!("submit to {addr}: {e}"))?;
        // Original-sweep index value → position in the full sweep, for
        // routing streamed lines (which carry original indices) back to
        // their merge slot.
        let local_of: std::collections::HashMap<u64, usize> = shard
            .indices
            .iter()
            .enumerate()
            .map(|(k, &local)| (indices[k], local))
            .collect();
        let mut lines: Vec<(usize, String)> = Vec::with_capacity(shard.indices.len());
        let mut unroutable = 0usize;
        client
            .stream_with(id, |line| {
                let idx = json::parse(line)
                    .ok()
                    .and_then(|v| v.get("index").and_then(json::Value::as_u64));
                match idx.and_then(|i| local_of.get(&i).copied()) {
                    Some(local) => {
                        on_line(local, line.to_string());
                        lines.push((local, line.to_string()));
                    }
                    None => unroutable += 1,
                }
            })
            .map_err(|e| format!("stream from {addr}: {e}"))?;
        if unroutable > 0 {
            return Err(format!(
                "{unroutable} streamed line(s) carried indices outside the shard"
            ));
        }
        let info = client
            .status(id)
            .map_err(|e| format!("status from {addr}: {e}"))?;
        match info.state {
            crate::protocol::SweepState::Done => Ok(ShardOutcome {
                lines,
                executed: info.executed,
                cached: info.cached,
                failures: info.failures,
            }),
            state => Err(format!(
                "worker reported state {state:?} after its stream ended"
            )),
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        for slot in &self.slots {
            if let Some(mut p) = lock_recover(slot).proc_.take() {
                p.kill();
            }
        }
    }
}

/// One shard's merged contribution: `(full-sweep position, line)`.
struct ShardOutcome {
    lines: Vec<(usize, String)>,
    executed: u64,
    cached: u64,
    failures: u64,
}
