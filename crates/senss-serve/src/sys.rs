//! Minimal `poll(2)` binding — the one place the crate touches FFI.
//!
//! The workspace is dependency-free, so instead of pulling in `libc`
//! or `mio` this module declares the single syscall wrapper the event
//! loop needs. The `unsafe` surface is exactly one call: handing a
//! `#[repr(C)]` slice to `poll`, whose contract (the kernel writes
//! only `revents` within the passed length) is upheld by construction.
//! Everything else in the crate stays `#![deny(unsafe_code)]`-clean.
#![allow(unsafe_code)]

use std::ffi::{c_int, c_ulong};
use std::io;
use std::os::fd::RawFd;

/// There is data to read.
pub const POLLIN: i16 = 0x001;
/// Writing will not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The fd is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set, layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Kernel-reported events, valid after [`poll`] returns.
    pub revents: i16,
}

impl PollFd {
    /// A watch on `fd` for `events`, with `revents` cleared.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any of `mask`'s bits were reported.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Whether the kernel flagged the fd as errored, hung up or invalid.
    pub fn failed(&self) -> bool {
        self.ready(POLLERR | POLLHUP | POLLNVAL)
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Waits up to `timeout_ms` for readiness on `fds`, returning how many
/// entries have non-zero `revents`. A signal interruption (`EINTR`) is
/// reported as zero ready fds rather than an error — the event loop
/// just takes its next tick.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `fds` is a valid, exclusively-borrowed slice of
    // `#[repr(C)]` pollfd-layout structs, and the length passed is its
    // real length; the kernel writes only the `revents` fields.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_reports_readability_and_timeout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // Nothing pending: a zero-timeout poll returns no ready fds.
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        assert!(!fds[0].ready(POLLIN));

        // A connecting client makes the listener readable.
        let mut client = TcpStream::connect(addr).unwrap();
        assert_eq!(poll_fds(&mut fds, 1_000).unwrap(), 1);
        assert!(fds[0].ready(POLLIN));

        // And bytes in flight make the accepted socket readable.
        let (server_side, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(server_side.as_raw_fd(), POLLIN | POLLOUT)];
        assert_eq!(poll_fds(&mut fds, 1_000).unwrap(), 1);
        assert!(fds[0].ready(POLLIN));
        assert!(fds[0].ready(POLLOUT));
    }
}
