//! Worker-process plumbing for the cluster tier.
//!
//! A worker is just another `senss-serve` process run with the
//! `worker` subcommand: it binds an ephemeral loopback port, prints
//! the bound address as its first stdout line (the readiness
//! handshake), and then speaks the ordinary NDJSON protocol. The
//! coordinator spawns one per slot, talks to it with the plain
//! [`Client`](crate::Client), and kills/respawns it on any error —
//! workers hold no durable state beyond their result cache, so
//! replacing one is always safe.

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};

/// A supervised worker process: the child handle plus the address it
/// reported on startup. Dropping the handle kills the process — a
/// coordinator that goes away must not leak simulator processes.
#[derive(Debug)]
pub struct WorkerProc {
    child: Child,
    addr: String,
}

impl WorkerProc {
    /// Spawns `program worker --addr 127.0.0.1:0 <extra_args>` and
    /// waits for the readiness line carrying the bound address.
    ///
    /// Worker stderr is inherited (workers are started `--quiet` by
    /// default via `extra_args`, so a quiet cluster stays quiet);
    /// stdout is consumed by the handshake.
    pub fn spawn(program: &str, extra_args: &[String]) -> std::io::Result<WorkerProc> {
        let mut child = Command::new(program)
            .arg("worker")
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let addr = match read_ready_line(stdout) {
            Ok(addr) => addr,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
        };
        Ok(WorkerProc { child, addr })
    }

    /// The address the worker reported listening on.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Kills and reaps the process. Idempotent: a worker that already
    /// died is just reaped.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Reads the handshake line (`<ip>:<port>`) from a worker's stdout.
fn read_ready_line(stdout: impl Read) -> std::io::Result<String> {
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    let addr = line.trim();
    if addr.is_empty() || addr.parse::<std::net::SocketAddr>().is_err() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("worker did not report a bound address (got {addr:?})"),
        ));
    }
    Ok(addr.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_line_must_be_a_socket_address() {
        assert_eq!(
            read_ready_line("127.0.0.1:4765\n".as_bytes()).unwrap(),
            "127.0.0.1:4765"
        );
        assert!(read_ready_line("".as_bytes()).is_err());
        assert!(read_ready_line("oops\n".as_bytes()).is_err());
    }
}
