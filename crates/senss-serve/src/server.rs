//! The poll-based TCP server.
//!
//! Thread shape: one event-loop thread owns the listener and **every**
//! client connection through a `poll(2)` readiness set ([`crate::sys`])
//! — an idle connection costs one pollfd and two buffers, not a
//! thread, so thousands of idle clients are cheap. Beside it run one
//! executor thread draining a **bounded** sweep queue through the
//! [`Harness`] (or through a [`Coordinator`] sharding sweeps across
//! worker processes), and a small fixed pool of trace threads so
//! `trace` re-simulations never stall the event loop.
//!
//! Both bounds shed load instead of blocking: past `max_conns` a new
//! connection gets an `overloaded` frame and is closed, and a full
//! sweep queue rejects `submit` with the same retriable class — the
//! server's latency stays flat and clients are told to back off (see
//! `docs/serving.md`).
//!
//! Results stream instead of buffering: a `results` or `stream` reply
//! is pumped into the connection's write buffer a few lines at a time
//! under a high-water mark, and `stream` ships each record line as the
//! executor completes the job (in index order), so a slow client or a
//! huge sweep never balloons server memory.
//!
//! Degradation rules: a malformed frame produces an `error` reply and
//! the connection keeps being served; a frame over the size cap or an
//! idle/stalled-write timeout closes only that connection; per-job
//! panics are already isolated inside the harness. Nothing a client
//! sends can take the process down.
//!
//! Shutdown is drain-then-exit: after a `shutdown` frame (or
//! [`ServerHandle::shutdown`]) the server stops accepting work, the
//! executor finishes every queued sweep, open streams flush, and all
//! threads join.

use crate::coordinator::{ClusterConfig, Coordinator};
use crate::metrics::Metrics;
use crate::protocol::{ErrorClass, Request, Response, StatusInfo, SweepState};
use crate::sys::{self, PollFd};
use senss_harness::{Harness, HarnessConfig, JobSpec, RunRecord, SweepSpec};
use senss_sim::Stats;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A pluggable job runner, used by tests to make execution time and
/// failures deterministic. `None` in [`ServerConfig`] means the real
/// [`JobSpec::run`].
pub type JobRunner = Arc<dyn Fn(&JobSpec) -> Stats + Send + Sync>;

/// Maximum poll wait per event-loop tick. Executor completions and
/// trace results are picked up on the next tick, so this bounds the
/// extra latency of streamed lines without any wake-up plumbing.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Per-connection write-buffer high-water mark: response pumping stops
/// above it and resumes as the socket drains, so one slow client
/// buffers at most this much (plus one frame).
const WRITE_HIGH_WATER: usize = 256 * 1024;

/// Server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:4765` (`:0` picks a free port).
    pub addr: String,
    /// Bound on concurrently open client connections; beyond it new
    /// connections get an `overloaded` frame and are closed.
    pub max_conns: usize,
    /// Bound on queued (not yet running) sweeps; beyond it `submit`
    /// returns the retriable `overloaded` error.
    pub queue_capacity: usize,
    /// Idle timeout: a connection with no traffic and nothing pending
    /// for this long is closed.
    pub read_timeout: Duration,
    /// Write-stall timeout: a connection whose pending output makes no
    /// progress for this long is closed.
    pub write_timeout: Duration,
    /// Maximum request-frame size in bytes.
    pub max_frame_bytes: usize,
    /// Threads serving `trace` re-simulations (they are CPU-bound and
    /// must never run on the event loop).
    pub trace_workers: usize,
    /// Harness configuration for sweep execution.
    pub harness: HarnessConfig,
    /// Test hook: replaces [`JobSpec::run`].
    pub runner: Option<JobRunner>,
    /// Run as a coordinator: shard each sweep across this many worker
    /// processes instead of executing locally.
    pub cluster: Option<ClusterConfig>,
    /// Suppress stderr logging.
    pub quiet: bool,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("addr", &self.addr)
            .field("max_conns", &self.max_conns)
            .field("queue_capacity", &self.queue_capacity)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("max_frame_bytes", &self.max_frame_bytes)
            .field("trace_workers", &self.trace_workers)
            .field("harness", &self.harness)
            .field("runner", &self.runner.as_ref().map(|_| "<custom>"))
            .field("cluster", &self.cluster)
            .field("quiet", &self.quiet)
            .finish()
    }
}

impl ServerConfig {
    /// Production-ish defaults on `addr`, harness from the environment
    /// ([`HarnessConfig::from_env`]).
    pub fn new(addr: impl Into<String>) -> ServerConfig {
        ServerConfig {
            addr: addr.into(),
            max_conns: 4096,
            queue_capacity: 32,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_frame_bytes: 8 << 20,
            trace_workers: 2,
            harness: HarnessConfig::from_env(),
            runner: None,
            cluster: None,
            quiet: false,
        }
    }

    /// A loopback configuration for tests: ephemeral port, hermetic
    /// harness (no cache/records on disk), short timeouts, quiet.
    pub fn loopback() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            harness: HarnessConfig::hermetic().with_workers(2),
            quiet: true,
            ..ServerConfig::new("127.0.0.1:0")
        }
    }

    /// Sets the open-connection bound.
    pub fn with_max_conns(mut self, n: usize) -> ServerConfig {
        self.max_conns = n.max(1);
        self
    }

    /// Sets the sweep-queue bound.
    pub fn with_queue_capacity(mut self, n: usize) -> ServerConfig {
        self.queue_capacity = n;
        self
    }

    /// Sets the harness configuration.
    pub fn with_harness(mut self, harness: HarnessConfig) -> ServerConfig {
        self.harness = harness;
        self
    }

    /// Installs a custom job runner (tests).
    pub fn with_runner(mut self, runner: JobRunner) -> ServerConfig {
        self.runner = Some(runner);
        self
    }

    /// Runs as a coordinator over a worker cluster.
    pub fn with_cluster(mut self, cluster: ClusterConfig) -> ServerConfig {
        self.cluster = Some(cluster);
        self
    }
}

/// Per-job result lines as they become available: `None` until the job
/// completes (or forever, if it fails permanently). Indexed by the
/// job's position in the submitted sweep; the stored line carries the
/// *original* index when the submit frame supplied one.
type PartialLines = Arc<Mutex<Vec<Option<String>>>>;

enum EntryState {
    Queued {
        sweep: SweepSpec,
        /// Original-sweep index per job (`None` = identity), from the
        /// submit frame's `indices` extension.
        orig: Option<Vec<u64>>,
    },
    Running {
        partial: PartialLines,
    },
    Done {
        lines: Arc<Vec<Option<String>>>,
        executed: u64,
        cached: u64,
        failures: u64,
    },
    Failed {
        message: String,
    },
}

struct Entry {
    jobs: u64,
    state: EntryState,
}

#[derive(Default)]
struct JobTable {
    next_id: u64,
    entries: HashMap<u64, Entry>,
    queue: VecDeque<u64>,
}

/// Bound on retained trace checkpoints. Each entry holds an encoded
/// mid-run snapshot plus the trace-event prefix up to its cycle, so the
/// store is deliberately small; old entries are evicted FIFO.
const RETAINED_CHECKPOINTS: usize = 8;

/// A mid-run checkpoint retained for `trace` replay: the encoded
/// snapshot text and every trace event emitted before its cycle.
struct RetainedCheckpoint {
    snapshot: String,
    cycle: u64,
    prefix: Vec<senss_trace::TraceEvent>,
}

/// FIFO-bounded map from [`JobSpec::cache_key`] to a retained
/// checkpoint. Keyed by cache key (not sweep id / index) so identical
/// jobs across sweeps share one checkpoint.
#[derive(Default)]
struct CheckpointStore {
    order: VecDeque<String>,
    entries: HashMap<String, Arc<RetainedCheckpoint>>,
}

impl CheckpointStore {
    fn get(&self, key: &str) -> Option<Arc<RetainedCheckpoint>> {
        self.entries.get(key).cloned()
    }

    fn insert(&mut self, key: String, cp: RetainedCheckpoint) {
        if self.entries.insert(key.clone(), Arc::new(cp)).is_none() {
            self.order.push_back(key);
            while self.order.len() > RETAINED_CHECKPOINTS {
                if let Some(evicted) = self.order.pop_front() {
                    self.entries.remove(&evicted);
                }
            }
        }
    }
}

struct Shared {
    metrics: Arc<Metrics>,
    table: Mutex<JobTable>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    executor_done: AtomicBool,
    checkpoints: Mutex<CheckpointStore>,
    queue_capacity: usize,
    max_conns: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    max_frame_bytes: usize,
    quiet: bool,
}

impl Shared {
    fn from_config(cfg: &ServerConfig) -> Arc<Shared> {
        Arc::new(Shared {
            metrics: Arc::new(match &cfg.cluster {
                Some(cluster) => Metrics::with_workers(cluster.workers),
                None => Metrics::new(),
            }),
            table: Mutex::new(JobTable::default()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            executor_done: AtomicBool::new(false),
            checkpoints: Mutex::new(CheckpointStore::default()),
            queue_capacity: cfg.queue_capacity,
            max_conns: cfg.max_conns,
            read_timeout: cfg.read_timeout,
            write_timeout: cfg.write_timeout,
            max_frame_bytes: cfg.max_frame_bytes,
            quiet: cfg.quiet,
        })
    }

    fn log(&self, msg: std::fmt::Arguments<'_>) {
        if !self.quiet {
            eprintln!("senss-serve: {msg}");
        }
    }
}

/// Locks a mutex, recovering from poisoning. A thread that panicked
/// mid-update can at worst leave one sweep entry stale; every other
/// connection must keep being served, so poisoning is never allowed to
/// cascade into a process-wide denial of service.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Wake the executor so an empty queue drains immediately; the event
    // loop notices the flag on its next tick.
    shared.queue_cv.notify_all();
}

/// A running server: its bound address, live metrics, and join/shutdown
/// control. Dropping the handle without calling
/// [`shutdown`](ServerHandle::shutdown) or [`join`](ServerHandle::join)
/// detaches the threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    coordinator: Option<Arc<Coordinator>>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("threads", &self.threads.len())
            .field("cluster", &self.coordinator.is_some())
            .finish()
    }
}

/// Alias kept for readability at call sites: [`Server::start`] returns
/// the handle you keep.
pub type ServerHandle = Server;

impl Server {
    /// Binds `cfg.addr` and spawns the event-loop, executor and trace
    /// threads (plus worker processes in cluster mode). Returns as soon
    /// as the socket is listening.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Shared::from_config(&cfg);
        let coordinator = match &cfg.cluster {
            Some(cluster) => Some(Arc::new(Coordinator::start(
                cluster.clone(),
                Arc::clone(&shared.metrics),
                cfg.quiet,
            )?)),
            None => None,
        };

        let (trace_tx, trace_rx) = std::sync::mpsc::channel::<TraceTask>();
        let trace_rx = Arc::new(Mutex::new(trace_rx));
        let trace_done: Arc<Mutex<Vec<TraceOutcome>>> = Arc::new(Mutex::new(Vec::new()));

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            let trace_done = Arc::clone(&trace_done);
            threads.push(std::thread::spawn(move || {
                event_loop(listener, &shared, &trace_tx, &trace_done)
            }));
        }
        for _ in 0..cfg.trace_workers.max(1) {
            let shared = Arc::clone(&shared);
            let trace_rx = Arc::clone(&trace_rx);
            let trace_done = Arc::clone(&trace_done);
            threads.push(std::thread::spawn(move || {
                trace_worker(&shared, &trace_rx, &trace_done)
            }));
        }
        {
            let shared = Arc::clone(&shared);
            let harness = Harness::new(cfg.harness.clone());
            let runner = cfg.runner.clone();
            let coordinator = coordinator.clone();
            threads.push(std::thread::spawn(move || {
                executor_loop(&shared, &harness, runner.as_ref(), coordinator.as_deref())
            }));
        }
        Ok(Server {
            addr,
            shared,
            coordinator,
            threads,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// An owned handle on the metrics registry that outlives the
    /// server — lets callers inspect final counts after
    /// [`join`](Server::join)/[`shutdown`](Server::shutdown).
    pub fn metrics_handle(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The cluster coordinator, when running in cluster mode. Exposed
    /// so fault-injection tests can kill workers mid-sweep.
    pub fn coordinator(&self) -> Option<&Coordinator> {
        self.coordinator.as_deref()
    }

    /// Whether shutdown has been triggered (by a client frame or
    /// locally).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Triggers drain-then-exit shutdown and joins every thread.
    pub fn shutdown(self) {
        trigger_shutdown(&self.shared);
        self.join();
    }

    /// Joins every thread; returns once the server has fully exited
    /// (i.e. after shutdown was triggered by some client or by
    /// [`shutdown`](Server::shutdown)).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Frame extraction
// ---------------------------------------------------------------------------

/// Outcome of scanning the read buffer for one frame.
#[derive(Debug, PartialEq, Eq)]
enum Extracted {
    /// No complete frame yet; read more.
    Incomplete,
    /// The next frame's content exceeds the size cap. The stream is no
    /// longer in sync, so the connection must close after replying.
    TooLong,
    /// One frame, newline stripped.
    Frame(Vec<u8>),
}

/// Extracts the next newline-terminated frame from `rbuf`.
///
/// The cap applies to frame **content** (the newline is free): exactly
/// `max` content bytes are accepted, `max + 1` are rejected — even if
/// a newline arrives later, because an oversized frame already
/// desynchronized the stream.
fn extract_frame(rbuf: &mut Vec<u8>, max: usize) -> Extracted {
    match rbuf.iter().position(|&b| b == b'\n') {
        Some(pos) if pos > max => Extracted::TooLong,
        Some(pos) => {
            let mut frame: Vec<u8> = rbuf.drain(..=pos).collect();
            frame.pop();
            Extracted::Frame(frame)
        }
        None if rbuf.len() > max => Extracted::TooLong,
        None => Extracted::Incomplete,
    }
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

/// Cursor of an in-progress `results`/`stream` reply: record lines are
/// pumped into the write buffer in index order as they become
/// available, then the `end` trailer.
struct ResultStream {
    id: u64,
    /// Next job slot (position in the submitted sweep) to inspect.
    next: usize,
    /// Record lines shipped so far.
    sent: u64,
}

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written to the socket.
    wpos: usize,
    stream_state: Option<ResultStream>,
    /// A `trace` is in flight on the trace pool; further frames wait in
    /// `rbuf` so replies keep their order.
    trace_pending: bool,
    eof: bool,
    close_after_flush: bool,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            stream_state: None,
            trace_pending: false,
            eof: false,
            close_after_flush: false,
            last_activity: Instant::now(),
        })
    }

    fn pending_out(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    fn push_frame(&mut self, frame: &str) {
        self.wbuf.extend_from_slice(frame.as_bytes());
        self.wbuf.push(b'\n');
    }

    fn push_response(&mut self, shared: &Shared, response: &Response) {
        if let Response::Error { class, .. } = response {
            shared.metrics.record_error(*class);
        }
        self.push_frame(&response.encode());
    }

    /// Non-blocking read into `rbuf`. Returns false on a fatal error.
    fn try_read(&mut self, max_frame: usize) -> bool {
        let mut tmp = [0u8; 16 * 1024];
        loop {
            // One frame past the cap is enough to detect TooLong; stop
            // there so a spamming client cannot balloon the buffer.
            if self.rbuf.len() > max_frame {
                return true;
            }
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    self.eof = true;
                    return true;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&tmp[..n]);
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::BrokenPipe
                    ) =>
                {
                    self.eof = true;
                    return true;
                }
                Err(_) => return false,
            }
        }
    }

    /// Non-blocking write of pending output. Returns false on a fatal
    /// error.
    fn try_write(&mut self) -> bool {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.wpos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > 64 * 1024 {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        true
    }
}

struct TraceTask {
    token: u64,
    id: u64,
    index: u64,
    started: Instant,
}

struct TraceOutcome {
    token: u64,
    response: Response,
    started: Instant,
}

// ---------------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------------

fn event_loop(
    listener: TcpListener,
    shared: &Shared,
    trace_tx: &Sender<TraceTask>,
    trace_done: &Mutex<Vec<TraceOutcome>>,
) {
    if let Err(e) = listener.set_nonblocking(true) {
        shared.log(format_args!("cannot make listener non-blocking: {e}"));
        return;
    }
    let mut listener = Some(listener);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut tokens: Vec<u64> = Vec::new();
    // Set once the executor has drained during shutdown; pushed forward
    // while any connection still makes write progress, so large final
    // streams flush but a wedged client cannot hold the process open.
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let shutting = shared.shutdown.load(Ordering::SeqCst);
        if shutting && listener.is_some() {
            listener = None;
            shared.log(format_args!("shutdown requested; draining queue"));
        }

        fds.clear();
        tokens.clear();
        if let Some(l) = &listener {
            fds.push(PollFd::new(l.as_raw_fd(), sys::POLLIN));
            tokens.push(0);
        }
        for (&token, conn) in &conns {
            let mut events = 0i16;
            let room = !conn.eof
                && conn.rbuf.len() <= shared.max_frame_bytes
                && conn.pending_out() < WRITE_HIGH_WATER
                && !conn.close_after_flush;
            if room {
                events |= sys::POLLIN;
            }
            if conn.pending_out() > 0 {
                events |= sys::POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
            tokens.push(token);
        }

        if fds.is_empty() {
            if shutting && shared.executor_done.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(POLL_TICK);
        } else if let Err(e) = sys::poll_fds(&mut fds, POLL_TICK.as_millis() as i32) {
            shared.log(format_args!("poll failed: {e}"));
            std::thread::sleep(POLL_TICK);
        }

        let mut dead: Vec<u64> = Vec::new();
        for (fd, &token) in fds.iter().zip(&tokens) {
            if token == 0 {
                if fd.ready(sys::POLLIN) {
                    accept_ready(listener.as_ref(), &mut conns, &mut next_token, shared);
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if (fd.ready(sys::POLLIN) || fd.failed())
                && !conn.try_read(shared.max_frame_bytes)
            {
                dead.push(token);
                continue;
            }
            if fd.ready(sys::POLLOUT) && !conn.try_write() {
                dead.push(token);
            }
        }
        for token in dead.drain(..) {
            conns.remove(&token);
        }

        // Trace results finished since the last tick.
        for outcome in std::mem::take(&mut *lock_recover(trace_done)) {
            if let Some(conn) = conns.get_mut(&outcome.token) {
                conn.push_response(shared, &outcome.response);
                shared.metrics.latency.observe(outcome.started.elapsed());
                conn.trace_pending = false;
            }
        }

        // Parse + serve, pump streams, flush, and decide each
        // connection's fate.
        let now = Instant::now();
        let drained = shutting && shared.executor_done.load(Ordering::SeqCst);
        let mut progress = false;
        conns.retain(|&token, conn| {
            if !drained {
                process_frames(conn, token, shared, trace_tx);
            }
            pump_stream(conn, shared);
            let before = conn.pending_out();
            if !conn.try_write() {
                return false;
            }
            progress |= conn.pending_out() < before;
            if conn.close_after_flush && conn.pending_out() == 0 {
                return false;
            }
            let settled = conn.pending_out() == 0
                && conn.stream_state.is_none()
                && !conn.trace_pending;
            if conn.eof && conn.rbuf.is_empty() && settled {
                return false;
            }
            if drained && settled {
                return false;
            }
            if settled && now.duration_since(conn.last_activity) > shared.read_timeout {
                // Idle reclaim.
                return false;
            }
            if conn.pending_out() > 0
                && now.duration_since(conn.last_activity) > shared.write_timeout
            {
                // Stalled writer.
                return false;
            }
            true
        });
        shared
            .metrics
            .connections_open
            .store(conns.len() as u64, Ordering::Relaxed);

        if drained {
            if conns.is_empty() {
                break;
            }
            let deadline =
                *drain_deadline.get_or_insert_with(|| now + shared.write_timeout);
            if progress {
                drain_deadline = Some(now + shared.write_timeout);
            } else if now >= deadline {
                shared.log(format_args!(
                    "drain grace expired with {} connection(s) unflushed",
                    conns.len()
                ));
                break;
            }
        }
    }
    // Dropping `trace_tx`'s last clone (held by our caller's channel)
    // happens when this function returns; trace workers exit on the
    // closed channel.
}

fn accept_ready(
    listener: Option<&TcpListener>,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    shared: &Shared,
) {
    let Some(listener) = listener else { return };
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                shared
                    .metrics
                    .connections_total
                    .fetch_add(1, Ordering::Relaxed);
                if conns.len() >= shared.max_conns {
                    shared
                        .metrics
                        .connections_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    shared.metrics.record_error(ErrorClass::Overloaded);
                    reject_connection(stream, shared);
                    continue;
                }
                match Conn::new(stream) {
                    Ok(conn) => {
                        let token = *next_token;
                        *next_token += 1;
                        conns.insert(token, conn);
                    }
                    Err(e) => shared.log(format_args!("accepted socket unusable: {e}")),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                shared.log(format_args!("accept failed: {e}"));
                return;
            }
        }
    }
}

/// Sheds an over-capacity connection with a structured error so the
/// client knows to back off rather than seeing a bare RST. Best-effort
/// and non-blocking: the peer is being shed, not served.
fn reject_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nonblocking(true);
    let frame = Response::error(
        ErrorClass::Overloaded,
        format!(
            "connection limit reached ({} open); retry with backoff",
            shared.max_conns
        ),
    )
    .encode();
    let _ = (&stream).write_all(frame.as_bytes());
    let _ = (&stream).write_all(b"\n");
}

/// Parses and serves every complete frame in the connection's read
/// buffer, stopping at backpressure boundaries: a pending trace, an
/// active result stream, or a write buffer over the high-water mark.
fn process_frames(conn: &mut Conn, token: u64, shared: &Shared, trace_tx: &Sender<TraceTask>) {
    loop {
        if conn.trace_pending
            || conn.stream_state.is_some()
            || conn.close_after_flush
            || conn.pending_out() >= WRITE_HIGH_WATER
        {
            return;
        }
        let frame = match extract_frame(&mut conn.rbuf, shared.max_frame_bytes) {
            Extracted::Incomplete => {
                if conn.eof && !conn.rbuf.is_empty() {
                    // A final unterminated frame is still served, like
                    // any text tool tolerating a missing last newline.
                    std::mem::take(&mut conn.rbuf)
                } else {
                    return;
                }
            }
            Extracted::TooLong => {
                // The rest of the oversized frame is unread, so the
                // stream is no longer in sync: reply, then close.
                conn.push_response(
                    shared,
                    &Response::error(
                        ErrorClass::Malformed,
                        format!("frame exceeds {} bytes", shared.max_frame_bytes),
                    ),
                );
                conn.close_after_flush = true;
                return;
            }
            Extracted::Frame(f) => f,
        };
        let line = match String::from_utf8(frame) {
            Ok(s) => s,
            Err(_) => {
                conn.push_response(
                    shared,
                    &Response::error(ErrorClass::Malformed, "frame is not valid UTF-8"),
                );
                continue;
            }
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let started = Instant::now();
        let request = match Request::decode(line) {
            Ok(r) => r,
            Err((class, message)) => {
                conn.push_response(shared, &Response::error(class, message));
                continue;
            }
        };
        shared.metrics.record_request(request.kind());
        match request {
            Request::Submit { sweep, indices } => {
                let response = submit(sweep, indices, shared);
                conn.push_response(shared, &response);
            }
            Request::Status { id } => {
                let response = status(id, shared);
                conn.push_response(shared, &response);
            }
            Request::Results { id } => {
                match results_header(id, shared) {
                    Ok(header) => {
                        conn.push_frame(&header.encode());
                        conn.stream_state = Some(ResultStream { id, next: 0, sent: 0 });
                    }
                    Err(response) => conn.push_response(shared, &response),
                }
            }
            Request::Stream { id } => {
                match stream_header(id, shared) {
                    Ok(header) => {
                        conn.push_frame(&header.encode());
                        conn.stream_state = Some(ResultStream { id, next: 0, sent: 0 });
                    }
                    Err(response) => conn.push_response(shared, &response),
                }
            }
            Request::Trace { id, index } => {
                conn.trace_pending = true;
                if trace_tx
                    .send(TraceTask {
                        token,
                        id,
                        index,
                        started,
                    })
                    .is_err()
                {
                    conn.push_response(
                        shared,
                        &Response::error(ErrorClass::ShuttingDown, "trace pool is gone"),
                    );
                    conn.trace_pending = false;
                }
                // Latency is observed when the trace completes.
                continue;
            }
            Request::Metrics => {
                let snapshot = shared.metrics.snapshot();
                conn.push_frame(&Response::Metrics(snapshot).encode());
            }
            Request::Ping => conn.push_frame(&Response::Pong.encode()),
            Request::Shutdown => {
                conn.push_frame(&Response::ShuttingDown.encode());
                conn.close_after_flush = true;
                trigger_shutdown(shared);
            }
        }
        shared.metrics.latency.observe(started.elapsed());
    }
}

/// Moves available record lines (in index order) from the sweep entry
/// into the connection's write buffer, up to the high-water mark;
/// finishes with the `end` trailer once every slot has been inspected
/// on a completed sweep.
fn pump_stream(conn: &mut Conn, shared: &Shared) {
    let Some(mut st) = conn.stream_state.take() else {
        return;
    };
    let mut finished = false;
    loop {
        if conn.wbuf.len() - conn.wpos >= WRITE_HIGH_WATER {
            break;
        }
        // Pull the next batch of available lines under the table lock,
        // then release it before encoding into the write buffer.
        enum Step {
            Lines(Vec<Option<String>>),
            End(u64),
            Abort(Response),
            Wait,
        }
        let step = {
            let table = lock_recover(&shared.table);
            match table.entries.get(&st.id) {
                None => Step::Abort(Response::error(
                    ErrorClass::NotFound,
                    format!("sweep {} vanished mid-stream", st.id),
                )),
                Some(entry) => match &entry.state {
                    EntryState::Queued { .. } => Step::Wait,
                    EntryState::Running { partial } => {
                        let p = lock_recover(partial);
                        let batch: Vec<Option<String>> = p[st.next.min(p.len())..]
                            .iter()
                            .take_while(|l| l.is_some())
                            .take(64)
                            .cloned()
                            .collect();
                        if batch.is_empty() {
                            Step::Wait
                        } else {
                            Step::Lines(batch)
                        }
                    }
                    EntryState::Done { lines, .. } => {
                        if st.next >= lines.len() {
                            Step::End(st.sent)
                        } else {
                            let batch: Vec<Option<String>> =
                                lines[st.next..].iter().take(64).cloned().collect();
                            Step::Lines(batch)
                        }
                    }
                    EntryState::Failed { message } => Step::Abort(Response::error(
                        ErrorClass::Internal,
                        format!("sweep {} failed mid-stream: {message}", st.id),
                    )),
                },
            }
        };
        match step {
            Step::Wait => break,
            Step::Lines(batch) => {
                for line in batch {
                    st.next += 1;
                    if let Some(line) = line {
                        st.sent += 1;
                        conn.wbuf.extend_from_slice(line.as_bytes());
                        conn.wbuf.push(b'\n');
                    }
                }
            }
            Step::End(count) => {
                conn.push_frame(&Response::End { id: st.id, count }.encode());
                finished = true;
                break;
            }
            Step::Abort(response) => {
                conn.push_response(shared, &response);
                // The stream contract is broken; resynchronize by
                // closing once the error flushes.
                conn.close_after_flush = true;
                finished = true;
                break;
            }
        }
    }
    if !finished {
        conn.stream_state = Some(st);
    }
}

// ---------------------------------------------------------------------------
// Request handlers
// ---------------------------------------------------------------------------

fn submit(sweep: SweepSpec, orig: Option<Vec<u64>>, shared: &Shared) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::error(ErrorClass::ShuttingDown, "server is draining");
    }
    let jobs = sweep.len() as u64;
    let mut table = lock_recover(&shared.table);
    if table.queue.len() >= shared.queue_capacity {
        return Response::error(
            ErrorClass::Overloaded,
            format!(
                "sweep queue full ({} queued, capacity {}); retry with backoff",
                table.queue.len(),
                shared.queue_capacity
            ),
        );
    }
    let id = table.next_id;
    table.next_id += 1;
    table.entries.insert(
        id,
        Entry {
            jobs,
            state: EntryState::Queued { sweep, orig },
        },
    );
    table.queue.push_back(id);
    drop(table);
    shared.metrics.queue_pushed();
    shared
        .metrics
        .sweeps_submitted
        .fetch_add(1, Ordering::Relaxed);
    shared.queue_cv.notify_one();
    Response::Submitted { id, jobs }
}

fn status(id: u64, shared: &Shared) -> Response {
    let table = lock_recover(&shared.table);
    let Some(entry) = table.entries.get(&id) else {
        return Response::error(ErrorClass::NotFound, format!("no sweep with id {id}"));
    };
    let mut info = StatusInfo {
        id,
        state: SweepState::Queued,
        jobs: entry.jobs,
        executed: 0,
        cached: 0,
        failures: 0,
        message: String::new(),
    };
    match &entry.state {
        EntryState::Queued { .. } => {}
        EntryState::Running { .. } => info.state = SweepState::Running,
        EntryState::Done {
            executed,
            cached,
            failures,
            ..
        } => {
            info.state = SweepState::Done;
            info.executed = *executed;
            info.cached = *cached;
            info.failures = *failures;
        }
        EntryState::Failed { message } => {
            info.state = SweepState::Failed;
            info.message = message.clone();
        }
    }
    Response::Status(info)
}

/// Validates a `results` request; the reply header on success. Results
/// require a finished sweep, matching the one-shot semantics clients
/// rely on (`stream` is the progressive alternative).
fn results_header(id: u64, shared: &Shared) -> Result<Response, Response> {
    let table = lock_recover(&shared.table);
    match table.entries.get(&id) {
        None => Err(Response::error(
            ErrorClass::NotFound,
            format!("no sweep with id {id}"),
        )),
        Some(entry) => match &entry.state {
            EntryState::Queued { .. } | EntryState::Running { .. } => Err(Response::error(
                ErrorClass::NotReady,
                format!("sweep {id} has not finished; poll status"),
            )),
            EntryState::Failed { message } => Err(Response::error(
                ErrorClass::Internal,
                format!("sweep {id} failed: {message}"),
            )),
            EntryState::Done { lines, .. } => {
                let count = lines.iter().flatten().count() as u64;
                Ok(Response::ResultsHeader { id, count })
            }
        },
    }
}

/// Validates a `stream` request; the reply header on success. Streams
/// attach to a sweep in any live state and deliver lines as jobs
/// complete.
fn stream_header(id: u64, shared: &Shared) -> Result<Response, Response> {
    let table = lock_recover(&shared.table);
    match table.entries.get(&id) {
        None => Err(Response::error(
            ErrorClass::NotFound,
            format!("no sweep with id {id}"),
        )),
        Some(entry) => match &entry.state {
            EntryState::Failed { message } => Err(Response::error(
                ErrorClass::Internal,
                format!("sweep {id} failed: {message}"),
            )),
            _ => Ok(Response::StreamHeader {
                id,
                jobs: entry.jobs,
            }),
        },
    }
}

// ---------------------------------------------------------------------------
// Trace pool
// ---------------------------------------------------------------------------

fn trace_worker(
    shared: &Shared,
    rx: &Mutex<Receiver<TraceTask>>,
    done: &Mutex<Vec<TraceOutcome>>,
) {
    loop {
        let task = {
            let rx = lock_recover(rx);
            match rx.recv() {
                Ok(t) => t,
                Err(_) => return,
            }
        };
        let response = trace(task.id, task.index, shared);
        lock_recover(done).push(TraceOutcome {
            token: task.token,
            response,
            started: task.started,
        });
    }
}

/// Bus-utilization bucket width used for served derived metrics: wide
/// enough to keep the timeline array small for long runs, fine enough
/// to show phase behaviour.
const TRACE_BUCKET_CYCLES: u64 = 1 << 14;

/// Serves a `trace` request: re-runs one job of a finished sweep with a
/// ring sink and folds the event stream into derived metrics.
///
/// Jobs are deterministic, so the re-run reproduces exactly the
/// execution whose stats the sweep already returned; the stored result
/// lines are untouched. The first trace of a job runs cold from cycle 0
/// and retains a mid-run checkpoint (snapshot + event prefix) in a
/// small FIFO store; repeat traces of the same job restore the
/// checkpoint and replay only the second half. Determinism makes the
/// two paths indistinguishable on the wire — prefix events chained with
/// the restored run's tail fold to byte-identical derived metrics. The
/// re-run happens on a trace-pool thread (never the event loop), under
/// the same panic isolation the harness gives its workers.
fn trace(id: u64, index: u64, shared: &Shared) -> Response {
    let line = {
        let table = lock_recover(&shared.table);
        match table.entries.get(&id) {
            None => {
                return Response::error(ErrorClass::NotFound, format!("no sweep with id {id}"))
            }
            Some(entry) => match &entry.state {
                EntryState::Queued { .. } | EntryState::Running { .. } => {
                    return Response::error(
                        ErrorClass::NotReady,
                        format!("sweep {id} has not finished; poll status"),
                    )
                }
                EntryState::Failed { message } => {
                    return Response::error(
                        ErrorClass::Internal,
                        format!("sweep {id} failed: {message}"),
                    )
                }
                EntryState::Done { lines, .. } => match lines.get(index as usize) {
                    None => {
                        return Response::error(
                            ErrorClass::NotFound,
                            format!("sweep {id} has {} job(s); no index {index}", lines.len()),
                        )
                    }
                    Some(None) => {
                        return Response::error(
                            ErrorClass::NotFound,
                            format!("job {index} of sweep {id} failed; nothing to trace"),
                        )
                    }
                    Some(Some(line)) => line.clone(),
                },
            },
        }
    };
    let (spec, total_cycles) = match crate::protocol::parse_result_line(&line) {
        Ok(result) => (result.spec, result.stats.total_cycles),
        Err(e) => {
            return Response::error(
                ErrorClass::Internal,
                format!("stored result line for job {index} is unreadable: {e}"),
            )
        }
    };
    let key = spec.cache_key();
    let retained = lock_recover(&shared.checkpoints).get(&key);
    let derived = std::panic::catch_unwind(move || {
        use senss_trace::{fold, RingSink, TraceEvent};
        // Warm path: restore the retained mid-run checkpoint and
        // simulate only the tail; the saved prefix supplies the events
        // before the checkpoint cycle.
        if let Some(cp) = retained {
            if let Ok(snap) = senss_snapshot::Snapshot::decode(&cp.snapshot) {
                let mut sys = snap.restore_with_sink(spec.build_extension(), RingSink::new());
                sys.finish();
                let tail = sys.into_sink();
                if tail.dropped() == 0 {
                    let events = cp.prefix.iter().chain(tail.events());
                    let json = fold(events, TRACE_BUCKET_CYCLES).to_json();
                    return (json, Some(cp.cycle), None);
                }
            }
            // Undecodable or overflowing checkpoint: fall through and
            // re-run cold (and re-retain a fresh checkpoint).
        }
        // Cold path: full re-run; retain a midpoint checkpoint for the
        // next trace of this job, but only if the ring held every
        // event — a clipped prefix would make warm replays diverge
        // from this response.
        let mid = total_cycles / 2;
        let mut sys = spec.build_system_with_sink(RingSink::new());
        let mut capture = None;
        if mid > 0 {
            sys.run_until(mid);
            if sys.sink().dropped() == 0 {
                capture = Some(RetainedCheckpoint {
                    snapshot: senss_snapshot::Snapshot::capture(&sys, mid).encode(),
                    cycle: mid,
                    prefix: sys.sink().events().copied().collect::<Vec<TraceEvent>>(),
                });
            }
        }
        sys.finish();
        let sink = sys.into_sink();
        if sink.dropped() > 0 {
            capture = None;
        }
        let json = fold(sink.events(), TRACE_BUCKET_CYCLES).to_json();
        (json, None, capture)
    });
    match derived {
        Ok((json_text, warm_cycle, capture)) => {
            if let Some(cycle) = warm_cycle {
                shared
                    .metrics
                    .trace_checkpoint_hits
                    .fetch_add(1, Ordering::Relaxed);
                shared.log(format_args!(
                    "trace {id}/{index}: replayed from retained checkpoint at cycle {cycle}"
                ));
            }
            if let Some(cp) = capture {
                lock_recover(&shared.checkpoints).insert(key, cp);
            }
            match senss_harness::json::parse(&json_text) {
                Ok(derived) => Response::Trace { id, index, derived },
                Err(e) => Response::error(
                    ErrorClass::Internal,
                    format!("derived metrics did not encode cleanly: {e}"),
                ),
            }
        }
        Err(_) => Response::error(
            ErrorClass::Internal,
            format!("traced re-run of job {index} panicked"),
        ),
    }
}

// ---------------------------------------------------------------------------
// The executor
// ---------------------------------------------------------------------------

fn executor_loop(
    shared: &Shared,
    harness: &Harness,
    runner: Option<&JobRunner>,
    coordinator: Option<&Coordinator>,
) {
    loop {
        let (id, sweep, orig, partial) = {
            let mut table = lock_recover(&shared.table);
            loop {
                if let Some(id) = table.queue.pop_front() {
                    // A table recovered from lock poisoning can hold a
                    // queue id whose entry was lost or left in an odd
                    // state mid-update; skip it instead of killing the
                    // executor (clients see `not_found` / stale status).
                    // The state is only replaced once it is known to be
                    // Queued — replacing first would wipe a finished
                    // entry's results and strand it in Running.
                    match table.entries.get_mut(&id) {
                        Some(entry) if matches!(entry.state, EntryState::Queued { .. }) => {
                            let partial: PartialLines =
                                Arc::new(Mutex::new(vec![None; entry.jobs as usize]));
                            let state = std::mem::replace(
                                &mut entry.state,
                                EntryState::Running {
                                    partial: Arc::clone(&partial),
                                },
                            );
                            let EntryState::Queued { sweep, orig } = state else {
                                unreachable!("state was just matched as Queued");
                            };
                            break (id, sweep, orig, partial);
                        }
                        Some(_) => shared.log(format_args!(
                            "sweep {id} was queued but not in Queued state; skipping"
                        )),
                        None => shared.log(format_args!(
                            "queued sweep {id} has no table entry; skipping"
                        )),
                    }
                    continue;
                }
                // Drain-then-exit: leave only once the queue is empty.
                if shared.shutdown.load(Ordering::SeqCst) {
                    shared.executor_done.store(true, Ordering::SeqCst);
                    return;
                }
                table = shared
                    .queue_cv
                    .wait(table)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        shared.metrics.queue_popped();
        // Original-sweep index of each job: identity unless the submit
        // carried the sharding extension.
        let orig_index = move |i: usize| -> u64 { orig.as_ref().map_or(i as u64, |v| v[i]) };
        let outcome = run_sweep(harness, runner, coordinator, &sweep, &orig_index, &partial);
        let mut table = lock_recover(&shared.table);
        let Some(entry) = table.entries.get_mut(&id) else {
            shared.log(format_args!(
                "sweep {id} vanished from the table; dropping its result"
            ));
            continue;
        };
        match outcome {
            Ok(done) => {
                let m = &shared.metrics;
                m.jobs_executed.fetch_add(done.executed, Ordering::Relaxed);
                m.jobs_cached.fetch_add(done.cached, Ordering::Relaxed);
                m.jobs_failed.fetch_add(done.failures, Ordering::Relaxed);
                m.jobs_forked.fetch_add(done.forked, Ordering::Relaxed);
                m.cache_lines_skipped
                    .fetch_add(done.cache_skipped, Ordering::Relaxed);
                m.sweeps_completed.fetch_add(1, Ordering::Relaxed);
                entry.state = EntryState::Done {
                    lines: done.lines,
                    executed: done.executed,
                    cached: done.cached,
                    failures: done.failures,
                };
            }
            Err(e) => {
                shared.metrics.sweeps_failed.fetch_add(1, Ordering::Relaxed);
                entry.state = EntryState::Failed {
                    message: e.to_string(),
                };
            }
        }
    }
}

struct SweepDone {
    lines: Arc<Vec<Option<String>>>,
    executed: u64,
    cached: u64,
    failures: u64,
    forked: u64,
    cache_skipped: u64,
}

/// Executes one sweep — locally through the harness, or sharded across
/// the cluster — filling `partial` with encoded result lines as jobs
/// complete so attached streams ship them immediately.
fn run_sweep(
    harness: &Harness,
    runner: Option<&JobRunner>,
    coordinator: Option<&Coordinator>,
    sweep: &SweepSpec,
    orig_index: &(dyn Fn(usize) -> u64 + Sync),
    partial: &PartialLines,
) -> std::io::Result<SweepDone> {
    if let Some(coordinator) = coordinator {
        let orig: Vec<u64> = (0..sweep.len()).map(orig_index).collect();
        let on_line = |local: usize, line: String| {
            lock_recover(partial)[local] = Some(line);
        };
        let outcome = coordinator.run_sweep(sweep, &orig, &on_line)?;
        return Ok(SweepDone {
            lines: Arc::new(outcome.lines),
            executed: outcome.executed,
            cached: outcome.cached,
            failures: outcome.failures,
            forked: 0,
            cache_skipped: 0,
        });
    }
    let observe = |rec: &RunRecord| {
        let line = crate::protocol::result_line_indexed(rec, orig_index(rec.index));
        lock_recover(partial)[rec.index] = Some(line);
    };
    let result = match runner {
        Some(r) => harness.run_with_observed(sweep, |j| r(j), observe),
        None => harness.run_observed(sweep, observe),
    }?;
    // The observer has filled every successful slot; snapshot it as the
    // final line set so `results` serves exactly the streamed bytes.
    let lines = Arc::new(lock_recover(partial).clone());
    Ok(SweepDone {
        lines,
        executed: result.executed as u64,
        cached: result.cached as u64,
        failures: result.failures.len() as u64,
        forked: result.forked as u64,
        cache_skipped: result.cache_skipped as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::result_line;
    use senss_harness::SecurityMode;
    use senss_workloads::Workload;

    #[test]
    fn frame_extraction_pins_the_size_cap_boundaries() {
        const MAX: usize = 8;
        // Exactly `max` content bytes, newline-terminated: accepted.
        let mut buf = b"12345678\n".to_vec();
        assert_eq!(
            extract_frame(&mut buf, MAX),
            Extracted::Frame(b"12345678".to_vec())
        );
        assert!(buf.is_empty());
        // One content byte over, newline present: rejected — the
        // newline never rescues an oversized frame.
        let mut buf = b"123456789\n".to_vec();
        assert_eq!(extract_frame(&mut buf, MAX), Extracted::TooLong);
        // Exactly `max` bytes, no newline yet: wait for more input.
        let mut buf = b"12345678".to_vec();
        assert_eq!(extract_frame(&mut buf, MAX), Extracted::Incomplete);
        assert_eq!(buf, b"12345678");
        // One over without a newline: already rejectable.
        let mut buf = b"123456789".to_vec();
        assert_eq!(extract_frame(&mut buf, MAX), Extracted::TooLong);
        // Empty frames and back-to-back frames drain in order.
        let mut buf = b"\nab\ncd".to_vec();
        assert_eq!(extract_frame(&mut buf, MAX), Extracted::Frame(Vec::new()));
        assert_eq!(extract_frame(&mut buf, MAX), Extracted::Frame(b"ab".to_vec()));
        assert_eq!(extract_frame(&mut buf, MAX), Extracted::Incomplete);
        assert_eq!(buf, b"cd");
    }

    /// Regression test: a queue id whose entry is already finished must
    /// be skipped WITHOUT touching its state. The old executor replaced
    /// the state with `Running` before inspecting it, wiping the result
    /// lines of a `Done` entry and stranding it un-streamable.
    #[test]
    fn executor_skips_stale_queue_ids_without_clobbering_done_entries() {
        let cfg = ServerConfig::loopback();
        let shared = Shared::from_config(&cfg);
        let spec = JobSpec::new(Workload::Fft, 2, 1 << 20)
            .with_ops(200)
            .with_mode(SecurityMode::senss());
        let rec = RunRecord {
            index: 0,
            spec,
            key: spec.cache_key(),
            stats: Stats {
                total_cycles: 42,
                ..Stats::default()
            },
            wall_micros: 1,
            worker: Some(0),
            attempts: 1,
            cached: false,
            trace_artifact: None,
        };
        let line = result_line(&rec);
        {
            let mut table = lock_recover(&shared.table);
            table.entries.insert(
                7,
                Entry {
                    jobs: 1,
                    state: EntryState::Done {
                        lines: Arc::new(vec![Some(line.clone())]),
                        executed: 1,
                        cached: 0,
                        failures: 0,
                    },
                },
            );
            // The corruption scenario: the finished sweep's id is
            // (wrongly) back on the queue.
            table.queue.push_back(7);
        }
        shared.shutdown.store(true, Ordering::SeqCst);
        let harness = Harness::new(HarnessConfig::hermetic());
        executor_loop(&shared, &harness, None, None);

        let table = lock_recover(&shared.table);
        match &table.entries.get(&7).unwrap().state {
            EntryState::Done { lines, executed, .. } => {
                assert_eq!(lines.as_ref(), &vec![Some(line)]);
                assert_eq!(*executed, 1);
            }
            _ => panic!("stale queue id must not clobber the Done entry"),
        }
    }
}
