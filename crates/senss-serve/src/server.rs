//! The multi-threaded TCP server.
//!
//! Thread shape: one accept thread, a fixed pool of connection-handler
//! threads fed by a **bounded** pending-connection queue, and one
//! executor thread that drains a **bounded** sweep queue through the
//! [`Harness`]. Both bounds shed load instead of blocking: a full
//! pending-connection queue turns the connection away with an
//! `overloaded` error frame, and a full sweep queue rejects `submit`
//! with the same retriable class — the server's latency stays flat and
//! clients are told to back off (see `docs/serving.md`).
//!
//! Degradation rules: a malformed frame produces an `error` reply and
//! the connection keeps being served; a frame over the size cap or an
//! idle/read-timeout closes only that connection; per-job panics are
//! already isolated inside the harness. Nothing a client sends can
//! take the process down.
//!
//! Shutdown is drain-then-exit: after a `shutdown` frame (or
//! [`ServerHandle::shutdown`]) the server stops accepting work, the
//! executor finishes every queued sweep, and all threads join.

use crate::metrics::Metrics;
use crate::protocol::{ErrorClass, Request, Response, StatusInfo, SweepState};
use senss_harness::{Harness, HarnessConfig, JobSpec, SweepSpec};
use senss_sim::Stats;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A pluggable job runner, used by tests to make execution time and
/// failures deterministic. `None` in [`ServerConfig`] means the real
/// [`JobSpec::run`].
pub type JobRunner = Arc<dyn Fn(&JobSpec) -> Stats + Send + Sync>;

/// Server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:4765` (`:0` picks a free port).
    pub addr: String,
    /// Connection-handler thread count.
    pub conn_workers: usize,
    /// Bound on accepted-but-unhandled connections; beyond it new
    /// connections get an `overloaded` frame and are closed.
    pub pending_conns: usize,
    /// Bound on queued (not yet running) sweeps; beyond it `submit`
    /// returns the retriable `overloaded` error.
    pub queue_capacity: usize,
    /// Per-connection read timeout (idle connections are closed).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Maximum request-frame size in bytes.
    pub max_frame_bytes: usize,
    /// Harness configuration for sweep execution.
    pub harness: HarnessConfig,
    /// Test hook: replaces [`JobSpec::run`].
    pub runner: Option<JobRunner>,
    /// Suppress stderr logging.
    pub quiet: bool,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("addr", &self.addr)
            .field("conn_workers", &self.conn_workers)
            .field("pending_conns", &self.pending_conns)
            .field("queue_capacity", &self.queue_capacity)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("max_frame_bytes", &self.max_frame_bytes)
            .field("harness", &self.harness)
            .field("runner", &self.runner.as_ref().map(|_| "<custom>"))
            .field("quiet", &self.quiet)
            .finish()
    }
}

impl ServerConfig {
    /// Production-ish defaults on `addr`, harness from the environment
    /// ([`HarnessConfig::from_env`]).
    pub fn new(addr: impl Into<String>) -> ServerConfig {
        ServerConfig {
            addr: addr.into(),
            conn_workers: 8,
            pending_conns: 64,
            queue_capacity: 32,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_frame_bytes: 8 << 20,
            harness: HarnessConfig::from_env(),
            runner: None,
            quiet: false,
        }
    }

    /// A loopback configuration for tests: ephemeral port, hermetic
    /// harness (no cache/records on disk), short timeouts, quiet.
    pub fn loopback() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            harness: HarnessConfig::hermetic().with_workers(2),
            quiet: true,
            ..ServerConfig::new("127.0.0.1:0")
        }
    }

    /// Sets the connection-handler thread count.
    pub fn with_conn_workers(mut self, n: usize) -> ServerConfig {
        self.conn_workers = n.max(1);
        self
    }

    /// Sets the sweep-queue bound.
    pub fn with_queue_capacity(mut self, n: usize) -> ServerConfig {
        self.queue_capacity = n;
        self
    }

    /// Sets the harness configuration.
    pub fn with_harness(mut self, harness: HarnessConfig) -> ServerConfig {
        self.harness = harness;
        self
    }

    /// Installs a custom job runner (tests).
    pub fn with_runner(mut self, runner: JobRunner) -> ServerConfig {
        self.runner = Some(runner);
        self
    }
}

enum EntryState {
    Queued(SweepSpec),
    Running,
    Done {
        lines: Arc<Vec<String>>,
        executed: u64,
        cached: u64,
        failures: u64,
    },
    Failed {
        message: String,
    },
}

struct Entry {
    jobs: u64,
    state: EntryState,
}

#[derive(Default)]
struct JobTable {
    next_id: u64,
    entries: HashMap<u64, Entry>,
    queue: VecDeque<u64>,
}

/// Bound on retained trace checkpoints. Each entry holds an encoded
/// mid-run snapshot plus the trace-event prefix up to its cycle, so the
/// store is deliberately small; old entries are evicted FIFO.
const RETAINED_CHECKPOINTS: usize = 8;

/// A mid-run checkpoint retained for `trace` replay: the encoded
/// snapshot text and every trace event emitted before its cycle.
struct RetainedCheckpoint {
    snapshot: String,
    cycle: u64,
    prefix: Vec<senss_trace::TraceEvent>,
}

/// FIFO-bounded map from [`JobSpec::cache_key`] to a retained
/// checkpoint. Keyed by cache key (not sweep id / index) so identical
/// jobs across sweeps share one checkpoint.
#[derive(Default)]
struct CheckpointStore {
    order: VecDeque<String>,
    entries: HashMap<String, Arc<RetainedCheckpoint>>,
}

impl CheckpointStore {
    fn get(&self, key: &str) -> Option<Arc<RetainedCheckpoint>> {
        self.entries.get(key).cloned()
    }

    fn insert(&mut self, key: String, cp: RetainedCheckpoint) {
        if self.entries.insert(key.clone(), Arc::new(cp)).is_none() {
            self.order.push_back(key);
            while self.order.len() > RETAINED_CHECKPOINTS {
                if let Some(evicted) = self.order.pop_front() {
                    self.entries.remove(&evicted);
                }
            }
        }
    }
}

struct Shared {
    metrics: Arc<Metrics>,
    table: Mutex<JobTable>,
    queue_cv: Condvar,
    conns: Mutex<VecDeque<TcpStream>>,
    conns_cv: Condvar,
    shutdown: AtomicBool,
    checkpoints: Mutex<CheckpointStore>,
    queue_capacity: usize,
    pending_conns: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    max_frame_bytes: usize,
    quiet: bool,
}

impl Shared {
    fn log(&self, msg: std::fmt::Arguments<'_>) {
        if !self.quiet {
            eprintln!("senss-serve: {msg}");
        }
    }
}

/// Locks a mutex, recovering from poisoning. A handler thread that
/// panicked mid-update can at worst leave one sweep entry stale; every
/// other connection must keep being served, so poisoning is never
/// allowed to cascade into a process-wide denial of service.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running server: its bound address, live metrics, and join/shutdown
/// control. Dropping the handle without calling
/// [`shutdown`](ServerHandle::shutdown) or [`join`](ServerHandle::join)
/// detaches the threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("threads", &self.threads.len())
            .finish()
    }
}

/// Alias kept for readability at call sites: [`Server::start`] returns
/// the handle you keep.
pub type ServerHandle = Server;

impl Server {
    /// Binds `cfg.addr` and spawns the accept, connection and executor
    /// threads. Returns as soon as the socket is listening.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            metrics: Arc::new(Metrics::new()),
            table: Mutex::new(JobTable::default()),
            queue_cv: Condvar::new(),
            conns: Mutex::new(VecDeque::new()),
            conns_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            checkpoints: Mutex::new(CheckpointStore::default()),
            queue_capacity: cfg.queue_capacity,
            pending_conns: cfg.pending_conns,
            read_timeout: cfg.read_timeout,
            write_timeout: cfg.write_timeout,
            max_frame_bytes: cfg.max_frame_bytes,
            quiet: cfg.quiet,
        });

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(listener, &shared)));
        }
        for _ in 0..cfg.conn_workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || conn_worker(&shared)));
        }
        {
            let shared = Arc::clone(&shared);
            let harness = Harness::new(cfg.harness.clone());
            let runner = cfg.runner.clone();
            threads.push(std::thread::spawn(move || {
                executor_loop(&shared, &harness, runner.as_ref())
            }));
        }
        Ok(Server {
            addr,
            shared,
            threads,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// An owned handle on the metrics registry that outlives the
    /// server — lets callers inspect final counts after
    /// [`join`](Server::join)/[`shutdown`](Server::shutdown).
    pub fn metrics_handle(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Whether shutdown has been triggered (by a client frame or
    /// locally).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Triggers drain-then-exit shutdown and joins every thread.
    pub fn shutdown(self) {
        trigger_shutdown(&self.shared, self.addr);
        self.join();
    }

    /// Joins every thread; returns once the server has fully exited
    /// (i.e. after shutdown was triggered by some client or by
    /// [`shutdown`](Server::shutdown)).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn trigger_shutdown(shared: &Shared, addr: SocketAddr) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue_cv.notify_all();
    shared.conns_cv.notify_all();
    // Unblock the accept loop: it re-checks the flag after every accept.
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                shared.log(format_args!("accept failed: {e}"));
                continue;
            }
        };
        shared
            .metrics
            .connections_total
            .fetch_add(1, Ordering::Relaxed);
        let mut conns = lock_recover(&shared.conns);
        if conns.len() >= shared.pending_conns {
            drop(conns);
            shared
                .metrics
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
            shared.metrics.record_error(ErrorClass::Overloaded);
            reject_connection(stream, shared);
            continue;
        }
        conns.push_back(stream);
        drop(conns);
        shared.conns_cv.notify_one();
    }
}

/// Sheds an over-capacity connection with a structured error so the
/// client knows to back off rather than seeing a bare RST.
fn reject_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(shared.write_timeout));
    let mut w = BufWriter::new(stream);
    let frame = Response::error(
        ErrorClass::Overloaded,
        format!(
            "connection queue full ({} pending); retry with backoff",
            shared.pending_conns
        ),
    )
    .encode();
    let _ = writeln!(w, "{frame}");
    let _ = w.flush();
}

fn conn_worker(shared: &Shared) {
    loop {
        let stream = {
            let mut conns = lock_recover(&shared.conns);
            loop {
                if let Some(s) = conns.pop_front() {
                    break s;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                conns = shared.conns_cv.wait(conns).unwrap_or_else(PoisonError::into_inner);
            }
        };
        if let Err(e) = handle_connection(stream, shared) {
            shared.log(format_args!("connection error: {e}"));
        }
    }
}

enum Frame {
    Eof,
    TooLong,
    BadUtf8,
    Line(String),
}

fn read_frame(reader: &mut BufReader<TcpStream>, max: usize) -> std::io::Result<Frame> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(max as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(Frame::Eof);
    }
    if buf.last() != Some(&b'\n') && buf.len() > max {
        return Ok(Frame::TooLong);
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Frame::Line(s)),
        Err(_) => Ok(Frame::BadUtf8),
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(shared.read_timeout))?;
    stream.set_write_timeout(Some(shared.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Finish serving after a drain begins; new frames on old
            // connections would race the exiting executor anyway.
            return Ok(());
        }
        let line = match read_frame(&mut reader, shared.max_frame_bytes) {
            Ok(Frame::Eof) => return Ok(()),
            Ok(Frame::TooLong) => {
                // The rest of the oversized frame is unread, so the
                // stream is no longer in sync: reply, then close.
                reply_error(
                    &mut writer,
                    shared,
                    ErrorClass::Malformed,
                    format!("frame exceeds {} bytes", shared.max_frame_bytes),
                )?;
                return Ok(());
            }
            Ok(Frame::BadUtf8) => {
                reply_error(
                    &mut writer,
                    shared,
                    ErrorClass::Malformed,
                    "frame is not valid UTF-8",
                )?;
                continue;
            }
            Ok(Frame::Line(l)) => l,
            // Read timeout (idle connection) or peer reset: close
            // quietly, the process keeps serving everyone else.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::ConnectionReset
                ) =>
            {
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let started = Instant::now();
        let request = match Request::decode(line) {
            Ok(r) => r,
            Err((class, message)) => {
                reply_error(&mut writer, shared, class, message)?;
                continue;
            }
        };
        shared.metrics.record_request(request.kind());
        let is_shutdown = matches!(request, Request::Shutdown);
        dispatch(request, shared, &mut writer)?;
        writer.flush()?;
        shared.metrics.latency.observe(started.elapsed());
        if is_shutdown {
            return Ok(());
        }
    }
}

fn reply_error(
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
    class: ErrorClass,
    message: impl Into<String>,
) -> std::io::Result<()> {
    shared.metrics.record_error(class);
    writeln!(writer, "{}", Response::error(class, message).encode())?;
    writer.flush()
}

fn dispatch(
    request: Request,
    shared: &Shared,
    writer: &mut BufWriter<TcpStream>,
) -> std::io::Result<()> {
    match request {
        Request::Submit(sweep) => {
            let response = submit(sweep, shared);
            if let Response::Error { class, .. } = &response {
                shared.metrics.record_error(*class);
            }
            writeln!(writer, "{}", response.encode())
        }
        Request::Status { id } => {
            let response = status(id, shared);
            if let Response::Error { class, .. } = &response {
                shared.metrics.record_error(*class);
            }
            writeln!(writer, "{}", response.encode())
        }
        Request::Results { id } => results(id, shared, writer),
        Request::Trace { id, index } => {
            let response = trace(id, index, shared);
            if let Response::Error { class, .. } = &response {
                shared.metrics.record_error(*class);
            }
            writeln!(writer, "{}", response.encode())
        }
        Request::Metrics => {
            let snapshot = shared.metrics.snapshot();
            writeln!(writer, "{}", Response::Metrics(snapshot).encode())
        }
        Request::Ping => writeln!(writer, "{}", Response::Pong.encode()),
        Request::Shutdown => {
            writeln!(writer, "{}", Response::ShuttingDown.encode())?;
            writer.flush()?;
            shared.log(format_args!("shutdown requested; draining queue"));
            // The address is only needed to wake accept; connect via the
            // stream's own local view of the server.
            let addr = writer.get_ref().local_addr()?;
            trigger_shutdown(shared, addr);
            Ok(())
        }
    }
}

fn submit(sweep: SweepSpec, shared: &Shared) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::error(ErrorClass::ShuttingDown, "server is draining");
    }
    let jobs = sweep.len() as u64;
    let mut table = lock_recover(&shared.table);
    if table.queue.len() >= shared.queue_capacity {
        return Response::error(
            ErrorClass::Overloaded,
            format!(
                "sweep queue full ({} queued, capacity {}); retry with backoff",
                table.queue.len(),
                shared.queue_capacity
            ),
        );
    }
    let id = table.next_id;
    table.next_id += 1;
    table.entries.insert(
        id,
        Entry {
            jobs,
            state: EntryState::Queued(sweep),
        },
    );
    table.queue.push_back(id);
    drop(table);
    shared.metrics.queue_pushed();
    shared
        .metrics
        .sweeps_submitted
        .fetch_add(1, Ordering::Relaxed);
    shared.queue_cv.notify_one();
    Response::Submitted { id, jobs }
}

fn status(id: u64, shared: &Shared) -> Response {
    let table = lock_recover(&shared.table);
    let Some(entry) = table.entries.get(&id) else {
        return Response::error(ErrorClass::NotFound, format!("no sweep with id {id}"));
    };
    let mut info = StatusInfo {
        id,
        state: SweepState::Queued,
        jobs: entry.jobs,
        executed: 0,
        cached: 0,
        failures: 0,
        message: String::new(),
    };
    match &entry.state {
        EntryState::Queued(_) => {}
        EntryState::Running => info.state = SweepState::Running,
        EntryState::Done {
            executed,
            cached,
            failures,
            ..
        } => {
            info.state = SweepState::Done;
            info.executed = *executed;
            info.cached = *cached;
            info.failures = *failures;
        }
        EntryState::Failed { message } => {
            info.state = SweepState::Failed;
            info.message = message.clone();
        }
    }
    Response::Status(info)
}

fn results(id: u64, shared: &Shared, writer: &mut BufWriter<TcpStream>) -> std::io::Result<()> {
    let outcome = {
        let table = lock_recover(&shared.table);
        match table.entries.get(&id) {
            None => Err(Response::error(
                ErrorClass::NotFound,
                format!("no sweep with id {id}"),
            )),
            Some(entry) => match &entry.state {
                EntryState::Queued(_) | EntryState::Running => Err(Response::error(
                    ErrorClass::NotReady,
                    format!("sweep {id} has not finished; poll status"),
                )),
                EntryState::Failed { message } => Err(Response::error(
                    ErrorClass::Internal,
                    format!("sweep {id} failed: {message}"),
                )),
                EntryState::Done { lines, .. } => Ok(Arc::clone(lines)),
            },
        }
    };
    match outcome {
        Err(response) => {
            if let Response::Error { class, .. } = &response {
                shared.metrics.record_error(*class);
            }
            writeln!(writer, "{}", response.encode())
        }
        Ok(lines) => {
            let count = lines.len() as u64;
            writeln!(
                writer,
                "{}",
                Response::ResultsHeader { id, count }.encode()
            )?;
            for line in lines.iter() {
                writeln!(writer, "{line}")?;
            }
            writeln!(writer, "{}", Response::End { id, count }.encode())
        }
    }
}

/// Bus-utilization bucket width used for served derived metrics: wide
/// enough to keep the timeline array small for long runs, fine enough
/// to show phase behaviour.
const TRACE_BUCKET_CYCLES: u64 = 1 << 14;

/// Serves a `trace` request: re-runs one job of a finished sweep with a
/// ring sink and folds the event stream into derived metrics.
///
/// Jobs are deterministic, so the re-run reproduces exactly the
/// execution whose stats the sweep already returned; the stored result
/// lines are untouched. The first trace of a job runs cold from cycle 0
/// and retains a mid-run checkpoint (snapshot + event prefix) in a
/// small FIFO store; repeat traces of the same job restore the
/// checkpoint and replay only the second half. Determinism makes the
/// two paths indistinguishable on the wire — prefix events chained with
/// the restored run's tail fold to byte-identical derived metrics. The
/// re-run happens on the connection-handler thread (not the executor),
/// under the same panic isolation the harness gives its workers.
fn trace(id: u64, index: u64, shared: &Shared) -> Response {
    let line = {
        let table = lock_recover(&shared.table);
        match table.entries.get(&id) {
            None => {
                return Response::error(ErrorClass::NotFound, format!("no sweep with id {id}"))
            }
            Some(entry) => match &entry.state {
                EntryState::Queued(_) | EntryState::Running => {
                    return Response::error(
                        ErrorClass::NotReady,
                        format!("sweep {id} has not finished; poll status"),
                    )
                }
                EntryState::Failed { message } => {
                    return Response::error(
                        ErrorClass::Internal,
                        format!("sweep {id} failed: {message}"),
                    )
                }
                EntryState::Done { lines, .. } => match lines.get(index as usize) {
                    None => {
                        return Response::error(
                            ErrorClass::NotFound,
                            format!("sweep {id} has {} job(s); no index {index}", lines.len()),
                        )
                    }
                    Some(line) => line.clone(),
                },
            },
        }
    };
    let (spec, total_cycles) = match crate::protocol::parse_result_line(&line) {
        Ok(result) => (result.spec, result.stats.total_cycles),
        Err(e) => {
            return Response::error(
                ErrorClass::Internal,
                format!("stored result line for job {index} is unreadable: {e}"),
            )
        }
    };
    let key = spec.cache_key();
    let retained = lock_recover(&shared.checkpoints).get(&key);
    let derived = std::panic::catch_unwind(move || {
        use senss_trace::{fold, RingSink, TraceEvent};
        // Warm path: restore the retained mid-run checkpoint and
        // simulate only the tail; the saved prefix supplies the events
        // before the checkpoint cycle.
        if let Some(cp) = retained {
            if let Ok(snap) = senss_snapshot::Snapshot::decode(&cp.snapshot) {
                let mut sys = snap.restore_with_sink(spec.build_extension(), RingSink::new());
                sys.finish();
                let tail = sys.into_sink();
                if tail.dropped() == 0 {
                    let events = cp.prefix.iter().chain(tail.events());
                    let json = fold(events, TRACE_BUCKET_CYCLES).to_json();
                    return (json, Some(cp.cycle), None);
                }
            }
            // Undecodable or overflowing checkpoint: fall through and
            // re-run cold (and re-retain a fresh checkpoint).
        }
        // Cold path: full re-run; retain a midpoint checkpoint for the
        // next trace of this job, but only if the ring held every
        // event — a clipped prefix would make warm replays diverge
        // from this response.
        let mid = total_cycles / 2;
        let mut sys = spec.build_system_with_sink(RingSink::new());
        let mut capture = None;
        if mid > 0 {
            sys.run_until(mid);
            if sys.sink().dropped() == 0 {
                capture = Some(RetainedCheckpoint {
                    snapshot: senss_snapshot::Snapshot::capture(&sys, mid).encode(),
                    cycle: mid,
                    prefix: sys.sink().events().copied().collect::<Vec<TraceEvent>>(),
                });
            }
        }
        sys.finish();
        let sink = sys.into_sink();
        if sink.dropped() > 0 {
            capture = None;
        }
        let json = fold(sink.events(), TRACE_BUCKET_CYCLES).to_json();
        (json, None, capture)
    });
    match derived {
        Ok((json_text, warm_cycle, capture)) => {
            if let Some(cycle) = warm_cycle {
                shared
                    .metrics
                    .trace_checkpoint_hits
                    .fetch_add(1, Ordering::Relaxed);
                shared.log(format_args!(
                    "trace {id}/{index}: replayed from retained checkpoint at cycle {cycle}"
                ));
            }
            if let Some(cp) = capture {
                lock_recover(&shared.checkpoints).insert(key, cp);
            }
            match senss_harness::json::parse(&json_text) {
                Ok(derived) => Response::Trace { id, index, derived },
                Err(e) => Response::error(
                    ErrorClass::Internal,
                    format!("derived metrics did not encode cleanly: {e}"),
                ),
            }
        }
        Err(_) => Response::error(
            ErrorClass::Internal,
            format!("traced re-run of job {index} panicked"),
        ),
    }
}

fn executor_loop(shared: &Shared, harness: &Harness, runner: Option<&JobRunner>) {
    loop {
        let (id, sweep) = {
            let mut table = lock_recover(&shared.table);
            loop {
                if let Some(id) = table.queue.pop_front() {
                    // A table recovered from lock poisoning can hold a
                    // queue id whose entry was lost or left in an odd
                    // state mid-update; skip it instead of killing the
                    // executor (clients see `not_found` / stale status).
                    match table.entries.get_mut(&id) {
                        Some(entry) => {
                            let state =
                                std::mem::replace(&mut entry.state, EntryState::Running);
                            if let EntryState::Queued(sweep) = state {
                                break (id, sweep);
                            }
                            shared.log(format_args!(
                                "sweep {id} was queued but not in Queued state; skipping"
                            ));
                        }
                        None => shared.log(format_args!(
                            "queued sweep {id} has no table entry; skipping"
                        )),
                    }
                    continue;
                }
                // Drain-then-exit: leave only once the queue is empty.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                table = shared.queue_cv.wait(table).unwrap_or_else(PoisonError::into_inner);
            }
        };
        shared.metrics.queue_popped();
        let outcome = match runner {
            Some(r) => harness.run_with(&sweep, |j| r(j)),
            None => harness.run(&sweep),
        };
        let mut table = lock_recover(&shared.table);
        let Some(entry) = table.entries.get_mut(&id) else {
            shared.log(format_args!(
                "sweep {id} vanished from the table; dropping its result"
            ));
            continue;
        };
        match outcome {
            Ok(result) => {
                shared
                    .metrics
                    .jobs_executed
                    .fetch_add(result.executed as u64, Ordering::Relaxed);
                shared
                    .metrics
                    .jobs_cached
                    .fetch_add(result.cached as u64, Ordering::Relaxed);
                shared
                    .metrics
                    .jobs_failed
                    .fetch_add(result.failures.len() as u64, Ordering::Relaxed);
                shared
                    .metrics
                    .jobs_forked
                    .fetch_add(result.forked as u64, Ordering::Relaxed);
                shared
                    .metrics
                    .cache_lines_skipped
                    .fetch_add(result.cache_skipped as u64, Ordering::Relaxed);
                shared
                    .metrics
                    .sweeps_completed
                    .fetch_add(1, Ordering::Relaxed);
                entry.state = EntryState::Done {
                    lines: Arc::new(
                        result.records.iter().map(crate::protocol::result_line).collect(),
                    ),
                    executed: result.executed as u64,
                    cached: result.cached as u64,
                    failures: result.failures.len() as u64,
                };
            }
            Err(e) => {
                shared
                    .metrics
                    .sweeps_failed
                    .fetch_add(1, Ordering::Relaxed);
                entry.state = EntryState::Failed {
                    message: e.to_string(),
                };
            }
        }
    }
}
