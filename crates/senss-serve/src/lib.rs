//! # senss-serve — the networked simulation service
//!
//! The paper's deployment story (§4.1) is a client dispatching work to
//! a trusted processor group over an untrusted transport; this crate is
//! that serving path for the reproduction: a std-only, multi-threaded
//! TCP service exposing the [`senss_harness`] executor over a
//! newline-delimited JSON protocol.
//!
//! * [`protocol`] — versioned request/response frames (`submit` a
//!   [`SweepSpec`](senss_harness::SweepSpec), `status`, streamed
//!   `results` and progressive `stream`, `metrics`, `shutdown`) plus
//!   the deterministic per-job result-line codec and the `indices`
//!   sharding extension.
//! * [`server`] — a `poll(2)`-based event loop (one thread, every
//!   connection; see [`sys`]) over a bounded job queue that **rejects
//!   with a retriable `overloaded` error instead of blocking**;
//!   idle/stalled-connection reclaim; malformed frames answered, never
//!   fatal; drain-then-exit shutdown.
//! * [`coordinator`] / [`worker`] — the cluster tier: a coordinator
//!   shards each sweep across supervised `senss-serve worker`
//!   processes with kill-and-respawn retry, merging streamed results
//!   byte-identically to a local run.
//! * [`metrics`] — lock-free in-process registry (request/error
//!   counters, executed-vs-cached jobs, queue-depth and
//!   open-connection gauges, per-worker shard counters, wall-latency
//!   histogram) snapshotted into `metrics` responses.
//! * [`client`] — a blocking client used by the `senss-serve` CLI, the
//!   loopback tests, and `senss-bench`'s `SENSS_SERVE` bridge.
//!
//! See `docs/serving.md` for the protocol reference, cluster topology,
//! failure and backpressure semantics, and the metrics glossary.

// The only `unsafe` in the workspace is the single `poll(2)` FFI call
// in [`sys`], which opts in locally.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod sys;
pub mod worker;

pub use client::{Client, ClientError};
pub use coordinator::{ClusterConfig, Coordinator};
pub use metrics::Metrics;
pub use protocol::{ErrorClass, JobResult, Request, Response, StatusInfo, SweepState};
pub use server::{Server, ServerConfig, ServerHandle};
pub use worker::WorkerProc;
