//! # senss-serve — the networked simulation service
//!
//! The paper's deployment story (§4.1) is a client dispatching work to
//! a trusted processor group over an untrusted transport; this crate is
//! that serving path for the reproduction: a std-only, multi-threaded
//! TCP service exposing the [`senss_harness`] executor over a
//! newline-delimited JSON protocol.
//!
//! * [`protocol`] — versioned request/response frames (`submit` a
//!   [`SweepSpec`](senss_harness::SweepSpec), `status`, streamed
//!   `results`, `metrics`, `shutdown`) plus the deterministic per-job
//!   result-line codec.
//! * [`server`] — bounded accept/worker pools and a bounded job queue
//!   that **rejects with a retriable `overloaded` error instead of
//!   blocking**; per-connection read/write timeouts; malformed frames
//!   answered, never fatal; drain-then-exit shutdown.
//! * [`metrics`] — lock-free in-process registry (request/error
//!   counters, executed-vs-cached jobs, queue-depth gauge, wall-latency
//!   histogram) snapshotted into `metrics` responses.
//! * [`client`] — a blocking client used by the `senss-serve` CLI, the
//!   loopback tests, and `senss-bench`'s `SENSS_SERVE` bridge.
//!
//! See `docs/serving.md` for the protocol reference, failure and
//! backpressure semantics, and the metrics glossary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use metrics::Metrics;
pub use protocol::{ErrorClass, JobResult, Request, Response, StatusInfo, SweepState};
pub use server::{Server, ServerConfig, ServerHandle};
