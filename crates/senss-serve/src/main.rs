//! `senss-serve` — serve the SENSS simulator over TCP, and talk to it.
//!
//! ```text
//! senss-serve serve    [--addr 127.0.0.1:4765] [--queue 32] [--max-conns 4096]
//!                      [--trace-workers 2] [--workers N] [--shard-retries 2]
//!                      [--hermetic] [--quiet]
//! senss-serve worker   [--addr 127.0.0.1:0] [--queue 32] [--stall-ms 0]
//!                      [--hermetic] [--quiet]
//! senss-serve submit   [--addr ...] [--name s] [--workloads fft,ocean] [--cores 2]
//!                      [--l2-mb 1] [--modes baseline,senss] [--ops 2000] [--seed 42]
//!                      [--file sweep.json] [--wait] [--poll-ms 200]
//! senss-serve status   --id N [--addr ...]
//! senss-serve results  --id N [--addr ...]
//! senss-serve stream   --id N [--addr ...]
//! senss-serve trace    --id N --index J [--addr ...]
//! senss-serve metrics  [--addr ...]
//! senss-serve ping     [--addr ...]
//! senss-serve shutdown [--addr ...]
//! ```
//!
//! `serve --workers N` runs the process as a cluster coordinator: each
//! sweep is sharded across N supervised `senss-serve worker` child
//! processes (spawned from this same executable). `worker` is the
//! child-process mode: it binds an ephemeral port and prints the bound
//! address as its first stdout line. The server honours the usual
//! `HARNESS_*` environment knobs (workers, retries, cache) for sweep
//! execution; see `docs/serving.md`.

use senss_harness::json::{self, Value};
use senss_harness::{decode_spec, HarnessConfig, JobSpec, SecurityMode, SweepSpec};
use senss_serve::{Client, ClusterConfig, Server, ServerConfig};
use senss_workloads::Workload;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

const DEFAULT_ADDR: &str = "127.0.0.1:4765";

fn usage() -> ! {
    eprintln!(
        "usage: senss-serve <serve|worker|submit|status|results|stream|trace|metrics|ping|shutdown> [flags]\n\
         run `senss-serve help` or see docs/serving.md for the flag reference"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("senss-serve: {msg}");
    std::process::exit(1);
}

/// Flag map: `--key value` pairs after the subcommand.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(argv: &[String]) -> Flags {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let Some(key) = argv[i].strip_prefix("--") else {
                usage();
            };
            // Valueless switches.
            if matches!(key, "wait" | "quiet" | "hermetic") {
                pairs.push((key.to_string(), "true".to_string()));
                i += 1;
                continue;
            }
            let Some(value) = argv.get(i + 1) else { usage() };
            pairs.push((key.to_string(), value.clone()));
            i += 2;
        }
        Flags(pairs)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("senss-serve: bad value for --{key}: {v:?}");
                std::process::exit(2);
            }),
        }
    }

    fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// A flag the subcommand cannot work without: absence is reported
    /// explicitly (never papered over with a sentinel value).
    fn require_u64(&self, key: &str) -> u64 {
        match self.get(key) {
            None => {
                eprintln!("senss-serve: missing required flag --{key}");
                std::process::exit(2);
            }
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("senss-serve: bad value for --{key}: {v:?} (expected an id)");
                std::process::exit(2);
            }),
        }
    }
}

fn client(flags: &Flags) -> Client {
    Client::new(flags.get_or("addr", DEFAULT_ADDR))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let flags = Flags::parse(&argv[1..]);
    match cmd.as_str() {
        "serve" => serve(&flags),
        "worker" => worker(&flags),
        "submit" => submit(&flags),
        "status" => status(&flags),
        "results" => results(&flags),
        "stream" => stream(&flags),
        "trace" => trace(&flags),
        "metrics" => metrics(&flags),
        "ping" => ping(&flags),
        "shutdown" => shutdown(&flags),
        _ => usage(),
    }
}

fn base_config(flags: &Flags, default_addr: &str) -> ServerConfig {
    let mut cfg = ServerConfig::new(flags.get_or("addr", default_addr))
        .with_queue_capacity(flags.parse_or("queue", 32))
        .with_max_conns(flags.parse_or("max-conns", 4096));
    cfg.trace_workers = flags.parse_or("trace-workers", 2);
    cfg.quiet = flags.has("quiet");
    if flags.has("hermetic") {
        cfg = cfg.with_harness(HarnessConfig::hermetic().with_workers(
            std::thread::available_parallelism().map_or(2, |n| n.get()),
        ));
    }
    cfg
}

fn serve(flags: &Flags) -> ! {
    let mut cfg = base_config(flags, DEFAULT_ADDR);
    let workers: usize = flags.parse_or("workers", 0);
    if workers > 0 {
        let program = std::env::current_exe()
            .unwrap_or_else(|e| fail(format_args!("cannot locate own executable: {e}")));
        let mut cluster = ClusterConfig::new(workers, program.to_string_lossy())
            .with_shard_retries(flags.parse_or("shard-retries", 2));
        if flags.has("hermetic") {
            cluster = cluster.with_worker_arg("--hermetic");
        }
        if flags.has("quiet") {
            cluster = cluster.with_worker_arg("--quiet");
        }
        cfg = cfg.with_cluster(cluster);
    }
    let server = Server::start(cfg)
        .unwrap_or_else(|e| fail(format_args!("bind or worker spawn failed: {e}")));
    // The listening line goes to stderr so piped stdout stays clean; CI
    // smoke greps for it.
    eprintln!("senss-serve: listening on {}", server.addr());
    server.join();
    eprintln!("senss-serve: drained and exited");
    std::process::exit(0);
}

/// Cluster child-process mode: bind (default an ephemeral port), print
/// the bound address as the first stdout line — the coordinator's
/// readiness handshake — then serve until told to shut down.
fn worker(flags: &Flags) -> ! {
    let mut cfg = base_config(flags, "127.0.0.1:0");
    let stall = Duration::from_millis(flags.parse_or("stall-ms", 0u64));
    if !stall.is_zero() {
        // Fault-injection aid: stretch each job's wall time without
        // touching its deterministic result, so tests can kill a worker
        // reliably mid-sweep.
        cfg = cfg.with_runner(Arc::new(move |job: &JobSpec| {
            std::thread::sleep(stall);
            job.run()
        }));
    }
    let server = Server::start(cfg).unwrap_or_else(|e| fail(format_args!("bind failed: {e}")));
    println!("{}", server.addr());
    let _ = std::io::stdout().flush();
    server.join();
    std::process::exit(0);
}

fn build_sweep(flags: &Flags) -> SweepSpec {
    if let Some(path) = flags.get("file") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}")));
        return decode_sweep_file(&text)
            .unwrap_or_else(|e| fail(format_args!("bad sweep file {path}: {e}")));
    }
    let workloads: Vec<Workload> = flags
        .get_or("workloads", "fft")
        .split(',')
        .map(|w| w.parse().unwrap_or_else(|e| fail(e)))
        .collect();
    let modes: Vec<SecurityMode> = flags
        .get_or("modes", "baseline,senss")
        .split(',')
        .map(|m| match m {
            "baseline" => SecurityMode::Baseline,
            "senss" => SecurityMode::senss(),
            "integrated" => SecurityMode::integrated(),
            "servas" => SecurityMode::servas(),
            "sealer" => SecurityMode::sealer(),
            "scattered" => SecurityMode::scattered(),
            tag => SecurityMode::from_tag(tag)
                .unwrap_or_else(|| fail(format_args!("unknown mode {tag:?}"))),
        })
        .collect();
    let mut sweep = SweepSpec::new(flags.get_or("name", "cli"));
    sweep.grid(
        &workloads,
        &[flags.parse_or("cores", 2usize)],
        &[flags.parse_or("l2-mb", 1usize) << 20],
        &modes,
        flags.parse_or("ops", 2_000usize),
        flags.parse_or("seed", 42u64),
    );
    sweep
}

/// Parses a sweep file: `{"name": "...", "jobs": [{...job spec...}]}`,
/// the same job-spec layout the wire format uses.
fn decode_sweep_file(text: &str) -> Result<SweepSpec, String> {
    let v = json::parse(text.trim()).map_err(|e| e.to_string())?;
    let name = v
        .get("name")
        .and_then(Value::as_str)
        .unwrap_or("file")
        .to_string();
    let jobs = v
        .get("jobs")
        .and_then(Value::as_arr)
        .ok_or("missing jobs array")?;
    let jobs: Vec<JobSpec> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| decode_spec(j).ok_or(format!("job {i} is not a valid job spec")))
        .collect::<Result<_, _>>()?;
    Ok(SweepSpec { name, jobs })
}

fn submit(flags: &Flags) {
    let sweep = build_sweep(flags);
    let client = client(flags);
    let (id, jobs) = client
        .submit(&sweep)
        .unwrap_or_else(|e| fail(format_args!("submit failed: {e}")));
    eprintln!("senss-serve: submitted sweep {id} ({jobs} jobs)");
    if !flags.has("wait") {
        println!("{id}");
        return;
    }
    let poll = Duration::from_millis(flags.parse_or("poll-ms", 200u64));
    loop {
        let info = client
            .status(id)
            .unwrap_or_else(|e| fail(format_args!("status failed: {e}")));
        match info.state {
            senss_serve::SweepState::Done => break,
            senss_serve::SweepState::Failed => {
                fail(format_args!("sweep {id} failed: {}", info.message))
            }
            _ => std::thread::sleep(poll),
        }
    }
    for line in client
        .results_raw(id)
        .unwrap_or_else(|e| fail(format_args!("results failed: {e}")))
    {
        println!("{line}");
    }
}

fn status(flags: &Flags) {
    let id = flags.require_u64("id");
    let info = client(flags)
        .status(id)
        .unwrap_or_else(|e| fail(format_args!("status failed: {e}")));
    println!(
        "sweep {}: {} (jobs {}, executed {}, cached {}, failures {}){}{}",
        info.id,
        info.state.tag(),
        info.jobs,
        info.executed,
        info.cached,
        info.failures,
        if info.message.is_empty() { "" } else { ": " },
        info.message
    );
}

fn results(flags: &Flags) {
    let id = flags.require_u64("id");
    for line in client(flags)
        .results_raw(id)
        .unwrap_or_else(|e| fail(format_args!("results failed: {e}")))
    {
        println!("{line}");
    }
}

/// Streams a sweep's result lines progressively, printing each as it
/// arrives — usable on a sweep that is still queued or running.
fn stream(flags: &Flags) {
    let id = flags.require_u64("id");
    // One sweep can run much longer than a round-trip; let the server's
    // completion pace the stream rather than the client timeout.
    let streamer = client(flags).with_timeout(Duration::from_secs(24 * 60 * 60));
    let delivered = streamer
        .stream_with(id, |line| println!("{line}"))
        .unwrap_or_else(|e| fail(format_args!("stream failed: {e}")));
    eprintln!("senss-serve: streamed {delivered} result line(s) for sweep {id}");
}

fn trace(flags: &Flags) {
    let id = flags.require_u64("id");
    let index = flags.require_u64("index");
    let derived = client(flags)
        .trace(id, index)
        .unwrap_or_else(|e| fail(format_args!("trace failed: {e}")));
    println!("{}", derived.encode());
}

fn metrics(flags: &Flags) {
    let snapshot = client(flags)
        .metrics()
        .unwrap_or_else(|e| fail(format_args!("metrics failed: {e}")));
    println!("{}", snapshot.encode());
}

fn ping(flags: &Flags) {
    client(flags)
        .ping()
        .unwrap_or_else(|e| fail(format_args!("ping failed: {e}")));
    println!("pong");
}

fn shutdown(flags: &Flags) {
    client(flags)
        .shutdown()
        .unwrap_or_else(|e| fail(format_args!("shutdown failed: {e}")));
    eprintln!("senss-serve: server acknowledged shutdown; draining");
}
