//! Cluster-tier integration tests: a coordinator sharding sweeps across
//! real `senss-serve worker` child processes (spawned from the built
//! binary via `CARGO_BIN_EXE_senss-serve`).
//!
//! The acceptance bar is byte-identity: a sweep sharded across ≥2
//! workers must merge to exactly the JSONL a local [`Harness`] run
//! produces — including after a worker is killed mid-sweep and its
//! shard is retried on a respawned process. Plus the event-loop
//! capacity bar: ≥512 idle connections served concurrently.

use senss_harness::json;
use senss_harness::{Harness, HarnessConfig, SecurityMode, SweepSpec};
use senss_serve::{Client, ClusterConfig, Server, ServerConfig, SweepState};
use senss_workloads::Workload;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The compiled `senss-serve` binary, used as the worker program.
const WORKER_BIN: &str = env!("CARGO_BIN_EXE_senss-serve");

fn cluster_sweep(name: &str, seed: u64) -> SweepSpec {
    let mut sweep = SweepSpec::new(name);
    sweep.grid(
        &[Workload::Fft, Workload::Lu],
        &[2],
        &[1 << 20],
        &[SecurityMode::Baseline, SecurityMode::senss()],
        400,
        seed,
    );
    sweep
}

fn direct_result_lines(sweep: &SweepSpec) -> Vec<String> {
    let result = Harness::new(HarnessConfig::hermetic())
        .run(sweep)
        .expect("direct run");
    assert!(result.is_complete());
    result
        .records
        .iter()
        .map(senss_serve::protocol::result_line)
        .collect()
}

fn cluster_config(stall_ms: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(2, WORKER_BIN)
        .with_worker_arg("--hermetic")
        .with_worker_arg("--quiet")
        .with_worker_timeout(Duration::from_secs(120));
    if stall_ms > 0 {
        cfg = cfg
            .with_worker_arg("--stall-ms")
            .with_worker_arg(stall_ms.to_string());
    }
    cfg
}

fn wait_done(client: &Client, id: u64, deadline: Duration) {
    let start = Instant::now();
    loop {
        let info = client.status(id).expect("status");
        match info.state {
            SweepState::Done => return,
            SweepState::Failed => panic!("sweep {id} failed: {}", info.message),
            _ => {
                assert!(
                    start.elapsed() < deadline,
                    "sweep {id} not done within {deadline:?}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn metric(server: &Server, key: &str) -> u64 {
    server
        .metrics()
        .snapshot()
        .get(key)
        .and_then(json::Value::as_u64)
        .unwrap_or_else(|| panic!("metric {key} missing from snapshot"))
}

#[test]
fn sharded_sweep_is_byte_identical_to_a_local_run() {
    let cfg = ServerConfig::loopback().with_cluster(cluster_config(0));
    let server = Server::start(cfg).expect("coordinator start");
    let client = Client::new(server.addr().to_string()).with_timeout(Duration::from_secs(120));

    let sweep = cluster_sweep("sharded", 7);
    let (id, jobs) = client.submit(&sweep).expect("submit");
    assert_eq!(jobs, sweep.len() as u64);
    wait_done(&client, id, Duration::from_secs(120));

    let via_cluster = client.results_raw(id).expect("results");
    assert_eq!(via_cluster, direct_result_lines(&sweep));

    // Both workers carried a shard, and the merge saw all of them.
    assert_eq!(metric(&server, "shards_dispatched"), 2);
    assert_eq!(metric(&server, "shards_completed"), 2);
    assert_eq!(metric(&server, "shard_retries"), 0);
    assert_eq!(metric(&server, "worker_0_shards"), 1);
    assert_eq!(metric(&server, "worker_1_shards"), 1);
    assert_eq!(
        metric(&server, "worker_0_jobs") + metric(&server, "worker_1_jobs"),
        sweep.len() as u64
    );
    server.shutdown();
}

#[test]
fn backend_modes_cross_the_wire_byte_identically() {
    // senss-backends modes ride the same NDJSON wire format: workers
    // decode `servas:m8`-style tags into the right extension, and the
    // merged results match a local run byte for byte.
    let cfg = ServerConfig::loopback().with_cluster(cluster_config(0));
    let server = Server::start(cfg).expect("coordinator start");
    let client = Client::new(server.addr().to_string()).with_timeout(Duration::from_secs(120));

    let mut sweep = SweepSpec::new("backends-wire");
    sweep.grid(
        &[Workload::Fft],
        &[2],
        &[1 << 20],
        &[
            SecurityMode::servas(),
            SecurityMode::sealer(),
            SecurityMode::scattered(),
        ],
        300,
        3,
    );
    let (id, jobs) = client.submit(&sweep).expect("submit");
    assert_eq!(jobs, 3);
    wait_done(&client, id, Duration::from_secs(120));
    let via_cluster = client.results_raw(id).expect("results");
    assert_eq!(via_cluster, direct_result_lines(&sweep));
    server.shutdown();
}

#[test]
fn killed_worker_mid_sweep_retries_the_shard_byte_identically() {
    // Each job stalls 300 ms on the worker, making "mid-sweep" a wide,
    // reliable window for the kill.
    let cfg = ServerConfig::loopback().with_cluster(cluster_config(300));
    let server = Server::start(cfg).expect("coordinator start");
    let client = Client::new(server.addr().to_string()).with_timeout(Duration::from_secs(120));

    let sweep = cluster_sweep("fault", 11);
    let (id, _) = client.submit(&sweep).expect("submit");

    // Open a progressive stream before the kill: retried lines must
    // flow into it exactly as if nothing had happened.
    let streamer = client.clone();
    let stream_thread = std::thread::spawn(move || streamer.stream_raw(id).expect("stream"));

    std::thread::sleep(Duration::from_millis(100));
    server
        .coordinator()
        .expect("cluster mode")
        .kill_worker(0);

    wait_done(&client, id, Duration::from_secs(120));
    let expected = direct_result_lines(&sweep);
    assert_eq!(client.results_raw(id).expect("results"), expected);
    assert_eq!(stream_thread.join().expect("stream thread"), expected);

    assert!(metric(&server, "shard_retries") >= 1, "kill must cost a retry");
    assert!(metric(&server, "workers_respawned") >= 1);
    assert_eq!(metric(&server, "shards_completed"), 2);
    server.shutdown();
}

#[test]
fn hundreds_of_idle_connections_are_served_concurrently() {
    let mut cfg = ServerConfig::loopback();
    // Idle reclaim must not race the test itself.
    cfg.read_timeout = Duration::from_secs(60);
    let server = Server::start(cfg).expect("server start");
    let addr = server.addr();

    const IDLE: usize = 512;
    let mut idle: Vec<TcpStream> = (0..IDLE)
        .map(|i| {
            TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}"))
        })
        .collect();

    // With all of them parked, a working client still gets full service.
    let client = Client::new(addr.to_string()).with_timeout(Duration::from_secs(60));
    let sweep = cluster_sweep("busy", 13);
    let (id, _) = client.submit(&sweep).expect("submit");
    wait_done(&client, id, Duration::from_secs(60));
    assert_eq!(client.results_raw(id).expect("results"), direct_result_lines(&sweep));

    assert!(
        metric(&server, "connections_open") >= IDLE as u64,
        "all idle connections should still be open"
    );

    // And every parked connection is still live: each one answers a
    // ping on the shared event loop.
    for (i, conn) in idle.iter_mut().enumerate() {
        conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        writeln!(conn, r#"{{"v":1,"type":"ping"}}"#).unwrap_or_else(|e| panic!("write {i}: {e}"));
        let mut line = String::new();
        BufReader::new(conn.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap_or_else(|e| panic!("read {i}: {e}"));
        assert!(line.contains(r#""type":"pong""#), "conn {i} got: {line}");
    }
    server.shutdown();
}
