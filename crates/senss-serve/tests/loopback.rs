//! Loopback integration tests: the acceptance criteria of the serving
//! subsystem.
//!
//! * ≥8 concurrent clients drive full submit→status→results cycles and
//!   every byte matches a direct [`Harness`] run of the same spec;
//! * a full queue rejects with the retriable `overloaded` error instead
//!   of hanging, and the server keeps serving;
//! * malformed frames get structured error replies without killing the
//!   connection or the process;
//! * the metrics snapshot reflects the traffic;
//! * shutdown drains the queue before exiting.

use senss_harness::{Harness, HarnessConfig, JobSpec, SecurityMode, SweepSpec};
use senss_sim::Stats;
use senss_serve::protocol::{self, Request, Response};
use senss_serve::{Client, ClientError, ErrorClass, Server, ServerConfig, SweepState};
use senss_workloads::Workload;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn small_sweep(name: &str, seed: u64) -> SweepSpec {
    let mut sweep = SweepSpec::new(name);
    sweep.grid(
        &[Workload::Fft, Workload::Lu],
        &[2],
        &[1 << 20],
        &[SecurityMode::Baseline, SecurityMode::senss()],
        400,
        seed,
    );
    sweep
}

fn direct_result_lines(sweep: &SweepSpec) -> Vec<String> {
    let result = Harness::new(HarnessConfig::hermetic())
        .run(sweep)
        .expect("direct run");
    assert!(result.is_complete());
    result.records.iter().map(protocol::result_line).collect()
}

#[test]
fn concurrent_clients_get_byte_identical_results() {
    let server = Server::start(ServerConfig::loopback()).unwrap();
    let addr = server.addr().to_string();

    const CLIENTS: usize = 8;
    let mut threads = Vec::new();
    for i in 0..CLIENTS {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            // Distinct seeds so every client's sweep (and result bytes)
            // differ; identical bytes across clients would mask mixups.
            let sweep = small_sweep(&format!("conc-{i}"), 100 + i as u64);
            let client = Client::new(&addr).with_timeout(Duration::from_secs(30));
            let (id, jobs) = client.submit(&sweep).expect("submit");
            assert_eq!(jobs, sweep.len() as u64);
            // Full cycle: poll status until done, then stream results.
            loop {
                let info = client.status(id).expect("status");
                assert_eq!(info.jobs, sweep.len() as u64);
                match info.state {
                    SweepState::Done => break,
                    SweepState::Failed => panic!("sweep failed: {}", info.message),
                    _ => std::thread::sleep(Duration::from_millis(20)),
                }
            }
            let remote = client.results_raw(id).expect("results");
            (sweep, remote)
        }));
    }
    for t in threads {
        let (sweep, remote) = t.join().expect("client thread");
        assert_eq!(
            remote,
            direct_result_lines(&sweep),
            "served results must be byte-identical to a direct harness run"
        );
    }

    let m = server.metrics().snapshot();
    let get = |k: &str| m.get(k).and_then(|v| v.as_u64()).unwrap();
    assert_eq!(get("sweeps_completed"), CLIENTS as u64);
    assert_eq!(get("jobs_executed"), (CLIENTS * 4) as u64);
    assert!(get("requests_total") >= (CLIENTS * 3) as u64);
    assert_eq!(get("queue_depth"), 0);
    server.shutdown();
}

#[test]
fn parsed_results_match_direct_stats() {
    let server = Server::start(ServerConfig::loopback()).unwrap();
    let client = Client::new(server.addr().to_string());
    let sweep = small_sweep("parsed", 7);
    let results = client.run(&sweep, Duration::from_millis(20)).expect("run");
    let direct = Harness::new(HarnessConfig::hermetic()).run(&sweep).unwrap();
    assert_eq!(results.len(), direct.records.len());
    for (got, want) in results.iter().zip(&direct.records) {
        assert_eq!(got.spec, want.spec);
        assert_eq!(got.key, want.key);
        assert_eq!(got.stats, want.stats);
    }
    server.shutdown();
}

#[test]
fn overloaded_queue_rejects_retriably_and_keeps_serving() {
    // A runner that blocks until released keeps the executor busy on
    // the first sweep, so the queue fills deterministically.
    let release = Arc::new(AtomicBool::new(false));
    let runner_release = Arc::clone(&release);
    let cfg = ServerConfig::loopback()
        .with_queue_capacity(1)
        .with_runner(Arc::new(move |_spec: &JobSpec| {
            while !runner_release.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(5));
            }
            Stats {
                total_cycles: 1,
                ..Stats::default()
            }
        }));
    let server = Server::start(cfg).unwrap();
    let client = Client::new(server.addr().to_string()).with_retry(0, Duration::from_millis(1));

    let one_job = |name: &str| {
        let mut s = SweepSpec::new(name);
        s.push(JobSpec::new(Workload::Fft, 2, 1 << 20).with_ops(100));
        s
    };
    // First sweep: picked up by the executor (blocked in the runner).
    let (running_id, _) = client.submit(&one_job("running")).expect("first submit");
    // Wait until it leaves the queue so capacity accounting is exact.
    loop {
        if client.status(running_id).unwrap().state == SweepState::Running {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // Second sweep: fills the queue (capacity 1).
    let (queued_id, _) = client.submit(&one_job("queued")).expect("second submit");
    // Third sweep: must be rejected retriably — not block, not hang.
    match client.submit_once(&one_job("rejected")) {
        Err(ClientError::Server {
            class: ErrorClass::Overloaded,
            retriable: true,
            ..
        }) => {}
        other => panic!("expected retriable overloaded, got {other:?}"),
    }
    // The server keeps serving after shedding load.
    client.ping().expect("ping after overload");
    let m = client.metrics().expect("metrics after overload");
    assert_eq!(m.get("errors_overloaded").unwrap().as_u64(), Some(1));
    assert_eq!(m.get("queue_depth").unwrap().as_u64(), Some(1));
    assert_eq!(m.get("queue_depth_max").unwrap().as_u64(), Some(1));

    // Release the runner; both accepted sweeps must finish.
    release.store(true, Ordering::SeqCst);
    for id in [running_id, queued_id] {
        loop {
            match client.status(id).unwrap().state {
                SweepState::Done => break,
                SweepState::Failed => panic!("sweep {id} failed"),
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }
    server.shutdown();
}

#[test]
fn malformed_frames_get_structured_errors_and_connection_survives() {
    let server = Server::start(ServerConfig::loopback()).unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let mut exchange = |line: &str| -> Response {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        Response::decode(reply.trim()).expect("parseable reply")
    };

    // Garbage, wrong shape, unknown type, wrong version: each answered
    // with a structured error on the SAME connection.
    for (frame, class) in [
        ("this is not json", ErrorClass::Malformed),
        ("{\"v\":1}", ErrorClass::Malformed),
        ("{\"v\":1,\"type\":\"frobnicate\"}", ErrorClass::Malformed),
        ("{\"v\":99,\"type\":\"ping\"}", ErrorClass::UnsupportedVersion),
        (
            "{\"v\":1,\"type\":\"submit\",\"jobs\":[{\"trace\":\"nope\"}]}",
            ErrorClass::Malformed,
        ),
    ] {
        match exchange(frame) {
            Response::Error {
                class: got,
                retriable,
                ..
            } => {
                assert_eq!(got, class, "frame {frame:?}");
                assert!(!retriable);
            }
            other => panic!("expected error for {frame:?}, got {other:?}"),
        }
    }

    // The connection still works for a valid request afterwards.
    match exchange(&Request::Ping.encode()) {
        Response::Pong => {}
        other => panic!("expected pong, got {other:?}"),
    }
    drop(writer);
    drop(reader);

    // And the process still serves other clients.
    let client = Client::new(server.addr().to_string());
    client.ping().expect("server survived malformed frames");
    let m = client.metrics().unwrap();
    assert_eq!(m.get("errors_malformed").unwrap().as_u64(), Some(4));
    assert_eq!(m.get("errors_unsupported_version").unwrap().as_u64(), Some(1));
    server.shutdown();
}

#[test]
fn unknown_ids_and_unfinished_sweeps_are_classified() {
    let server = Server::start(ServerConfig::loopback()).unwrap();
    let client = Client::new(server.addr().to_string());
    match client.status(12345) {
        Err(ClientError::Server {
            class: ErrorClass::NotFound,
            retriable: false,
            ..
        }) => {}
        other => panic!("expected not_found, got {other:?}"),
    }
    match client.results(12345) {
        Err(ClientError::Server {
            class: ErrorClass::NotFound,
            ..
        }) => {}
        other => panic!("expected not_found, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn trace_requests_derive_metrics_and_classify_errors() {
    let server = Server::start(ServerConfig::loopback()).unwrap();
    let client = Client::new(server.addr().to_string());

    // Unknown sweep id.
    match client.trace(999, 0) {
        Err(ClientError::Server {
            class: ErrorClass::NotFound,
            retriable: false,
            ..
        }) => {}
        other => panic!("expected not_found for unknown id, got {other:?}"),
    }

    let sweep = small_sweep("traced", 21);
    let (id, _) = client.submit(&sweep).expect("submit");
    loop {
        match client.status(id).expect("status").state {
            SweepState::Done => break,
            SweepState::Failed => panic!("sweep failed"),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let results = client.results(id).expect("results");

    // The derived metrics carry the schema tag and tie out against the
    // stats the server already returned for the same job.
    let derived = client.trace(id, 0).expect("trace");
    assert_eq!(
        derived.get("schema").and_then(|v| v.as_str()),
        Some("senss.trace.derived.v1")
    );
    assert_eq!(
        derived.get("bus_busy_cycles").and_then(|v| v.as_u64()),
        Some(results[0].stats.bus_busy_cycles),
        "traced re-run must reproduce the recorded bus occupancy"
    );
    assert!(derived.get("total_transactions").and_then(|v| v.as_u64()).unwrap() > 0);
    assert!(derived.get("txns").is_some());

    // Index past the end of the sweep.
    match client.trace(id, sweep.len() as u64) {
        Err(ClientError::Server {
            class: ErrorClass::NotFound,
            ..
        }) => {}
        other => panic!("expected not_found for bad index, got {other:?}"),
    }

    let m = client.metrics().unwrap();
    assert_eq!(m.get("requests_trace").unwrap().as_u64(), Some(3));
    server.shutdown();
}

#[test]
fn repeat_traces_replay_from_a_checkpoint_byte_identically() {
    let server = Server::start(ServerConfig::loopback()).unwrap();
    let client = Client::new(server.addr().to_string());
    let mut sweep = SweepSpec::new("retraced");
    sweep.push(
        JobSpec::new(Workload::Fft, 2, 1 << 20)
            .with_ops(400)
            .with_mode(SecurityMode::senss()),
    );
    let (id, _) = client.submit(&sweep).expect("submit");
    loop {
        match client.status(id).expect("status").state {
            SweepState::Done => break,
            SweepState::Failed => panic!("sweep failed"),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }

    // First trace runs cold (and retains a mid-run checkpoint); the
    // second restores that checkpoint and replays only the tail. The
    // responses must be indistinguishable.
    let cold = client.trace(id, 0).expect("first trace");
    let warm = client.trace(id, 0).expect("second trace");
    assert_eq!(
        warm.encode(),
        cold.encode(),
        "checkpoint-replayed trace must be byte-identical to the cold one"
    );
    let third = client.trace(id, 0).expect("third trace");
    assert_eq!(third.encode(), cold.encode());

    let m = client.metrics().unwrap();
    let get = |k: &str| m.get(k).and_then(|v| v.as_u64()).unwrap();
    assert_eq!(
        get("trace_checkpoint_hits"),
        2,
        "second and third traces must be served from the retained checkpoint"
    );
    server.shutdown();
}

#[test]
fn corrupt_cache_lines_surface_in_metrics() {
    // Pre-damage the result cache: the harness must skip the corrupt
    // lines (re-executing those jobs) and the server must surface the
    // skip count through the metrics response.
    let dir = std::env::temp_dir().join(format!(
        "senss-serve-corrupt-cache-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("cache.jsonl"),
        "not json at all\n{\"key\":\"half\n{\"key\":\"x\",\"stats\":{\"total_cycles\":1.5}}\n",
    )
    .unwrap();
    let cfg = ServerConfig::loopback().with_harness(
        HarnessConfig::hermetic()
            .with_workers(2)
            .with_cache_dir(&dir),
    );
    let server = Server::start(cfg).unwrap();
    let client = Client::new(server.addr().to_string());
    let sweep = small_sweep("damaged-cache", 11);
    client.run(&sweep, Duration::from_millis(20)).expect("run");

    let m = client.metrics().unwrap();
    assert_eq!(
        m.get("cache_lines_skipped").and_then(|v| v.as_u64()),
        Some(3),
        "all three corrupt lines must be reported"
    );
    let _ = std::fs::remove_dir_all(&dir);
    server.shutdown();
}

#[test]
fn trace_of_an_unfinished_sweep_is_retriably_not_ready() {
    // A runner that blocks until released pins the sweep in Running, so
    // the trace request deterministically observes an unfinished sweep.
    let release = Arc::new(AtomicBool::new(false));
    let runner_release = Arc::clone(&release);
    let cfg = ServerConfig::loopback().with_runner(Arc::new(move |_spec: &JobSpec| {
        while !runner_release.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));
        }
        Stats::default()
    }));
    let server = Server::start(cfg).unwrap();
    let client = Client::new(server.addr().to_string());
    let mut sweep = SweepSpec::new("pinned");
    sweep.push(JobSpec::new(Workload::Fft, 2, 1 << 20).with_ops(100));
    let (id, _) = client.submit(&sweep).expect("submit");
    match client.trace(id, 0) {
        Err(ClientError::Server {
            class: ErrorClass::NotReady,
            retriable: true,
            ..
        }) => {}
        other => panic!("expected retriable not_ready, got {other:?}"),
    }
    release.store(true, Ordering::SeqCst);
    server.shutdown();
}

#[test]
fn metrics_reflect_traffic_including_cache_hits() {
    // A cache-enabled harness in a temp dir: resubmitting the same
    // sweep must be served from the cache, visible in the metrics.
    let dir = std::env::temp_dir().join(format!("senss-serve-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServerConfig::loopback().with_harness(
        HarnessConfig::hermetic()
            .with_workers(2)
            .with_cache_dir(&dir),
    );
    let server = Server::start(cfg).unwrap();
    let client = Client::new(server.addr().to_string());
    let sweep = small_sweep("cachehit", 3);

    let first = client.run(&sweep, Duration::from_millis(20)).expect("first");
    let second = client.run(&sweep, Duration::from_millis(20)).expect("second");
    assert_eq!(first, second, "cache-served results must be identical");

    let m = client.metrics().unwrap();
    let get = |k: &str| m.get(k).and_then(|v| v.as_u64()).unwrap();
    assert_eq!(get("sweeps_submitted"), 2);
    assert_eq!(get("sweeps_completed"), 2);
    assert_eq!(get("jobs_executed"), 4, "first submission executes");
    assert_eq!(get("jobs_cached"), 4, "second submission is cache-served");
    assert!(get("requests_submit") == 2);
    assert!(get("requests_status") >= 2);
    assert!(get("requests_results") == 2);
    assert!(get("connections_total") > 0);
    let lat = m.get("latency_micros").unwrap();
    // The in-flight metrics request is counted in requests_total but
    // its latency lands only after this snapshot is written, hence -1.
    assert!(
        lat.get("count").unwrap().as_u64().unwrap() >= get("requests_total") - 1,
        "every dispatched request is observed in the latency histogram"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_queued_sweeps_before_exit() {
    let server = Server::start(ServerConfig::loopback()).unwrap();
    let metrics = server.metrics_handle();
    let client = Client::new(server.addr().to_string());
    let (_, jobs) = client.submit(&small_sweep("drain", 11)).expect("submit");
    assert_eq!(jobs, 4);
    client.shutdown().expect("shutdown ack");
    // Join returns only after the drain, so by now the queued sweep
    // must have run to completion (the registry outlives the sockets).
    server.join();
    assert_eq!(
        metrics
            .sweeps_completed
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "drain-then-exit must finish the queued sweep"
    );
    assert_eq!(metrics.queue_depth.load(std::sync::atomic::Ordering::Relaxed), 0);
}

#[test]
fn submits_after_shutdown_are_refused() {
    let server = Server::start(ServerConfig::loopback()).unwrap();
    let addr = server.addr();
    let client = Client::new(addr.to_string());
    client.shutdown().expect("shutdown ack");
    // A submit racing the drain either gets the shutting_down error or
    // can no longer connect — both are acceptable refusals; what must
    // never happen is acceptance.
    match client.submit_once(&small_sweep("late", 1)) {
        Err(ClientError::Server {
            class: ErrorClass::ShuttingDown,
            ..
        }) => {}
        Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {}
        Ok(other) => panic!("late submit must be refused, got {other:?}"),
        Err(e) => panic!("unexpected error {e}"),
    }
    server.join();
}

#[test]
fn stream_attached_mid_run_is_byte_identical_to_results() {
    // Slow every job down so the stream demonstrably attaches before
    // the sweep finishes; the wrapped runner leaves result bytes
    // untouched.
    let cfg = ServerConfig::loopback().with_runner(Arc::new(|job: &JobSpec| {
        std::thread::sleep(Duration::from_millis(50));
        job.run()
    }));
    let server = Server::start(cfg).unwrap();
    let client = Client::new(server.addr().to_string()).with_timeout(Duration::from_secs(30));

    let sweep = small_sweep("streamed", 17);
    let (id, _) = client.submit(&sweep).expect("submit");
    let info = client.status(id).expect("status");
    assert!(
        matches!(info.state, SweepState::Queued | SweepState::Running),
        "stream must attach before completion, but sweep is {:?}",
        info.state
    );
    // Blocks until the server's end trailer, receiving each line as its
    // job completes.
    let streamed = client.stream_raw(id).expect("stream");

    assert_eq!(streamed, direct_result_lines(&sweep));
    assert_eq!(streamed, client.results_raw(id).expect("results"));
    let snapshot = client.metrics().expect("metrics");
    assert_eq!(
        snapshot
            .get("requests_stream")
            .and_then(senss_harness::json::Value::as_u64),
        Some(1)
    );
    server.shutdown();
}

#[test]
fn sharded_submit_tags_result_lines_with_original_indices() {
    let server = Server::start(ServerConfig::loopback()).unwrap();
    let client = Client::new(server.addr().to_string()).with_timeout(Duration::from_secs(30));

    let sweep = small_sweep("tagged", 19);
    let indices = [12u64, 9, 4, 30];
    let (id, jobs) = client.submit_sharded(&sweep, &indices).expect("submit");
    assert_eq!(jobs, 4);
    let lines = loop {
        match client.results_raw(id) {
            Ok(lines) => break lines,
            Err(ClientError::Server {
                class: ErrorClass::NotReady,
                ..
            }) => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("results: {e}"),
        }
    };
    // Lines come back in submitted-job order but each carries the
    // caller's original index — the merge contract coordinators rely on.
    assert_eq!(lines.len(), 4);
    for (line, want) in lines.iter().zip(indices) {
        let got = senss_harness::json::parse(line)
            .ok()
            .and_then(|v| v.get("index").and_then(senss_harness::json::Value::as_u64));
        assert_eq!(got, Some(want), "line: {line}");
    }

    // An indices array that disagrees with the job count is malformed.
    match client.submit_sharded(&sweep, &indices[..3]) {
        Err(ClientError::Server {
            class: ErrorClass::Malformed,
            ..
        }) => {}
        other => panic!("short indices must be rejected, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn connections_beyond_the_cap_are_shed_with_overloaded() {
    let cfg = ServerConfig::loopback().with_max_conns(2);
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    // Fill the two slots and prove they are registered (served a ping).
    let mut held = Vec::new();
    for i in 0..2 {
        let conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut writer = BufWriter::new(conn.try_clone().unwrap());
        writeln!(writer, r#"{{"v":1,"type":"ping"}}"#).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        BufReader::new(conn.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(line.contains("pong"), "conn {i} got: {line}");
        held.push(conn);
    }

    // The third is shed with a structured, retriable overloaded error —
    // not a silent reset.
    let extra = TcpStream::connect(addr).unwrap();
    extra.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reader = BufReader::new(extra.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    match Response::decode(line.trim()) {
        Ok(Response::Error {
            class: ErrorClass::Overloaded,
            retriable: true,
            ..
        }) => {}
        other => panic!("expected an overloaded shed frame, got {other:?} ({line:?})"),
    }

    // The held connections keep working; freeing one admits new peers.
    drop(held.pop());
    let client = Client::new(addr.to_string()).with_timeout(Duration::from_secs(10));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match client.ping() {
            Ok(()) => break,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20))
            }
            Err(e) => panic!("freed slot never became usable: {e}"),
        }
    }
    server.shutdown();
}
