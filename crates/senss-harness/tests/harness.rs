//! Integration tests for the sweep executor: determinism across worker
//! counts, per-job panic isolation, retry, cycle budgets, and the
//! content-addressed cache.

use senss_harness::{Harness, HarnessConfig, JobError, JobSpec, SecurityMode, SweepSpec};
use senss_sim::Stats;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use senss_workloads::Workload;

fn small_sweep(name: &str) -> SweepSpec {
    let mut sweep = SweepSpec::new(name);
    sweep.grid(
        &[Workload::Fft, Workload::Lu, Workload::Radix],
        &[2, 4],
        &[1 << 20],
        &[SecurityMode::Baseline, SecurityMode::senss()],
        500,
        7,
    );
    sweep
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "senss-harness-it-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A synthetic runner whose output depends only on the spec, so results
/// are comparable across worker counts without simulator cost.
fn synthetic(spec: &JobSpec) -> Stats {
    Stats {
        total_cycles: spec.seed * 1000 + spec.cores as u64,
        ops_executed: spec.ops_per_core as u64,
        ..Stats::default()
    }
}

#[test]
fn a_servas_job_never_reads_a_cached_senss_cbc_result() {
    // Regression for the senss-backends rollout: the mode tag is part
    // of the canonical form, so a SERVAS job with an otherwise
    // identical shape must miss the cache entry a SENSS-CBC run wrote
    // (and vice versa for every other backend pair).
    let dir = tmp_dir("backend-cache-isolation");
    let shape = JobSpec::new(Workload::Fft, 2, 1 << 20).with_ops(400);
    let senss_job = shape.with_mode(SecurityMode::senss());
    let servas_job = shape.with_mode(SecurityMode::servas());
    assert_ne!(senss_job.cache_key(), servas_job.cache_key());

    let cfg = HarnessConfig::hermetic().with_cache_dir(&dir);
    let mut warm = SweepSpec::new("senss-cbc");
    warm.push(senss_job);
    let first = Harness::new(cfg.clone()).run(&warm).unwrap();
    assert_eq!(first.cached, 0);

    // The SENSS entry is hot now — but the SERVAS job must still run.
    let mut cross = SweepSpec::new("servas");
    cross.push(servas_job);
    let second = Harness::new(cfg.clone()).run(&cross).unwrap();
    assert_eq!(second.cached, 0, "SERVAS read a SENSS-CBC cache line");
    assert_ne!(
        first.records[0].stats, second.records[0].stats,
        "the two modes simulate differently, so a silent hit would corrupt figures"
    );

    // Each mode does hit its *own* entry on re-run, and the record
    // codec round-trips the backend spec it was keyed under.
    for (sweep, job) in [(&warm, senss_job), (&cross, servas_job)] {
        let rerun = Harness::new(cfg.clone()).run(sweep).unwrap();
        assert_eq!(rerun.cached, 1);
        assert_eq!(rerun.records[0].spec, job);
        let line = rerun.records[0].encode();
        let parsed = senss_harness::json::parse(&line).unwrap();
        let decoded = senss_harness::RunRecord::decode(&parsed).unwrap();
        assert_eq!(decoded.spec, job);
        assert!(decoded.cached);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn one_worker_and_many_workers_agree_exactly() {
    let sweep = small_sweep("det");
    let serial = Harness::new(HarnessConfig::hermetic())
        .run(&sweep)
        .unwrap();
    let parallel = Harness::new(HarnessConfig::hermetic().with_workers(4))
        .run(&sweep)
        .unwrap();
    assert!(serial.is_complete() && parallel.is_complete());
    assert_eq!(serial.records.len(), sweep.len());
    // Identical specs, order and stats — worker count must be invisible.
    for (a, b) in serial.records.iter().zip(&parallel.records) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.key, b.key);
        assert_eq!(a.stats, b.stats);
    }
    // Records come back in sweep order.
    for (i, r) in parallel.records.iter().enumerate() {
        assert_eq!(r.index, i);
        assert_eq!(r.spec, sweep.jobs[i]);
    }
}

#[test]
fn a_panicking_job_fails_alone() {
    let mut sweep = SweepSpec::new("panic");
    sweep.grid(
        &[Workload::Fft, Workload::Barnes, Workload::Ocean],
        &[2],
        &[1 << 20],
        &[SecurityMode::Baseline],
        100,
        1,
    );
    let poison = sweep.jobs[1];
    let result = Harness::new(HarnessConfig::hermetic().with_workers(3))
        .run_with(&sweep, |spec| {
            if *spec == poison {
                panic!("injected failure");
            }
            synthetic(spec)
        })
        .unwrap();
    // The poisoned job is the only casualty.
    assert_eq!(result.failures.len(), 1);
    assert_eq!(result.failures[0].spec, poison);
    assert!(matches!(
        &result.failures[0].error,
        JobError::Panicked(msg) if msg.contains("injected failure")
    ));
    assert_eq!(result.records.len(), sweep.len() - 1);
    assert!(result.stats(&poison).is_none());
    assert!(result.stats(&sweep.jobs[0]).is_some());
    assert!(result.stats(&sweep.jobs[2]).is_some());
}

#[test]
fn transient_panics_are_retried_until_the_attempt_budget() {
    let mut sweep = SweepSpec::new("retry");
    sweep.push(JobSpec::new(Workload::Fft, 2, 1 << 20));
    let calls = AtomicUsize::new(0);
    let cfg = HarnessConfig::hermetic()
        .with_max_attempts(3)
        .with_backoff(Duration::from_millis(1));
    // Fails twice, then succeeds: must be rescued on the third attempt.
    let result = Harness::new(cfg.clone())
        .run_with(&sweep, |spec| {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            synthetic(spec)
        })
        .unwrap();
    assert!(result.is_complete());
    assert_eq!(result.records[0].attempts, 3);
    assert_eq!(calls.load(Ordering::SeqCst), 3);

    // Always failing: gives up after exactly max_attempts.
    let calls = AtomicUsize::new(0);
    let result = Harness::new(cfg)
        .run_with(&sweep, |_| -> Stats {
            calls.fetch_add(1, Ordering::SeqCst);
            panic!("permanent")
        })
        .unwrap();
    assert_eq!(result.failures.len(), 1);
    assert_eq!(result.failures[0].attempts, 3);
    assert_eq!(calls.load(Ordering::SeqCst), 3);
}

#[test]
fn cycle_budget_violations_fail_without_retry() {
    let mut sweep = SweepSpec::new("budget");
    sweep.push(JobSpec::new(Workload::Fft, 2, 1 << 20).with_seed(5));
    sweep.push(JobSpec::new(Workload::Fft, 2, 1 << 20).with_seed(1));
    let calls = AtomicUsize::new(0);
    let result = Harness::new(
        HarnessConfig::hermetic()
            .with_max_attempts(3)
            .with_cycle_budget(2_000),
    )
    .run_with(&sweep, |spec| {
        calls.fetch_add(1, Ordering::SeqCst);
        synthetic(spec) // seed 5 ⇒ 5002 cycles > budget; seed 1 ⇒ 1002 ok
    })
    .unwrap();
    assert_eq!(result.records.len(), 1);
    assert_eq!(result.failures.len(), 1);
    assert_eq!(
        result.failures[0].error,
        JobError::CycleBudgetExceeded {
            cycles: 5_002,
            budget: 2_000
        }
    );
    // Deterministic overrun: retrying would waste time, so it must not.
    assert_eq!(calls.load(Ordering::SeqCst), 2);
}

#[test]
fn warm_cache_executes_zero_jobs() {
    let dir = tmp_dir("warm");
    let sweep = small_sweep("cache");
    let cfg = HarnessConfig::hermetic().with_cache_dir(&dir);
    let cold = Harness::new(cfg.clone()).run(&sweep).unwrap();
    assert_eq!(cold.executed, sweep.len());
    assert_eq!(cold.cached, 0);

    let warm = Harness::new(cfg.clone()).run(&sweep).unwrap();
    assert_eq!(warm.executed, 0, "second run must execute nothing");
    assert_eq!(warm.cached, sweep.len());
    for (a, b) in cold.records.iter().zip(&warm.records) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.stats, b.stats);
        assert!(b.cached);
        assert_eq!(b.worker, None);
    }

    // A changed config is a cache miss; the unchanged jobs still hit.
    let mut extended = sweep.clone();
    extended.push(JobSpec::new(Workload::Ocean, 2, 1 << 20).with_ops(500).with_seed(99));
    let mixed = Harness::new(cfg).run(&extended).unwrap();
    assert_eq!(mixed.executed, 1);
    assert_eq!(mixed.cached, sweep.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn run_records_are_written_as_jsonl() {
    let dir = tmp_dir("records");
    let mut sweep = SweepSpec::new("records_sweep");
    sweep.push(JobSpec::new(Workload::Fft, 2, 1 << 20));
    sweep.push(JobSpec::new(Workload::Lu, 2, 1 << 20));
    let result = Harness::new(HarnessConfig::hermetic().with_records_dir(&dir))
        .run_with(&sweep, synthetic)
        .unwrap();
    assert!(result.is_complete());
    let text = std::fs::read_to_string(dir.join("records_sweep.jsonl")).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    for (i, line) in lines.iter().enumerate() {
        let v = senss_harness::json::parse(line).unwrap();
        assert_eq!(v.get("index").unwrap().as_u64(), Some(i as u64));
        assert_eq!(v.get("cached"), Some(&senss_harness::json::Value::Bool(false)));
        assert!(v.get("stats").unwrap().get("total_cycles").is_some());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn aggregate_merges_all_records() {
    let mut sweep = SweepSpec::new("agg");
    sweep.push(JobSpec::new(Workload::Fft, 2, 1 << 20).with_seed(1));
    sweep.push(JobSpec::new(Workload::Fft, 2, 1 << 20).with_seed(2));
    let result = Harness::new(HarnessConfig::hermetic())
        .run_with(&sweep, synthetic)
        .unwrap();
    let total = result.aggregate();
    assert_eq!(total.ops_executed, 2 * 10_000);
    assert_eq!(total.total_cycles, 2_002); // max, not sum
}

#[test]
fn captured_jobs_write_artifacts_and_bypass_the_cache() {
    use senss_harness::TraceCapture;
    let cache = tmp_dir("capture-cache");
    let traces = tmp_dir("capture-traces");
    let plain = JobSpec::new(Workload::Fft, 2, 1 << 20).with_ops(400);
    let cfg = HarnessConfig::hermetic()
        .with_cache_dir(&cache)
        .with_trace_dir(&traces);

    // Warm the cache with the uncaptured spec.
    let mut warm = SweepSpec::new("");
    warm.push(plain);
    Harness::new(cfg.clone()).run(&warm).unwrap();

    // The captured run must execute (an artifact cannot come from the
    // cache) even though its cache key matches the warm entry.
    let mut sweep = SweepSpec::new("");
    sweep.push(plain.with_capture(TraceCapture::Jsonl));
    sweep.push(plain.with_capture(TraceCapture::Chrome).with_seed(9));
    let result = Harness::new(cfg).run(&sweep).unwrap();
    assert!(result.is_complete());
    assert_eq!(result.cached, 0, "capture must bypass the cache");

    let jsonl = result.records[0].trace_artifact.as_deref().unwrap();
    let text = std::fs::read_to_string(jsonl).unwrap();
    assert!(text.lines().count() > 0);
    for line in text.lines() {
        senss_harness::json::parse(line).expect("every trace line is JSON");
    }

    let chrome = result.records[1].trace_artifact.as_deref().unwrap();
    assert!(chrome.ends_with(".trace.json"), "{chrome}");
    let doc = senss_harness::json::parse(&std::fs::read_to_string(chrome).unwrap()).unwrap();
    assert!(doc.get("traceEvents").is_some());

    // Captured stats are bit-identical to the plain run's.
    assert_eq!(&result.records[0].stats, Harness::new(HarnessConfig::hermetic())
        .run(&warm)
        .unwrap()
        .stats(&plain)
        .unwrap());

    std::fs::remove_dir_all(&cache).unwrap();
    std::fs::remove_dir_all(&traces).unwrap();
}
