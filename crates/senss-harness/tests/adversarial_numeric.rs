//! Adversarial numeric inputs against the harness's on-disk codecs.
//!
//! The cache and record layers promise an integer-only world: every
//! number they write is a `u64`, and everything else — floats,
//! exponents, signs, NaN/infinity spellings — must fail loudly (a
//! parse error or a rejected line), never silently truncate to some
//! nearby integer. `u64::MAX` is a legal value everywhere and must
//! round-trip exactly, with no float intermediate to lose precision.

use senss_harness::cache::{ResultCache, CACHE_FILE};
use senss_harness::json::{self, Value};
use senss_harness::record::{decode_spec, encode_spec, RunRecord};
use senss_harness::spec::JobSpec;
use senss_sim::Stats;
use senss_workloads::Workload;

/// Every non-integer numeric spelling a hand-edited or corrupted file
/// could plausibly contain.
const POISON: &[&str] = &[
    "1.5", "-5", "1e9", "1E9", "+7", "NaN", "nan", "Infinity", "-Infinity", "inf", "0x10",
    "18446744073709551616", // u64::MAX + 1
];

#[test]
fn json_parser_rejects_every_poison_spelling() {
    for bad in POISON {
        assert!(
            json::parse(bad).is_err(),
            "bare {bad:?} must not parse as a value"
        );
        let in_obj = format!("{{\"total_cycles\":{bad}}}");
        assert!(
            json::parse(&in_obj).is_err(),
            "{in_obj:?} must not parse as an object"
        );
    }
}

#[test]
fn u64_max_round_trips_exactly_through_stats() {
    let stats = Stats {
        total_cycles: u64::MAX,
        bus_bytes: u64::MAX,
        ops_executed: u64::MAX - 1,
        core_finish_times: vec![u64::MAX, 0],
        core_ops: vec![u64::MAX],
        ..Stats::default()
    };
    let line = senss_harness::record::encode_stats(&stats).encode();
    assert!(
        line.contains(&u64::MAX.to_string()),
        "u64::MAX must be written in full: {line}"
    );
    let back = senss_harness::record::decode_stats(&json::parse(&line).unwrap()).unwrap();
    assert_eq!(back, stats, "no precision loss allowed anywhere");
}

#[test]
fn u64_max_round_trips_through_spec_fields() {
    let spec = JobSpec::new(Workload::Fft, 2, 1 << 20).with_seed(u64::MAX);
    assert_eq!(decode_spec(&Value::Obj(encode_spec(&spec))), Some(spec));
}

#[test]
fn poisoned_record_lines_are_rejected_not_mangled() {
    let spec = JobSpec::new(Workload::Fft, 2, 1 << 20).with_ops(100);
    let rec = RunRecord {
        index: 0,
        spec,
        key: spec.cache_key(),
        stats: Stats {
            total_cycles: 123_456,
            ..Stats::default()
        },
        wall_micros: 9,
        worker: Some(0),
        attempts: 1,
        cached: false,
        trace_artifact: None,
    };
    let line = rec.encode();
    assert_eq!(RunRecord::decode(&json::parse(&line).unwrap()), Some(rec));
    for bad in POISON {
        let poisoned = line.replacen("123456", bad, 1);
        assert_ne!(poisoned, line, "substitution must have happened");
        // Either the whole line fails to parse, or (never) it parses to
        // something — in which case decoding must not produce a record
        // with a silently-altered counter.
        if let Ok(v) = json::parse(&poisoned) {
            panic!("poisoned line parsed: {bad} -> {v:?}");
        }
    }
}

#[test]
fn cache_skips_poisoned_lines_and_keeps_exact_values() {
    let dir = std::env::temp_dir().join(format!(
        "senss-harness-adversarial-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let stats = Stats {
        total_cycles: u64::MAX,
        ..Stats::default()
    };
    let good = Value::Obj(vec![
        ("key".into(), Value::Str("exact".into())),
        ("stats".into(), senss_harness::record::encode_stats(&stats)),
    ])
    .encode();
    let mut file = String::new();
    for bad in POISON {
        file.push_str(&format!("{{\"key\":\"p\",\"stats\":{{\"total_cycles\":{bad}}}}}\n"));
    }
    file.push_str(&good);
    file.push('\n');
    std::fs::write(dir.join(CACHE_FILE), file).unwrap();
    let cache = ResultCache::open(&dir).unwrap();
    assert_eq!(
        cache.skipped(),
        POISON.len(),
        "every poisoned line must be counted as skipped"
    );
    assert_eq!(cache.len(), 1);
    assert_eq!(
        cache.get("exact").unwrap().total_cycles,
        u64::MAX,
        "u64::MAX must survive the disk round-trip exactly"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
