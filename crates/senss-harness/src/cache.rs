//! Content-addressed result cache, persisted as JSONL.
//!
//! Each entry maps a [`JobSpec::cache_key`] to the full [`Stats`] of a
//! completed run, one JSON object per line in `<dir>/cache.jsonl`. A
//! re-run of `run_figures.sh` therefore only executes configs whose key
//! is absent — i.e. configs that changed (any architectural parameter,
//! security knob, ops count, seed, or the [`CACHE_FORMAT`] version).
//!
//! Robustness rules:
//! * corrupt or truncated lines are skipped, never fatal;
//! * duplicate keys resolve to the *last* line (append-wins);
//! * the file is append-only during a sweep, so a crash mid-run loses at
//!   most the in-flight entry.
//!
//! [`JobSpec::cache_key`]: crate::spec::JobSpec::cache_key
//! [`CACHE_FORMAT`]: crate::spec::CACHE_FORMAT

use crate::json::{self, Value};
use crate::record::{decode_stats, encode_stats};
use senss_sim::Stats;
use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// The on-disk cache file name inside the cache directory.
pub const CACHE_FILE: &str = "cache.jsonl";

/// An open result cache.
#[derive(Debug)]
pub struct ResultCache {
    path: PathBuf,
    entries: HashMap<String, Stats>,
    skipped: usize,
}

impl ResultCache {
    /// Opens (creating if needed) the cache under `dir`.
    ///
    /// Loading is damage-tolerant: lines that are not valid UTF-8, not
    /// parseable JSON, or not shaped like a cache entry (e.g. truncated
    /// by a crash mid-append) are skipped and counted — a partially
    /// corrupt cache degrades to a partially warm cache, it never fails
    /// the run. The skip count is reported by
    /// [`skipped`](ResultCache::skipped).
    pub fn open(dir: &Path) -> std::io::Result<ResultCache> {
        fs::create_dir_all(dir)?;
        let path = dir.join(CACHE_FILE);
        let mut entries = HashMap::new();
        let mut skipped = 0;
        match File::open(&path) {
            Ok(f) => {
                let mut reader = BufReader::new(f);
                let mut raw = Vec::new();
                loop {
                    raw.clear();
                    if reader.read_until(b'\n', &mut raw)? == 0 {
                        break;
                    }
                    let Ok(line) = std::str::from_utf8(&raw) else {
                        skipped += 1;
                        continue;
                    };
                    if line.trim().is_empty() {
                        continue;
                    }
                    match parse_entry(line.trim_end_matches(['\r', '\n'])) {
                        Some((key, stats)) => {
                            entries.insert(key, stats);
                        }
                        None => skipped += 1,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        if skipped > 0 {
            warn_corrupt_once(&path, skipped);
        }
        Ok(ResultCache {
            path,
            entries,
            skipped,
        })
    }

    /// Number of on-disk lines that were corrupt or truncated and had
    /// to be skipped while loading.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no results.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a result by cache key.
    pub fn get(&self, key: &str) -> Option<&Stats> {
        self.entries.get(key)
    }

    /// Records a result, appending it to the JSONL file.
    pub fn put(&mut self, key: &str, stats: &Stats) -> std::io::Result<()> {
        let line = Value::Obj(vec![
            ("key".into(), Value::Str(key.to_string())),
            ("stats".into(), encode_stats(stats)),
        ])
        .encode();
        let mut f = OpenOptions::new().create(true).append(true).open(&self.path)?;
        writeln!(f, "{line}")?;
        self.entries.insert(key.to_string(), stats.clone());
        Ok(())
    }
}

/// Warns about corrupt lines at most once per cache file per process.
/// Long-running hosts (`senss-serve`) reopen the same cache for every
/// sweep; a damaged file would otherwise spam one warning per job
/// submission. The count still reaches callers through
/// [`ResultCache::skipped`] on every open.
fn warn_corrupt_once(path: &Path, skipped: usize) {
    static WARNED: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    let warned = WARNED.get_or_init(|| Mutex::new(HashSet::new()));
    let mut warned = warned
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if warned.insert(path.to_path_buf()) {
        eprintln!(
            "harness: skipped {skipped} corrupt cache line(s) in {}; \
             affected jobs will re-execute (warning shown once per file)",
            path.display()
        );
    }
}

fn parse_entry(line: &str) -> Option<(String, Stats)> {
    let v = json::parse(line).ok()?;
    let key = v.get("key")?.as_str()?.to_string();
    let stats = decode_stats(v.get("stats")?)?;
    Some((key, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "senss-harness-cache-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrips_through_disk() {
        let dir = tmp_dir("roundtrip");
        let stats = Stats {
            total_cycles: 42,
            core_ops: vec![21, 21],
            ..Stats::default()
        };
        {
            let mut c = ResultCache::open(&dir).unwrap();
            assert!(c.is_empty());
            c.put("k1", &stats).unwrap();
            assert_eq!(c.get("k1"), Some(&stats));
        }
        let c = ResultCache::open(&dir).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("k1"), Some(&stats));
        assert_eq!(c.get("k2"), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_lines_are_skipped_and_last_write_wins() {
        let dir = tmp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        let older = Value::Obj(vec![
            ("key".into(), Value::Str("dup".into())),
            ("stats".into(), encode_stats(&Stats { total_cycles: 1, ..Stats::default() })),
        ])
        .encode();
        let newer = Value::Obj(vec![
            ("key".into(), Value::Str("dup".into())),
            ("stats".into(), encode_stats(&Stats { total_cycles: 2, ..Stats::default() })),
        ])
        .encode();
        fs::write(
            dir.join(CACHE_FILE),
            format!("{older}\nnot json at all\n{{\"key\":\"half\"\n{newer}\n"),
        )
        .unwrap();
        let c = ResultCache::open(&dir).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("dup").unwrap().total_cycles, 2);
        assert_eq!(c.skipped(), 2, "both corrupt lines must be counted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mangled_cache_file_degrades_instead_of_failing() {
        let dir = tmp_dir("mangled");
        fs::create_dir_all(&dir).unwrap();
        let good = Value::Obj(vec![
            ("key".into(), Value::Str("ok".into())),
            (
                "stats".into(),
                encode_stats(&Stats {
                    total_cycles: 7,
                    ..Stats::default()
                }),
            ),
        ])
        .encode();
        // A valid entry surrounded by: raw invalid UTF-8, a truncated
        // (crash mid-append) line, a wrong-shape object, and an empty
        // line. Only the invalid ones count as skipped.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"\xff\xfe\x80 garbage bytes\n");
        bytes.extend_from_slice(good.as_bytes());
        bytes.extend_from_slice(b"\n");
        bytes.extend_from_slice(&good.as_bytes()[..good.len() / 2]);
        bytes.extend_from_slice(b"\n");
        bytes.extend_from_slice(b"{\"stats\":{}}\n");
        bytes.extend_from_slice(b"\n");
        fs::write(dir.join(CACHE_FILE), bytes).unwrap();
        let c = ResultCache::open(&dir).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("ok").unwrap().total_cycles, 7);
        assert_eq!(c.skipped(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn final_line_without_newline_still_loads() {
        let dir = tmp_dir("nonewline");
        fs::create_dir_all(&dir).unwrap();
        let good = Value::Obj(vec![
            ("key".into(), Value::Str("tail".into())),
            (
                "stats".into(),
                encode_stats(&Stats {
                    total_cycles: 3,
                    ..Stats::default()
                }),
            ),
        ])
        .encode();
        fs::write(dir.join(CACHE_FILE), good.as_bytes()).unwrap();
        let c = ResultCache::open(&dir).unwrap();
        assert_eq!(c.get("tail").unwrap().total_cycles, 3);
        assert_eq!(c.skipped(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
