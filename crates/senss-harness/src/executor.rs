//! The parallel, fault-tolerant sweep executor.
//!
//! Jobs are dispatched from a shared work queue to a pool of worker
//! threads (worker count defaults to the machine's available
//! parallelism, overridable with `HARNESS_WORKERS`). Each job runs
//! under [`std::panic::catch_unwind`], so a poisoned configuration
//! fails alone instead of sinking the sweep; failures classified as
//! transient are retried with exponential backoff up to a bounded
//! attempt count. Results are re-ordered by job index before being
//! returned, so the output is identical no matter how many workers ran
//! or in which order they finished.

use crate::cache::ResultCache;
use crate::record::RunRecord;
use crate::spec::{JobSpec, SweepSpec};
use senss_sim::Stats;
use senss_snapshot::Snapshot;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Worker thread count (clamped to at least 1).
    pub workers: usize,
    /// Maximum attempts per job (1 = no retry).
    pub max_attempts: u32,
    /// Base backoff between attempts; doubles per retry.
    pub backoff: Duration,
    /// Fail any job whose simulated `total_cycles` exceeds this budget.
    pub cycle_budget: Option<u64>,
    /// Cache directory (`None` disables caching).
    pub cache_dir: Option<PathBuf>,
    /// Where run-record JSONL files are written (`None` disables).
    pub records_dir: Option<PathBuf>,
    /// Where trace artifacts of captured jobs are written (`None`
    /// disables capture even for jobs that request it).
    pub trace_dir: Option<PathBuf>,
    /// Warm-start forking: sweep points identical except for
    /// `ops_per_core` share their simulated prefix by forking one
    /// checkpoint instead of re-simulating it. Results are
    /// bit-identical to cold runs (and cached under the same keys);
    /// only wall-clock changes.
    pub warm_start: bool,
    /// Checkpoint period in simulated cycles. When set, uncaptured jobs
    /// snapshot every `n` cycles and a panicking attempt resumes from
    /// the last good checkpoint instead of cycle 0.
    pub checkpoint_every: Option<u64>,
}

impl HarnessConfig {
    /// Configuration from the environment, the one the figure binaries
    /// use:
    ///
    /// * `HARNESS_WORKERS` — worker count (default: available
    ///   parallelism);
    /// * `HARNESS_RETRIES` — retries after the first attempt (default 2);
    /// * `HARNESS_CYCLE_BUDGET` — per-job simulated-cycle budget
    ///   (default: none);
    /// * `HARNESS_NO_CACHE` — any value disables the result cache;
    /// * `HARNESS_WARM_START` — any value but `0` enables warm-start
    ///   forking of ops-per-core sweeps (default off);
    /// * `HARNESS_CHECKPOINT_CYCLES` — checkpoint period in simulated
    ///   cycles for resumable runs (default: no checkpoints);
    /// * cache lives under `results/cache/`, records under
    ///   `results/records/`.
    ///
    /// # Panics
    ///
    /// Panics with a message naming the variable if a set numeric
    /// variable does not parse — a typo like `HARNESS_CYCLE_BUDGET=abc`
    /// must not silently run the sweep with the budget dropped.
    pub fn from_env() -> HarnessConfig {
        Self::from_lookup(|key| std::env::var(key).ok())
    }

    /// [`from_env`](HarnessConfig::from_env) with the variable lookup
    /// injected, so tests can exercise parsing without racing on the
    /// process environment.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> HarnessConfig {
        fn parsed<T: std::str::FromStr>(key: &str, value: &str) -> T {
            value.parse().unwrap_or_else(|_| {
                panic!("{key} must be a non-negative integer, got {value:?}")
            })
        }
        let env_usize = |key: &str| lookup(key).map(|v| parsed::<usize>(key, &v));
        let workers = env_usize("HARNESS_WORKERS").unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        HarnessConfig {
            workers,
            max_attempts: 1 + env_usize("HARNESS_RETRIES").unwrap_or(2) as u32,
            backoff: Duration::from_millis(50),
            cycle_budget: lookup("HARNESS_CYCLE_BUDGET")
                .map(|v| parsed::<u64>("HARNESS_CYCLE_BUDGET", &v)),
            cache_dir: if lookup("HARNESS_NO_CACHE").is_some() {
                None
            } else {
                Some(PathBuf::from("results/cache"))
            },
            records_dir: Some(PathBuf::from("results/records")),
            trace_dir: Some(PathBuf::from("results/traces")),
            warm_start: lookup("HARNESS_WARM_START").map(|v| v != "0").unwrap_or(false),
            checkpoint_every: lookup("HARNESS_CHECKPOINT_CYCLES")
                .map(|v| parsed::<u64>("HARNESS_CHECKPOINT_CYCLES", &v)),
        }
    }

    /// A hermetic configuration for tests: one worker, no cache, no
    /// records, no retries.
    pub fn hermetic() -> HarnessConfig {
        HarnessConfig {
            workers: 1,
            max_attempts: 1,
            backoff: Duration::from_millis(1),
            cycle_budget: None,
            cache_dir: None,
            records_dir: None,
            trace_dir: None,
            warm_start: false,
            checkpoint_every: None,
        }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> HarnessConfig {
        self.workers = workers;
        self
    }

    /// Sets the maximum attempts per job.
    pub fn with_max_attempts(mut self, attempts: u32) -> HarnessConfig {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the base retry backoff.
    pub fn with_backoff(mut self, backoff: Duration) -> HarnessConfig {
        self.backoff = backoff;
        self
    }

    /// Sets the per-job cycle budget.
    pub fn with_cycle_budget(mut self, budget: u64) -> HarnessConfig {
        self.cycle_budget = Some(budget);
        self
    }

    /// Sets the cache directory.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> HarnessConfig {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sets the records directory.
    pub fn with_records_dir(mut self, dir: impl Into<PathBuf>) -> HarnessConfig {
        self.records_dir = Some(dir.into());
        self
    }

    /// Sets the trace-artifact directory.
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> HarnessConfig {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Enables or disables warm-start forking.
    pub fn with_warm_start(mut self, on: bool) -> HarnessConfig {
        self.warm_start = on;
        self
    }

    /// Sets the checkpoint period for resumable runs (cycles).
    pub fn with_checkpoint_every(mut self, cycles: u64) -> HarnessConfig {
        self.checkpoint_every = Some(cycles);
        self
    }
}

/// Why a job failed for good.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked on every attempt; carries the last panic
    /// message.
    Panicked(String),
    /// The run completed but blew the configured cycle budget
    /// (deterministic, so never retried).
    CycleBudgetExceeded {
        /// Simulated cycles the run took.
        cycles: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl JobError {
    /// Whether another attempt could plausibly change the outcome.
    fn retryable(&self) -> bool {
        matches!(self, JobError::Panicked(_))
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::CycleBudgetExceeded { cycles, budget } => {
                write!(f, "cycle budget exceeded: {cycles} > {budget}")
            }
        }
    }
}

/// A job that failed after exhausting its attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Position in the sweep.
    pub index: usize,
    /// The failed job.
    pub spec: JobSpec,
    /// Final error.
    pub error: JobError,
    /// Attempts consumed.
    pub attempts: u32,
}

/// The outcome of running a sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// Sweep name.
    pub name: String,
    /// Successful records, ordered by job index.
    pub records: Vec<RunRecord>,
    /// Failed jobs, ordered by job index.
    pub failures: Vec<JobFailure>,
    /// Jobs actually executed this run (cache misses that succeeded or
    /// failed).
    pub executed: usize,
    /// Jobs served from the cache.
    pub cached: usize,
    /// Jobs whose result came from a warm-start fork (a subset of
    /// `executed`): their shared prefix was restored from a checkpoint
    /// instead of re-simulated.
    pub forked: usize,
    /// Corrupt or truncated cache lines skipped while opening the
    /// result cache for this sweep (0 when the cache is off). Non-zero
    /// means the on-disk cache was damaged and some hits degraded to
    /// re-executions.
    pub cache_skipped: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time for the whole sweep.
    pub wall: Duration,
    by_spec: HashMap<JobSpec, usize>,
}

impl SweepResult {
    /// The stats of the record matching `spec`, if it succeeded.
    pub fn stats(&self, spec: &JobSpec) -> Option<&Stats> {
        self.by_spec.get(spec).map(|&i| &self.records[i].stats)
    }

    /// Like [`stats`](SweepResult::stats) but panics with a diagnostic —
    /// the figure binaries treat a missing result as fatal.
    ///
    /// # Panics
    ///
    /// Panics if the job is absent or failed.
    pub fn require(&self, spec: &JobSpec) -> &Stats {
        self.stats(spec).unwrap_or_else(|| {
            panic!(
                "no successful result for job {spec:?} in sweep {:?} \
                 ({} records, {} failures)",
                self.name,
                self.records.len(),
                self.failures.len()
            )
        })
    }

    /// Whether every job produced a result.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Additive aggregate of every successful record's stats
    /// (via [`Stats::merge`]).
    pub fn aggregate(&self) -> Stats {
        let mut total = Stats::default();
        for r in &self.records {
            total.merge(&r.stats);
        }
        total
    }

    /// Assembles a result from already-materialized records — the path
    /// `senss-bench` takes when a sweep was executed remotely by
    /// `senss-serve`. Records are re-sorted by job index and the
    /// executed/cached split is recomputed from each record's
    /// provenance flag; the failure list is empty (a remote sweep with
    /// failures is reported through the serve protocol instead).
    pub fn from_records(
        name: impl Into<String>,
        mut records: Vec<RunRecord>,
        workers: usize,
        wall: Duration,
    ) -> SweepResult {
        records.sort_by_key(|r| r.index);
        let cached = records.iter().filter(|r| r.cached).count();
        let executed = records.len() - cached;
        let by_spec = records.iter().enumerate().map(|(i, r)| (r.spec, i)).collect();
        SweepResult {
            name: name.into(),
            records,
            failures: Vec::new(),
            executed,
            cached,
            forked: 0,
            cache_skipped: 0,
            workers,
            wall,
            by_spec,
        }
    }

    /// One-line human summary (the binaries print this to stderr).
    pub fn summary(&self) -> String {
        let forked = if self.forked > 0 {
            format!(" ({} warm-forked)", self.forked)
        } else {
            String::new()
        };
        format!(
            "harness[{}]: {} executed{forked}, {} cached, {} failed on {} worker{} in {:.2?}",
            self.name,
            self.executed,
            self.cached,
            self.failures.len(),
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            self.wall
        )
    }
}

enum WorkerMsg {
    Done {
        index: usize,
        stats: Stats,
        wall_micros: u64,
        worker: usize,
        attempts: u32,
        trace_artifact: Option<String>,
        forked: bool,
    },
    Failed(JobFailure),
}

/// A unit of work on the dispatch queue: either one job, or a
/// warm-start fork group (indices sorted by ascending ops-per-core)
/// whose members share a simulated prefix.
enum WorkItem {
    Single(usize),
    Group(Vec<usize>),
}

/// The sweep executor.
#[derive(Debug)]
pub struct Harness {
    cfg: HarnessConfig,
}

impl Harness {
    /// An executor with an explicit configuration.
    pub fn new(cfg: HarnessConfig) -> Harness {
        Harness { cfg }
    }

    /// An executor configured from the environment
    /// ([`HarnessConfig::from_env`]).
    pub fn from_env() -> Harness {
        Harness::new(HarnessConfig::from_env())
    }

    /// Runs the sweep with the production runner ([`JobSpec::run`]).
    /// Jobs whose spec requests a [`TraceCapture`](crate::spec::TraceCapture)
    /// additionally write a trace artifact under
    /// [`HarnessConfig::trace_dir`] (named by cache key), recorded in
    /// their [`RunRecord::trace_artifact`].
    pub fn run(&self, sweep: &SweepSpec) -> std::io::Result<SweepResult> {
        self.run_observed(sweep, |_| {})
    }

    /// Like [`run`](Harness::run), but invokes `on_record` once per
    /// completed [`RunRecord`] — cache hits included — as each becomes
    /// available, before the sweep as a whole finishes.
    ///
    /// Records are observed in **completion order**, not sweep order
    /// (the returned [`SweepResult`] is still index-ordered as always);
    /// each carries its [`RunRecord::index`], so observers that need
    /// ordering can slot records by index. `senss-serve` uses this to
    /// stream result lines to clients while the sweep is still
    /// running. The callback runs on the collector thread; keep it
    /// short or the sweep stalls.
    pub fn run_observed(
        &self,
        sweep: &SweepSpec,
        on_record: impl Fn(&RunRecord) + Sync,
    ) -> std::io::Result<SweepResult> {
        let trace_dir = self.cfg.trace_dir.clone();
        let checkpoint_every = self.cfg.checkpoint_every;
        let max_attempts = self.cfg.max_attempts;
        self.run_rich(
            sweep,
            move |spec| match (spec.capture, &trace_dir) {
                (Some(capture), Some(dir)) => capture_run(spec, capture, dir),
                _ => match checkpoint_every {
                    Some(every) => (resumable_run(spec, every, max_attempts), None),
                    None => (spec.run(), None),
                },
            },
            self.cfg.warm_start,
            &on_record,
        )
    }

    /// Runs the sweep with a caller-supplied job runner. Used by the
    /// fault-injection tests; the runner must be deterministic for the
    /// cache to be meaningful. Custom runners never capture traces,
    /// and warm-start forking is disabled (the executor cannot fork
    /// what an arbitrary runner computes).
    pub fn run_with<F>(&self, sweep: &SweepSpec, runner: F) -> std::io::Result<SweepResult>
    where
        F: Fn(&JobSpec) -> Stats + Sync,
    {
        self.run_with_observed(sweep, runner, |_| {})
    }

    /// [`run_with`](Harness::run_with) plus the per-record observer of
    /// [`run_observed`](Harness::run_observed).
    pub fn run_with_observed<F>(
        &self,
        sweep: &SweepSpec,
        runner: F,
        on_record: impl Fn(&RunRecord) + Sync,
    ) -> std::io::Result<SweepResult>
    where
        F: Fn(&JobSpec) -> Stats + Sync,
    {
        self.run_rich(sweep, |spec| (runner(spec), None), false, &on_record)
    }

    fn run_rich<F>(
        &self,
        sweep: &SweepSpec,
        runner: F,
        warm_start: bool,
        on_record: &(dyn Fn(&RunRecord) + Sync),
    ) -> std::io::Result<SweepResult>
    where
        F: Fn(&JobSpec) -> (Stats, Option<String>) + Sync,
    {
        let started = Instant::now();
        // Corrupt-line warnings are emitted (once per file) by
        // `ResultCache::open` itself; here we only carry the count into
        // the result so hosts like senss-serve can surface it.
        let mut cache = match &self.cfg.cache_dir {
            Some(dir) => Some(ResultCache::open(dir)?),
            None => None,
        };
        let cache_skipped = cache.as_ref().map_or(0, ResultCache::skipped);

        // Partition into cache hits and jobs that must execute.
        let keys: Vec<String> = sweep.jobs.iter().map(JobSpec::cache_key).collect();
        let mut slots: Vec<Option<RunRecord>> = Vec::with_capacity(sweep.jobs.len());
        let mut pending: VecDeque<usize> = VecDeque::new();
        for (index, spec) in sweep.jobs.iter().enumerate() {
            // A cache hit would skip the simulation and produce no
            // artifact, so jobs that can capture always execute.
            let wants_artifact = spec.capture.is_some() && self.cfg.trace_dir.is_some();
            let hit = (!wants_artifact)
                .then(|| cache.as_ref().and_then(|c| c.get(&keys[index])))
                .flatten();
            match hit {
                Some(stats) => {
                    let record = RunRecord {
                        index,
                        spec: *spec,
                        key: keys[index].clone(),
                        stats: stats.clone(),
                        wall_micros: 0,
                        worker: None,
                        attempts: 0,
                        cached: true,
                        trace_artifact: None,
                    };
                    on_record(&record);
                    slots.push(Some(record));
                }
                None => {
                    slots.push(None);
                    pending.push_back(index);
                }
            }
        }
        let cached = sweep.jobs.len() - pending.len();
        let to_execute = pending.len();

        let mut failures: Vec<JobFailure> = Vec::new();
        let mut forked = 0usize;
        if !pending.is_empty() {
            let items = if warm_start {
                plan_fork_groups(&sweep.jobs, &pending)
            } else {
                pending.into_iter().map(WorkItem::Single).collect()
            };
            let workers = self.cfg.workers.max(1).min(items.len());
            let queue = Mutex::new(items);
            let (tx, rx) = mpsc::channel::<WorkerMsg>();
            let jobs = &sweep.jobs;
            let cfg = &self.cfg;
            let runner = &runner;
            std::thread::scope(|scope| {
                for worker in 0..workers {
                    let tx = tx.clone();
                    let queue = &queue;
                    scope.spawn(move || {
                        loop {
                            // Recover the queue even if a sibling worker
                        // panicked while holding the lock: the items
                        // inside are still sound, and abandoning them
                        // would silently truncate the sweep.
                        let item = match queue
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .pop_front()
                        {
                                Some(i) => i,
                                None => break,
                            };
                            let msgs = match item {
                                WorkItem::Single(index) => {
                                    vec![run_one(cfg, runner, &jobs[index], index, worker)]
                                }
                                WorkItem::Group(indices) => {
                                    run_fork_group(cfg, runner, jobs, &indices, worker)
                                }
                            };
                            if msgs.into_iter().any(|m| tx.send(m).is_err()) {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                // Collect on the main thread, which is also the only
                // cache writer.
                for msg in rx {
                    match msg {
                        WorkerMsg::Done {
                            index,
                            stats,
                            wall_micros,
                            worker,
                            attempts,
                            trace_artifact,
                            forked: was_forked,
                        } => {
                            forked += was_forked as usize;
                            if let Some(c) = cache.as_mut() {
                                // Append errors are demoted to warnings:
                                // losing a cache entry never loses a run.
                                if let Err(e) = c.put(&keys[index], &stats) {
                                    eprintln!("harness: cache write failed: {e}");
                                }
                            }
                            let record = RunRecord {
                                index,
                                spec: jobs[index],
                                key: keys[index].clone(),
                                stats,
                                wall_micros,
                                worker: Some(worker),
                                attempts,
                                cached: false,
                                trace_artifact,
                            };
                            on_record(&record);
                            slots[index] = Some(record);
                        }
                        WorkerMsg::Failed(failure) => failures.push(failure),
                    }
                }
            });
        }

        failures.sort_by_key(|f| f.index);
        let records: Vec<RunRecord> = slots.into_iter().flatten().collect();
        let mut by_spec = HashMap::new();
        for (i, r) in records.iter().enumerate() {
            by_spec.insert(r.spec, i);
        }
        let result = SweepResult {
            name: sweep.name.clone(),
            records,
            failures,
            executed: to_execute,
            cached,
            forked,
            cache_skipped,
            workers: self.cfg.workers.max(1),
            wall: started.elapsed(),
            by_spec,
        };
        self.write_records(&result)?;
        Ok(result)
    }

    fn write_records(&self, result: &SweepResult) -> std::io::Result<()> {
        let Some(dir) = &self.cfg.records_dir else {
            return Ok(());
        };
        if result.name.is_empty() {
            return Ok(());
        }
        std::fs::create_dir_all(dir)?;
        let mut out = String::new();
        for r in &result.records {
            out.push_str(&r.encode());
            out.push('\n');
        }
        std::fs::write(dir.join(format!("{}.jsonl", result.name)), out)
    }
}

/// Runs a captured job, writing its trace artifact under `dir`.
///
/// Artifact I/O failures are demoted to warnings — losing a trace file
/// never loses a run — and surface as a `None` artifact path.
fn capture_run(
    spec: &JobSpec,
    capture: crate::spec::TraceCapture,
    dir: &std::path::Path,
) -> (Stats, Option<String>) {
    use crate::spec::TraceCapture;
    use senss_trace::{chrome_trace, JsonlSink, RingSink};
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("harness: cannot create trace dir {}: {e}", dir.display());
        return (spec.run(), None);
    }
    let path = dir.join(format!("{}.{}", spec.cache_key(), capture.extension()));
    match capture {
        TraceCapture::Jsonl => {
            let sink = match JsonlSink::create(&path) {
                Ok(sink) => sink,
                Err(e) => {
                    eprintln!("harness: cannot open {}: {e}", path.display());
                    return (spec.run(), None);
                }
            };
            let (stats, sink) = spec.run_with_sink(sink);
            match sink.finish() {
                Ok(_) => (stats, Some(path.display().to_string())),
                Err(e) => {
                    eprintln!("harness: trace write to {} failed: {e}", path.display());
                    (stats, None)
                }
            }
        }
        TraceCapture::Chrome => {
            let (stats, sink) = spec.run_with_sink(RingSink::new());
            if sink.dropped() > 0 {
                eprintln!(
                    "harness: ring capacity exceeded for {}; dropped {} oldest event(s)",
                    path.display(),
                    sink.dropped()
                );
            }
            match std::fs::write(&path, chrome_trace(sink.events())) {
                Ok(()) => (stats, Some(path.display().to_string())),
                Err(e) => {
                    eprintln!("harness: trace write to {} failed: {e}", path.display());
                    (stats, None)
                }
            }
        }
    }
}

/// Partitions pending job indices into warm-start fork groups.
///
/// A group is two or more uncaptured jobs that are identical except for
/// `ops_per_core` — they simulate the same prefix, so one checkpoint
/// can seed them all. Everything else stays a [`WorkItem::Single`].
/// First-occurrence order is preserved so scheduling stays
/// deterministic.
fn plan_fork_groups(jobs: &[JobSpec], pending: &VecDeque<usize>) -> VecDeque<WorkItem> {
    let mut groups: HashMap<JobSpec, Vec<usize>> = HashMap::new();
    let mut order: Vec<JobSpec> = Vec::new();
    for &index in pending {
        let spec = &jobs[index];
        // Captured jobs must stream events from cycle 0, so they never
        // join a group.
        if spec.capture.is_some() {
            continue;
        }
        let key = JobSpec {
            ops_per_core: 0,
            ..*spec
        };
        let entry = groups.entry(key).or_default();
        if entry.is_empty() {
            order.push(key);
        }
        entry.push(index);
    }
    let mut grouped: HashMap<JobSpec, Vec<usize>> = HashMap::new();
    for key in &order {
        let members = &groups[key];
        if members.len() >= 2 {
            let mut sorted = members.clone();
            sorted.sort_by_key(|&i| (jobs[i].ops_per_core, i));
            grouped.insert(*key, sorted);
        }
    }
    let mut items = VecDeque::new();
    let mut emitted: HashMap<JobSpec, bool> = HashMap::new();
    for &index in pending {
        let spec = &jobs[index];
        let key = JobSpec {
            ops_per_core: 0,
            ..*spec
        };
        match (spec.capture.is_none()).then(|| grouped.get(&key)).flatten() {
            Some(members) => {
                // Emit the whole group at the first member's position.
                if !emitted.get(&key).copied().unwrap_or(false) {
                    emitted.insert(key, true);
                    items.push_back(WorkItem::Group(members.clone()));
                }
            }
            None => items.push_back(WorkItem::Single(index)),
        }
    }
    items
}

/// Executes a warm-start fork group, falling back to individual cold
/// runs if the prefix-sharing assumption does not hold (non-prefix
/// trace generator, too-short runs, or a panic).
fn run_fork_group<F>(
    cfg: &HarnessConfig,
    runner: &F,
    jobs: &[JobSpec],
    indices: &[usize],
    worker: usize,
) -> Vec<WorkerMsg>
where
    F: Fn(&JobSpec) -> (Stats, Option<String>) + Sync,
{
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| warm_start_group(jobs, indices)));
    let results = match outcome {
        Ok(Ok(results)) => results,
        Ok(Err(reason)) => {
            eprintln!("harness: warm-start fork unavailable ({reason}); running group cold");
            return indices
                .iter()
                .map(|&i| run_one(cfg, runner, &jobs[i], i, worker))
                .collect();
        }
        Err(payload) => {
            eprintln!(
                "harness: warm-start fork panicked ({}); running group cold",
                panic_message(payload.as_ref())
            );
            return indices
                .iter()
                .map(|&i| run_one(cfg, runner, &jobs[i], i, worker))
                .collect();
        }
    };
    let wall_micros = started.elapsed().as_micros() as u64;
    results
        .into_iter()
        .map(|(index, stats, forked)| match cfg.cycle_budget {
            Some(budget) if stats.total_cycles > budget => WorkerMsg::Failed(JobFailure {
                index,
                spec: jobs[index],
                error: JobError::CycleBudgetExceeded {
                    cycles: stats.total_cycles,
                    budget,
                },
                attempts: 1,
            }),
            _ => WorkerMsg::Done {
                index,
                stats,
                wall_micros,
                worker,
                attempts: 1,
                trace_artifact: None,
                forked,
            },
        })
        .collect()
}

/// Runs a fork group: the shortest member cold (to learn how long the
/// shared prefix safely is), the longest member cold with a checkpoint
/// captured mid-prefix, and every other member by forking that
/// checkpoint onto its own (longer-or-equal) traces.
///
/// Returns `(index, stats, was_forked)` per member. Errors mean the
/// group must fall back to cold runs; determinism guarantees the
/// fallback produces the same stats.
fn warm_start_group(
    jobs: &[JobSpec],
    indices: &[usize],
) -> Result<Vec<(usize, Stats, bool)>, String> {
    let shortest = &jobs[indices[0]];
    let short_stats = shortest.build_system().run();
    // No core may run dry before the fork point in ANY member, and
    // every member has at least as many ops as the shortest, so any
    // cycle strictly before the shortest run's first core finish is a
    // shared prefix. 3/4 of it amortizes most of the win while keeping
    // a safety margin.
    let f_min = short_stats
        .core_finish_times
        .iter()
        .copied()
        .min()
        .unwrap_or(0);
    let fork_at = f_min.saturating_mul(3) / 4;
    let mut out = vec![(indices[0], short_stats, false)];
    if fork_at == 0 {
        return Err("prefix too short to fork".into());
    }
    let last = *indices.last().expect("groups have >= 2 members");
    let mut sys = jobs[last].build_system();
    sys.run_until(fork_at);
    let snap = Snapshot::capture(&sys, fork_at);
    out.push((last, sys.finish(), false));
    for &index in &indices[1..indices.len() - 1] {
        let mut fork = snap.clone();
        fork.replace_traces(jobs[index].traces())
            .map_err(|e| format!("job {index}: {e}"))?;
        let stats = fork.restore(jobs[index].build_extension()).finish();
        out.push((index, stats, true));
    }
    Ok(out)
}

/// Runs a job with a checkpoint captured every `every` simulated
/// cycles. A panicking attempt resumes from the last good checkpoint
/// instead of cycle 0; after `max_attempts` total attempts the final
/// panic propagates (so [`run_one`]'s failure accounting sees it).
///
/// Checkpoints round-trip through [`Snapshot::encode`]/[`decode`] on
/// every resume, so a resumed run exercises exactly the path a
/// persisted checkpoint would take.
///
/// [`decode`]: Snapshot::decode
fn resumable_run(spec: &JobSpec, every: u64, max_attempts: u32) -> Stats {
    resumable_run_with_probe(spec, every, max_attempts, &Mutex::new(|_| {}))
}

/// [`resumable_run`] with a fault-injection probe called after each
/// checkpoint is stored (tests panic inside it to exercise resume).
fn resumable_run_with_probe(
    spec: &JobSpec,
    every: u64,
    max_attempts: u32,
    probe: &Mutex<impl FnMut(u64)>,
) -> Stats {
    let every = every.max(1);
    let checkpoint: Mutex<Option<String>> = Mutex::new(None);
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let result = catch_unwind(AssertUnwindSafe(|| {
            let resume = checkpoint
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone();
            let (mut sys, mut bound) = match resume {
                Some(text) => {
                    let snap = Snapshot::decode(&text)
                        .expect("a checkpoint this process encoded must decode");
                    let bound = snap.cycle() + every;
                    (snap.restore(spec.build_extension()), bound)
                }
                None => (spec.build_system(), every),
            };
            while sys.run_until(bound) {
                let snap = Snapshot::capture(&sys, bound);
                *checkpoint
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(snap.encode());
                (probe
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner))(bound);
                bound += every;
            }
            sys.finish()
        }));
        match result {
            Ok(stats) => return stats,
            Err(payload) => {
                if attempts >= max_attempts {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

fn run_one<F>(
    cfg: &HarnessConfig,
    runner: &F,
    spec: &JobSpec,
    index: usize,
    worker: usize,
) -> WorkerMsg
where
    F: Fn(&JobSpec) -> (Stats, Option<String>) + Sync,
{
    let started = Instant::now();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| runner(spec)));
        let error = match outcome {
            Ok((stats, trace_artifact)) => match cfg.cycle_budget {
                Some(budget) if stats.total_cycles > budget => JobError::CycleBudgetExceeded {
                    cycles: stats.total_cycles,
                    budget,
                },
                _ => {
                    return WorkerMsg::Done {
                        index,
                        stats,
                        wall_micros: started.elapsed().as_micros() as u64,
                        worker,
                        attempts,
                        trace_artifact,
                        forked: false,
                    }
                }
            },
            Err(payload) => JobError::Panicked(panic_message(payload.as_ref())),
        };
        if attempts >= cfg.max_attempts || !error.retryable() {
            return WorkerMsg::Failed(JobFailure {
                index,
                spec: *spec,
                error,
                attempts,
            });
        }
        // Exponential backoff before the next attempt.
        std::thread::sleep(cfg.backoff * 2u32.saturating_pow(attempts - 1));
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SecurityMode;
    use senss_workloads::Workload;

    #[test]
    fn from_records_rebuilds_lookup_and_provenance() {
        let base = JobSpec::new(Workload::Fft, 2, 1 << 20).with_ops(100);
        let sec = base.with_mode(SecurityMode::senss());
        let record = |index, spec: JobSpec, cached| RunRecord {
            index,
            spec,
            key: spec.cache_key(),
            stats: Stats {
                total_cycles: 10 + index as u64,
                ..Stats::default()
            },
            wall_micros: 0,
            worker: None,
            attempts: 0,
            cached,
            trace_artifact: None,
        };
        // Out of order on purpose: from_records must re-sort by index.
        let result = SweepResult::from_records(
            "remote",
            vec![record(1, sec, true), record(0, base, false)],
            0,
            Duration::from_millis(5),
        );
        assert_eq!(result.records[0].spec, base);
        assert_eq!(result.executed, 1);
        assert_eq!(result.cached, 1);
        assert!(result.is_complete());
        assert_eq!(result.require(&sec).total_cycles, 11);
        assert!(result.stats(&base.with_seed(99)).is_none());
    }
    #[test]
    fn from_lookup_parses_valid_values() {
        let cfg = HarnessConfig::from_lookup(|key| match key {
            "HARNESS_WORKERS" => Some("3".to_string()),
            "HARNESS_RETRIES" => Some("0".to_string()),
            "HARNESS_CYCLE_BUDGET" => Some("123456".to_string()),
            _ => None,
        });
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.max_attempts, 1);
        assert_eq!(cfg.cycle_budget, Some(123_456));
        assert!(cfg.cache_dir.is_some());

        let no_cache = HarnessConfig::from_lookup(|key| {
            (key == "HARNESS_NO_CACHE").then(|| "1".to_string())
        });
        assert_eq!(no_cache.cycle_budget, None);
        assert!(no_cache.cache_dir.is_none());
    }

    #[test]
    #[should_panic(expected = "HARNESS_CYCLE_BUDGET")]
    fn malformed_cycle_budget_fails_loudly() {
        // Regression: `HARNESS_CYCLE_BUDGET=abc` used to parse to `None`,
        // silently running the sweep with no budget at all.
        HarnessConfig::from_lookup(|key| {
            (key == "HARNESS_CYCLE_BUDGET").then(|| "abc".to_string())
        });
    }

    #[test]
    #[should_panic(expected = "HARNESS_WORKERS")]
    fn malformed_worker_count_fails_loudly() {
        HarnessConfig::from_lookup(|key| {
            (key == "HARNESS_WORKERS").then(|| "-2".to_string())
        });
    }

    #[test]
    fn snapshot_knobs_parse_from_lookup() {
        let cfg = HarnessConfig::from_lookup(|key| match key {
            "HARNESS_WARM_START" => Some("1".to_string()),
            "HARNESS_CHECKPOINT_CYCLES" => Some("50000".to_string()),
            _ => None,
        });
        assert!(cfg.warm_start);
        assert_eq!(cfg.checkpoint_every, Some(50_000));
        let off = HarnessConfig::from_lookup(|key| {
            (key == "HARNESS_WARM_START").then(|| "0".to_string())
        });
        assert!(!off.warm_start);
        assert_eq!(off.checkpoint_every, None);
    }

    fn ops_sweep(ops: &[usize]) -> SweepSpec {
        let mut sweep = SweepSpec::new("");
        for &n in ops {
            sweep.push(
                JobSpec::new(Workload::Fft, 2, 1 << 20)
                    .with_mode(SecurityMode::senss())
                    .with_ops(n),
            );
        }
        sweep
    }

    #[test]
    fn warm_start_matches_cold_runs_bit_for_bit() {
        let sweep = ops_sweep(&[400, 700, 1_000, 1_300]);
        let cold = Harness::new(HarnessConfig::hermetic()).run(&sweep).unwrap();
        let warm = Harness::new(HarnessConfig::hermetic().with_warm_start(true))
            .run(&sweep)
            .unwrap();
        assert!(cold.is_complete() && warm.is_complete());
        assert!(warm.forked >= 2, "middle points must be forked, got {}", warm.forked);
        assert_eq!(cold.forked, 0);
        for job in &sweep.jobs {
            assert_eq!(cold.require(job), warm.require(job), "{job:?}");
        }
    }

    #[test]
    fn observed_records_match_the_returned_sweep() {
        use std::sync::Mutex;
        let sweep = ops_sweep(&[400, 700, 1_000]);
        let seen: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let result = Harness::new(HarnessConfig::hermetic())
            .run_observed(&sweep, |r| {
                seen.lock().unwrap().push((r.index, r.key.clone()));
            })
            .unwrap();
        assert!(result.is_complete());
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        let expect: Vec<(usize, String)> = result
            .records
            .iter()
            .map(|r| (r.index, r.key.clone()))
            .collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn warm_start_leaves_singletons_and_captures_alone() {
        use crate::spec::TraceCapture;
        let mut sweep = ops_sweep(&[400]);
        sweep.push(
            JobSpec::new(Workload::Lu, 2, 1 << 20)
                .with_ops(400)
                .with_capture(TraceCapture::Jsonl),
        );
        // No trace_dir in hermetic(), so the capture request is inert,
        // but the planner must still keep the job out of any group.
        let result = Harness::new(HarnessConfig::hermetic().with_warm_start(true))
            .run(&sweep)
            .unwrap();
        assert!(result.is_complete());
        assert_eq!(result.forked, 0);
    }

    #[test]
    fn checkpointed_runs_match_plain_runs() {
        let sweep = ops_sweep(&[600]);
        let plain = Harness::new(HarnessConfig::hermetic()).run(&sweep).unwrap();
        let chk = Harness::new(HarnessConfig::hermetic().with_checkpoint_every(10_000))
            .run(&sweep)
            .unwrap();
        assert_eq!(plain.require(&sweep.jobs[0]), chk.require(&sweep.jobs[0]));
    }

    #[test]
    fn a_fault_mid_run_resumes_from_the_last_checkpoint() {
        let spec = JobSpec::new(Workload::Fft, 2, 1 << 20)
            .with_mode(SecurityMode::senss())
            .with_ops(600);
        let expected = spec.run();
        let every = expected.total_cycles / 5;
        let mut fired = false;
        let mut resumed_from = None;
        let probe = Mutex::new(move |cycle: u64| {
            if !fired && cycle >= 2 * every {
                fired = true;
                panic!("injected fault at cycle {cycle}");
            }
            if fired && resumed_from.is_none() {
                resumed_from = Some(cycle);
                // The resumed attempt must start from the surviving
                // checkpoint, not from cycle 0.
                assert!(cycle > every, "resumed attempt re-ran from scratch");
            }
        });
        let stats = resumable_run_with_probe(&spec, every, 3, &probe);
        assert_eq!(stats, expected, "resume must not change the result");
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn resumable_run_gives_up_after_max_attempts() {
        let spec = JobSpec::new(Workload::Fft, 2, 1 << 20).with_ops(600);
        let probe = Mutex::new(|_cycle: u64| panic!("injected fault"));
        resumable_run_with_probe(&spec, 5_000, 2, &probe);
    }
}
