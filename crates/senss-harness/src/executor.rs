//! The parallel, fault-tolerant sweep executor.
//!
//! Jobs are dispatched from a shared work queue to a pool of worker
//! threads (worker count defaults to the machine's available
//! parallelism, overridable with `HARNESS_WORKERS`). Each job runs
//! under [`std::panic::catch_unwind`], so a poisoned configuration
//! fails alone instead of sinking the sweep; failures classified as
//! transient are retried with exponential backoff up to a bounded
//! attempt count. Results are re-ordered by job index before being
//! returned, so the output is identical no matter how many workers ran
//! or in which order they finished.

use crate::cache::ResultCache;
use crate::record::RunRecord;
use crate::spec::{JobSpec, SweepSpec};
use senss_sim::Stats;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Worker thread count (clamped to at least 1).
    pub workers: usize,
    /// Maximum attempts per job (1 = no retry).
    pub max_attempts: u32,
    /// Base backoff between attempts; doubles per retry.
    pub backoff: Duration,
    /// Fail any job whose simulated `total_cycles` exceeds this budget.
    pub cycle_budget: Option<u64>,
    /// Cache directory (`None` disables caching).
    pub cache_dir: Option<PathBuf>,
    /// Where run-record JSONL files are written (`None` disables).
    pub records_dir: Option<PathBuf>,
    /// Where trace artifacts of captured jobs are written (`None`
    /// disables capture even for jobs that request it).
    pub trace_dir: Option<PathBuf>,
}

impl HarnessConfig {
    /// Configuration from the environment, the one the figure binaries
    /// use:
    ///
    /// * `HARNESS_WORKERS` — worker count (default: available
    ///   parallelism);
    /// * `HARNESS_RETRIES` — retries after the first attempt (default 2);
    /// * `HARNESS_CYCLE_BUDGET` — per-job simulated-cycle budget
    ///   (default: none);
    /// * `HARNESS_NO_CACHE` — any value disables the result cache;
    /// * cache lives under `results/cache/`, records under
    ///   `results/records/`.
    ///
    /// # Panics
    ///
    /// Panics with a message naming the variable if a set numeric
    /// variable does not parse — a typo like `HARNESS_CYCLE_BUDGET=abc`
    /// must not silently run the sweep with the budget dropped.
    pub fn from_env() -> HarnessConfig {
        Self::from_lookup(|key| std::env::var(key).ok())
    }

    /// [`from_env`](HarnessConfig::from_env) with the variable lookup
    /// injected, so tests can exercise parsing without racing on the
    /// process environment.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> HarnessConfig {
        fn parsed<T: std::str::FromStr>(key: &str, value: &str) -> T {
            value.parse().unwrap_or_else(|_| {
                panic!("{key} must be a non-negative integer, got {value:?}")
            })
        }
        let env_usize = |key: &str| lookup(key).map(|v| parsed::<usize>(key, &v));
        let workers = env_usize("HARNESS_WORKERS").unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        HarnessConfig {
            workers,
            max_attempts: 1 + env_usize("HARNESS_RETRIES").unwrap_or(2) as u32,
            backoff: Duration::from_millis(50),
            cycle_budget: lookup("HARNESS_CYCLE_BUDGET")
                .map(|v| parsed::<u64>("HARNESS_CYCLE_BUDGET", &v)),
            cache_dir: if lookup("HARNESS_NO_CACHE").is_some() {
                None
            } else {
                Some(PathBuf::from("results/cache"))
            },
            records_dir: Some(PathBuf::from("results/records")),
            trace_dir: Some(PathBuf::from("results/traces")),
        }
    }

    /// A hermetic configuration for tests: one worker, no cache, no
    /// records, no retries.
    pub fn hermetic() -> HarnessConfig {
        HarnessConfig {
            workers: 1,
            max_attempts: 1,
            backoff: Duration::from_millis(1),
            cycle_budget: None,
            cache_dir: None,
            records_dir: None,
            trace_dir: None,
        }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> HarnessConfig {
        self.workers = workers;
        self
    }

    /// Sets the maximum attempts per job.
    pub fn with_max_attempts(mut self, attempts: u32) -> HarnessConfig {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the base retry backoff.
    pub fn with_backoff(mut self, backoff: Duration) -> HarnessConfig {
        self.backoff = backoff;
        self
    }

    /// Sets the per-job cycle budget.
    pub fn with_cycle_budget(mut self, budget: u64) -> HarnessConfig {
        self.cycle_budget = Some(budget);
        self
    }

    /// Sets the cache directory.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> HarnessConfig {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sets the records directory.
    pub fn with_records_dir(mut self, dir: impl Into<PathBuf>) -> HarnessConfig {
        self.records_dir = Some(dir.into());
        self
    }

    /// Sets the trace-artifact directory.
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> HarnessConfig {
        self.trace_dir = Some(dir.into());
        self
    }
}

/// Why a job failed for good.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked on every attempt; carries the last panic
    /// message.
    Panicked(String),
    /// The run completed but blew the configured cycle budget
    /// (deterministic, so never retried).
    CycleBudgetExceeded {
        /// Simulated cycles the run took.
        cycles: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl JobError {
    /// Whether another attempt could plausibly change the outcome.
    fn retryable(&self) -> bool {
        matches!(self, JobError::Panicked(_))
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::CycleBudgetExceeded { cycles, budget } => {
                write!(f, "cycle budget exceeded: {cycles} > {budget}")
            }
        }
    }
}

/// A job that failed after exhausting its attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Position in the sweep.
    pub index: usize,
    /// The failed job.
    pub spec: JobSpec,
    /// Final error.
    pub error: JobError,
    /// Attempts consumed.
    pub attempts: u32,
}

/// The outcome of running a sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// Sweep name.
    pub name: String,
    /// Successful records, ordered by job index.
    pub records: Vec<RunRecord>,
    /// Failed jobs, ordered by job index.
    pub failures: Vec<JobFailure>,
    /// Jobs actually executed this run (cache misses that succeeded or
    /// failed).
    pub executed: usize,
    /// Jobs served from the cache.
    pub cached: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time for the whole sweep.
    pub wall: Duration,
    by_spec: HashMap<JobSpec, usize>,
}

impl SweepResult {
    /// The stats of the record matching `spec`, if it succeeded.
    pub fn stats(&self, spec: &JobSpec) -> Option<&Stats> {
        self.by_spec.get(spec).map(|&i| &self.records[i].stats)
    }

    /// Like [`stats`](SweepResult::stats) but panics with a diagnostic —
    /// the figure binaries treat a missing result as fatal.
    ///
    /// # Panics
    ///
    /// Panics if the job is absent or failed.
    pub fn require(&self, spec: &JobSpec) -> &Stats {
        self.stats(spec).unwrap_or_else(|| {
            panic!(
                "no successful result for job {spec:?} in sweep {:?} \
                 ({} records, {} failures)",
                self.name,
                self.records.len(),
                self.failures.len()
            )
        })
    }

    /// Whether every job produced a result.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Additive aggregate of every successful record's stats
    /// (via [`Stats::merge`]).
    pub fn aggregate(&self) -> Stats {
        let mut total = Stats::default();
        for r in &self.records {
            total.merge(&r.stats);
        }
        total
    }

    /// Assembles a result from already-materialized records — the path
    /// `senss-bench` takes when a sweep was executed remotely by
    /// `senss-serve`. Records are re-sorted by job index and the
    /// executed/cached split is recomputed from each record's
    /// provenance flag; the failure list is empty (a remote sweep with
    /// failures is reported through the serve protocol instead).
    pub fn from_records(
        name: impl Into<String>,
        mut records: Vec<RunRecord>,
        workers: usize,
        wall: Duration,
    ) -> SweepResult {
        records.sort_by_key(|r| r.index);
        let cached = records.iter().filter(|r| r.cached).count();
        let executed = records.len() - cached;
        let by_spec = records.iter().enumerate().map(|(i, r)| (r.spec, i)).collect();
        SweepResult {
            name: name.into(),
            records,
            failures: Vec::new(),
            executed,
            cached,
            workers,
            wall,
            by_spec,
        }
    }

    /// One-line human summary (the binaries print this to stderr).
    pub fn summary(&self) -> String {
        format!(
            "harness[{}]: {} executed, {} cached, {} failed on {} worker{} in {:.2?}",
            self.name,
            self.executed,
            self.cached,
            self.failures.len(),
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            self.wall
        )
    }
}

enum WorkerMsg {
    Done {
        index: usize,
        stats: Stats,
        wall_micros: u64,
        worker: usize,
        attempts: u32,
        trace_artifact: Option<String>,
    },
    Failed(JobFailure),
}

/// The sweep executor.
#[derive(Debug)]
pub struct Harness {
    cfg: HarnessConfig,
}

impl Harness {
    /// An executor with an explicit configuration.
    pub fn new(cfg: HarnessConfig) -> Harness {
        Harness { cfg }
    }

    /// An executor configured from the environment
    /// ([`HarnessConfig::from_env`]).
    pub fn from_env() -> Harness {
        Harness::new(HarnessConfig::from_env())
    }

    /// Runs the sweep with the production runner ([`JobSpec::run`]).
    /// Jobs whose spec requests a [`TraceCapture`](crate::spec::TraceCapture)
    /// additionally write a trace artifact under
    /// [`HarnessConfig::trace_dir`] (named by cache key), recorded in
    /// their [`RunRecord::trace_artifact`].
    pub fn run(&self, sweep: &SweepSpec) -> std::io::Result<SweepResult> {
        let trace_dir = self.cfg.trace_dir.clone();
        self.run_rich(sweep, move |spec| match (spec.capture, &trace_dir) {
            (Some(capture), Some(dir)) => capture_run(spec, capture, dir),
            _ => (spec.run(), None),
        })
    }

    /// Runs the sweep with a caller-supplied job runner. Used by the
    /// fault-injection tests; the runner must be deterministic for the
    /// cache to be meaningful. Custom runners never capture traces.
    pub fn run_with<F>(&self, sweep: &SweepSpec, runner: F) -> std::io::Result<SweepResult>
    where
        F: Fn(&JobSpec) -> Stats + Sync,
    {
        self.run_rich(sweep, |spec| (runner(spec), None))
    }

    fn run_rich<F>(&self, sweep: &SweepSpec, runner: F) -> std::io::Result<SweepResult>
    where
        F: Fn(&JobSpec) -> (Stats, Option<String>) + Sync,
    {
        let started = Instant::now();
        let mut cache = match &self.cfg.cache_dir {
            Some(dir) => {
                let cache = ResultCache::open(dir)?;
                if cache.skipped() > 0 {
                    eprintln!(
                        "harness: skipped {} corrupt cache line(s) in {}; \
                         affected jobs will re-execute",
                        cache.skipped(),
                        dir.display()
                    );
                }
                Some(cache)
            }
            None => None,
        };

        // Partition into cache hits and jobs that must execute.
        let keys: Vec<String> = sweep.jobs.iter().map(JobSpec::cache_key).collect();
        let mut slots: Vec<Option<RunRecord>> = Vec::with_capacity(sweep.jobs.len());
        let mut pending: VecDeque<usize> = VecDeque::new();
        for (index, spec) in sweep.jobs.iter().enumerate() {
            // A cache hit would skip the simulation and produce no
            // artifact, so jobs that can capture always execute.
            let wants_artifact = spec.capture.is_some() && self.cfg.trace_dir.is_some();
            let hit = (!wants_artifact)
                .then(|| cache.as_ref().and_then(|c| c.get(&keys[index])))
                .flatten();
            match hit {
                Some(stats) => slots.push(Some(RunRecord {
                    index,
                    spec: *spec,
                    key: keys[index].clone(),
                    stats: stats.clone(),
                    wall_micros: 0,
                    worker: None,
                    attempts: 0,
                    cached: true,
                    trace_artifact: None,
                })),
                None => {
                    slots.push(None);
                    pending.push_back(index);
                }
            }
        }
        let cached = sweep.jobs.len() - pending.len();
        let to_execute = pending.len();

        let mut failures: Vec<JobFailure> = Vec::new();
        if !pending.is_empty() {
            let workers = self.cfg.workers.max(1).min(pending.len());
            let queue = Mutex::new(pending);
            let (tx, rx) = mpsc::channel::<WorkerMsg>();
            let jobs = &sweep.jobs;
            let cfg = &self.cfg;
            let runner = &runner;
            std::thread::scope(|scope| {
                for worker in 0..workers {
                    let tx = tx.clone();
                    let queue = &queue;
                    scope.spawn(move || {
                        loop {
                            // Recover the queue even if a sibling worker
                        // panicked while holding the lock: the indices
                        // inside are still sound, and abandoning them
                        // would silently truncate the sweep.
                        let index = match queue
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .pop_front()
                        {
                                Some(i) => i,
                                None => break,
                            };
                            let msg = run_one(cfg, runner, &jobs[index], index, worker);
                            if tx.send(msg).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                // Collect on the main thread, which is also the only
                // cache writer.
                for msg in rx {
                    match msg {
                        WorkerMsg::Done {
                            index,
                            stats,
                            wall_micros,
                            worker,
                            attempts,
                            trace_artifact,
                        } => {
                            if let Some(c) = cache.as_mut() {
                                // Append errors are demoted to warnings:
                                // losing a cache entry never loses a run.
                                if let Err(e) = c.put(&keys[index], &stats) {
                                    eprintln!("harness: cache write failed: {e}");
                                }
                            }
                            slots[index] = Some(RunRecord {
                                index,
                                spec: jobs[index],
                                key: keys[index].clone(),
                                stats,
                                wall_micros,
                                worker: Some(worker),
                                attempts,
                                cached: false,
                                trace_artifact,
                            });
                        }
                        WorkerMsg::Failed(failure) => failures.push(failure),
                    }
                }
            });
        }

        failures.sort_by_key(|f| f.index);
        let records: Vec<RunRecord> = slots.into_iter().flatten().collect();
        let mut by_spec = HashMap::new();
        for (i, r) in records.iter().enumerate() {
            by_spec.insert(r.spec, i);
        }
        let result = SweepResult {
            name: sweep.name.clone(),
            records,
            failures,
            executed: to_execute,
            cached,
            workers: self.cfg.workers.max(1),
            wall: started.elapsed(),
            by_spec,
        };
        self.write_records(&result)?;
        Ok(result)
    }

    fn write_records(&self, result: &SweepResult) -> std::io::Result<()> {
        let Some(dir) = &self.cfg.records_dir else {
            return Ok(());
        };
        if result.name.is_empty() {
            return Ok(());
        }
        std::fs::create_dir_all(dir)?;
        let mut out = String::new();
        for r in &result.records {
            out.push_str(&r.encode());
            out.push('\n');
        }
        std::fs::write(dir.join(format!("{}.jsonl", result.name)), out)
    }
}

/// Runs a captured job, writing its trace artifact under `dir`.
///
/// Artifact I/O failures are demoted to warnings — losing a trace file
/// never loses a run — and surface as a `None` artifact path.
fn capture_run(
    spec: &JobSpec,
    capture: crate::spec::TraceCapture,
    dir: &std::path::Path,
) -> (Stats, Option<String>) {
    use crate::spec::TraceCapture;
    use senss_trace::{chrome_trace, JsonlSink, RingSink};
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("harness: cannot create trace dir {}: {e}", dir.display());
        return (spec.run(), None);
    }
    let path = dir.join(format!("{}.{}", spec.cache_key(), capture.extension()));
    match capture {
        TraceCapture::Jsonl => {
            let sink = match JsonlSink::create(&path) {
                Ok(sink) => sink,
                Err(e) => {
                    eprintln!("harness: cannot open {}: {e}", path.display());
                    return (spec.run(), None);
                }
            };
            let (stats, sink) = spec.run_with_sink(sink);
            match sink.finish() {
                Ok(_) => (stats, Some(path.display().to_string())),
                Err(e) => {
                    eprintln!("harness: trace write to {} failed: {e}", path.display());
                    (stats, None)
                }
            }
        }
        TraceCapture::Chrome => {
            let (stats, sink) = spec.run_with_sink(RingSink::new());
            if sink.dropped() > 0 {
                eprintln!(
                    "harness: ring capacity exceeded for {}; dropped {} oldest event(s)",
                    path.display(),
                    sink.dropped()
                );
            }
            match std::fs::write(&path, chrome_trace(sink.events())) {
                Ok(()) => (stats, Some(path.display().to_string())),
                Err(e) => {
                    eprintln!("harness: trace write to {} failed: {e}", path.display());
                    (stats, None)
                }
            }
        }
    }
}

fn run_one<F>(
    cfg: &HarnessConfig,
    runner: &F,
    spec: &JobSpec,
    index: usize,
    worker: usize,
) -> WorkerMsg
where
    F: Fn(&JobSpec) -> (Stats, Option<String>) + Sync,
{
    let started = Instant::now();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| runner(spec)));
        let error = match outcome {
            Ok((stats, trace_artifact)) => match cfg.cycle_budget {
                Some(budget) if stats.total_cycles > budget => JobError::CycleBudgetExceeded {
                    cycles: stats.total_cycles,
                    budget,
                },
                _ => {
                    return WorkerMsg::Done {
                        index,
                        stats,
                        wall_micros: started.elapsed().as_micros() as u64,
                        worker,
                        attempts,
                        trace_artifact,
                    }
                }
            },
            Err(payload) => JobError::Panicked(panic_message(payload.as_ref())),
        };
        if attempts >= cfg.max_attempts || !error.retryable() {
            return WorkerMsg::Failed(JobFailure {
                index,
                spec: *spec,
                error,
                attempts,
            });
        }
        // Exponential backoff before the next attempt.
        std::thread::sleep(cfg.backoff * 2u32.saturating_pow(attempts - 1));
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SecurityMode;
    use senss_workloads::Workload;

    #[test]
    fn from_records_rebuilds_lookup_and_provenance() {
        let base = JobSpec::new(Workload::Fft, 2, 1 << 20).with_ops(100);
        let sec = base.with_mode(SecurityMode::senss());
        let record = |index, spec: JobSpec, cached| RunRecord {
            index,
            spec,
            key: spec.cache_key(),
            stats: Stats {
                total_cycles: 10 + index as u64,
                ..Stats::default()
            },
            wall_micros: 0,
            worker: None,
            attempts: 0,
            cached,
            trace_artifact: None,
        };
        // Out of order on purpose: from_records must re-sort by index.
        let result = SweepResult::from_records(
            "remote",
            vec![record(1, sec, true), record(0, base, false)],
            0,
            Duration::from_millis(5),
        );
        assert_eq!(result.records[0].spec, base);
        assert_eq!(result.executed, 1);
        assert_eq!(result.cached, 1);
        assert!(result.is_complete());
        assert_eq!(result.require(&sec).total_cycles, 11);
        assert!(result.stats(&base.with_seed(99)).is_none());
    }
    #[test]
    fn from_lookup_parses_valid_values() {
        let cfg = HarnessConfig::from_lookup(|key| match key {
            "HARNESS_WORKERS" => Some("3".to_string()),
            "HARNESS_RETRIES" => Some("0".to_string()),
            "HARNESS_CYCLE_BUDGET" => Some("123456".to_string()),
            _ => None,
        });
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.max_attempts, 1);
        assert_eq!(cfg.cycle_budget, Some(123_456));
        assert!(cfg.cache_dir.is_some());

        let no_cache = HarnessConfig::from_lookup(|key| {
            (key == "HARNESS_NO_CACHE").then(|| "1".to_string())
        });
        assert_eq!(no_cache.cycle_budget, None);
        assert!(no_cache.cache_dir.is_none());
    }

    #[test]
    #[should_panic(expected = "HARNESS_CYCLE_BUDGET")]
    fn malformed_cycle_budget_fails_loudly() {
        // Regression: `HARNESS_CYCLE_BUDGET=abc` used to parse to `None`,
        // silently running the sweep with no budget at all.
        HarnessConfig::from_lookup(|key| {
            (key == "HARNESS_CYCLE_BUDGET").then(|| "abc".to_string())
        });
    }

    #[test]
    #[should_panic(expected = "HARNESS_WORKERS")]
    fn malformed_worker_count_fails_loudly() {
        HarnessConfig::from_lookup(|key| {
            (key == "HARNESS_WORKERS").then(|| "-2".to_string())
        });
    }
}
