//! A minimal JSON encoder/decoder for the harness's on-disk formats.
//!
//! The workspace deliberately carries no external dependencies, so the
//! cache and run-record layers cannot use serde. This module implements
//! exactly the subset those layers emit: objects, arrays, strings,
//! booleans and unsigned 64-bit integers. Anything outside that subset
//! (floats, exponents, negative numbers) fails to parse, which callers
//! treat as a corrupt line and skip.

use std::fmt::Write as _;

/// A parsed JSON value (harness subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A string.
    Str(String),
    /// An unsigned integer (the only number form the harness writes).
    UInt(u64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes the value as compact JSON.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Str(s) => write_str(s, out),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (harness subset).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &'static str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
            return Err(self.err("only unsigned integers are supported"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::UInt)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected object")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected :")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Value::Obj(vec![
            ("key".into(), Value::Str("a\"b\\c\n".into())),
            ("n".into(), Value::UInt(u64::MAX)),
            ("ok".into(), Value::Bool(true)),
            (
                "arr".into(),
                Value::Arr(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("empty".into(), Value::Obj(vec![])),
        ]);
        assert_eq!(parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn lookup_helpers() {
        let v = parse(r#"{"a": 7, "b": "x", "c": [1,2,3]}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_arr().unwrap().len(), 3);
        assert!(v.get("d").is_none());
    }

    #[test]
    fn rejects_unsupported_numbers() {
        assert!(parse("1.5").is_err());
        assert!(parse("-3").is_err());
        assert!(parse("1e9").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        // \u escape and a raw multibyte character both decode.
        assert_eq!(parse("\"\\u00e9x\"").unwrap(), Value::Str("éx".into()));
        assert_eq!(parse("\"é\"").unwrap(), Value::Str("é".into()));
    }
}
