//! # senss-harness — parallel, fault-tolerant experiment execution
//!
//! Every figure and sweep in the SENSS reproduction is, at bottom, the
//! same computation: a grid of `(workload, core count, security mode,
//! cache geometry)` points, each point an independent simulation whose
//! [`Stats`](senss_sim::Stats) feed a table or CSV. This crate factors
//! that shape out of the figure binaries:
//!
//! * [`spec`] — declare a sweep as data: [`JobSpec`] pins every
//!   parameter of one simulation, [`SweepSpec`] collects jobs (with a
//!   [`SweepSpec::grid`] cross-product helper), [`SecurityMode`] and
//!   [`TraceSpec`] name the experiment axes.
//! * [`executor`] — run the sweep on a worker pool with per-job panic
//!   isolation, bounded retry with exponential backoff, an optional
//!   simulated-cycle budget, and deterministic result ordering: the
//!   output is identical for 1 worker or N.
//! * [`cache`] — a content-addressed result cache keyed by a stable
//!   hash of the full job configuration, persisted as JSONL under
//!   `results/cache/`, so re-running `run_figures.sh` only executes
//!   configs that changed.
//! * [`record`] — structured [`RunRecord`] output (one JSONL line per
//!   job under `results/records/`) carrying the full `Stats` plus wall
//!   time, worker id, attempt count and cache provenance.
//!
//! See `docs/harness.md` for the user-facing guide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod executor;
pub mod json;
pub mod record;
pub mod spec;

pub use cache::ResultCache;
pub use executor::{Harness, HarnessConfig, JobError, JobFailure, SweepResult};
pub use record::{decode_spec, encode_spec, RunRecord};
pub use spec::{
    coherence_from_tag, coherence_tag, JobSpec, SecurityMode, SweepShard, SweepSpec, TraceCapture,
    TraceSpec, CACHE_FORMAT,
};
