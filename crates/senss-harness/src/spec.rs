//! Declarative experiment specification: what to run, as data.
//!
//! A [`JobSpec`] is one simulation point — a trace source on a machine
//! shape under a [`SecurityMode`] — and a [`SweepSpec`] is an ordered
//! list of them, typically produced by [`SweepSpec::grid`] instead of
//! the nested `for` loops the figure binaries used to hand-roll.
//!
//! Every field that influences the simulation result is part of the
//! spec, which is what makes the content-addressed cache sound: the
//! cache key ([`JobSpec::cache_key`]) is a SHA-256 over the canonical
//! rendering of the *materialized* configuration (every architectural
//! parameter, not just the grid coordinates), so a change to the E6000
//! defaults or to the security layer's knobs invalidates exactly the
//! affected entries.

use senss::secure_bus::{CipherMode, SenssConfig, SenssExtension};
use senss_backends::{
    ScatteredConfig, ScatteredExtension, SealerConfig, SealerExtension, ServasConfig,
    ServasExtension,
};
use senss_crypto::sha256::Sha256;
use senss_memprot::{MemProtConfig, MemProtPolicy};
use senss_sim::config::{CoherenceProtocol, SchedulerKind};
use senss_sim::trace::VecTrace;
use senss_sim::{NullExtension, Stats, System, SystemConfig};
use senss_trace::TraceSink;
use senss_workloads::{micro, Workload};

/// Bumped whenever the meaning of cached results changes (simulator
/// semantics, stats layout, canonical-form layout). Part of every cache
/// key, so a bump invalidates the whole cache at once.
///
/// The snapshot format version ([`senss_snapshot::FORMAT_VERSION`]) is
/// folded in alongside: warm-started sweep points are produced by
/// forking checkpoints, so a change to checkpoint semantics must
/// invalidate cached results exactly like a simulator change would.
pub const CACHE_FORMAT: u32 = 2;

/// Which security stack the job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityMode {
    /// The insecure baseline (no SENSS extension).
    Baseline,
    /// SENSS bus security only (§4).
    Senss {
        /// Encryption mask count (`usize::MAX` = the paper's "Perfect").
        masks: usize,
        /// Cache-to-cache transfers between authentication rounds.
        auth_interval: u64,
        /// Encryption/authentication algorithm pair.
        cipher: CipherMode,
    },
    /// SENSS plus the §6 cache-to-memory protection stack (Figure 10).
    Integrated {
        /// Encryption mask count.
        masks: usize,
        /// Cache-to-cache transfers between authentication rounds.
        auth_interval: u64,
        /// Encryption/authentication algorithm pair.
        cipher: CipherMode,
    },
    /// SERVAS-style authenticryption (`senss-backends`): one fused
    /// encrypt+authenticate pass per transfer, no separate
    /// authentication traffic.
    Servas {
        /// Fused-pass buffer count (the mask-count analogue).
        masks: usize,
    },
    /// Sealer in-SRAM AES (`senss-backends`): the SENSS datapath on a
    /// ~2-cycle in-array crypto pipeline.
    Sealer {
        /// Cache-to-cache transfers between authentication rounds.
        auth_interval: u64,
    },
    /// Secret-sharing scattered memory (`senss-backends`): lines split
    /// into XOR shares, MAC verification replaced by reconstruction.
    Scattered {
        /// Shares per memory line.
        shares: u32,
    },
}

impl SecurityMode {
    /// SENSS with the paper's defaults (8 masks, interval 100, CBC).
    pub fn senss() -> SecurityMode {
        let d = SenssConfig::paper_default(1);
        SecurityMode::Senss {
            masks: d.num_masks,
            auth_interval: d.auth_interval,
            cipher: d.cipher,
        }
    }

    /// SENSS with a specific mask count, other knobs at paper defaults.
    pub fn senss_masks(masks: usize) -> SecurityMode {
        match SecurityMode::senss() {
            SecurityMode::Senss {
                auth_interval,
                cipher,
                ..
            } => SecurityMode::Senss {
                masks,
                auth_interval,
                cipher,
            },
            _ => unreachable!(),
        }
    }

    /// SENSS with a specific auth interval, other knobs at paper defaults.
    pub fn senss_interval(auth_interval: u64) -> SecurityMode {
        match SecurityMode::senss() {
            SecurityMode::Senss { masks, cipher, .. } => SecurityMode::Senss {
                masks,
                auth_interval,
                cipher,
            },
            _ => unreachable!(),
        }
    }

    /// The integrated stack (Figure 10) with paper-default bus security.
    pub fn integrated() -> SecurityMode {
        match SecurityMode::senss() {
            SecurityMode::Senss {
                masks,
                auth_interval,
                cipher,
            } => SecurityMode::Integrated {
                masks,
                auth_interval,
                cipher,
            },
            _ => unreachable!(),
        }
    }

    /// SERVAS authenticryption with the reference 8 fused-pass buffers.
    pub fn servas() -> SecurityMode {
        SecurityMode::Servas {
            masks: ServasConfig::paper_default(1).num_masks,
        }
    }

    /// Sealer in-SRAM AES with the reference interval-100
    /// authentication.
    pub fn sealer() -> SecurityMode {
        SecurityMode::Sealer {
            auth_interval: SealerConfig::paper_default(1).auth_interval,
        }
    }

    /// Secret-sharing scattered memory with the reference 3 shares.
    pub fn scattered() -> SecurityMode {
        SecurityMode::Scattered {
            shares: ScatteredConfig::paper_default(1).shares,
        }
    }

    /// Canonical tag used in cache keys and run records.
    pub fn tag(&self) -> String {
        fn cipher_tag(c: CipherMode) -> &'static str {
            match c {
                CipherMode::CbcTwoPass => "cbc",
                CipherMode::GcmSinglePass => "gcm",
            }
        }
        match self {
            SecurityMode::Baseline => "baseline".to_string(),
            SecurityMode::Senss {
                masks,
                auth_interval,
                cipher,
            } => format!("senss:m{masks}:i{auth_interval}:{}", cipher_tag(*cipher)),
            SecurityMode::Integrated {
                masks,
                auth_interval,
                cipher,
            } => format!(
                "integrated:m{masks}:i{auth_interval}:{}",
                cipher_tag(*cipher)
            ),
            SecurityMode::Servas { masks } => format!("servas:m{masks}"),
            SecurityMode::Sealer { auth_interval } => format!("sealer:i{auth_interval}"),
            SecurityMode::Scattered { shares } => format!("scattered:n{shares}"),
        }
    }

    /// Parses a [`tag`](SecurityMode::tag) back into a mode — the wire
    /// format `senss-serve` uses to submit jobs over the network.
    pub fn from_tag(tag: &str) -> Option<SecurityMode> {
        if tag == "baseline" {
            return Some(SecurityMode::Baseline);
        }
        let (family, rest) = tag.split_once(':')?;
        match family {
            // The single-knob backend families: one `<letter><value>`
            // parameter, nothing else.
            "servas" => Some(SecurityMode::Servas {
                masks: rest.strip_prefix('m')?.parse().ok()?,
            }),
            "sealer" => Some(SecurityMode::Sealer {
                auth_interval: rest.strip_prefix('i')?.parse().ok()?,
            }),
            "scattered" => Some(SecurityMode::Scattered {
                shares: rest.strip_prefix('n')?.parse().ok()?,
            }),
            "senss" | "integrated" => {
                let mut parts = rest.split(':');
                let masks = parts.next()?.strip_prefix('m')?.parse().ok()?;
                let auth_interval = parts.next()?.strip_prefix('i')?.parse().ok()?;
                let cipher = match parts.next()? {
                    "cbc" => CipherMode::CbcTwoPass,
                    "gcm" => CipherMode::GcmSinglePass,
                    _ => return None,
                };
                if parts.next().is_some() {
                    return None;
                }
                if family == "senss" {
                    Some(SecurityMode::Senss {
                        masks,
                        auth_interval,
                        cipher,
                    })
                } else {
                    Some(SecurityMode::Integrated {
                        masks,
                        auth_interval,
                        cipher,
                    })
                }
            }
            _ => None,
        }
    }

    /// Relative cost weight of simulating this mode (baseline = 100),
    /// the mode factor in [`JobSpec::estimated_cost`]. Calibrated
    /// coarsely from wall-time ratios: the integrated stack walks
    /// Merkle chains (expensive), scattered memory multiplies fill
    /// traffic, the bus-only modes add a few percent.
    pub fn cost_weight(&self) -> u64 {
        match self {
            SecurityMode::Baseline => 100,
            SecurityMode::Senss { .. } => 104,
            SecurityMode::Integrated { .. } => 145,
            SecurityMode::Servas { .. } => 103,
            SecurityMode::Sealer { .. } => 102,
            SecurityMode::Scattered { .. } => 120,
        }
    }
}

/// The trace source a job simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceSpec {
    /// One of the five paper workloads.
    Workload(Workload),
    /// The §7.8 false-sharing microbenchmark (always 2 cores).
    FalseSharing,
    /// The worst-case mask-pressure ping-pong microbenchmark.
    PingPong,
    /// The zero-sharing private-stream microbenchmark.
    PrivateStream,
}

impl TraceSpec {
    /// Canonical tag used in cache keys and run records.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceSpec::Workload(w) => w.name(),
            TraceSpec::FalseSharing => "micro:false_sharing",
            TraceSpec::PingPong => "micro:ping_pong",
            TraceSpec::PrivateStream => "micro:private_stream",
        }
    }

    /// Parses a [`tag`](TraceSpec::tag) back into a trace spec.
    pub fn from_tag(tag: &str) -> Option<TraceSpec> {
        match tag {
            "micro:false_sharing" => Some(TraceSpec::FalseSharing),
            "micro:ping_pong" => Some(TraceSpec::PingPong),
            "micro:private_stream" => Some(TraceSpec::PrivateStream),
            name => Workload::all()
                .into_iter()
                .find(|w| w.name() == name)
                .map(TraceSpec::Workload),
        }
    }
}

/// Canonical tag of a coherence protocol (used in cache keys, run
/// records and the serve wire format).
pub fn coherence_tag(p: CoherenceProtocol) -> &'static str {
    match p {
        CoherenceProtocol::WriteInvalidate => "invalidate",
        CoherenceProtocol::WriteUpdate => "update",
    }
}

/// Parses a [`coherence_tag`] back into a protocol.
pub fn coherence_from_tag(tag: &str) -> Option<CoherenceProtocol> {
    match tag {
        "invalidate" => Some(CoherenceProtocol::WriteInvalidate),
        "update" => Some(CoherenceProtocol::WriteUpdate),
        _ => None,
    }
}

impl From<Workload> for TraceSpec {
    fn from(w: Workload) -> TraceSpec {
        TraceSpec::Workload(w)
    }
}

/// Which trace artifact a job should capture alongside its [`Stats`].
///
/// Capture is an *observation* knob, not a simulation parameter: it is
/// deliberately excluded from [`JobSpec::canonical`] (and therefore from
/// the cache key), because a captured run produces bit-identical stats
/// to an uncaptured one — the simulator's event stream is a pure
/// side-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCapture {
    /// Chrome `trace_event` JSON (Perfetto-loadable), one file per job.
    Chrome,
    /// Raw JSONL event stream, one `TraceEvent` per line.
    Jsonl,
}

impl TraceCapture {
    /// Canonical tag used in run records and the serve wire format.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceCapture::Chrome => "chrome",
            TraceCapture::Jsonl => "jsonl",
        }
    }

    /// Parses a [`tag`](TraceCapture::tag) back into a capture mode.
    pub fn from_tag(tag: &str) -> Option<TraceCapture> {
        match tag {
            "chrome" => Some(TraceCapture::Chrome),
            "jsonl" => Some(TraceCapture::Jsonl),
            _ => None,
        }
    }

    /// File extension of the artifact this mode writes.
    pub fn extension(&self) -> &'static str {
        match self {
            TraceCapture::Chrome => "trace.json",
            TraceCapture::Jsonl => "jsonl",
        }
    }
}

/// One experiment point: a fully-specified simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// What trace to drive the cores with.
    pub trace: TraceSpec,
    /// Processor count.
    pub cores: usize,
    /// L2 capacity in bytes.
    pub l2_bytes: usize,
    /// Data coherence protocol.
    pub coherence: CoherenceProtocol,
    /// Security stack.
    pub mode: SecurityMode,
    /// Trace operations per core.
    pub ops_per_core: usize,
    /// Workload generator seed.
    pub seed: u64,
    /// Optional trace artifact to capture while running. Not part of
    /// [`canonical`](JobSpec::canonical)/the cache key: capture does not
    /// change the result, and cached stats stay valid either way.
    pub capture: Option<TraceCapture>,
    /// Event-queue implementation to simulate with. Like `capture`, an
    /// observation-side knob: every scheduler pops events in identical
    /// order, so it is excluded from [`canonical`](JobSpec::canonical)
    /// and the cache key — results are interchangeable across schedulers.
    pub scheduler: SchedulerKind,
}

impl JobSpec {
    /// A baseline job on the E6000 shape; refine with the `with_`
    /// builders.
    pub fn new(trace: impl Into<TraceSpec>, cores: usize, l2_bytes: usize) -> JobSpec {
        JobSpec {
            trace: trace.into(),
            cores,
            l2_bytes,
            coherence: CoherenceProtocol::WriteInvalidate,
            mode: SecurityMode::Baseline,
            ops_per_core: 10_000,
            seed: 42,
            capture: None,
            scheduler: SchedulerKind::default(),
        }
    }

    /// Requests a trace artifact for this job.
    pub fn with_capture(mut self, capture: TraceCapture) -> JobSpec {
        self.capture = Some(capture);
        self
    }

    /// Sets the security mode.
    pub fn with_mode(mut self, mode: SecurityMode) -> JobSpec {
        self.mode = mode;
        self
    }

    /// Sets the coherence protocol.
    pub fn with_coherence(mut self, coherence: CoherenceProtocol) -> JobSpec {
        self.coherence = coherence;
        self
    }

    /// Sets the event-queue implementation (see [`SchedulerKind`]).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> JobSpec {
        self.scheduler = scheduler;
        self
    }

    /// Sets the per-core operation count.
    pub fn with_ops(mut self, ops_per_core: usize) -> JobSpec {
        self.ops_per_core = ops_per_core;
        self
    }

    /// Sets the workload seed.
    pub fn with_seed(mut self, seed: u64) -> JobSpec {
        self.seed = seed;
        self
    }

    /// The materialized architectural configuration.
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig::e6000(self.cores, self.l2_bytes)
            .with_coherence(self.coherence)
            .with_scheduler(self.scheduler)
    }

    /// Materializes the per-core traces this job simulates. Public so
    /// checkpoint forking ([`crate::executor`], `snapshot_bench`) can
    /// swap a longer trace set into a captured prefix.
    pub fn traces(&self) -> Vec<VecTrace> {
        match self.trace {
            TraceSpec::Workload(w) => w.generate(self.cores, self.ops_per_core, self.seed),
            TraceSpec::FalseSharing => {
                assert_eq!(
                    self.cores, 2,
                    "the false-sharing micro-trace is a 2-core scenario"
                );
                micro::false_sharing(self.ops_per_core)
            }
            TraceSpec::PingPong => micro::ping_pong(self.cores, self.ops_per_core),
            TraceSpec::PrivateStream => micro::private_stream(self.cores, self.ops_per_core),
        }
    }

    fn senss_config(&self, masks: usize, auth_interval: u64, cipher: CipherMode) -> SenssConfig {
        SenssConfig::paper_default(self.cores)
            .with_masks(masks)
            .with_auth_interval(auth_interval)
            .with_cipher(cipher)
    }

    /// Builds the security extension for this job's mode, boxed so
    /// checkpoint capture/restore paths handle every mode as one
    /// concrete `System<Box<dyn Extension>>` type. Dynamic dispatch
    /// changes no arithmetic: stats stay bit-identical to
    /// [`run`](JobSpec::run).
    pub fn build_extension(&self) -> Box<dyn senss_sim::Extension> {
        match self.mode {
            SecurityMode::Baseline => Box::new(NullExtension),
            SecurityMode::Senss {
                masks,
                auth_interval,
                cipher,
            } => Box::new(SenssExtension::new(
                self.senss_config(masks, auth_interval, cipher),
            )),
            SecurityMode::Integrated {
                masks,
                auth_interval,
                cipher,
            } => {
                let policy = MemProtPolicy::new(MemProtConfig::paper_default(self.cores));
                Box::new(
                    SenssExtension::new(self.senss_config(masks, auth_interval, cipher))
                        .with_memory_protection(policy),
                )
            }
            SecurityMode::Servas { masks } => Box::new(ServasExtension::new(
                ServasConfig::paper_default(self.cores).with_masks(masks),
            )),
            SecurityMode::Sealer { auth_interval } => Box::new(SealerExtension::new(
                SealerConfig::paper_default(self.cores).with_auth_interval(auth_interval),
            )),
            SecurityMode::Scattered { shares } => Box::new(ScatteredExtension::new(
                ScatteredConfig::paper_default(self.cores).with_shares(shares),
            )),
        }
    }

    /// Builds an untraced, unstarted simulator for this job — the entry
    /// point for checkpoint-aware execution ([`System::run_until`] /
    /// [`System::checkpoint_at`]).
    pub fn build_system(&self) -> System<Box<dyn senss_sim::Extension>> {
        System::new(self.system_config(), self.traces(), self.build_extension())
    }

    /// [`build_system`](JobSpec::build_system) with a live trace sink.
    pub fn build_system_with_sink<S: TraceSink>(
        &self,
        sink: S,
    ) -> System<Box<dyn senss_sim::Extension>, S> {
        System::with_sink(self.system_config(), self.traces(), self.build_extension(), sink)
    }

    /// Executes the job synchronously, returning the run's [`Stats`].
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations (e.g. a non-power-of-two L2);
    /// the executor isolates such panics per job.
    pub fn run(&self) -> Stats {
        self.run_counting().0
    }

    /// Like [`run`](JobSpec::run), but also returns the number of events
    /// the simulator's main loop dispatched — the denominator the
    /// `sim_hotpath` micro-benchmark normalizes wall time by.
    pub fn run_counting(&self) -> (Stats, u64) {
        fn finish<E: senss_sim::Extension>(mut sys: System<E>) -> (Stats, u64) {
            let stats = sys.run();
            let events = sys.events_processed();
            (stats, events)
        }
        let cfg = self.system_config();
        let traces = self.traces();
        match self.mode {
            SecurityMode::Baseline => finish(System::new(cfg, traces, NullExtension)),
            SecurityMode::Senss {
                masks,
                auth_interval,
                cipher,
            } => {
                let ext = SenssExtension::new(self.senss_config(masks, auth_interval, cipher));
                finish(System::new(cfg, traces, ext))
            }
            SecurityMode::Integrated {
                masks,
                auth_interval,
                cipher,
            } => {
                let policy = MemProtPolicy::new(MemProtConfig::paper_default(self.cores));
                let ext = SenssExtension::new(self.senss_config(masks, auth_interval, cipher))
                    .with_memory_protection(policy);
                finish(System::new(cfg, traces, ext))
            }
            SecurityMode::Servas { masks } => {
                let ext = ServasExtension::new(ServasConfig::paper_default(self.cores).with_masks(masks));
                finish(System::new(cfg, traces, ext))
            }
            SecurityMode::Sealer { auth_interval } => {
                let ext = SealerExtension::new(
                    SealerConfig::paper_default(self.cores).with_auth_interval(auth_interval),
                );
                finish(System::new(cfg, traces, ext))
            }
            SecurityMode::Scattered { shares } => {
                let ext = ScatteredExtension::new(
                    ScatteredConfig::paper_default(self.cores).with_shares(shares),
                );
                finish(System::new(cfg, traces, ext))
            }
        }
    }

    /// Like [`run`](JobSpec::run), but streams every simulator trace
    /// event into `sink` and hands the sink back alongside the stats.
    ///
    /// Capture never perturbs the simulation: the returned [`Stats`] are
    /// bit-identical to an untraced [`run`](JobSpec::run) of the same
    /// spec.
    pub fn run_with_sink<S: TraceSink>(&self, sink: S) -> (Stats, S) {
        fn finish<E: senss_sim::Extension, S: TraceSink>(mut sys: System<E, S>) -> (Stats, S) {
            let stats = sys.run();
            (stats, sys.into_sink())
        }
        let cfg = self.system_config();
        let traces = self.traces();
        match self.mode {
            SecurityMode::Baseline => finish(System::with_sink(cfg, traces, NullExtension, sink)),
            SecurityMode::Senss {
                masks,
                auth_interval,
                cipher,
            } => {
                let ext = SenssExtension::new(self.senss_config(masks, auth_interval, cipher));
                finish(System::with_sink(cfg, traces, ext, sink))
            }
            SecurityMode::Integrated {
                masks,
                auth_interval,
                cipher,
            } => {
                let policy = MemProtPolicy::new(MemProtConfig::paper_default(self.cores));
                let ext = SenssExtension::new(self.senss_config(masks, auth_interval, cipher))
                    .with_memory_protection(policy);
                finish(System::with_sink(cfg, traces, ext, sink))
            }
            SecurityMode::Servas { masks } => {
                let ext = ServasExtension::new(ServasConfig::paper_default(self.cores).with_masks(masks));
                finish(System::with_sink(cfg, traces, ext, sink))
            }
            SecurityMode::Sealer { auth_interval } => {
                let ext = SealerExtension::new(
                    SealerConfig::paper_default(self.cores).with_auth_interval(auth_interval),
                );
                finish(System::with_sink(cfg, traces, ext, sink))
            }
            SecurityMode::Scattered { shares } => {
                let ext = ScatteredExtension::new(
                    ScatteredConfig::paper_default(self.cores).with_shares(shares),
                );
                finish(System::with_sink(cfg, traces, ext, sink))
            }
        }
    }

    /// Canonical rendering of everything that determines the result.
    ///
    /// Includes the materialized [`SystemConfig`] fields — not just the
    /// grid coordinates — so changing the E6000 defaults changes the
    /// keys of every affected job.
    pub fn canonical(&self) -> String {
        let c = self.system_config();
        let coherence = coherence_tag(c.coherence);
        let snap = senss_snapshot::FORMAT_VERSION;
        format!(
            "v{CACHE_FORMAT}.{snap}|trace={}|mode={}|ops={}|seed={}|p={}|l1={}:{}:{}:{}|l2={}:{}:{}:{}|\
             lat={}:{}|bus={}:{}|crypto={}:{}|coh={coherence}",
            self.trace.tag(),
            self.mode.tag(),
            self.ops_per_core,
            self.seed,
            c.num_processors,
            c.l1_size,
            c.l1_ways,
            c.l1_line,
            c.l1_hit_latency,
            c.l2_size,
            c.l2_ways,
            c.l2_line,
            c.l2_hit_latency,
            c.cache_to_cache_latency,
            c.cache_to_memory_latency,
            c.bus_cycle,
            c.bus_width,
            c.aes_latency,
            c.hash_latency,
        )
    }

    /// Estimated simulation cost of this job in arbitrary units: the
    /// cycle budget (`ops_per_core × cores`) scaled by the mode's
    /// [`cost_weight`](SecurityMode::cost_weight). Used by
    /// [`SweepSpec::shards`] to balance heterogeneous sweeps across
    /// workers; never zero, so every job moves the balance.
    pub fn estimated_cost(&self) -> u64 {
        ((self.ops_per_core as u64) * (self.cores as u64)).max(1) * self.mode.cost_weight()
    }

    /// The content-addressed cache key: hex SHA-256 of [`canonical`].
    ///
    /// [`canonical`]: JobSpec::canonical
    pub fn cache_key(&self) -> String {
        let digest = Sha256::digest(self.canonical().as_bytes());
        let mut out = String::with_capacity(64);
        for b in digest {
            out.push_str(&format!("{b:02x}"));
        }
        out
    }
}

/// An ordered set of jobs to execute as one unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepSpec {
    /// Sweep name: names the run-record file and shows up in logs.
    pub name: String,
    /// The jobs, in result order (the executor preserves this order in
    /// its output no matter which worker finishes first).
    pub jobs: Vec<JobSpec>,
}

impl SweepSpec {
    /// An empty sweep.
    pub fn new(name: &str) -> SweepSpec {
        SweepSpec {
            name: name.to_string(),
            jobs: Vec::new(),
        }
    }

    /// Appends one job.
    pub fn push(&mut self, job: JobSpec) -> &mut SweepSpec {
        self.jobs.push(job);
        self
    }

    /// Appends the full cross product `modes × cores × l2s × workloads`
    /// (outermost to innermost), the grid every figure sweeps some slice
    /// of. Axes with a single value cost nothing to include.
    pub fn grid(
        &mut self,
        workloads: &[Workload],
        cores: &[usize],
        l2s: &[usize],
        modes: &[SecurityMode],
        ops_per_core: usize,
        seed: u64,
    ) -> &mut SweepSpec {
        for &mode in modes {
            for &c in cores {
                for &l2 in l2s {
                    for &w in workloads {
                        self.push(
                            JobSpec::new(w, c, l2)
                                .with_mode(mode)
                                .with_ops(ops_per_core)
                                .with_seed(seed),
                        );
                    }
                }
            }
        }
        self
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the sweep has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Splits the sweep into at most `n` shards, balancing
    /// [`JobSpec::estimated_cost`] instead of job *count*: each job (in
    /// sweep order) goes to the currently least-loaded shard, ties
    /// resolved to the lowest shard number. A sweep mixing 16-core
    /// integrated-mode jobs with 4-core baselines therefore spreads its
    /// expensive points across workers instead of letting `i % n` pile
    /// them onto whichever slot the grid order happens to align with.
    /// For a uniform-cost sweep the greedy assignment degenerates to
    /// exactly the old round-robin, and it is deterministic either way
    /// (pure function of the spec). Empty shards are omitted, so the
    /// returned vector has `min(n, self.len())` entries for a
    /// non-empty sweep (costs are never zero, so an idle shard always
    /// wins the tie before any shard receives a second job).
    ///
    /// Within a shard, jobs keep their sweep order, so a shard's
    /// results sorted by its [`SweepShard::indices`] interleave back
    /// into exactly the original sweep order — the property the
    /// `senss-serve` coordinator's ordered merge relies on for
    /// byte-identical sharded results no matter how jobs were
    /// balanced.
    pub fn shards(&self, n: usize) -> Vec<SweepShard> {
        let n = n.max(1);
        let mut shards: Vec<SweepShard> = (0..n.min(self.jobs.len()))
            .map(|shard| SweepShard {
                shard,
                indices: Vec::new(),
                spec: SweepSpec::new(&format!("{}.s{shard}", self.name)),
            })
            .collect();
        let mut loads = vec![0u64; shards.len()];
        for (i, job) in self.jobs.iter().enumerate() {
            let lightest = loads
                .iter()
                .enumerate()
                .min_by_key(|&(slot, &load)| (load, slot))
                .map(|(slot, _)| slot)
                .expect("non-empty sweep has at least one shard");
            loads[lightest] += job.estimated_cost();
            let s = &mut shards[lightest];
            s.indices.push(i);
            s.spec.jobs.push(*job);
        }
        shards
    }
}

/// One shard of a [`SweepSpec`], as produced by [`SweepSpec::shards`]:
/// a sub-sweep plus the original sweep indices of its jobs (parallel to
/// `spec.jobs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepShard {
    /// Shard number (also the worker slot it is assigned to).
    pub shard: usize,
    /// Original sweep index of each job in [`spec`](SweepShard::spec),
    /// in shard order. Strictly increasing by construction.
    pub indices: Vec<usize>,
    /// The jobs of this shard, as a submittable sweep.
    pub spec: SweepSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_keys_are_stable_and_distinct() {
        let a = JobSpec::new(Workload::Fft, 2, 1 << 20);
        let b = JobSpec::new(Workload::Fft, 2, 1 << 20);
        assert_eq!(a.cache_key(), b.cache_key());
        assert_ne!(
            a.cache_key(),
            a.with_seed(43).cache_key(),
            "seed must be part of the key"
        );
        assert_ne!(
            a.cache_key(),
            a.with_mode(SecurityMode::senss()).cache_key(),
            "mode must be part of the key"
        );
        assert_ne!(
            a.cache_key(),
            JobSpec::new(Workload::Fft, 4, 1 << 20).cache_key(),
            "shape must be part of the key"
        );
        assert_ne!(
            a.cache_key(),
            a.with_coherence(CoherenceProtocol::WriteUpdate).cache_key(),
            "protocol must be part of the key"
        );
    }

    #[test]
    fn canonical_includes_materialized_parameters() {
        let c = JobSpec::new(Workload::Lu, 4, 4 << 20).canonical();
        assert!(c.contains("lat=120:180"), "{c}");
        assert!(c.contains("crypto=80:160"), "{c}");
        assert!(c.contains("mode=baseline"), "{c}");
    }

    #[test]
    fn grid_order_is_deterministic() {
        let mut s1 = SweepSpec::new("g");
        let mut s2 = SweepSpec::new("g");
        let modes = [SecurityMode::Baseline, SecurityMode::senss()];
        for s in [&mut s1, &mut s2] {
            s.grid(
                &Workload::all(),
                &[2, 4],
                &[1 << 20],
                &modes,
                1_000,
                1,
            );
        }
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 5 * 2 * 2);
    }

    #[test]
    fn mode_constructors_mirror_paper_defaults() {
        let d = SenssConfig::paper_default(4);
        match SecurityMode::senss() {
            SecurityMode::Senss {
                masks,
                auth_interval,
                cipher,
            } => {
                assert_eq!(masks, d.num_masks);
                assert_eq!(auth_interval, d.auth_interval);
                assert_eq!(cipher, d.cipher);
            }
            _ => panic!("wrong variant"),
        }
        assert!(matches!(
            SecurityMode::integrated(),
            SecurityMode::Integrated { .. }
        ));
        assert_eq!(SecurityMode::senss_interval(1).tag(), "senss:m8:i1:cbc");
        assert_eq!(
            SecurityMode::senss_masks(usize::MAX).tag(),
            format!("senss:m{}:i100:cbc", usize::MAX)
        );
    }

    #[test]
    fn jobs_run_all_modes() {
        for mode in [
            SecurityMode::Baseline,
            SecurityMode::senss(),
            SecurityMode::integrated(),
            SecurityMode::servas(),
            SecurityMode::sealer(),
            SecurityMode::scattered(),
        ] {
            let stats = JobSpec::new(Workload::Lu, 2, 1 << 20)
                .with_mode(mode)
                .with_ops(800)
                .run();
            assert!(stats.total_cycles > 0, "{mode:?}");
        }
    }

    #[test]
    fn backend_modes_have_distinct_cache_keys() {
        // Satellite guarantee: every backend variant perturbs the
        // content-addressed key, so no backend can ever read another's
        // cached result.
        let base = JobSpec::new(Workload::Fft, 4, 1 << 20);
        let modes = [
            SecurityMode::Baseline,
            SecurityMode::senss(),
            SecurityMode::integrated(),
            SecurityMode::servas(),
            SecurityMode::sealer(),
            SecurityMode::scattered(),
        ];
        let keys: Vec<String> = modes.iter().map(|m| base.with_mode(*m).cache_key()).collect();
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "{:?} vs {:?}", modes[i], modes[j]);
                }
            }
        }
        // The backend knobs themselves are part of the key too.
        assert_ne!(
            base.with_mode(SecurityMode::Servas { masks: 8 }).cache_key(),
            base.with_mode(SecurityMode::Servas { masks: 2 }).cache_key(),
        );
        assert_ne!(
            base.with_mode(SecurityMode::Scattered { shares: 3 }).cache_key(),
            base.with_mode(SecurityMode::Scattered { shares: 5 }).cache_key(),
        );
    }

    #[test]
    fn tags_round_trip() {
        for mode in [
            SecurityMode::Baseline,
            SecurityMode::senss(),
            SecurityMode::senss_masks(usize::MAX),
            SecurityMode::senss_interval(1),
            SecurityMode::integrated(),
            SecurityMode::servas(),
            SecurityMode::Servas { masks: 1 },
            SecurityMode::sealer(),
            SecurityMode::Sealer { auth_interval: 7 },
            SecurityMode::scattered(),
            SecurityMode::Scattered { shares: 5 },
        ] {
            assert_eq!(SecurityMode::from_tag(&mode.tag()), Some(mode));
        }
        assert_eq!(SecurityMode::servas().tag(), "servas:m8");
        assert_eq!(SecurityMode::sealer().tag(), "sealer:i100");
        assert_eq!(SecurityMode::scattered().tag(), "scattered:n3");
        for trace in [
            TraceSpec::Workload(Workload::Fft),
            TraceSpec::Workload(Workload::Ocean),
            TraceSpec::FalseSharing,
            TraceSpec::PingPong,
            TraceSpec::PrivateStream,
        ] {
            assert_eq!(TraceSpec::from_tag(trace.tag()), Some(trace));
        }
        for p in [
            CoherenceProtocol::WriteInvalidate,
            CoherenceProtocol::WriteUpdate,
        ] {
            assert_eq!(coherence_from_tag(coherence_tag(p)), Some(p));
        }
        for bad in [
            "",
            "senss",
            "senss:m8",
            "senss:m8:i1:rot13",
            "sens:m1:i1:cbc",
            "quux",
            "servas",
            "servas:8",
            "servas:m8:i1",
            "sealer:m8",
            "scattered:n",
            "scattered:nthree",
        ] {
            assert_eq!(SecurityMode::from_tag(bad), None, "{bad}");
        }
        assert_eq!(TraceSpec::from_tag("micro:nope"), None);
        assert_eq!(coherence_from_tag("mesi"), None);
    }

    #[test]
    fn shards_partition_round_robin_and_cover_every_job() {
        let mut sweep = SweepSpec::new("shardme");
        sweep.grid(
            &Workload::all(),
            &[2],
            &[1 << 20],
            &[SecurityMode::Baseline],
            100,
            1,
        );
        assert_eq!(sweep.len(), 5);
        let shards = sweep.shards(2);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].indices, vec![0, 2, 4]);
        assert_eq!(shards[1].indices, vec![1, 3]);
        assert_eq!(shards[0].spec.name, "shardme.s0");
        for s in &shards {
            assert_eq!(s.indices.len(), s.spec.len());
            for (&orig, job) in s.indices.iter().zip(&s.spec.jobs) {
                assert_eq!(*job, sweep.jobs[orig], "shard {} job {orig}", s.shard);
            }
            // Ordered-merge precondition: indices strictly increase.
            assert!(s.indices.windows(2).all(|w| w[0] < w[1]));
        }
        // Determinism: the same split twice is identical.
        assert_eq!(shards, sweep.shards(2));
        // More shards than jobs: empty shards are omitted.
        assert_eq!(sweep.shards(9).len(), 5);
        // One shard is the whole sweep.
        let whole = sweep.shards(1);
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].spec.jobs, sweep.jobs);
        assert!(SweepSpec::new("empty").shards(3).is_empty());
    }

    #[test]
    fn shards_balance_estimated_cost() {
        // 1 expensive 16-core integrated job + 3 cheap 2-core baselines:
        // round-robin (i % 2) would put the expensive job AND the third
        // cheap job on shard 0; cost balancing sends all cheap jobs to
        // shard 1.
        let mut sweep = SweepSpec::new("costly");
        sweep.push(
            JobSpec::new(Workload::Fft, 16, 1 << 20)
                .with_mode(SecurityMode::integrated())
                .with_ops(10_000),
        );
        for _ in 0..3 {
            sweep.push(JobSpec::new(Workload::Fft, 2, 1 << 20).with_ops(1_000));
        }
        let shards = sweep.shards(2);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].indices, vec![0]);
        assert_eq!(shards[1].indices, vec![1, 2, 3]);
        // The merge precondition holds regardless of balance.
        for s in &shards {
            assert!(s.indices.windows(2).all(|w| w[0] < w[1]));
            for (&orig, job) in s.indices.iter().zip(&s.spec.jobs) {
                assert_eq!(*job, sweep.jobs[orig]);
            }
        }
        // Deterministic: same spec, same split.
        assert_eq!(shards, sweep.shards(2));
        // Cost weights order the modes as documented.
        assert!(
            JobSpec::new(Workload::Fft, 4, 1 << 20)
                .with_mode(SecurityMode::integrated())
                .estimated_cost()
                > JobSpec::new(Workload::Fft, 4, 1 << 20)
                    .with_mode(SecurityMode::scattered())
                    .estimated_cost()
        );
    }

    #[test]
    fn micro_traces_run() {
        let stats = JobSpec {
            trace: TraceSpec::FalseSharing,
            cores: 2,
            l2_bytes: 1 << 20,
            coherence: CoherenceProtocol::WriteInvalidate,
            mode: SecurityMode::Baseline,
            ops_per_core: 500,
            seed: 0,
            capture: None,
            scheduler: SchedulerKind::default(),
        }
        .run();
        assert!(stats.total_cycles > 0);
    }
}
