//! Structured run records: the JSONL output layer.
//!
//! Every executed (or cache-served) job produces a [`RunRecord`]
//! carrying the full [`Stats`] struct plus execution metadata (wall
//! time, worker id, attempts, cache provenance). Records serialize one
//! per line to `results/records/<sweep>.jsonl`; the same `Stats`
//! encoding backs the result cache.

use crate::json::Value;
use crate::spec::JobSpec;
use senss_sim::Stats;

/// Lists every scalar `u64` counter of [`Stats`] exactly once; the
/// encoder and decoder both expand it, so the two can never drift.
macro_rules! for_each_stats_counter {
    ($apply:ident!($($extra:tt)*)) => {
        $apply!($($extra)*;
            total_cycles,
            ops_executed,
            l1_hits,
            l1_misses,
            l2_hits,
            l2_misses,
            upgrades,
            txn_read,
            txn_read_exclusive,
            txn_upgrade,
            txn_update,
            txn_writeback,
            txn_hash_fetch,
            txn_hash_writeback,
            txn_auth,
            txn_pad_invalidate,
            txn_pad_request,
            cache_to_cache_transfers,
            memory_transfers,
            bus_busy_cycles,
            bus_bytes,
            mask_stall_cycles,
            integrity_check_cycles,
            mask_stalled_transfers
        )
    };
}

macro_rules! encode_counters {
    ($stats:ident; $($name:ident),+) => {
        vec![ $( (stringify!($name).to_string(), Value::UInt($stats.$name)) ),+ ]
    };
}

macro_rules! decode_counters {
    ($obj:ident, $stats:ident; $($name:ident),+) => {
        $( $stats.$name = $obj.get(stringify!($name)).and_then(Value::as_u64).unwrap_or(0); )+
    };
}

/// Encodes the full [`Stats`] struct as a JSON object.
pub fn encode_stats(stats: &Stats) -> Value {
    let mut fields: Vec<(String, Value)> = for_each_stats_counter!(encode_counters!(stats));
    fields.push((
        "core_finish_times".to_string(),
        Value::Arr(stats.core_finish_times.iter().map(|&v| Value::UInt(v)).collect()),
    ));
    fields.push((
        "core_ops".to_string(),
        Value::Arr(stats.core_ops.iter().map(|&v| Value::UInt(v)).collect()),
    ));
    Value::Obj(fields)
}

/// Decodes a [`Stats`] object; absent counters default to zero (forward
/// compatibility for counters added later).
pub fn decode_stats(obj: &Value) -> Option<Stats> {
    if !matches!(obj, Value::Obj(_)) {
        return None;
    }
    let mut stats = Stats::default();
    for_each_stats_counter!(decode_counters!(obj, stats));
    let arr = |key: &str| -> Vec<u64> {
        obj.get(key)
            .and_then(Value::as_arr)
            .map(|items| items.iter().filter_map(Value::as_u64).collect())
            .unwrap_or_default()
    };
    stats.core_finish_times = arr("core_finish_times");
    stats.core_ops = arr("core_ops");
    Some(stats)
}

/// Encodes every [`JobSpec`] field as flat JSON object fields, the
/// layout shared by run-record lines and the `senss-serve` wire format.
pub fn encode_spec(spec: &JobSpec) -> Vec<(String, Value)> {
    let mut fields = vec![
        ("trace".into(), Value::Str(spec.trace.tag().to_string())),
        ("cores".into(), Value::UInt(spec.cores as u64)),
        ("l2_bytes".into(), Value::UInt(spec.l2_bytes as u64)),
        (
            "coherence".into(),
            Value::Str(crate::spec::coherence_tag(spec.coherence).to_string()),
        ),
        ("mode".into(), Value::Str(spec.mode.tag())),
        ("ops_per_core".into(), Value::UInt(spec.ops_per_core as u64)),
        ("seed".into(), Value::UInt(spec.seed)),
    ];
    // Emitted only when set, so record lines and wire frames for
    // uncaptured jobs are byte-identical to the pre-capture format.
    if let Some(capture) = spec.capture {
        fields.push((
            "trace_capture".into(),
            Value::Str(capture.tag().to_string()),
        ));
    }
    fields
}

/// Decodes a [`JobSpec`] from an object carrying the
/// [`encode_spec`] fields. Returns `None` on any missing or
/// unparseable field — callers treat that as a malformed frame.
pub fn decode_spec(obj: &Value) -> Option<JobSpec> {
    let uint = |key: &str| obj.get(key).and_then(Value::as_u64);
    Some(JobSpec {
        trace: crate::spec::TraceSpec::from_tag(obj.get("trace")?.as_str()?)?,
        cores: uint("cores")? as usize,
        l2_bytes: uint("l2_bytes")? as usize,
        coherence: crate::spec::coherence_from_tag(obj.get("coherence")?.as_str()?)?,
        mode: crate::spec::SecurityMode::from_tag(obj.get("mode")?.as_str()?)?,
        ops_per_core: uint("ops_per_core")? as usize,
        seed: uint("seed")?,
        // Optional-strict: absent means no capture, but a present field
        // with an unknown tag is a malformed frame.
        capture: match obj.get("trace_capture") {
            None => None,
            Some(v) => Some(crate::spec::TraceCapture::from_tag(v.as_str()?)?),
        },
        // Not on the wire: the scheduler cannot change results, so
        // decoded jobs run under the default (see `JobSpec::scheduler`).
        scheduler: Default::default(),
    })
}

/// One job's complete execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Position of the job in its sweep (records are emitted in this
    /// order regardless of completion order).
    pub index: usize,
    /// The job that ran.
    pub spec: JobSpec,
    /// Content-addressed cache key of the job.
    pub key: String,
    /// Full simulation statistics.
    pub stats: Stats,
    /// Wall-clock execution time in microseconds (0 for cache hits).
    pub wall_micros: u64,
    /// Executor worker that ran the job (`None` for cache hits).
    pub worker: Option<usize>,
    /// Attempts consumed (1 = first try succeeded; 0 for cache hits).
    pub attempts: u32,
    /// Whether the result was served from the cache.
    pub cached: bool,
    /// Path of the trace artifact this run wrote, when the spec asked
    /// for capture and the executor had a trace directory.
    pub trace_artifact: Option<String>,
}

impl RunRecord {
    /// Serializes the record as one JSONL line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut fields = vec![
            ("index".to_string(), Value::UInt(self.index as u64)),
            ("key".to_string(), Value::Str(self.key.clone())),
        ];
        fields.extend(encode_spec(&self.spec));
        fields.extend([
            ("wall_micros".to_string(), Value::UInt(self.wall_micros)),
            (
                "worker".to_string(),
                match self.worker {
                    Some(w) => Value::UInt(w as u64),
                    None => Value::Str("cache".into()),
                },
            ),
            ("attempts".to_string(), Value::UInt(self.attempts as u64)),
            ("cached".to_string(), Value::Bool(self.cached)),
        ]);
        if let Some(path) = &self.trace_artifact {
            fields.push(("trace_artifact".to_string(), Value::Str(path.clone())));
        }
        fields.push(("stats".to_string(), encode_stats(&self.stats)));
        Value::Obj(fields).encode()
    }

    /// Decodes a record from its parsed JSONL form; `None` means the
    /// object is not a well-formed record.
    pub fn decode(obj: &Value) -> Option<RunRecord> {
        Some(RunRecord {
            index: obj.get("index")?.as_u64()? as usize,
            key: obj.get("key")?.as_str()?.to_string(),
            spec: decode_spec(obj)?,
            stats: decode_stats(obj.get("stats")?)?,
            wall_micros: obj.get("wall_micros")?.as_u64()?,
            worker: obj.get("worker")?.as_u64().map(|w| w as usize),
            attempts: obj.get("attempts")?.as_u64()? as u32,
            cached: matches!(obj.get("cached")?, Value::Bool(true)),
            trace_artifact: match obj.get("trace_artifact") {
                None => None,
                Some(v) => Some(v.as_str()?.to_string()),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::spec::SecurityMode;
    use senss_workloads::Workload;

    fn sample_stats() -> Stats {
        Stats {
            total_cycles: 123_456,
            ops_executed: 999,
            txn_auth: 7,
            mask_stall_cycles: 3,
            core_finish_times: vec![10, 20],
            core_ops: vec![500, 499],
            ..Stats::default()
        }
    }

    #[test]
    fn stats_roundtrip_every_field() {
        // Fill every counter with a distinct value via merge of defaults.
        let mut s = sample_stats();
        s.l1_hits = 1;
        s.l1_misses = 2;
        s.l2_hits = 3;
        s.l2_misses = 4;
        s.upgrades = 5;
        s.txn_read = 6;
        s.txn_read_exclusive = 7;
        s.txn_upgrade = 8;
        s.txn_update = 9;
        s.txn_writeback = 10;
        s.txn_hash_fetch = 11;
        s.txn_hash_writeback = 12;
        s.txn_pad_invalidate = 13;
        s.txn_pad_request = 14;
        s.cache_to_cache_transfers = 15;
        s.memory_transfers = 16;
        s.bus_busy_cycles = 17;
        s.bus_bytes = 18;
        s.integrity_check_cycles = 19;
        s.mask_stalled_transfers = 20;
        let encoded = encode_stats(&s).encode();
        let decoded = decode_stats(&json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn missing_counters_default_to_zero() {
        let decoded =
            decode_stats(&json::parse(r#"{"total_cycles": 5}"#).unwrap()).unwrap();
        assert_eq!(decoded.total_cycles, 5);
        assert_eq!(decoded.txn_auth, 0);
        assert!(decoded.core_ops.is_empty());
    }

    #[test]
    fn record_lines_parse_back() {
        let spec = JobSpec::new(Workload::Ocean, 4, 1 << 20)
            .with_mode(SecurityMode::senss())
            .with_ops(5_000);
        let rec = RunRecord {
            index: 3,
            spec,
            key: spec.cache_key(),
            stats: sample_stats(),
            wall_micros: 1234,
            worker: Some(1),
            attempts: 1,
            cached: false,
            trace_artifact: None,
        };
        let parsed = json::parse(&rec.encode()).unwrap();
        assert_eq!(parsed.get("index").unwrap().as_u64(), Some(3));
        assert_eq!(parsed.get("trace").unwrap().as_str(), Some("ocean"));
        assert_eq!(
            parsed.get("mode").unwrap().as_str(),
            Some("senss:m8:i100:cbc")
        );
        let stats = decode_stats(parsed.get("stats").unwrap()).unwrap();
        assert_eq!(stats, sample_stats());
    }

    #[test]
    fn records_and_specs_round_trip() {
        let spec = JobSpec::new(Workload::Radix, 2, 1 << 20)
            .with_mode(SecurityMode::integrated())
            .with_ops(777)
            .with_seed(9);
        assert_eq!(
            decode_spec(&Value::Obj(encode_spec(&spec))),
            Some(spec),
            "spec codec must round-trip"
        );
        for worker in [Some(2), None] {
            let rec = RunRecord {
                index: 0,
                spec,
                key: spec.cache_key(),
                stats: sample_stats(),
                wall_micros: 55,
                worker,
                attempts: 2,
                cached: worker.is_none(),
                trace_artifact: worker.map(|_| "results/traces/x.jsonl".to_string()),
            };
            let parsed = json::parse(&rec.encode()).unwrap();
            assert_eq!(RunRecord::decode(&parsed), Some(rec.clone()));
        }
        // A record with a missing field is rejected, not mis-decoded.
        assert_eq!(RunRecord::decode(&json::parse("{}").unwrap()), None);
    }

    #[test]
    fn backend_mode_specs_round_trip() {
        // The wire/record codec must carry every senss-backends mode:
        // a serve worker decodes the spec from exactly these fields.
        for mode in [
            SecurityMode::servas(),
            SecurityMode::Servas { masks: 2 },
            SecurityMode::sealer(),
            SecurityMode::Sealer { auth_interval: 1 },
            SecurityMode::scattered(),
            SecurityMode::Scattered { shares: 4 },
        ] {
            let spec = JobSpec::new(Workload::Fft, 4, 1 << 20)
                .with_mode(mode)
                .with_ops(1_234)
                .with_seed(7);
            assert_eq!(
                decode_spec(&Value::Obj(encode_spec(&spec))),
                Some(spec),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn capture_field_is_optional_and_strict() {
        use crate::spec::TraceCapture;
        let plain = JobSpec::new(Workload::Fft, 2, 1 << 20);
        let encoded = Value::Obj(encode_spec(&plain)).encode();
        assert!(
            !encoded.contains("trace_capture"),
            "uncaptured specs keep the pre-capture wire format: {encoded}"
        );
        let captured = plain.with_capture(TraceCapture::Chrome);
        assert_eq!(
            decode_spec(&Value::Obj(encode_spec(&captured))),
            Some(captured),
            "capture must round-trip"
        );
        assert_eq!(
            captured.cache_key(),
            plain.cache_key(),
            "capture is an observation knob, never part of the cache key"
        );
        // A present-but-garbage capture tag is malformed, not ignored.
        let mut fields = encode_spec(&plain);
        fields.push(("trace_capture".into(), Value::Str("pcap".into())));
        assert_eq!(decode_spec(&Value::Obj(fields)), None);
    }
}
