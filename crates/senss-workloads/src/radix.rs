//! RADIX-sort-like workload: sequential key reads plus permutation scatter.
//!
//! SPLASH-2 RADIX is dominated by the permutation phase: each processor
//! streams its local keys and writes them to essentially random positions
//! in a large shared destination array. The destination is far larger than
//! the L2, so the bus sees a high miss rate served almost entirely from
//! memory — lots of traffic, little dirty sharing.

use crate::builder::{Region, TraceBuilder};
use senss_sim::trace::VecTrace;

/// Local key bytes per core.
const KEYS_BYTES: u64 = 512 << 10;
/// Shared destination array: 2 MB — thrashes a 1 MB L2, fits a 4 MB one,
/// giving the two paper configurations distinct behaviour.
const DEST_BYTES: u64 = 2 << 20;
/// Shared histogram (small and write-shared — the little true sharing
/// radix has).
const HIST_BYTES: u64 = 8 << 10;

pub(crate) fn generate(cores: usize, ops_per_core: usize, seed: u64) -> Vec<VecTrace> {
    let dest = Region::new(0x4000_0000, DEST_BYTES);
    let hist = Region::new(0x4A00_0000, HIST_BYTES);
    (0..cores)
        .map(|pid| {
            let mut b = TraceBuilder::new(seed ^ 0x4AD1, pid);
            let keys = Region::new(0x5000_0000 + pid as u64 * KEYS_BYTES, KEYS_BYTES);
            let mut cursor = 0u64;
            while b.len() < ops_per_core {
                // Histogram pass: stream keys, occasionally bump a shared
                // counter (the little true sharing radix has).
                for _ in 0..8 {
                    b.read(keys.line(cursor), 10, 30);
                    cursor += 1;
                    if b.chance(0.1) {
                        let bucket = b.below(hist.lines());
                        b.access(hist.line(bucket), 0.6, 5, 15);
                    }
                }
                // Permutation pass: mostly key streaming with periodic
                // random scatters into the shared destination.
                for i in 0..16 {
                    b.read(keys.line(cursor), 10, 30);
                    cursor += 1;
                    if i % 2 == 0 {
                        // Keys scatter mostly into this core's digit range
                        // (real radix destinations are contiguous per
                        // digit), with a tail of truly remote writes.
                        let own = dest.strip(pid, cores);
                        let target = if b.chance(0.9) {
                            own.line(b.below(own.lines()))
                        } else {
                            dest.line(b.below(dest.lines()))
                        };
                        b.write(target, 10, 30);
                    }
                }
            }
            b.build()
        })
        .collect()
}
