//! BARNES-like workload: irregular octree walks with hot shared nodes.
//!
//! SPLASH-2 BARNES (Barnes-Hut n-body) repeatedly walks a shared tree whose
//! top levels are read by every processor almost every step (excellent
//! reuse), while body updates write to shared cells occasionally —
//! producing read-mostly sharing punctuated by invalidations and dirty
//! transfers at the hot spots.

use crate::builder::{Region, TraceBuilder};
use senss_sim::trace::VecTrace;

/// Shared tree bytes (hot working set; fits in L2).
const TREE_BYTES: u64 = 256 << 10;
/// Private body bytes per core.
const BODY_BYTES: u64 = 256 << 10;

pub(crate) fn generate(cores: usize, ops_per_core: usize, seed: u64) -> Vec<VecTrace> {
    let tree = Region::new(0x2000_0000, TREE_BYTES);
    (0..cores)
        .map(|pid| {
            let mut b = TraceBuilder::new(seed ^ 0x00BA_12E5, pid);
            let bodies = Region::new(0x2800_0000 + pid as u64 * BODY_BYTES, BODY_BYTES);
            let mut body_cursor = 0u64;
            while b.len() < ops_per_core {
                // Walk the tree: a burst of hot-biased reads (top levels are
                // re-read constantly), occasionally updating a cell.
                let depth = 4 + b.below(6);
                for _ in 0..depth {
                    let node = b.hot_index(tree.lines());
                    if b.chance(0.06) {
                        b.write(tree.line(node), 8, 25);
                    } else {
                        b.read(tree.line(node), 8, 25);
                    }
                }
                // Update the local body: read-modify-write with locality.
                let body = bodies.line(body_cursor);
                b.read(body, 20, 60);
                b.write(body, 5, 15);
                body_cursor += 1;
            }
            b.build()
        })
        .collect()
}
