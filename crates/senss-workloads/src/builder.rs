//! Shared trace-building utilities for the workload generators.

use senss_crypto::rng::SplitMix64;
use senss_sim::trace::{Op, VecTrace};

/// Per-core trace accumulator with a seeded RNG and address helpers.
///
/// All generators emit addresses through a [`TraceBuilder`], which keeps
/// the address arithmetic (line alignment, region partitioning) in one
/// place. Randomness comes from the crate-internal deterministic
/// [`SplitMix64`] generator, so traces depend only on `(seed, pid)` and
/// never on an external RNG crate.
#[derive(Debug)]
pub struct TraceBuilder {
    ops: Vec<Op>,
    rng: SplitMix64,
}

impl TraceBuilder {
    /// Creates a builder seeded deterministically from `(seed, pid)`.
    pub fn new(seed: u64, pid: usize) -> TraceBuilder {
        TraceBuilder {
            ops: Vec::new(),
            rng: SplitMix64::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ pid as u64),
        }
    }

    /// Number of operations emitted so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations have been emitted.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Emits a read of `addr` after a uniform gap in `[gap_lo, gap_hi]`.
    pub fn read(&mut self, addr: u64, gap_lo: u64, gap_hi: u64) {
        let gap = self.gap(gap_lo, gap_hi);
        self.ops.push(Op::read(gap, addr));
    }

    /// Emits a write of `addr` after a uniform gap in `[gap_lo, gap_hi]`.
    pub fn write(&mut self, addr: u64, gap_lo: u64, gap_hi: u64) {
        let gap = self.gap(gap_lo, gap_hi);
        self.ops.push(Op::write(gap, addr));
    }

    /// Emits a read or a write with probability `write_prob` of a write.
    pub fn access(&mut self, addr: u64, write_prob: f64, gap_lo: u64, gap_hi: u64) {
        if self.chance(write_prob) {
            self.write(addr, gap_lo, gap_hi);
        } else {
            self.read(addr, gap_lo, gap_hi);
        }
    }

    fn gap(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            lo
        } else {
            lo + self.rng.next_below(hi - lo + 1)
        }
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.rng.next_below(bound)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        // 53-bit uniform in [0, 1), the usual double construction.
        let unit = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A Zipf-ish hot index in `[0, n)`: repeatedly prefers low indices,
    /// used for tree-root hot spots in `barnes`.
    pub fn hot_index(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut idx = self.below(n);
        // Two rounds of min-of-two biases the pick towards 0.
        idx = idx.min(self.below(n));
        idx = idx.min(self.below(n));
        idx
    }

    /// Finishes the trace.
    pub fn build(self) -> VecTrace {
        VecTrace::new(self.ops)
    }
}

/// A contiguous address region carved out of the shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    len: u64,
}

impl Region {
    /// Creates the region `[base, base + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(base: u64, len: u64) -> Region {
        assert!(len > 0, "region must be non-empty");
        Region { base, len }
    }

    /// Region length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The address of byte `offset` within the region (wraps around).
    pub fn at(&self, offset: u64) -> u64 {
        self.base + offset % self.len
    }

    /// The address of the `i`-th 64-byte line (wraps around).
    pub fn line(&self, i: u64) -> u64 {
        self.at(i * 64)
    }

    /// Number of 64-byte lines in the region.
    pub fn lines(&self) -> u64 {
        self.len / 64
    }

    /// Splits the region into `n` equal strips, returning strip `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or the region is smaller than `n` lines.
    pub fn strip(&self, i: usize, n: usize) -> Region {
        assert!(i < n, "strip index out of range");
        let part = self.len / n as u64;
        assert!(part >= 64, "strips must hold at least one line");
        Region::new(self.base + part * i as u64, part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senss_sim::trace::TraceSource;

    #[test]
    fn builder_is_deterministic() {
        let mk = || {
            let mut b = TraceBuilder::new(3, 1);
            for i in 0..50 {
                b.access(i * 64, 0.3, 5, 20);
            }
            b.build()
        };
        let mut a = mk();
        let mut b = mk();
        while let (Some(x), Some(y)) = (a.next_op(), b.next_op()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn distinct_pids_distinct_streams() {
        let mut a = TraceBuilder::new(3, 0);
        let mut b = TraceBuilder::new(3, 1);
        let mut diff = false;
        for i in 0..50 {
            a.access(i * 64, 0.5, 0, 100);
            b.access(i * 64, 0.5, 0, 100);
        }
        let (mut ta, mut tb) = (a.build(), b.build());
        while let (Some(x), Some(y)) = (ta.next_op(), tb.next_op()) {
            if x != y {
                diff = true;
            }
        }
        assert!(diff);
    }

    #[test]
    fn gaps_respect_bounds() {
        let mut b = TraceBuilder::new(9, 0);
        for _ in 0..100 {
            b.read(0, 10, 20);
        }
        let mut t = b.build();
        while let Some(op) = t.next_op() {
            assert!(op.gap >= 10 && op.gap <= 20);
        }
    }

    #[test]
    fn degenerate_gap_range() {
        let mut b = TraceBuilder::new(9, 0);
        b.read(0, 7, 7);
        let mut t = b.build();
        assert_eq!(t.next_op().unwrap().gap, 7);
    }

    #[test]
    fn region_addressing() {
        let r = Region::new(0x1000, 256);
        assert_eq!(r.at(0), 0x1000);
        assert_eq!(r.at(255), 0x10FF);
        assert_eq!(r.at(256), 0x1000, "wraps");
        assert_eq!(r.line(1), 0x1040);
        assert_eq!(r.lines(), 4);
    }

    #[test]
    fn region_strips_partition() {
        let r = Region::new(0, 4096);
        let s0 = r.strip(0, 4);
        let s3 = r.strip(3, 4);
        assert_eq!(s0.base(), 0);
        assert_eq!(s0.len(), 1024);
        assert_eq!(s3.base(), 3072);
    }

    #[test]
    fn hot_index_prefers_low_values() {
        let mut b = TraceBuilder::new(1, 0);
        let n = 1000u64;
        let samples: Vec<u64> = (0..2000).map(|_| b.hot_index(n)).collect();
        let low = samples.iter().filter(|&&x| x < n / 4).count();
        // min-of-three gives P(x < n/4) ≈ 1 - (3/4)^3 ≈ 0.58.
        assert!(low > samples.len() / 2, "hot_index not biased: {low}");
    }

    #[test]
    #[should_panic(expected = "strip index")]
    fn bad_strip_panics() {
        Region::new(0, 4096).strip(4, 4);
    }
}
