//! Deterministic synthetic SPLASH-2-like workload generators.
//!
//! The SENSS paper evaluates on five SPLASH-2 programs — **fft**, **radix**,
//! **barnes**, **lu** and **ocean** — running under Solaris on Simics. This
//! crate substitutes deterministic trace generators modelled on each
//! benchmark's published communication pattern (Woo et al., ISCA '95):
//!
//! | workload | pattern | bus character |
//! |---|---|---|
//! | fft    | bursty all-to-all transpose | waves of cache-to-cache transfers |
//! | radix  | permutation scatter | high miss rate, little dirty sharing |
//! | barnes | irregular tree walk with hot nodes | read-mostly sharing + hot-spot updates |
//! | lu     | blocked factorization, pivot broadcast | producer→consumers c2c transfers |
//! | ocean  | 2-D stencil strips | neighbour boundary exchange each sweep |
//!
//! SENSS overhead is a function of the *mix* of bus transactions a workload
//! induces (miss rate, fraction of dirty-sharing transfers, burstiness),
//! which these generators reproduce; absolute instruction streams are not
//! required. Everything is seeded and deterministic: the same
//! `(workload, cores, ops, seed)` always yields byte-identical traces.
//!
//! # Example
//!
//! ```
//! use senss_workloads::Workload;
//!
//! let traces = Workload::Fft.generate(4, 1_000, 42);
//! assert_eq!(traces.len(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod barnes;
mod builder;
mod fft;
mod lu;
pub mod micro;
mod ocean;
mod radix;

pub use builder::{Region, TraceBuilder};

use senss_sim::trace::VecTrace;

/// The five paper workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// All-to-all transpose phases (bursty cache-to-cache traffic).
    Fft,
    /// Permutation scatter (high miss rate, low sharing).
    Radix,
    /// Irregular tree walk with hot shared nodes.
    Barnes,
    /// Blocked factorization with pivot-block broadcast.
    Lu,
    /// 2-D stencil with neighbour boundary exchange.
    Ocean,
}

impl Workload {
    /// All five workloads in the paper's figure order.
    pub fn all() -> [Workload; 5] {
        [
            Workload::Fft,
            Workload::Radix,
            Workload::Barnes,
            Workload::Lu,
            Workload::Ocean,
        ]
    }

    /// The lowercase name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Fft => "fft",
            Workload::Radix => "radix",
            Workload::Barnes => "barnes",
            Workload::Lu => "lu",
            Workload::Ocean => "ocean",
        }
    }

    /// Generates one trace per core, `ops_per_core` references each,
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn generate(self, cores: usize, ops_per_core: usize, seed: u64) -> Vec<VecTrace> {
        assert!(cores > 0, "need at least one core");
        let mut traces = match self {
            Workload::Fft => fft::generate(cores, ops_per_core, seed),
            Workload::Radix => radix::generate(cores, ops_per_core, seed),
            Workload::Barnes => barnes::generate(cores, ops_per_core, seed),
            Workload::Lu => lu::generate(cores, ops_per_core, seed),
            Workload::Ocean => ocean::generate(cores, ops_per_core, seed),
        };
        // Generators emit whole algorithmic phases; cut to the exact
        // requested length so run sizes are comparable across workloads.
        for t in &mut traces {
            t.truncate(ops_per_core);
        }
        traces
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Workload {
    type Err = UnknownWorkloadError;

    fn from_str(s: &str) -> Result<Workload, UnknownWorkloadError> {
        match s {
            "fft" => Ok(Workload::Fft),
            "radix" => Ok(Workload::Radix),
            "barnes" => Ok(Workload::Barnes),
            "lu" => Ok(Workload::Lu),
            "ocean" => Ok(Workload::Ocean),
            _ => Err(UnknownWorkloadError {
                name: s.to_string(),
            }),
        }
    }
}

/// Error for parsing an unknown workload name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWorkloadError {
    /// The unrecognized name.
    pub name: String,
}

impl std::fmt::Display for UnknownWorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown workload name {:?}", self.name)
    }
}

impl std::error::Error for UnknownWorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;
    use senss_sim::config::SystemConfig;
    use senss_sim::extension::NullExtension;
    use senss_sim::system::System;
    use senss_sim::trace::TraceSource;

    #[test]
    fn all_names_roundtrip() {
        for w in Workload::all() {
            assert_eq!(w.name().parse::<Workload>().unwrap(), w);
            assert_eq!(format!("{w}"), w.name());
        }
    }

    #[test]
    fn unknown_name_errors() {
        let err = "cholesky".parse::<Workload>().unwrap_err();
        assert!(err.to_string().contains("cholesky"));
    }

    #[test]
    fn generation_is_deterministic() {
        for w in Workload::all() {
            let a = w.generate(2, 500, 7);
            let b = w.generate(2, 500, 7);
            for (x, y) in a.iter().zip(&b) {
                let mut x = x.clone();
                let mut y = y.clone();
                while let (Some(ox), Some(oy)) = (x.next_op(), y.next_op()) {
                    assert_eq!(ox, oy, "{w}");
                }
                assert_eq!(x.next_op(), y.next_op());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        for w in Workload::all() {
            let mut a = w.generate(2, 200, 1).remove(0);
            let mut b = w.generate(2, 200, 2).remove(0);
            let mut any_diff = false;
            while let (Some(x), Some(y)) = (a.next_op(), b.next_op()) {
                if x != y {
                    any_diff = true;
                    break;
                }
            }
            assert!(any_diff, "{w}: seeds produce identical traces");
        }
    }

    #[test]
    fn requested_lengths_are_respected() {
        for w in Workload::all() {
            for &cores in &[1usize, 2, 4] {
                let traces = w.generate(cores, 300, 3);
                assert_eq!(traces.len(), cores);
                for t in &traces {
                    assert_eq!(t.len_hint(), Some(300), "{w}");
                }
            }
        }
    }

    #[test]
    fn sharing_workloads_induce_c2c_traffic() {
        // fft, lu, ocean and barnes must produce dirty cache-to-cache
        // transfers; radix is scatter-dominated (little dirty sharing).
        for w in [
            Workload::Fft,
            Workload::Lu,
            Workload::Ocean,
            Workload::Barnes,
        ] {
            let traces = w.generate(4, 4_000, 11);
            let mut sys = System::new(SystemConfig::e6000(4, 1 << 20), traces, NullExtension);
            let stats = sys.run();
            assert!(stats.cache_to_cache_transfers > 0, "{w}: no c2c transfers");
        }
    }

    #[test]
    fn radix_is_miss_heavy_and_memory_dominated() {
        let traces = Workload::Radix.generate(4, 4_000, 11);
        let mut sys = System::new(SystemConfig::e6000(4, 1 << 20), traces, NullExtension);
        let stats = sys.run();
        assert!(stats.memory_transfers > stats.cache_to_cache_transfers * 3);
        assert!(stats.l1_miss_rate() > 0.02);
    }

    #[test]
    fn workloads_complete_under_simulation() {
        for w in Workload::all() {
            let traces = w.generate(2, 1_000, 5);
            let mut sys = System::new(SystemConfig::e6000(2, 1 << 20), traces, NullExtension);
            let stats = sys.run();
            assert!(stats.ops_executed >= 2 * 900, "{w}");
            assert!(stats.total_cycles > 0, "{w}");
        }
    }
}
