//! LU-like workload: blocked factorization with pivot-block broadcast.
//!
//! In SPLASH-2 LU, each iteration one processor factorizes the pivot block
//! and every other processor then reads it to update its own blocks — a
//! textbook single-producer / many-consumer pattern that turns into dirty
//! cache-to-cache transfers on a write-invalidate bus.

use crate::builder::{Region, TraceBuilder};
use senss_sim::trace::VecTrace;

/// Lines per pivot block (1 KB blocks = 16 lines).
const PIVOT_LINES: u64 = 16;
/// Pivot block area (shared).
const PIVOT_BYTES: u64 = 512 << 10;
/// Private block bytes per core.
const PRIVATE_BYTES: u64 = 512 << 10;

pub(crate) fn generate(cores: usize, ops_per_core: usize, seed: u64) -> Vec<VecTrace> {
    let pivots = Region::new(0x3000_0000, PIVOT_BYTES);
    (0..cores)
        .map(|pid| {
            let mut b = TraceBuilder::new(seed ^ 0x1_u64, pid);
            let private = Region::new(0x3800_0000 + pid as u64 * PRIVATE_BYTES, PRIVATE_BYTES);
            let mut iter = 0u64;
            let mut cursor = 0u64;
            while b.len() < ops_per_core {
                let owner = (iter % cores as u64) as usize;
                let pivot_base = iter * PIVOT_LINES;
                if owner == pid {
                    // Factorize the pivot block: read-modify-write each line.
                    for i in 0..PIVOT_LINES {
                        b.read(pivots.line(pivot_base + i), 10, 30);
                        b.write(pivots.line(pivot_base + i), 5, 15);
                    }
                } else {
                    // Consume the pivot block the owner just produced.
                    for i in 0..PIVOT_LINES {
                        b.read(pivots.line(pivot_base + i), 8, 20);
                    }
                }
                // Update own blocks using the pivot.
                for _ in 0..3 * PIVOT_LINES {
                    let line = private.line(cursor);
                    b.read(line, 12, 35);
                    b.write(line, 5, 15);
                    cursor += 1;
                }
                iter += 1;
            }
            b.build()
        })
        .collect()
}
