//! FFT-like workload: alternating local-compute and all-to-all transpose
//! phases.
//!
//! The SPLASH-2 FFT communicates through matrix transposes in which every
//! processor reads blocks most recently *written* by every other processor
//! — the canonical burst of dirty cache-to-cache transfers on a snooping
//! bus. Between transposes, each processor computes on its own partition
//! with high locality.

use crate::builder::{Region, TraceBuilder};
use senss_sim::trace::VecTrace;

/// Matrix bytes per core (512 KB: several L1s, comfortably inside L2).
const STRIP_BYTES: u64 = 512 << 10;
/// Lines touched per compute phase segment.
const COMPUTE_LINES: u64 = 96;
/// Lines read from each remote strip per transpose.
const TRANSPOSE_LINES: u64 = 24;

pub(crate) fn generate(cores: usize, ops_per_core: usize, seed: u64) -> Vec<VecTrace> {
    let matrix = Region::new(0x1000_0000, STRIP_BYTES * cores as u64);
    (0..cores)
        .map(|pid| {
            let mut b = TraceBuilder::new(seed ^ 0xFF7, pid);
            let own = matrix.strip(pid, cores);
            let mut phase = 0u64;
            while b.len() < ops_per_core {
                // --- compute phase: walk a window of the local strip ---
                let window = phase * COMPUTE_LINES;
                for i in 0..COMPUTE_LINES {
                    let addr = own.line(window + i);
                    b.read(addr, 15, 45);
                    if b.chance(0.5) {
                        b.write(addr, 5, 15);
                    }
                }
                // --- transpose phase: gather from every remote strip ---
                for other in 0..cores {
                    if other == pid {
                        continue;
                    }
                    let remote = matrix.strip(other, cores);
                    for i in 0..TRANSPOSE_LINES {
                        // Read the block the remote core just produced…
                        b.read(remote.line(window + i * 4 + pid as u64), 2, 8);
                        // …and scatter it into the local strip.
                        b.write(own.line(window + i * 4 + other as u64), 2, 8);
                    }
                }
                phase += 1;
            }
            b.build()
        })
        .collect()
}
