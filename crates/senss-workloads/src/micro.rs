//! Microbenchmark traces for targeted stress and correctness tests.
//!
//! These are not paper workloads; they isolate single behaviours:
//! worst-case mask pressure ([`ping_pong`]), the no-sharing baseline
//! ([`private_stream`]), and the paper's §7.8 variability illustration
//! ([`false_sharing`], Figure 11).

use senss_sim::trace::{Op, VecTrace};

/// Two (or more) cores alternately writing and reading the same line —
/// maximum cache-to-cache rate, the worst case for mask availability and
/// authentication bandwidth.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn ping_pong(cores: usize, ops_per_core: usize) -> Vec<VecTrace> {
    assert!(cores > 0, "need at least one core");
    let line = 0x7000_0000u64;
    (0..cores)
        .map(|pid| {
            let ops = (0..ops_per_core)
                .map(|i| {
                    // Offset phases so cores interleave on the bus.
                    let gap = if i == 0 { 5 * pid as u64 } else { 10 };
                    if (i + pid) % 2 == 0 {
                        Op::write(gap, line)
                    } else {
                        Op::read(gap, line)
                    }
                })
                .collect();
            VecTrace::new(ops)
        })
        .collect()
}

/// Each core streams through a private region: zero sharing, pure
/// cache-to-memory traffic. SENSS bus encryption should cost almost
/// nothing here.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn private_stream(cores: usize, ops_per_core: usize) -> Vec<VecTrace> {
    assert!(cores > 0, "need at least one core");
    (0..cores)
        .map(|pid| {
            let base = 0x8000_0000u64 + pid as u64 * (8 << 20);
            let ops = (0..ops_per_core)
                .map(|i| {
                    let addr = base + (i as u64 % (4 << 14)) * 64;
                    if i % 4 == 0 {
                        Op::write(20, addr)
                    } else {
                        Op::read(20, addr)
                    }
                })
                .collect();
            VecTrace::new(ops)
        })
        .collect()
}

/// The paper's Figure 11 scenario: two cores touching *different words of
/// the same line* (false sharing). Access reordering under SENSS timing
/// can change hit/miss patterns without affecting correctness.
pub fn false_sharing(ops_per_core: usize) -> Vec<VecTrace> {
    let line = 0x9000_0000u64;
    let cpu0 = (0..ops_per_core)
        .map(|i| {
            if i % 2 == 0 {
                Op::write(15, line) // word 0
            } else {
                Op::read(25, line)
            }
        })
        .collect();
    let cpu1 = (0..ops_per_core)
        .map(|i| {
            if i % 3 == 0 {
                Op::write(10, line + 8) // a different word, same line
            } else {
                Op::read(20, line + 8)
            }
        })
        .collect();
    vec![VecTrace::new(cpu0), VecTrace::new(cpu1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use senss_sim::config::SystemConfig;
    use senss_sim::extension::NullExtension;
    use senss_sim::system::System;
    use senss_sim::trace::TraceSource;

    #[test]
    fn ping_pong_maximizes_c2c() {
        let mut sys = System::new(
            SystemConfig::e6000(2, 1 << 20),
            ping_pong(2, 200),
            NullExtension,
        );
        let stats = sys.run();
        assert!(
            stats.c2c_fraction() > 0.5,
            "ping-pong should be c2c dominated, got {}",
            stats.c2c_fraction()
        );
    }

    #[test]
    fn private_stream_has_no_sharing() {
        let mut sys = System::new(
            SystemConfig::e6000(2, 1 << 20),
            private_stream(2, 500),
            NullExtension,
        );
        let stats = sys.run();
        assert_eq!(stats.cache_to_cache_transfers, 0);
        assert!(stats.memory_transfers > 0);
    }

    #[test]
    fn false_sharing_bounces_the_line() {
        let mut sys = System::new(
            SystemConfig::e6000(2, 1 << 20),
            false_sharing(200),
            NullExtension,
        );
        let stats = sys.run();
        // The line ping-pongs: upgrades and re-fetches appear even though
        // the cores touch disjoint words.
        assert!(stats.txn_upgrade + stats.txn_read_exclusive > 0);
        assert!(stats.cache_to_cache_transfers > 0);
    }

    #[test]
    fn trace_lengths_match() {
        for t in ping_pong(3, 123) {
            assert_eq!(t.len_hint(), Some(123));
        }
        for t in private_stream(2, 77) {
            assert_eq!(t.len_hint(), Some(77));
        }
        for t in false_sharing(55) {
            assert_eq!(t.len_hint(), Some(55));
        }
    }
}
