//! OCEAN-like workload: 2-D stencil sweeps with boundary exchange.
//!
//! SPLASH-2 OCEAN partitions the grid into per-processor strips; every
//! relaxation sweep reads the neighbouring strips' boundary rows — which
//! the neighbours wrote in the previous sweep — so each sweep begins with
//! a predictable wave of dirty cache-to-cache transfers, followed by
//! high-locality interior work.

use crate::builder::{Region, TraceBuilder};
use senss_sim::trace::VecTrace;

/// Strip bytes per core (chosen so the working set stresses a 1 MB L2 but
/// fits easily in 4 MB, giving the two paper configurations different
/// behaviour).
const STRIP_BYTES: u64 = 768 << 10;
/// Lines on each strip boundary that neighbours exchange.
const BOUNDARY_LINES: u64 = 32;
/// Interior lines visited per sweep segment.
const INTERIOR_LINES: u64 = 128;

pub(crate) fn generate(cores: usize, ops_per_core: usize, seed: u64) -> Vec<VecTrace> {
    let grid = Region::new(0x6000_0000, STRIP_BYTES * cores as u64);
    (0..cores)
        .map(|pid| {
            let mut b = TraceBuilder::new(seed ^ 0x0000_CEA0, pid);
            let own = grid.strip(pid, cores);
            let up = grid.strip((pid + cores - 1) % cores, cores);
            let down = grid.strip((pid + 1) % cores, cores);
            let mut sweep = 0u64;
            while b.len() < ops_per_core {
                // Boundary exchange: read neighbours' edge rows (they wrote
                // them last sweep) and refresh our own edges.
                if cores > 1 {
                    for i in 0..BOUNDARY_LINES {
                        b.read(up.line(up.lines() - BOUNDARY_LINES + i), 4, 12);
                        b.read(down.line(i), 4, 12);
                    }
                }
                for i in 0..BOUNDARY_LINES {
                    b.write(own.line(i), 4, 12);
                    b.write(own.line(own.lines() - BOUNDARY_LINES + i), 4, 12);
                }
                // Interior relaxation: walk a window with 5-point locality.
                let window = (sweep * INTERIOR_LINES) % own.lines();
                for i in 0..INTERIOR_LINES {
                    let line = own.line(window + i);
                    b.read(line, 10, 30);
                    if b.chance(0.7) {
                        b.write(line, 4, 10);
                    }
                }
                sweep += 1;
            }
            b.build()
        })
        .collect()
}
