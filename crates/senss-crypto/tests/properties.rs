//! Randomized-but-deterministic tests of the cryptographic substrate.
//!
//! These were property-based (proptest) tests; they now drive the same
//! assertions from the crate's own [`SplitMix64`] generator so the suite
//! has no external dependencies and every run checks the same cases.

use senss_crypto::aes::Aes;
use senss_crypto::cbc::{BusChain, CbcDecryptor, CbcEncryptor};
use senss_crypto::gcm::Gcm;
use senss_crypto::mac::ChainedMac;
use senss_crypto::otp::PadGenerator;
use senss_crypto::rng::SplitMix64;
use senss_crypto::rsa::KeyPair;
use senss_crypto::sha256::Sha256;
use senss_crypto::Block;

fn bytes(rng: &mut SplitMix64, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn key16(rng: &mut SplitMix64) -> [u8; 16] {
    let mut k = [0u8; 16];
    rng.fill_bytes(&mut k);
    k
}

#[test]
fn aes_roundtrips_for_all_key_sizes() {
    let mut rng = SplitMix64::new(0xA1);
    for case in 0..64 {
        let key_len = (case * 7) % 64;
        let key = bytes(&mut rng, key_len);
        let pt = rng.next_block();
        match Aes::from_key(&key) {
            Ok(aes) => {
                assert!(matches!(key.len(), 16 | 24 | 32));
                assert_eq!(aes.decrypt_block(aes.encrypt_block(pt)), pt);
            }
            Err(_) => assert!(!matches!(key.len(), 16 | 24 | 32)),
        }
    }
}

#[test]
fn aes_is_a_permutation() {
    let mut rng = SplitMix64::new(0xA2);
    for _ in 0..64 {
        let aes = Aes::new_128(&key16(&mut rng));
        let a = rng.next_block();
        let b = rng.next_block();
        if a != b {
            assert_ne!(aes.encrypt_block(a), aes.encrypt_block(b));
        }
    }
}

#[test]
fn cbc_roundtrips() {
    let mut rng = SplitMix64::new(0xA3);
    for blocks in 0..8 {
        let key = key16(&mut rng);
        let iv = rng.next_block();
        let msg = bytes(&mut rng, blocks * 16);
        let mut enc = CbcEncryptor::new(Aes::new_128(&key), iv);
        let mut dec = CbcDecryptor::new(Aes::new_128(&key), iv);
        let ct = enc.encrypt(&msg).unwrap();
        assert_eq!(dec.decrypt(&ct).unwrap(), msg);
    }
}

#[test]
fn bus_chain_lockstep() {
    let mut rng = SplitMix64::new(0xA4);
    for case in 0..32 {
        let key = key16(&mut rng);
        let c0 = rng.next_block();
        let mut s = BusChain::new(Aes::new_128(&key), c0);
        let mut r = BusChain::new(Aes::new_128(&key), c0);
        for _ in 0..(1 + case % 40) {
            let d = rng.next_block();
            let p = s.encrypt(d);
            assert_eq!(r.decrypt(p), d);
        }
    }
}

#[test]
fn gcm_roundtrips_and_rejects_tampering() {
    let mut rng = SplitMix64::new(0xA5);
    for case in 0..32 {
        let key = key16(&mut rng);
        let mut iv = [0u8; 12];
        rng.fill_bytes(&mut iv);
        let aad = bytes(&mut rng, case % 24);
        let pt = bytes(&mut rng, (case * 5) % 80);
        let gcm = Gcm::new(Aes::new_128(&key));
        let (mut ct, tag) = gcm.encrypt(&iv, &aad, &pt);
        assert_eq!(gcm.decrypt(&iv, &aad, &ct, tag).unwrap(), pt);
        if !ct.is_empty() {
            let idx = rng.next_below(ct.len() as u64) as usize;
            ct[idx] ^= 1;
            assert!(gcm.decrypt(&iv, &aad, &ct, tag).is_err());
        }
    }
}

#[test]
fn chained_mac_detects_any_single_block_substitution() {
    let mut rng = SplitMix64::new(0xA6);
    for case in 0..48 {
        let key = key16(&mut rng);
        let iv = rng.next_block();
        let history: Vec<Block> = (0..(1 + case % 24)).map(|_| rng.next_block()).collect();
        let idx = rng.next_below(history.len() as u64) as usize;
        let subst = rng.next_block();
        if history[idx] == subst {
            continue;
        }
        let mut honest = ChainedMac::new(Aes::new_128(&key), iv);
        let mut forged = ChainedMac::new(Aes::new_128(&key), iv);
        for (i, &b) in history.iter().enumerate() {
            honest.absorb(b);
            forged.absorb(if i == idx { subst } else { b });
        }
        assert_ne!(honest.tag(128), forged.tag(128));
    }
}

#[test]
fn chained_mac_detects_any_adjacent_swap() {
    let mut rng = SplitMix64::new(0xA7);
    for case in 0..48 {
        let key = key16(&mut rng);
        let iv = rng.next_block();
        let history: Vec<Block> = (0..(2 + case % 22)).map(|_| rng.next_block()).collect();
        let idx = rng.next_below(history.len() as u64 - 1) as usize;
        if history[idx] == history[idx + 1] {
            continue;
        }
        let mut honest = ChainedMac::new(Aes::new_128(&key), iv);
        let mut swapped = ChainedMac::new(Aes::new_128(&key), iv);
        let mut reordered = history.clone();
        reordered.swap(idx, idx + 1);
        for (&a, &b) in history.iter().zip(&reordered) {
            honest.absorb(a);
            swapped.absorb(b);
        }
        assert_ne!(honest.tag(128), swapped.tag(128));
    }
}

#[test]
fn otp_apply_is_involution() {
    let mut rng = SplitMix64::new(0xA8);
    for blocks in 1..5 {
        let g = PadGenerator::new(Aes::new_128(&key16(&mut rng)));
        let addr = rng.next_u64();
        let seq = rng.next_u64();
        let line = bytes(&mut rng, blocks * 16);
        let mut data = line.clone();
        g.apply(addr, seq, &mut data);
        g.apply(addr, seq, &mut data);
        assert_eq!(data, line);
    }
}

#[test]
fn sha256_incremental_equals_oneshot() {
    let mut rng = SplitMix64::new(0xA9);
    for case in 0..32 {
        let data = bytes(&mut rng, (case * 17) % 512);
        let cut = if data.is_empty() {
            0
        } else {
            rng.next_below(data.len() as u64) as usize
        };
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        assert_eq!(h.finalize(), Sha256::digest(&data));
    }
}

#[test]
fn rsa_roundtrips() {
    let mut rng = SplitMix64::new(0xAA);
    for case in 0..8 {
        let kp = KeyPair::generate(rng.next_u64());
        let msg = bytes(&mut rng, (case * 5) % 40);
        let ct = kp.public.encrypt(&msg).unwrap();
        assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
    }
}

#[test]
fn block_prefix_is_prefix() {
    let mut rng = SplitMix64::new(0xAB);
    for m in 1usize..=128 {
        let b = rng.next_block();
        let p = b.prefix_bits(m);
        // The first m bits agree, the rest are zero.
        for bit in 0..128 {
            let byte = bit / 8;
            let mask = 0x80u8 >> (bit % 8);
            let orig = b.as_bytes()[byte] & mask;
            let pref = p.as_bytes()[byte] & mask;
            if bit < m {
                assert_eq!(orig, pref);
            } else {
                assert_eq!(pref, 0);
            }
        }
    }
}
