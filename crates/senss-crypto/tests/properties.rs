//! Property-based tests of the cryptographic substrate.

use proptest::prelude::*;
use senss_crypto::aes::Aes;
use senss_crypto::cbc::{BusChain, CbcDecryptor, CbcEncryptor};
use senss_crypto::gcm::Gcm;
use senss_crypto::mac::ChainedMac;
use senss_crypto::otp::PadGenerator;
use senss_crypto::rsa::KeyPair;
use senss_crypto::sha256::Sha256;
use senss_crypto::Block;

fn block() -> impl Strategy<Value = Block> {
    proptest::array::uniform16(any::<u8>()).prop_map(Block::from)
}

fn key16() -> impl Strategy<Value = [u8; 16]> {
    proptest::array::uniform16(any::<u8>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aes_roundtrips_for_all_key_sizes(key in proptest::collection::vec(any::<u8>(), 0..64), pt in block()) {
        // Only 16/24/32-byte keys are valid; others must error.
        match Aes::from_key(&key) {
            Ok(aes) => {
                prop_assert!(matches!(key.len(), 16 | 24 | 32));
                prop_assert_eq!(aes.decrypt_block(aes.encrypt_block(pt)), pt);
            }
            Err(_) => prop_assert!(!matches!(key.len(), 16 | 24 | 32)),
        }
    }

    #[test]
    fn aes_is_a_permutation(key in key16(), a in block(), b in block()) {
        let aes = Aes::new_128(&key);
        if a != b {
            prop_assert_ne!(aes.encrypt_block(a), aes.encrypt_block(b));
        }
    }

    #[test]
    fn cbc_roundtrips(key in key16(), iv in block(),
                      msg in proptest::collection::vec(any::<u8>(), 0..8).prop_map(|blocks| {
                          blocks.into_iter().flat_map(|b| [b; 16]).collect::<Vec<u8>>()
                      })) {
        let mut enc = CbcEncryptor::new(Aes::new_128(&key), iv);
        let mut dec = CbcDecryptor::new(Aes::new_128(&key), iv);
        let ct = enc.encrypt(&msg).unwrap();
        prop_assert_eq!(dec.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn bus_chain_lockstep(key in key16(), c0 in block(),
                          data in proptest::collection::vec(block(), 1..40)) {
        let mut s = BusChain::new(Aes::new_128(&key), c0);
        let mut r = BusChain::new(Aes::new_128(&key), c0);
        for d in data {
            let p = s.encrypt(d);
            prop_assert_eq!(r.decrypt(p), d);
        }
    }

    #[test]
    fn gcm_roundtrips_and_rejects_tampering(
        key in key16(),
        iv in proptest::array::uniform12(any::<u8>()),
        aad in proptest::collection::vec(any::<u8>(), 0..24),
        pt in proptest::collection::vec(any::<u8>(), 0..80),
        flip in any::<u8>(),
    ) {
        let gcm = Gcm::new(Aes::new_128(&key));
        let (mut ct, tag) = gcm.encrypt(&iv, &aad, &pt);
        prop_assert_eq!(gcm.decrypt(&iv, &aad, &ct, tag).unwrap(), pt.clone());
        if !ct.is_empty() {
            let idx = flip as usize % ct.len();
            ct[idx] ^= 1;
            prop_assert!(gcm.decrypt(&iv, &aad, &ct, tag).is_err());
        }
    }

    #[test]
    fn chained_mac_detects_any_single_block_substitution(
        key in key16(), iv in block(),
        history in proptest::collection::vec(block(), 1..24),
        at in any::<usize>(), subst in block(),
    ) {
        let idx = at % history.len();
        prop_assume!(history[idx] != subst);
        let mut honest = ChainedMac::new(Aes::new_128(&key), iv);
        let mut forged = ChainedMac::new(Aes::new_128(&key), iv);
        for (i, &b) in history.iter().enumerate() {
            honest.absorb(b);
            forged.absorb(if i == idx { subst } else { b });
        }
        prop_assert_ne!(honest.tag(128), forged.tag(128));
    }

    #[test]
    fn chained_mac_detects_any_adjacent_swap(
        key in key16(), iv in block(),
        history in proptest::collection::vec(block(), 2..24),
        at in any::<usize>(),
    ) {
        let idx = at % (history.len() - 1);
        prop_assume!(history[idx] != history[idx + 1]);
        let mut honest = ChainedMac::new(Aes::new_128(&key), iv);
        let mut swapped = ChainedMac::new(Aes::new_128(&key), iv);
        let mut reordered = history.clone();
        reordered.swap(idx, idx + 1);
        for (&a, &b) in history.iter().zip(&reordered) {
            honest.absorb(a);
            swapped.absorb(b);
        }
        prop_assert_ne!(honest.tag(128), swapped.tag(128));
    }

    #[test]
    fn otp_apply_is_involution(key in key16(), addr in any::<u64>(), seq in any::<u64>(),
                               line in proptest::collection::vec(any::<u8>(), 1..5)
                                   .prop_map(|v| v.into_iter().flat_map(|b| [b; 16]).collect::<Vec<u8>>())) {
        let g = PadGenerator::new(Aes::new_128(&key));
        let mut data = line.clone();
        g.apply(addr, seq, &mut data);
        g.apply(addr, seq, &mut data);
        prop_assert_eq!(data, line);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                         split in any::<usize>()) {
        let cut = if data.is_empty() { 0 } else { split % data.len() };
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn rsa_roundtrips(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..40)) {
        let kp = KeyPair::generate(seed);
        let ct = kp.public.encrypt(&msg).unwrap();
        prop_assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn block_prefix_is_prefix(b in block(), m in 1usize..=128) {
        let p = b.prefix_bits(m);
        // The first m bits agree, the rest are zero.
        for bit in 0..128 {
            let byte = bit / 8;
            let mask = 0x80u8 >> (bit % 8);
            let orig = b.as_bytes()[byte] & mask;
            let pref = p.as_bytes()[byte] & mask;
            if bit < m {
                prop_assert_eq!(orig, pref);
            } else {
                prop_assert_eq!(pref, 0);
            }
        }
    }
}
