//! Timing model of the pipelined hardware AES unit (§4.4, §7.1).
//!
//! The paper models an AES implementation with an **80-cycle latency** at
//! 1 GHz whose **throughput matches the peak bus bandwidth** (3.2 GB/s) via
//! pipelining. The number of masks a group needs is
//! `masks = ceil(AES latency / bus cycle time)` — 8 for the modelled machine
//! (80-cycle AES, 10-cycle bus cycle).
//!
//! [`AesUnit`] answers the one question the simulator asks: *if I hand the
//! unit a block at cycle `t`, when does the result come back?* — respecting
//! both the pipeline initiation interval (throughput) and the latency.

/// Pipelined crypto-unit timing model.
///
/// # Example
///
/// ```
/// use senss_crypto::engine::AesUnit;
/// // The paper's unit: 80-cycle latency, one block per bus cycle (10 CPU cycles).
/// let mut unit = AesUnit::new(80, 10);
/// assert_eq!(unit.issue(0), 80);
/// // Second issue at the same cycle waits one initiation interval.
/// assert_eq!(unit.issue(0), 90);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AesUnit {
    latency: u64,
    initiation_interval: u64,
    next_issue_slot: u64,
    issued: u64,
}

impl AesUnit {
    /// Creates a unit with the given `latency` (cycles from issue to result)
    /// and `initiation_interval` (cycles between successive issues — the
    /// inverse of throughput).
    ///
    /// # Panics
    ///
    /// Panics if `initiation_interval` is zero.
    pub fn new(latency: u64, initiation_interval: u64) -> AesUnit {
        assert!(initiation_interval > 0, "initiation interval must be > 0");
        AesUnit {
            latency,
            initiation_interval,
            next_issue_slot: 0,
            issued: 0,
        }
    }

    /// The paper's configuration: 80-cycle latency, one block per 10-cycle
    /// bus cycle (3.2 GB/s at a 1 GHz core clock).
    pub fn paper_default() -> AesUnit {
        AesUnit::new(80, 10)
    }

    /// Issues one block-encryption at cycle `now`; returns the cycle at
    /// which the result is available.
    pub fn issue(&mut self, now: u64) -> u64 {
        let start = now.max(self.next_issue_slot);
        self.next_issue_slot = start + self.initiation_interval;
        self.issued += 1;
        start + self.latency
    }

    /// The unit's block latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// The unit's initiation interval in cycles.
    pub fn initiation_interval(&self) -> u64 {
        self.initiation_interval
    }

    /// Total number of issues so far (for statistics).
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Resets pipeline occupancy (e.g. between simulated program runs).
    pub fn reset(&mut self) {
        self.next_issue_slot = 0;
        self.issued = 0;
    }

    /// The earliest cycle the next issue may start (checkpoint capture).
    pub fn next_issue_slot(&self) -> u64 {
        self.next_issue_slot
    }

    /// Re-imposes captured pipeline occupancy (checkpoint restore); the
    /// latency and initiation interval come from configuration.
    pub fn restore_state(&mut self, next_issue_slot: u64, issued: u64) {
        self.next_issue_slot = next_issue_slot;
        self.issued = issued;
    }

    /// The §4.4 formula: number of masks needed to fully hide the unit's
    /// latency behind back-to-back bus transfers with the given bus cycle
    /// time: `ceil(latency / bus_cycle)`.
    ///
    /// # Panics
    ///
    /// Panics if `bus_cycle` is zero.
    pub fn masks_needed(latency: u64, bus_cycle: u64) -> usize {
        assert!(bus_cycle > 0, "bus cycle must be > 0");
        latency.div_ceil(bus_cycle) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_issue_takes_latency() {
        let mut u = AesUnit::new(80, 10);
        assert_eq!(u.issue(100), 180);
    }

    #[test]
    fn back_to_back_issues_respect_throughput() {
        let mut u = AesUnit::new(80, 10);
        // A burst of issues at cycle 0 completes 80, 90, 100, ...
        assert_eq!(u.issue(0), 80);
        assert_eq!(u.issue(0), 90);
        assert_eq!(u.issue(0), 100);
        assert_eq!(u.issued(), 3);
    }

    #[test]
    fn idle_pipeline_recovers() {
        let mut u = AesUnit::new(80, 10);
        u.issue(0);
        // Long idle gap: issue at 1000 completes at 1080, no queueing.
        assert_eq!(u.issue(1000), 1080);
    }

    #[test]
    fn paper_masks_needed_is_eight() {
        // §7.4: ceil(80 / 10) = 8 masks for the modelled configuration.
        assert_eq!(AesUnit::masks_needed(80, 10), 8);
    }

    #[test]
    fn masks_needed_rounds_up() {
        assert_eq!(AesUnit::masks_needed(81, 10), 9);
        assert_eq!(AesUnit::masks_needed(80, 80), 1);
        assert_eq!(AesUnit::masks_needed(80, 100), 1);
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut u = AesUnit::new(80, 10);
        u.issue(0);
        u.issue(0);
        u.reset();
        assert_eq!(u.issue(0), 80);
        assert_eq!(u.issued(), 1);
    }

    #[test]
    #[should_panic(expected = "initiation interval")]
    fn zero_interval_rejected() {
        AesUnit::new(80, 0);
    }
}
