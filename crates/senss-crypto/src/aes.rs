//! The AES block cipher (FIPS-197), implemented from scratch.
//!
//! SENSS assumes a pipelined hardware AES unit inside every processor's
//! Security Hardware Unit. This module supplies the *functional* cipher
//! (the timing model lives in [`crate::engine`]). All three standard key
//! sizes are supported; the paper uses AES-128 (128-bit session keys, §7.1).
//!
//! The S-box and its inverse are *computed* from the GF(2⁸) field definition
//! rather than transcribed, and the implementation is validated against the
//! FIPS-197 appendix known-answer vectors in the tests below.

use std::sync::OnceLock;

use crate::block::{Block, BLOCK_SIZE};

/// Number of 32-bit words in an AES state (always 4).
const NB: usize = 4;

/// Multiplies two elements of GF(2⁸) with the AES reduction polynomial
/// x⁸ + x⁴ + x³ + x + 1 (0x11b).
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸); `inv(0) = 0` by AES convention.
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^-1 in GF(2^8); square-and-multiply over the 8-bit exponent.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u8;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for (i, entry) in sbox.iter_mut().enumerate() {
            let inv = gf_inv(i as u8);
            // Affine transformation: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63.
            let s = inv
                ^ inv.rotate_left(1)
                ^ inv.rotate_left(2)
                ^ inv.rotate_left(3)
                ^ inv.rotate_left(4)
                ^ 0x63;
            *entry = s;
            inv_sbox[s as usize] = i as u8;
        }
        Tables { sbox, inv_sbox }
    })
}

/// Supported AES key sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// 128-bit key, 10 rounds (the size SENSS uses).
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    /// Key length in bytes.
    pub fn key_len(self) -> usize {
        match self {
            KeySize::Aes128 => 16,
            KeySize::Aes192 => 24,
            KeySize::Aes256 => 32,
        }
    }

    /// Number of cipher rounds.
    pub fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }
}

/// An AES cipher instance with a fully expanded key schedule.
///
/// # Example
///
/// ```
/// use senss_crypto::aes::Aes;
/// use senss_crypto::Block;
///
/// let aes = Aes::new_128(&[7u8; 16]);
/// let ct = aes.encrypt_block(Block::from([1u8; 16]));
/// assert_eq!(aes.decrypt_block(ct), Block::from([1u8; 16]));
/// ```
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; BLOCK_SIZE]>,
    key_size: KeySize,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes")
            .field("key_size", &self.key_size)
            .field("rounds", &self.key_size.rounds())
            .finish()
    }
}

impl Aes {
    /// Creates an AES-128 instance.
    pub fn new_128(key: &[u8; 16]) -> Aes {
        Aes::expand(key, KeySize::Aes128)
    }

    /// Creates an AES-192 instance.
    pub fn new_192(key: &[u8; 24]) -> Aes {
        Aes::expand(key, KeySize::Aes192)
    }

    /// Creates an AES-256 instance.
    pub fn new_256(key: &[u8; 32]) -> Aes {
        Aes::expand(key, KeySize::Aes256)
    }

    /// Creates an instance from a key slice of any supported size.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CryptoError::BadKeySize`] if `key` is not 16, 24 or
    /// 32 bytes long.
    pub fn from_key(key: &[u8]) -> Result<Aes, crate::CryptoError> {
        let size = match key.len() {
            16 => KeySize::Aes128,
            24 => KeySize::Aes192,
            32 => KeySize::Aes256,
            len => return Err(crate::CryptoError::BadKeySize { len }),
        };
        Ok(Aes::expand(key, size))
    }

    /// The key size this instance was constructed with.
    pub fn key_size(&self) -> KeySize {
        self.key_size
    }

    fn expand(key: &[u8], size: KeySize) -> Aes {
        let nk = size.key_len() / 4;
        let nr = size.rounds();
        let t = tables();
        let total_words = NB * (nr + 1);
        let mut w = vec![[0u8; 4]; total_words];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon = 0x01u8;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = t.sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = t.sbox[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let round_keys = w
            .chunks_exact(NB)
            .map(|chunk| {
                let mut rk = [0u8; BLOCK_SIZE];
                for (i, word) in chunk.iter().enumerate() {
                    rk[4 * i..4 * i + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Aes {
            round_keys,
            key_size: size,
        }
    }

    /// Encrypts a single 128-bit block.
    pub fn encrypt_block(&self, block: Block) -> Block {
        let t = tables();
        let mut state = block.into_bytes();
        add_round_key(&mut state, &self.round_keys[0]);
        let nr = self.key_size.rounds();
        for round in 1..nr {
            sub_bytes(&mut state, &t.sbox);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state, &t.sbox);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[nr]);
        Block(state)
    }

    /// Decrypts a single 128-bit block.
    pub fn decrypt_block(&self, block: Block) -> Block {
        let t = tables();
        let mut state = block.into_bytes();
        let nr = self.key_size.rounds();
        add_round_key(&mut state, &self.round_keys[nr]);
        for round in (1..nr).rev() {
            inv_shift_rows(&mut state);
            sub_bytes(&mut state, &t.inv_sbox);
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
        }
        inv_shift_rows(&mut state);
        sub_bytes(&mut state, &t.inv_sbox);
        add_round_key(&mut state, &self.round_keys[0]);
        Block(state)
    }
}

// The AES state is stored column-major: state[4*c + r] is row r, column c,
// matching the byte order of the input block.

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16], sbox: &[u8; 256]) {
    for b in state.iter_mut() {
        *b = sbox[*b as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    // Row r is rotated left by r positions.
    for r in 1..4 {
        let mut row = [0u8; 4];
        for c in 0..4 {
            row[c] = state[4 * ((c + r) % 4) + r];
        }
        for c in 0..4 {
            state[4 * c + r] = row[c];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let mut row = [0u8; 4];
        for c in 0..4 {
            row[(c + r) % 4] = state[4 * c + r];
        }
        for c in 0..4 {
            state[4 * c + r] = row[c];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        state[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        state[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        state[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex_block(s: &str) -> Block {
        Block::from_slice(&hex(s))
    }

    #[test]
    fn sbox_known_entries() {
        let t = tables();
        // FIPS-197 Figure 7 spot checks.
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.sbox[0xff], 0x16);
    }

    #[test]
    fn inv_sbox_is_inverse() {
        let t = tables();
        for i in 0..256 {
            assert_eq!(t.inv_sbox[t.sbox[i] as usize] as usize, i);
        }
    }

    #[test]
    fn gf_mul_examples() {
        // FIPS-197 §4.2: {57} x {83} = {c1}.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn gf_inv_roundtrip() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse of {a:#x}");
        }
    }

    #[test]
    fn fips197_aes128_vector() {
        // FIPS-197 Appendix C.1.
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let aes = Aes::new_128(&key);
        let pt = hex_block("00112233445566778899aabbccddeeff");
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct, hex_block("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn fips197_aes192_vector() {
        // FIPS-197 Appendix C.2.
        let key: [u8; 24] = hex("000102030405060708090a0b0c0d0e0f1011121314151617")
            .try_into()
            .unwrap();
        let aes = Aes::new_192(&key);
        let pt = hex_block("00112233445566778899aabbccddeeff");
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct, hex_block("dda97ca4864cdfe06eaf70a0ec0d7191"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn fips197_aes256_vector() {
        // FIPS-197 Appendix C.3.
        let key: [u8; 32] =
            hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let aes = Aes::new_256(&key);
        let pt = hex_block("00112233445566778899aabbccddeeff");
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct, hex_block("8ea2b7ca516745bfeafc49904b496089"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn appendix_b_aes128_vector() {
        // FIPS-197 Appendix B worked example.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let aes = Aes::new_128(&key);
        let pt = hex_block("3243f6a8885a308d313198a2e0370734");
        assert_eq!(
            aes.encrypt_block(pt),
            hex_block("3925841d02dc09fbdc118597196a0b32")
        );
    }

    #[test]
    fn from_key_rejects_bad_sizes() {
        assert!(matches!(
            Aes::from_key(&[0u8; 15]),
            Err(crate::CryptoError::BadKeySize { len: 15 })
        ));
        assert!(Aes::from_key(&[0u8; 16]).is_ok());
        assert!(Aes::from_key(&[0u8; 24]).is_ok());
        assert!(Aes::from_key(&[0u8; 32]).is_ok());
    }

    #[test]
    fn debug_hides_key_material() {
        let aes = Aes::new_128(&[0x5a; 16]);
        let dbg = format!("{aes:?}");
        assert!(!dbg.contains("5a"), "debug output must not leak key bytes");
        assert!(dbg.contains("Aes128"));
    }

    #[test]
    fn distinct_keys_distinct_ciphertexts() {
        let a = Aes::new_128(&[1; 16]);
        let b = Aes::new_128(&[2; 16]);
        let pt = Block::from([9; 16]);
        assert_ne!(a.encrypt_block(pt), b.encrypt_block(pt));
    }
}
