//! The 128-bit cipher block used throughout the crate.
//!
//! SENSS encrypts the shared bus in units of one AES block: a 32-byte bus
//! line is two blocks, a MAC is the (possibly truncated) prefix of one block.
//! [`Block`] is a thin newtype over `[u8; 16]` providing the XOR operations
//! the one-time-pad scheme is built on.

use std::fmt;
use std::ops::{BitXor, BitXorAssign};

/// Size of a cipher block in bytes (AES has a fixed 128-bit block).
pub const BLOCK_SIZE: usize = 16;

/// A 128-bit cipher block.
///
/// # Example
///
/// ```
/// use senss_crypto::Block;
/// let data = Block::from([1u8; 16]);
/// let pad = Block::from([3u8; 16]);
/// // One-time-pad encryption and decryption are both a single XOR.
/// assert_eq!((data ^ pad) ^ pad, data);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Block(pub [u8; BLOCK_SIZE]);

impl Block {
    /// The all-zero block (the conventional CBC-MAC initial vector).
    pub const ZERO: Block = Block([0; BLOCK_SIZE]);

    /// Creates a block from a byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly 16 bytes long.
    pub fn from_slice(bytes: &[u8]) -> Block {
        let mut b = [0u8; BLOCK_SIZE];
        b.copy_from_slice(bytes);
        Block(b)
    }

    /// Builds a block from two little-endian 64-bit words.
    ///
    /// This is how the SENSS Security Hardware Unit assembles AES inputs from
    /// `(PID, data)` tuples and from `(address, sequence-number)` pairs for
    /// memory pads.
    pub fn from_words(lo: u64, hi: u64) -> Block {
        let mut b = [0u8; BLOCK_SIZE];
        b[..8].copy_from_slice(&lo.to_le_bytes());
        b[8..].copy_from_slice(&hi.to_le_bytes());
        Block(b)
    }

    /// Splits the block back into two little-endian 64-bit words `(lo, hi)`.
    pub fn to_words(self) -> (u64, u64) {
        let lo = u64::from_le_bytes(self.0[..8].try_into().expect("8 bytes"));
        let hi = u64::from_le_bytes(self.0[8..].try_into().expect("8 bytes"));
        (lo, hi)
    }

    /// Returns the underlying bytes.
    pub fn as_bytes(&self) -> &[u8; BLOCK_SIZE] {
        &self.0
    }

    /// Consumes the block, returning the underlying bytes.
    pub fn into_bytes(self) -> [u8; BLOCK_SIZE] {
        self.0
    }

    /// Constant-time equality: compares all 16 bytes regardless of where
    /// the first difference is, by accumulating byte XORs with
    /// bitwise-OR. Tag and MAC verification must use this instead of
    /// `==` (which short-circuits at the first mismatching byte and so
    /// leaks the length of the matching prefix through timing).
    pub fn ct_eq(&self, other: &Block) -> bool {
        let mut acc = 0u8;
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            acc |= a ^ b;
        }
        acc == 0
    }

    /// Constant-time equality over raw byte slices — the [`Block::ct_eq`]
    /// discipline for secret material that is not block-shaped (key
    /// shares, serialized tags). Slices of different lengths compare
    /// unequal, but the byte scan still covers the shorter slice in
    /// full, so timing reveals only lengths (public) and never content.
    pub fn ct_eq_bytes(a: &[u8], b: &[u8]) -> bool {
        let mut acc = u8::from(a.len() != b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            acc |= x ^ y;
        }
        acc == 0
    }

    /// Returns the `m`-bit prefix of the block as a MAC value, per the
    /// paper's Equation (1) (`1 <= m <= 128`), packed into a block whose
    /// remaining bits are zero.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or greater than 128.
    pub fn prefix_bits(self, m: usize) -> Block {
        assert!((1..=128).contains(&m), "MAC width must be in 1..=128 bits");
        let mut out = [0u8; BLOCK_SIZE];
        let full = m / 8;
        out[..full].copy_from_slice(&self.0[..full]);
        let rem = m % 8;
        if rem != 0 {
            let mask = 0xffu8 << (8 - rem);
            out[full] = self.0[full] & mask;
        }
        Block(out)
    }
}

impl From<[u8; BLOCK_SIZE]> for Block {
    fn from(bytes: [u8; BLOCK_SIZE]) -> Block {
        Block(bytes)
    }
}

impl From<Block> for [u8; BLOCK_SIZE] {
    fn from(b: Block) -> [u8; BLOCK_SIZE] {
        b.0
    }
}

impl AsRef<[u8]> for Block {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl BitXor for Block {
    type Output = Block;

    fn bitxor(self, rhs: Block) -> Block {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
            *o ^= r;
        }
        Block(out)
    }
}

impl BitXorAssign for Block {
    fn bitxor_assign(&mut self, rhs: Block) {
        for (o, r) in self.0.iter_mut().zip(rhs.0.iter()) {
            *o ^= r;
        }
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block(")?;
        for byte in &self.0 {
            write!(f, "{byte:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for byte in &self.0 {
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

impl fmt::LowerHex for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for byte in &self.0 {
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_roundtrip() {
        let a = Block::from([0xAA; 16]);
        let b = Block::from([0x55; 16]);
        assert_eq!(a ^ b, Block::from([0xFF; 16]));
        assert_eq!((a ^ b) ^ b, a);
    }

    #[test]
    fn xor_assign_matches_xor() {
        let a = Block::from([0x12; 16]);
        let b = Block::from([0x34; 16]);
        let mut c = a;
        c ^= b;
        assert_eq!(c, a ^ b);
    }

    #[test]
    fn words_roundtrip() {
        let b = Block::from_words(0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210);
        assert_eq!(b.to_words(), (0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210));
    }

    #[test]
    fn prefix_full_width_is_identity() {
        let b = Block::from([0xC3; 16]);
        assert_eq!(b.prefix_bits(128), b);
    }

    #[test]
    fn prefix_truncates_bytes() {
        let b = Block::from([0xFF; 16]);
        let p = b.prefix_bits(64);
        assert_eq!(&p.0[..8], &[0xFF; 8]);
        assert_eq!(&p.0[8..], &[0x00; 8]);
    }

    #[test]
    fn prefix_truncates_partial_byte() {
        let b = Block::from([0xFF; 16]);
        let p = b.prefix_bits(12);
        assert_eq!(p.0[0], 0xFF);
        assert_eq!(p.0[1], 0xF0);
        assert_eq!(&p.0[2..], &[0x00; 14]);
    }

    #[test]
    #[should_panic(expected = "MAC width")]
    fn prefix_rejects_zero() {
        Block::ZERO.prefix_bits(0);
    }

    #[test]
    fn ct_eq_matches_plain_equality() {
        let a = Block::from([0xAB; 16]);
        assert!(a.ct_eq(&Block::from([0xAB; 16])));
        assert!(!a.ct_eq(&Block::ZERO));
        // Differences anywhere in the block are caught — first byte,
        // last byte, and a single flipped bit.
        for i in [0usize, 7, 15] {
            let mut bytes = [0xAB; 16];
            bytes[i] ^= 0x01;
            assert!(!a.ct_eq(&Block::from(bytes)), "difference at byte {i}");
        }
    }

    #[test]
    fn ct_eq_bytes_handles_unequal_lengths_and_content() {
        assert!(Block::ct_eq_bytes(b"abc", b"abc"));
        assert!(Block::ct_eq_bytes(b"", b""));
        assert!(!Block::ct_eq_bytes(b"abc", b"abd"));
        assert!(!Block::ct_eq_bytes(b"abc", b"ab"));
        assert!(!Block::ct_eq_bytes(b"", b"x"));
    }

    #[test]
    fn display_is_hex() {
        let b = Block::from_words(1, 0);
        assert_eq!(format!("{b}"), "01000000000000000000000000000000");
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Block::ZERO).is_empty());
    }

    #[test]
    fn from_slice_roundtrip() {
        let bytes: Vec<u8> = (0u8..16).collect();
        let b = Block::from_slice(&bytes);
        assert_eq!(b.as_bytes().as_slice(), bytes.as_slice());
    }
}
