//! From-scratch cryptographic substrate for the SENSS reproduction.
//!
//! The SENSS paper (HPCA 2005) builds its bus-encryption and bus-authentication
//! schemes out of a small set of primitives: the AES block cipher, the Cipher
//! Block Chaining (CBC) mode and its MAC variant, one-time-pad (OTP) XOR
//! encryption, and — for the integrated memory-protection system — a
//! cryptographic hash. This crate implements all of them from scratch (no
//! external crypto crates), plus:
//!
//! * [`gcm`] — the Galois/Counter Mode the paper cites (§4.3 *Implications*)
//!   as the single-pass alternative to running AES twice per block,
//! * [`rsa`] — a toy RSA used to model per-processor public/private key pairs
//!   for program dispatch (§4.1),
//! * [`engine`] — a *timing model* of the pipelined hardware AES unit
//!   (80-cycle latency, bus-matched throughput, §7.1) used by the simulator.
//!
//! Functional correctness is established against FIPS-197 / NIST known-answer
//! vectors in each module's tests.
//!
//! # Example
//!
//! ```
//! use senss_crypto::aes::Aes;
//! use senss_crypto::Block;
//!
//! let key = [0u8; 16];
//! let aes = Aes::new_128(&key);
//! let pt = Block::from([0x42u8; 16]);
//! let ct = aes.encrypt_block(pt);
//! assert_eq!(aes.decrypt_block(ct), pt);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aes;
pub mod block;
pub mod cbc;
pub mod cmac;
pub mod engine;
pub mod gcm;
pub mod mac;
pub mod otp;
pub mod rng;
pub mod rsa;
pub mod sha256;

pub use block::Block;

/// Error type for cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Input length is not a multiple of the cipher block size.
    BadLength {
        /// The offending length in bytes.
        len: usize,
    },
    /// A key of unsupported size was supplied.
    BadKeySize {
        /// The offending key size in bytes.
        len: usize,
    },
    /// Authentication tag verification failed.
    TagMismatch,
    /// A message larger than the RSA modulus was supplied.
    MessageTooLarge,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::BadLength { len } => {
                write!(f, "input length {len} is not a multiple of the block size")
            }
            CryptoError::BadKeySize { len } => write!(f, "unsupported key size of {len} bytes"),
            CryptoError::TagMismatch => write!(f, "authentication tag mismatch"),
            CryptoError::MessageTooLarge => write!(f, "message does not fit in the RSA modulus"),
        }
    }
}

impl std::error::Error for CryptoError {}
