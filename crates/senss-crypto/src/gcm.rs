//! AES-GCM (Galois/Counter Mode) — the paper's single-pass alternative.
//!
//! §4.3 (*Implications*) notes that chaining CBC-AES for both encryption and
//! authentication invokes AES twice per bus block, and points at GCM as a
//! newly developed algorithm that produces ciphertext and MAC with a single
//! AES invocation per block, computing the tag with GF(2¹²⁸) multiplications
//! over the counter-mode outputs. This module implements GCM from scratch
//! (GHASH included) so the ablation bench `ablation_gcm_vs_cbc` can compare
//! the two approaches.
//!
//! Validated against the NIST GCM reference test vectors.

use crate::aes::Aes;
use crate::block::Block;
use crate::CryptoError;

/// Multiplies two elements of GF(2¹²⁸) under the GCM bit convention
/// (leftmost bit is the coefficient of x⁰, reduction by x¹²⁸+x⁷+x²+x+1).
pub fn gf128_mul(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if (y >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= 0xe1u128 << 120;
        }
    }
    z
}

fn block_to_u128(b: Block) -> u128 {
    u128::from_be_bytes(b.into_bytes())
}

fn u128_to_block(v: u128) -> Block {
    Block::from(v.to_be_bytes())
}

/// The GHASH universal hash over a byte string, keyed by `h`.
fn ghash(h: u128, aad: &[u8], ct: &[u8]) -> u128 {
    let mut y = 0u128;
    let mut absorb = |data: &[u8]| {
        for chunk in data.chunks(16) {
            let mut padded = [0u8; 16];
            padded[..chunk.len()].copy_from_slice(chunk);
            y = gf128_mul(y ^ u128::from_be_bytes(padded), h);
        }
    };
    absorb(aad);
    absorb(ct);
    let lengths = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
    gf128_mul(y ^ lengths, h)
}

/// AES-GCM authenticated encryption.
///
/// # Example
///
/// ```
/// use senss_crypto::aes::Aes;
/// use senss_crypto::gcm::Gcm;
///
/// let gcm = Gcm::new(Aes::new_128(&[3u8; 16]));
/// let (ct, tag) = gcm.encrypt(&[0u8; 12], b"", b"secret bus line!");
/// let pt = gcm.decrypt(&[0u8; 12], b"", &ct, tag).unwrap();
/// assert_eq!(pt, b"secret bus line!");
/// ```
#[derive(Debug, Clone)]
pub struct Gcm {
    aes: Aes,
    h: u128,
}

impl Gcm {
    /// Creates a GCM instance over the given AES key schedule.
    pub fn new(aes: Aes) -> Gcm {
        let h = block_to_u128(aes.encrypt_block(Block::ZERO));
        Gcm { aes, h }
    }

    fn j0(&self, iv: &[u8]) -> u128 {
        if iv.len() == 12 {
            let mut j = [0u8; 16];
            j[..12].copy_from_slice(iv);
            j[15] = 1;
            u128::from_be_bytes(j)
        } else {
            ghash(self.h, &[], iv)
        }
    }

    fn ctr_xor(&self, mut counter: u128, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        for chunk in data.chunks(16) {
            counter = inc32(counter);
            let keystream = self.aes.encrypt_block(u128_to_block(counter));
            for (d, k) in chunk.iter().zip(keystream.as_bytes()) {
                out.push(d ^ k);
            }
        }
        out
    }

    /// Encrypts `plaintext` with additional authenticated data `aad`,
    /// returning `(ciphertext, tag)`.
    pub fn encrypt(&self, iv: &[u8], aad: &[u8], plaintext: &[u8]) -> (Vec<u8>, Block) {
        let j0 = self.j0(iv);
        let ct = self.ctr_xor(j0, plaintext);
        let s = ghash(self.h, aad, &ct);
        let tag = block_to_u128(self.aes.encrypt_block(u128_to_block(j0))) ^ s;
        (ct, u128_to_block(tag))
    }

    /// Decrypts and verifies.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::TagMismatch`] if the tag does not authenticate
    /// the ciphertext.
    pub fn decrypt(
        &self,
        iv: &[u8],
        aad: &[u8],
        ciphertext: &[u8],
        tag: Block,
    ) -> Result<Vec<u8>, CryptoError> {
        let j0 = self.j0(iv);
        let s = ghash(self.h, aad, ciphertext);
        let expect = block_to_u128(self.aes.encrypt_block(u128_to_block(j0))) ^ s;
        if !u128_to_block(expect).ct_eq(&tag) {
            return Err(CryptoError::TagMismatch);
        }
        Ok(self.ctr_xor(j0, ciphertext))
    }
}

/// Increments the low 32 bits of the counter block (GCM `inc32`).
fn inc32(counter: u128) -> u128 {
    let low = (counter as u32).wrapping_add(1);
    (counter & !0xffff_ffffu128) | low as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn nist_test_case_1_empty() {
        let gcm = Gcm::new(Aes::new_128(&[0; 16]));
        let (ct, tag) = gcm.encrypt(&[0; 12], b"", b"");
        assert!(ct.is_empty());
        assert_eq!(
            tag,
            Block::from_slice(&hex("58e2fccefa7e3061367f1d57a4e7455a"))
        );
    }

    #[test]
    fn nist_test_case_2_one_block() {
        let gcm = Gcm::new(Aes::new_128(&[0; 16]));
        let (ct, tag) = gcm.encrypt(&[0; 12], b"", &[0u8; 16]);
        assert_eq!(ct, hex("0388dace60b6a392f328c2b971b2fe78"));
        assert_eq!(
            tag,
            Block::from_slice(&hex("ab6e47d42cec13bdf53a67b21257bddf"))
        );
    }

    #[test]
    fn nist_test_case_3_four_blocks() {
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let gcm = Gcm::new(Aes::new_128(&key));
        let iv = hex("cafebabefacedbaddecaf888");
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let (ct, tag) = gcm.encrypt(&iv, b"", &pt);
        assert_eq!(
            ct,
            hex(
                "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            )
        );
        assert_eq!(
            tag,
            Block::from_slice(&hex("4d5c2af327cd64a62cf35abd2ba6fab4"))
        );
    }

    #[test]
    fn nist_test_case_4_with_aad() {
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let gcm = Gcm::new(Aes::new_128(&key));
        let iv = hex("cafebabefacedbaddecaf888");
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let (ct, tag) = gcm.encrypt(&iv, &aad, &pt);
        assert_eq!(
            ct,
            hex(
                "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            )
        );
        assert_eq!(
            tag,
            Block::from_slice(&hex("5bc94fbc3221a5db94fae95ae7121a47"))
        );
    }

    #[test]
    fn roundtrip_and_tamper_detection() {
        let gcm = Gcm::new(Aes::new_128(&[9; 16]));
        let iv = [1u8; 12];
        let (mut ct, tag) = gcm.encrypt(&iv, b"hdr", b"the quick brown fox");
        assert_eq!(
            gcm.decrypt(&iv, b"hdr", &ct, tag).unwrap(),
            b"the quick brown fox"
        );
        ct[0] ^= 1;
        assert_eq!(
            gcm.decrypt(&iv, b"hdr", &ct, tag),
            Err(CryptoError::TagMismatch)
        );
        ct[0] ^= 1;
        assert_eq!(
            gcm.decrypt(&iv, b"xxx", &ct, tag),
            Err(CryptoError::TagMismatch)
        );
    }

    #[test]
    fn forged_tag_rejected_wherever_it_differs() {
        // The constant-time compare must still reject tags that match the
        // real one in every byte but the last (and but the first).
        let gcm = Gcm::new(Aes::new_128(&[7; 16]));
        let iv = [2u8; 12];
        let (ct, tag) = gcm.encrypt(&iv, b"", b"payload");
        for i in [0usize, 15] {
            let mut forged = tag.into_bytes();
            forged[i] ^= 0x80;
            assert_eq!(
                gcm.decrypt(&iv, b"", &ct, Block::from(forged)),
                Err(CryptoError::TagMismatch),
                "tag differing only at byte {i} must be rejected"
            );
        }
    }

    #[test]
    fn gf128_mul_commutes() {
        let a = 0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978u128;
        let b = 0xdead_beef_cafe_f00d_1234_5678_9abc_def0u128;
        assert_eq!(gf128_mul(a, b), gf128_mul(b, a));
    }

    #[test]
    fn gf128_mul_distributes() {
        let a = 0x1111_2222_3333_4444_5555_6666_7777_8888u128;
        let b = 0x9999_aaaa_bbbb_cccc_dddd_eeee_ffff_0000u128;
        let c = 0x0f0f_0f0f_0f0f_0f0f_f0f0_f0f0_f0f0_f0f0u128;
        assert_eq!(gf128_mul(a, b ^ c), gf128_mul(a, b) ^ gf128_mul(a, c));
    }
}
