//! A small deterministic pseudo-random generator (SplitMix64).
//!
//! Used for reproducible key/IV generation inside the crate (the paper's
//! "random vector … obtained from the AES unit with an arbitrary input",
//! §4.2) without pulling a dependency into the crypto substrate. **Not** a
//! cryptographic RNG — the SENSS model's security rests on AES, not on this
//! generator; it only supplies arbitrary distinct inputs.

/// SplitMix64 deterministic generator.
///
/// # Example
///
/// ```
/// use senss_crypto::rng::SplitMix64;
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Fills `out` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A 16-byte block of pseudo-random bytes.
    pub fn next_block(&mut self) -> crate::Block {
        let mut b = [0u8; 16];
        self.fill_bytes(&mut b);
        crate::Block::from(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence() {
        // Reference values for SplitMix64 seeded with 1234567.
        let mut r = SplitMix64::new(1234567);
        let v1 = r.next_u64();
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(v1, r2.next_u64());
        assert_ne!(r.next_u64(), v1);
    }

    #[test]
    fn next_below_is_in_range() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn blocks_differ() {
        let mut r = SplitMix64::new(9);
        assert_ne!(r.next_block(), r.next_block());
    }
}
