//! The chained CBC-MAC of the paper's Equation (1).
//!
//! ```text
//! MAC_n = AES_K( … AES_K( AES_K( IV ⊕ D1 ) ⊕ D2 ) … ⊕ Dn )
//! ```
//!
//! `MAC_n` reflects the *entire history* of bus transfers up to transfer `n`
//! — the property that lets SENSS authenticate broadcast behaviour: every
//! group member folds every message (data block + originating PID) into its
//! own running MAC, and a periodic authentication transaction compares them.
//! A disagreement anywhere in the history propagates to every later MAC, so
//! lengthening the authentication interval never loses coverage (§4.3).
//!
//! The module also provides [`UnchainedMac`], the non-chained per-message
//! baseline (à la Shi et al. [20]) that the paper argues is insufficient:
//! it authenticates each message in isolation and therefore misses the
//! Type 1 (dropping) and Type 3 (spoof-to-subset) attacks demonstrated in
//! the `senss-attacks` crate.

use crate::aes::Aes;
use crate::block::Block;

/// A running chained CBC-MAC over a sequence of blocks.
///
/// # Example
///
/// ```
/// use senss_crypto::aes::Aes;
/// use senss_crypto::mac::ChainedMac;
/// use senss_crypto::Block;
///
/// let iv = Block::from([5u8; 16]);
/// let mut a = ChainedMac::new(Aes::new_128(&[1u8; 16]), iv);
/// let mut b = ChainedMac::new(Aes::new_128(&[1u8; 16]), iv);
/// a.absorb(Block::from([7u8; 16]));
/// b.absorb(Block::from([7u8; 16]));
/// assert_eq!(a.tag(128), b.tag(128));
/// ```
#[derive(Debug, Clone)]
pub struct ChainedMac {
    aes: Aes,
    state: Block,
    absorbed: u64,
}

impl ChainedMac {
    /// Creates a MAC chain. Per §4.3, `iv` **must differ** from the
    /// encryption chain's initial vector `C0`, otherwise the MACs equal the
    /// masks and misordering (Type 2) attacks self-heal undetected.
    pub fn new(aes: Aes, iv: Block) -> ChainedMac {
        ChainedMac {
            aes,
            state: iv,
            absorbed: 0,
        }
    }

    /// Folds one block into the chain: `state = AES(state ⊕ block)`.
    pub fn absorb(&mut self, block: Block) {
        self.state = self.aes.encrypt_block(self.state ^ block);
        self.absorbed += 1;
    }

    /// Folds a bus message into the chain exactly as the SHU does: the data
    /// block together with its originating processor id, so that spoofed
    /// PIDs (Type 3) desynchronize the chains.
    pub fn absorb_tagged(&mut self, data: Block, pid: u32) {
        self.absorb(data ^ Block::from_words(pid as u64, 0));
    }

    /// The current MAC, truncated to its `m`-bit prefix per Equation (1).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or greater than 128.
    pub fn tag(&self, m: usize) -> Block {
        self.state.prefix_bits(m)
    }

    /// Number of blocks folded in so far.
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Snapshots the chain state for an encrypted context swap-out
    /// (§4.2: "the contexts are encrypted before being written out").
    /// The state is secret — callers must encrypt it before it leaves
    /// the chip.
    pub fn snapshot(&self) -> (Block, u64) {
        (self.state, self.absorbed)
    }

    /// Restores a chain from a snapshot taken by
    /// [`ChainedMac::snapshot`].
    pub fn resume(aes: Aes, state: Block, absorbed: u64) -> ChainedMac {
        ChainedMac {
            aes,
            state,
            absorbed,
        }
    }
}

/// The non-chained per-message MAC baseline.
///
/// Each message is authenticated independently as `AES(IV ⊕ D)` — there is
/// no history, so a dropped or replayed message whose own tag is valid goes
/// unnoticed by receivers that never saw it.
#[derive(Debug, Clone)]
pub struct UnchainedMac {
    aes: Aes,
    iv: Block,
}

impl UnchainedMac {
    /// Creates the baseline MAC.
    pub fn new(aes: Aes, iv: Block) -> UnchainedMac {
        UnchainedMac { aes, iv }
    }

    /// Tag for a single message (independent of any other message).
    pub fn tag(&self, data: Block, m: usize) -> Block {
        self.aes.encrypt_block(self.iv ^ data).prefix_bits(m)
    }

    /// Verifies a single message/tag pair (constant-time compare).
    pub fn verify(&self, data: Block, tag: Block, m: usize) -> bool {
        self.tag(data, m).ct_eq(&tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aes() -> Aes {
        Aes::new_128(&[0x10; 16])
    }

    #[test]
    fn identical_histories_identical_tags() {
        let iv = Block::from([9; 16]);
        let mut a = ChainedMac::new(aes(), iv);
        let mut b = ChainedMac::new(aes(), iv);
        for i in 0..100u8 {
            let d = Block::from([i; 16]);
            a.absorb_tagged(d, u32::from(i % 4));
            b.absorb_tagged(d, u32::from(i % 4));
        }
        assert_eq!(a.tag(128), b.tag(128));
        assert_eq!(a.absorbed(), 100);
    }

    #[test]
    fn divergence_propagates_forever() {
        // §4.3: once histories differ, every later MAC differs — the basis
        // for interval authentication losing nothing.
        let iv = Block::from([9; 16]);
        let mut a = ChainedMac::new(aes(), iv);
        let mut b = ChainedMac::new(aes(), iv);
        a.absorb(Block::from([1; 16]));
        b.absorb(Block::from([2; 16])); // tampered message
        for i in 0..50u8 {
            // identical traffic afterwards
            let d = Block::from([i.wrapping_add(3); 16]);
            a.absorb(d);
            b.absorb(d);
            assert_ne!(a.tag(128), b.tag(128), "chains re-converged at {i}");
        }
    }

    #[test]
    fn swap_attack_detected_by_chained_mac() {
        // Type 2: swapping the first two transfers must leave the chains
        // permanently inconsistent.
        let iv = Block::from([7; 16]);
        let mut sender = ChainedMac::new(aes(), iv);
        let mut receiver = ChainedMac::new(aes(), iv);
        let d1 = Block::from([0xA1; 16]);
        let d2 = Block::from([0xB2; 16]);
        sender.absorb(d1);
        sender.absorb(d2);
        receiver.absorb(d2); // adversary swapped them
        receiver.absorb(d1);
        assert_ne!(sender.tag(128), receiver.tag(128));
    }

    #[test]
    fn pid_is_part_of_the_history() {
        // Type 3: same data claimed by a different originator must change
        // the MAC.
        let iv = Block::from([7; 16]);
        let mut a = ChainedMac::new(aes(), iv);
        let mut b = ChainedMac::new(aes(), iv);
        let d = Block::from([0x33; 16]);
        a.absorb_tagged(d, 0);
        b.absorb_tagged(d, 1);
        assert_ne!(a.tag(128), b.tag(128));
    }

    #[test]
    fn truncated_tags_agree_on_prefix() {
        let iv = Block::from([4; 16]);
        let mut m = ChainedMac::new(aes(), iv);
        m.absorb(Block::from([0x66; 16]));
        let full = m.tag(128);
        let half = m.tag(64);
        assert_eq!(half, full.prefix_bits(64));
    }

    #[test]
    fn unchained_baseline_verifies_individual_messages() {
        let mac = UnchainedMac::new(aes(), Block::from([2; 16]));
        let d = Block::from([0x55; 16]);
        let t = mac.tag(d, 128);
        assert!(mac.verify(d, t, 128));
        assert!(!mac.verify(Block::from([0x56; 16]), t, 128));
    }

    #[test]
    fn unchained_baseline_blind_to_replay() {
        // The weakness SENSS fixes: a replayed (message, tag) pair verifies.
        let mac = UnchainedMac::new(aes(), Block::from([2; 16]));
        let d = Block::from([0x55; 16]);
        let t = mac.tag(d, 128);
        // "Replay" the same pair later — still verifies; nothing ties it to
        // the transfer history.
        assert!(mac.verify(d, t, 128));
    }

    #[test]
    fn different_iv_gives_independent_chain() {
        // Encryption and authentication must use different IVs (§4.3).
        let mut enc_like = ChainedMac::new(aes(), Block::from([1; 16]));
        let mut auth_like = ChainedMac::new(aes(), Block::from([2; 16]));
        let d = Block::from([0x42; 16]);
        enc_like.absorb(d);
        auth_like.absorb(d);
        assert_ne!(enc_like.tag(128), auth_like.tag(128));
    }
}
