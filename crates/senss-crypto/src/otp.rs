//! One-time-pad (OTP) *fast memory encryption* pads (§2.1, §6.1).
//!
//! The cache-to-memory path in SENSS reuses the uniprocessor fast-encryption
//! scheme of Suh et al. and Yang et al.: a memory block is encrypted by
//! XORing it with a *pad* that is a cryptographic randomization of the
//! block's address and a per-write sequence number,
//! `pad = AES_K(address ‖ seq)`. Because the pad depends only on metadata,
//! it can be generated *in parallel with* the DRAM access, hiding the AES
//! latency.
//!
//! The sequence number must change on every write-back of the same address —
//! otherwise two ciphertexts of the same block XOR to the plaintext
//! difference, the exact break the paper demonstrates for naive
//! cache-to-cache reuse of memory pads (§3.1; reproduced in
//! `tests/pad_reuse_break.rs`).

use crate::aes::Aes;
use crate::block::Block;

/// Generates OTP pads for memory blocks.
#[derive(Debug, Clone)]
pub struct PadGenerator {
    aes: Aes,
}

impl PadGenerator {
    /// Creates a generator keyed with the program's session key.
    pub fn new(aes: Aes) -> PadGenerator {
        PadGenerator { aes }
    }

    /// The pad for (block `address`, write `seq`uence number), covering one
    /// 16-byte cipher block. Wider memory lines call this once per 16-byte
    /// sub-block via [`PadGenerator::line_pad`].
    pub fn pad(&self, address: u64, seq: u64) -> Block {
        self.aes.encrypt_block(Block::from_words(address, seq))
    }

    /// Pads covering a whole memory line of `line_bytes` (must be a multiple
    /// of 16). Sub-block `i` uses `address + 16·i` so pads never repeat
    /// within a line.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a positive multiple of 16.
    pub fn line_pad(&self, address: u64, seq: u64, line_bytes: usize) -> Vec<Block> {
        assert!(
            line_bytes > 0 && line_bytes.is_multiple_of(16),
            "line size must be a positive multiple of 16 bytes"
        );
        (0..line_bytes / 16)
            .map(|i| self.pad(address + 16 * i as u64, seq))
            .collect()
    }

    /// Encrypts (or decrypts — the operation is an involution) a memory line
    /// in place with the pad for (`address`, `seq`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a positive multiple of 16.
    pub fn apply(&self, address: u64, seq: u64, data: &mut [u8]) {
        let pads = self.line_pad(address, seq, data.len());
        for (chunk, pad) in data.chunks_exact_mut(16).zip(pads) {
            for (byte, p) in chunk.iter_mut().zip(pad.as_bytes()) {
                *byte ^= p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> PadGenerator {
        PadGenerator::new(Aes::new_128(&[0x77; 16]))
    }

    #[test]
    fn apply_is_involution() {
        let g = gen();
        let mut line = vec![0u8; 64];
        for (i, b) in line.iter_mut().enumerate() {
            *b = i as u8;
        }
        let orig = line.clone();
        g.apply(0x1000, 3, &mut line);
        assert_ne!(line, orig);
        g.apply(0x1000, 3, &mut line);
        assert_eq!(line, orig);
    }

    #[test]
    fn pads_differ_across_addresses() {
        let g = gen();
        assert_ne!(g.pad(0x1000, 0), g.pad(0x1040, 0));
    }

    #[test]
    fn pads_differ_across_sequence_numbers() {
        // The property that defeats the §3.1 XOR attack on the memory path.
        let g = gen();
        assert_ne!(g.pad(0x1000, 0), g.pad(0x1000, 1));
    }

    #[test]
    fn sub_blocks_of_a_line_use_distinct_pads() {
        let g = gen();
        let pads = g.line_pad(0x2000, 5, 64);
        assert_eq!(pads.len(), 4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(pads[i], pads[j]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn line_pad_rejects_unaligned() {
        gen().line_pad(0, 0, 24);
    }

    #[test]
    fn stale_pad_reuse_leaks_xor() {
        // Demonstrates *why* seq must advance: same pad on two different
        // plaintexts leaks their XOR.
        let g = gen();
        let mut a = vec![0x11u8; 16];
        let mut b = vec![0x22u8; 16];
        g.apply(0x3000, 7, &mut a);
        g.apply(0x3000, 7, &mut b);
        let leaked: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        assert_eq!(leaked, vec![0x11 ^ 0x22; 16]);
    }
}
