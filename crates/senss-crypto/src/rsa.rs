//! A toy RSA used to model program dispatch (§4.1).
//!
//! Each SENSS processor holds a public/private key pair `(Kiu, Kip)`; the
//! program distributor encrypts the symmetric session key `K` under every
//! group member's public key and ships the bundle with the program. Only the
//! *protocol shape* matters to the reproduction — key sizes here are toy
//! (64-bit moduli) and this module must not be used for real security.
//!
//! Keys are generated deterministically from a seed so program-dispatch
//! tests are reproducible.

use crate::rng::SplitMix64;
use crate::CryptoError;

/// An RSA public key (toy-sized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey {
    /// Modulus `n = p·q`.
    pub n: u64,
    /// Public exponent.
    pub e: u64,
}

/// An RSA private key (toy-sized).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PrivateKey {
    n: u64,
    d: u64,
}

impl std::fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the private exponent.
        f.debug_struct("PrivateKey").field("n", &self.n).finish()
    }
}

/// A public/private key pair.
#[derive(Debug, Clone, Copy)]
pub struct KeyPair {
    /// The shareable half.
    pub public: PublicKey,
    /// The sealed-in-processor half.
    pub private: PrivateKey,
}

/// Modular exponentiation `base^exp mod modulus` with 128-bit intermediates.
fn mod_pow(base: u64, mut exp: u64, modulus: u64) -> u64 {
    let m = modulus as u128;
    let mut result = 1u128;
    let mut b = base as u128 % m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = result * b % m;
        }
        b = b * b % m;
        exp >>= 1;
    }
    result as u64
}

/// Deterministic Miller–Rabin for u64 (the standard witness set is exact
/// below 3.3·10²⁴).
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mod_pow(x, 2, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn gen_prime(rng: &mut SplitMix64) -> u64 {
    loop {
        // 32-bit primes with the top bit set so n = p*q has ~64 bits.
        let candidate = (rng.next_u64() as u32 | 0x8000_0001) as u64;
        if is_prime(candidate) {
            return candidate;
        }
    }
}

fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    let (g, x, _) = egcd(a as i128, m as i128);
    if g != 1 {
        return None;
    }
    Some(((x % m as i128 + m as i128) % m as i128) as u64)
}

impl KeyPair {
    /// Generates a deterministic key pair from `seed` (one per processor in
    /// the dispatch model; distinct seeds yield distinct pairs, preventing
    /// the "cascading breakdown" the paper warns about).
    pub fn generate(seed: u64) -> KeyPair {
        let mut rng = SplitMix64::new(seed ^ 0x5e55_5eed_0000_0001);
        loop {
            let p = gen_prime(&mut rng);
            let q = gen_prime(&mut rng);
            if p == q {
                continue;
            }
            let n = p * q;
            let phi = (p - 1) * (q - 1);
            let e = 65537u64;
            if let Some(d) = mod_inverse(e, phi) {
                return KeyPair {
                    public: PublicKey { n, e },
                    private: PrivateKey { n, d },
                };
            }
        }
    }
}

impl PublicKey {
    /// Encrypts a byte string, 4 plaintext bytes per 8-byte ciphertext word.
    ///
    /// # Errors
    ///
    /// Never fails for 4-byte chunking with a ≥33-bit modulus, but the
    /// signature keeps [`CryptoError`] for future larger chunkings.
    pub fn encrypt(&self, plaintext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let mut out = Vec::with_capacity(plaintext.len() * 2 + 8);
        out.extend_from_slice(&(plaintext.len() as u64).to_le_bytes());
        for chunk in plaintext.chunks(4) {
            let mut m = [0u8; 4];
            m[..chunk.len()].copy_from_slice(chunk);
            let m = u32::from_le_bytes(m) as u64;
            if m >= self.n {
                return Err(CryptoError::MessageTooLarge);
            }
            let c = mod_pow(m, self.e, self.n);
            out.extend_from_slice(&c.to_le_bytes());
        }
        Ok(out)
    }
}

impl PrivateKey {
    /// Decrypts a ciphertext produced by the matching [`PublicKey`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadLength`] if the ciphertext framing is
    /// malformed.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if ciphertext.len() < 8 || !(ciphertext.len() - 8).is_multiple_of(8) {
            return Err(CryptoError::BadLength {
                len: ciphertext.len(),
            });
        }
        let len = u64::from_le_bytes(ciphertext[..8].try_into().expect("8 bytes")) as usize;
        let mut out = Vec::with_capacity(len);
        for chunk in ciphertext[8..].chunks_exact(8) {
            let c = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            let m = mod_pow(c, self.d, self.n) as u32;
            out.extend_from_slice(&m.to_le_bytes());
        }
        if len > out.len() {
            return Err(CryptoError::BadLength {
                len: ciphertext.len(),
            });
        }
        out.truncate(len);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_pow_small_cases() {
        assert_eq!(mod_pow(2, 10, 1000), 24);
        assert_eq!(mod_pow(3, 0, 7), 1);
        assert_eq!(mod_pow(5, 3, 13), 8);
    }

    #[test]
    fn primality_spot_checks() {
        assert!(is_prime(2));
        assert!(is_prime(0xFFFF_FFFB)); // 4294967291, largest 32-bit prime
        assert!(!is_prime(0xFFFF_FFFF));
        assert!(!is_prime(1));
        assert!(is_prime(1_000_000_007));
        assert!(!is_prime(1_000_000_007u64 * 998_244_353));
    }

    #[test]
    fn keypair_roundtrip() {
        let kp = KeyPair::generate(77);
        let msg = b"session-key-0123";
        let ct = kp.public.encrypt(msg).unwrap();
        assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn roundtrip_odd_lengths() {
        let kp = KeyPair::generate(3);
        for len in [0usize, 1, 3, 4, 5, 15, 16, 17] {
            let msg: Vec<u8> = (0..len as u8).collect();
            let ct = kp.public.encrypt(&msg).unwrap();
            assert_eq!(kp.private.decrypt(&ct).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn wrong_key_garbles() {
        let a = KeyPair::generate(1);
        let b = KeyPair::generate(2);
        let msg = b"distinct per-processor keys";
        let ct = a.public.encrypt(msg).unwrap();
        let wrong = b.private.decrypt(&ct).unwrap();
        assert_ne!(wrong, msg);
    }

    #[test]
    fn distinct_seeds_distinct_moduli() {
        let a = KeyPair::generate(10);
        let b = KeyPair::generate(11);
        assert_ne!(a.public.n, b.public.n);
    }

    #[test]
    fn deterministic_generation() {
        let a = KeyPair::generate(42);
        let b = KeyPair::generate(42);
        assert_eq!(a.public, b.public);
    }

    #[test]
    fn decrypt_rejects_malformed_framing() {
        let kp = KeyPair::generate(5);
        assert!(matches!(
            kp.private.decrypt(&[0u8; 7]),
            Err(CryptoError::BadLength { .. })
        ));
        assert!(matches!(
            kp.private.decrypt(&[0u8; 13]),
            Err(CryptoError::BadLength { .. })
        ));
        // Length field claims more data than present.
        let mut ct = vec![0u8; 16];
        ct[..8].copy_from_slice(&100u64.to_le_bytes());
        assert!(matches!(
            kp.private.decrypt(&ct),
            Err(CryptoError::BadLength { .. })
        ));
    }

    #[test]
    fn private_key_debug_hides_exponent() {
        let kp = KeyPair::generate(8);
        let dbg = format!("{:?}", kp.private);
        assert!(dbg.contains("PrivateKey"));
        assert!(!dbg.contains('d'), "must not expose the private exponent");
    }
}
