//! Cipher Block Chaining (CBC) mode and the SENSS *bus variant* of it.
//!
//! The paper's Table 1 contrasts two ways to chain AES over a stream of bus
//! blocks `D1, D2, …`:
//!
//! * **Classic CBC** sends the cipher `Cᵢ = AES(Dᵢ ⊕ Cᵢ₋₁)` on the bus. The
//!   sender cannot emit `Cᵢ` until the AES (≈80 cycles) finishes, putting the
//!   full cipher latency on the critical path of every transfer.
//! * **SENSS bus encryption** sends `Pᵢ = Dᵢ ⊕ Cᵢ₋₁` — a single XOR with the
//!   previous *mask* `Cᵢ₋₁` — and updates the mask `Cᵢ = AES(Pᵢ)` in the
//!   background. Receivers recover `Dᵢ = Pᵢ ⊕ Cᵢ₋₁` with one XOR and run the
//!   same background update, keeping every group member's mask synchronized.
//!
//! [`CbcEncryptor`]/[`CbcDecryptor`] implement the classic mode (used as the
//! latency baseline and by the MAC); [`BusChain`] implements the SENSS
//! variant, which is what [`senss`]'s mask machinery builds on.
//!
//! [`senss`]: https://docs.rs/senss

use crate::aes::Aes;
use crate::block::Block;
use crate::CryptoError;

/// Classic CBC encryption over a block stream.
///
/// # Example
///
/// ```
/// use senss_crypto::aes::Aes;
/// use senss_crypto::cbc::{CbcDecryptor, CbcEncryptor};
/// use senss_crypto::Block;
///
/// let aes = Aes::new_128(&[1u8; 16]);
/// let iv = Block::from([9u8; 16]);
/// let mut enc = CbcEncryptor::new(aes.clone(), iv);
/// let mut dec = CbcDecryptor::new(aes, iv);
/// let data = Block::from([7u8; 16]);
/// assert_eq!(dec.decrypt_block(enc.encrypt_block(data)), data);
/// ```
#[derive(Debug, Clone)]
pub struct CbcEncryptor {
    aes: Aes,
    prev: Block,
}

impl CbcEncryptor {
    /// Creates an encryptor chained from the initial vector `iv`.
    pub fn new(aes: Aes, iv: Block) -> CbcEncryptor {
        CbcEncryptor { aes, prev: iv }
    }

    /// Encrypts one block, advancing the chain.
    pub fn encrypt_block(&mut self, data: Block) -> Block {
        let cipher = self.aes.encrypt_block(data ^ self.prev);
        self.prev = cipher;
        cipher
    }

    /// Encrypts a whole byte message (length must be a multiple of 16).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadLength`] for non-block-multiple inputs.
    pub fn encrypt(&mut self, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if !data.len().is_multiple_of(16) {
            return Err(CryptoError::BadLength { len: data.len() });
        }
        let mut out = Vec::with_capacity(data.len());
        for chunk in data.chunks_exact(16) {
            out.extend_from_slice(self.encrypt_block(Block::from_slice(chunk)).as_bytes());
        }
        Ok(out)
    }
}

/// Classic CBC decryption over a block stream.
#[derive(Debug, Clone)]
pub struct CbcDecryptor {
    aes: Aes,
    prev: Block,
}

impl CbcDecryptor {
    /// Creates a decryptor chained from the initial vector `iv`.
    pub fn new(aes: Aes, iv: Block) -> CbcDecryptor {
        CbcDecryptor { aes, prev: iv }
    }

    /// Decrypts one block, advancing the chain.
    pub fn decrypt_block(&mut self, cipher: Block) -> Block {
        let data = self.aes.decrypt_block(cipher) ^ self.prev;
        self.prev = cipher;
        data
    }

    /// Decrypts a whole byte message (length must be a multiple of 16).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadLength`] for non-block-multiple inputs.
    pub fn decrypt(&mut self, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if !data.len().is_multiple_of(16) {
            return Err(CryptoError::BadLength { len: data.len() });
        }
        let mut out = Vec::with_capacity(data.len());
        for chunk in data.chunks_exact(16) {
            out.extend_from_slice(self.decrypt_block(Block::from_slice(chunk)).as_bytes());
        }
        Ok(out)
    }
}

/// The SENSS bus-encryption chain (Table 1, right column; Figure 2).
///
/// One instance exists per *direction-independent* chain; sender and all
/// receivers in a group hold identical copies that stay in lock-step because
/// every member observes every bus message (the snooping-bus property SENSS
/// exploits).
///
/// The value placed on the bus is `P = D ⊕ mask`, computable one cycle after
/// `D` is ready. The mask update `mask' = AES(P)` happens off the critical
/// path — its *timing* is modelled by [`crate::engine::AesUnit`] in the
/// simulator; here we compute the value.
#[derive(Debug, Clone)]
pub struct BusChain {
    aes: Aes,
    mask: Block,
}

impl BusChain {
    /// Creates a chain seeded with the group's initial vector `c0`
    /// (broadcast by the designated group member at initialization, §4.2).
    pub fn new(aes: Aes, c0: Block) -> BusChain {
        BusChain { aes, mask: c0 }
    }

    /// The current mask (exposed for the mask-array machinery and tests).
    pub fn mask(&self) -> Block {
        self.mask
    }

    /// Sender side: encrypts `data`, returning the value `P` to put on the
    /// bus, and advances the mask.
    pub fn encrypt(&mut self, data: Block) -> Block {
        let p = data ^ self.mask;
        self.mask = self.aes.encrypt_block(p);
        p
    }

    /// Receiver side: decrypts a bus value `P` back to the data block and
    /// advances the mask identically to the sender.
    pub fn decrypt(&mut self, p: Block) -> Block {
        let data = p ^ self.mask;
        self.mask = self.aes.encrypt_block(p);
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aes() -> Aes {
        Aes::new_128(&[0x42; 16])
    }

    #[test]
    fn cbc_roundtrip_multi_block() {
        let iv = Block::from([3; 16]);
        let mut enc = CbcEncryptor::new(aes(), iv);
        let mut dec = CbcDecryptor::new(aes(), iv);
        let msg: Vec<u8> = (0u8..64).collect();
        let ct = enc.encrypt(&msg).unwrap();
        assert_ne!(ct, msg);
        assert_eq!(dec.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn cbc_rejects_partial_blocks() {
        let mut enc = CbcEncryptor::new(aes(), Block::ZERO);
        assert_eq!(
            enc.encrypt(&[0u8; 17]),
            Err(CryptoError::BadLength { len: 17 })
        );
        let mut dec = CbcDecryptor::new(aes(), Block::ZERO);
        assert_eq!(
            dec.decrypt(&[0u8; 31]),
            Err(CryptoError::BadLength { len: 31 })
        );
    }

    #[test]
    fn cbc_identical_plaintext_blocks_differ() {
        // The chaining property: repeated plaintext must not produce
        // repeated ciphertext.
        let mut enc = CbcEncryptor::new(aes(), Block::ZERO);
        let d = Block::from([0x11; 16]);
        let c1 = enc.encrypt_block(d);
        let c2 = enc.encrypt_block(d);
        assert_ne!(c1, c2);
    }

    #[test]
    fn bus_chain_sender_receiver_stay_synchronized() {
        let c0 = Block::from([0xAB; 16]);
        let mut sender = BusChain::new(aes(), c0);
        let mut receiver = BusChain::new(aes(), c0);
        for i in 0..32u8 {
            let data = Block::from([i; 16]);
            let p = sender.encrypt(data);
            assert_eq!(receiver.decrypt(p), data, "message {i}");
            assert_eq!(sender.mask(), receiver.mask(), "masks diverged at {i}");
        }
    }

    #[test]
    fn bus_chain_repeated_data_gives_distinct_bus_values() {
        // §4.2: for the same data transferred at different times, different
        // ciphertext appears on the bus.
        let mut chain = BusChain::new(aes(), Block::from([1; 16]));
        let d = Block::from([0x77; 16]);
        let p1 = chain.encrypt(d);
        let p2 = chain.encrypt(d);
        assert_ne!(p1, p2);
    }

    #[test]
    fn bus_value_is_one_xor_from_data() {
        // The latency claim: P differs from D exactly by the pre-transfer
        // mask, so producing it is a single XOR.
        let c0 = Block::from([0xCD; 16]);
        let mut chain = BusChain::new(aes(), c0);
        let d = Block::from([0x3C; 16]);
        let p = chain.encrypt(d);
        assert_eq!(p, d ^ c0);
    }

    #[test]
    fn bus_chain_and_cbc_masks_agree() {
        // The bus variant is algebraically the same chain: mask_i equals the
        // classic CBC cipher C_i when the IV matches.
        let iv = Block::from([0x5A; 16]);
        let mut cbc = CbcEncryptor::new(aes(), iv);
        let mut bus = BusChain::new(aes(), iv);
        for i in 0..8u8 {
            let d = Block::from([i.wrapping_mul(37); 16]);
            let c = cbc.encrypt_block(d);
            bus.encrypt(d);
            assert_eq!(bus.mask(), c);
        }
    }

    #[test]
    fn different_iv_different_trace() {
        // §4.2 Initialization: each invocation must use a fresh C0 so mask
        // traces differ between runs.
        let mut a = BusChain::new(aes(), Block::from([1; 16]));
        let mut b = BusChain::new(aes(), Block::from([2; 16]));
        let d = Block::from([0xEE; 16]);
        assert_ne!(a.encrypt(d), b.encrypt(d));
    }
}
