//! AES-CMAC (OMAC1, NIST SP 800-38B / RFC 4493).
//!
//! The paper's Equation (1) is the classic CBC-MAC, which is only secure
//! for *fixed-length* message streams — exactly SENSS's setting (every
//! bus beat is one block and the chain never terminates). For
//! variable-length uses (sealing swapped-out contexts, authenticating
//! dispatched program images) CBC-MAC is forgeable, and the standard fix
//! is CMAC's tweaked last block. This module provides it, validated
//! against the RFC 4493 test vectors, so downstream users are not tempted
//! to misuse [`crate::mac::ChainedMac`] on byte strings.

use crate::aes::Aes;
use crate::block::Block;

/// Doubles an element of GF(2¹²⁸) under the CMAC convention
/// (left shift, conditionally XOR the Rb = 0x87 constant).
fn dbl(b: Block) -> Block {
    let v = u128::from_be_bytes(b.into_bytes());
    let mut out = v << 1;
    if v >> 127 == 1 {
        out ^= 0x87;
    }
    Block::from(out.to_be_bytes())
}

/// An AES-CMAC instance with derived subkeys.
///
/// # Example
///
/// ```
/// use senss_crypto::aes::Aes;
/// use senss_crypto::cmac::Cmac;
///
/// let cmac = Cmac::new(Aes::new_128(&[0u8; 16]));
/// let tag = cmac.tag(b"any length at all");
/// assert!(cmac.verify(b"any length at all", tag));
/// assert!(!cmac.verify(b"any length at al!", tag));
/// ```
#[derive(Debug, Clone)]
pub struct Cmac {
    aes: Aes,
    k1: Block,
    k2: Block,
}

impl Cmac {
    /// Derives the CMAC subkeys from the cipher.
    pub fn new(aes: Aes) -> Cmac {
        let l = aes.encrypt_block(Block::ZERO);
        let k1 = dbl(l);
        let k2 = dbl(k1);
        Cmac { aes, k1, k2 }
    }

    /// Computes the 128-bit tag of a message of any length.
    pub fn tag(&self, msg: &[u8]) -> Block {
        let n_blocks = msg.len().div_ceil(16).max(1);
        let mut state = Block::ZERO;
        for i in 0..n_blocks - 1 {
            let blk = Block::from_slice(&msg[16 * i..16 * i + 16]);
            state = self.aes.encrypt_block(state ^ blk);
        }
        let rest = &msg[16 * (n_blocks - 1)..];
        let last = if rest.len() == 16 {
            Block::from_slice(rest) ^ self.k1
        } else {
            let mut padded = [0u8; 16];
            padded[..rest.len()].copy_from_slice(rest);
            padded[rest.len()] = 0x80;
            Block::from(padded) ^ self.k2
        };
        self.aes.encrypt_block(state ^ last)
    }

    /// Verifies a tag (constant-time compare).
    pub fn verify(&self, msg: &[u8], tag: Block) -> bool {
        self.tag(msg).ct_eq(&tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn cmac() -> Cmac {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        Cmac::new(Aes::new_128(&key))
    }

    const M64: &str = "6bc1bee22e409f96e93d7e117393172a\
                       ae2d8a571e03ac9c9eb76fac45af8e51\
                       30c81c46a35ce411e5fbc1191a0a52ef\
                       f69f2445df4f9b17ad2b417be66c3710";

    #[test]
    fn rfc4493_example_1_empty() {
        assert_eq!(
            cmac().tag(b""),
            Block::from_slice(&hex("bb1d6929e95937287fa37d129b756746"))
        );
    }

    #[test]
    fn rfc4493_example_2_one_block() {
        assert_eq!(
            cmac().tag(&hex(&M64[..32].replace(' ', ""))[..16]),
            Block::from_slice(&hex("070a16b46b4d4144f79bdd9dd04a287c"))
        );
    }

    #[test]
    fn rfc4493_example_3_40_bytes() {
        let m = hex(&M64.replace(' ', ""));
        assert_eq!(
            cmac().tag(&m[..40]),
            Block::from_slice(&hex("dfa66747de9ae63030ca32611497c827"))
        );
    }

    #[test]
    fn rfc4493_example_4_64_bytes() {
        let m = hex(&M64.replace(' ', ""));
        assert_eq!(
            cmac().tag(&m),
            Block::from_slice(&hex("51f0bebf7e3b9d92fc49741779363cfe"))
        );
    }

    #[test]
    fn verify_and_reject() {
        let c = cmac();
        let t = c.tag(b"hello");
        assert!(c.verify(b"hello", t));
        assert!(!c.verify(b"hellp", t));
        assert!(!c.verify(b"hello ", t));
    }

    #[test]
    fn length_extension_does_not_collide() {
        // The classic CBC-MAC forgery shape: tag(m) and tag(m || pad)
        // must be unrelated under CMAC.
        let c = cmac();
        let m = [0u8; 16];
        let mut extended = m.to_vec();
        extended.extend_from_slice(c.tag(&m).as_bytes());
        assert_ne!(c.tag(&m), c.tag(&extended));
    }

    #[test]
    fn distinct_lengths_distinct_tags() {
        let c = cmac();
        assert_ne!(c.tag(&[0u8; 15]), c.tag(&[0u8; 16]));
    }
}
