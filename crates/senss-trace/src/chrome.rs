//! Chrome `trace_event` exporter.
//!
//! Produces the JSON-object flavour of the [Trace Event Format] —
//! `{"traceEvents":[...]}` — which loads directly in `chrome://tracing`
//! and [Perfetto]. Mapping:
//!
//! - `TxnStart`/`TxnDone` become `B`/`E` span pairs on `tid = token`.
//!   Tokens are recycled by the simulator, but only after `TxnDone`, so
//!   spans on one `tid` never overlap and always nest trivially.
//! - Instants (`BusGrant`, `MesiTransition`, `ShuEncrypt`, `ShuVerify`,
//!   `MemFill`) become thread-scoped `i` events; per-processor instants
//!   sit on a dedicated lane `tid = CPU_LANE_BASE + pid` so they group
//!   visually by core.
//! - `ts` is the simulated cycle count, verbatim. The viewer labels it
//!   microseconds; read "1 µs" as "1 cycle".
//!
//! Events are exported in emission order, so `ts` is monotonically
//! non-decreasing across the array (asserted in tests).
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use crate::event::TraceEvent;
use std::fmt::Write as _;

/// Instant lanes for per-processor events start here, far above any
/// real transaction token (tokens are dense slab indices).
pub const CPU_LANE_BASE: u64 = 1 << 32;

/// Renders an event stream as a Chrome `trace_event` JSON object.
pub fn chrome_trace<'a, I>(events: I) -> String
where
    I: IntoIterator<Item = &'a TraceEvent>,
{
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        write_event(&mut out, ev);
    }
    out.push_str("],\"otherData\":{\"ts_unit\":\"simulated_cycles\"}}");
    out
}

fn write_event(out: &mut String, ev: &TraceEvent) {
    match *ev {
        TraceEvent::TxnStart {
            time,
            pid,
            token,
            kind,
            addr,
        } => {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"txn\",\"ph\":\"B\",\
                 \"ts\":{time},\"pid\":1,\"tid\":{token},\
                 \"args\":{{\"cpu\":{pid},\"addr\":{addr}}}}}",
                kind.name()
            );
        }
        TraceEvent::TxnDone {
            time,
            pid,
            token,
            kind,
            ..
        } => {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"txn\",\"ph\":\"E\",\
                 \"ts\":{time},\"pid\":1,\"tid\":{token},\
                 \"args\":{{\"cpu\":{pid}}}}}",
                kind.name()
            );
        }
        TraceEvent::BusGrant {
            time,
            pid,
            token,
            kind,
            queue_depth,
            busy,
            ..
        } => {
            let _ = write!(
                out,
                "{{\"name\":\"bus_grant\",\"cat\":\"bus\",\"ph\":\"i\",\
                 \"s\":\"t\",\"ts\":{time},\"pid\":1,\"tid\":{token},\
                 \"args\":{{\"cpu\":{pid},\"kind\":\"{}\",\
                 \"queue_depth\":{queue_depth},\"busy\":{busy}}}}}",
                kind.name()
            );
        }
        TraceEvent::MesiTransition {
            time,
            pid,
            addr,
            from,
            to,
        } => {
            let _ = write!(
                out,
                "{{\"name\":\"mesi {}>{}\",\"cat\":\"mesi\",\"ph\":\"i\",\
                 \"s\":\"t\",\"ts\":{time},\"pid\":1,\"tid\":{},\
                 \"args\":{{\"addr\":{addr}}}}}",
                from.letter(),
                to.letter(),
                CPU_LANE_BASE + pid as u64
            );
        }
        TraceEvent::ShuEncrypt {
            time,
            pid,
            token,
            stall,
        } => {
            let _ = write!(
                out,
                "{{\"name\":\"shu_encrypt\",\"cat\":\"shu\",\"ph\":\"i\",\
                 \"s\":\"t\",\"ts\":{time},\"pid\":1,\"tid\":{},\
                 \"args\":{{\"token\":{token},\"stall\":{stall}}}}}",
                CPU_LANE_BASE + pid as u64
            );
        }
        TraceEvent::ShuVerify {
            time,
            pid,
            token,
            auth_round,
        } => {
            let _ = write!(
                out,
                "{{\"name\":\"shu_verify\",\"cat\":\"shu\",\"ph\":\"i\",\
                 \"s\":\"t\",\"ts\":{time},\"pid\":1,\"tid\":{},\
                 \"args\":{{\"token\":{token},\"auth_round\":{auth_round}}}}}",
                CPU_LANE_BASE + pid as u64
            );
        }
        TraceEvent::MemFill {
            time,
            pid,
            token,
            addr,
        } => {
            let _ = write!(
                out,
                "{{\"name\":\"mem_fill\",\"cat\":\"mem\",\"ph\":\"i\",\
                 \"s\":\"t\",\"ts\":{time},\"pid\":1,\"tid\":{},\
                 \"args\":{{\"token\":{token},\"addr\":{addr}}}}}",
                CPU_LANE_BASE + pid as u64
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MesiPoint, TxnClass};

    #[test]
    fn exports_span_pairs_and_instants() {
        let events = [
            TraceEvent::TxnStart {
                time: 10,
                pid: 0,
                token: 4,
                kind: TxnClass::Read,
                addr: 64,
            },
            TraceEvent::MesiTransition {
                time: 10,
                pid: 1,
                addr: 64,
                from: MesiPoint::Modified,
                to: MesiPoint::Shared,
            },
            TraceEvent::TxnDone {
                time: 190,
                pid: 0,
                token: 4,
                kind: TxnClass::Read,
                addr: 64,
            },
        ];
        let json = chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"mesi M>S\""));
        assert!(json.contains(&format!("\"tid\":{}", CPU_LANE_BASE + 1)));
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = chrome_trace(&[]);
        assert_eq!(
            json,
            "{\"traceEvents\":[],\"otherData\":{\"ts_unit\":\"simulated_cycles\"}}"
        );
    }
}
